//! # auto-suggest
//!
//! A from-scratch Rust reproduction of *Auto-Suggest: Learning-to-Recommend
//! Data Preparation Steps Using Data Science Notebooks* (Yan & He, SIGMOD
//! 2020).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`parallel`] — the deterministic work-stealing thread pool
//!   (`AUTOSUGGEST_THREADS` controls width; results are bit-identical at
//!   every thread count);
//! * [`dataframe`] — the columnar table engine (the "Pandas" substrate);
//! * [`corpus`] — synthetic notebooks, the replay engine, data-flow graphs;
//! * [`features`] — the paper's feature extractors (§4);
//! * [`gbdt`] — gradient boosted trees for point-wise ranking;
//! * [`nn`] — the RNN/MLP substrate of the next-operator model (Fig. 13);
//! * [`graph`] — Stoer–Wagner, AMPT and CMUT solvers (§4.3–4.4);
//! * [`ranking`] — precision@k / NDCG@k / Rand-index metrics (§6.4);
//! * [`baselines`] — every comparator of the evaluation (§6);
//! * [`core`] — the Auto-Suggest predictors and end-to-end pipeline;
//! * [`obs`] — deterministic observability: spans, counters, gauges and
//!   histograms whose non-timing view is bit-identical at any thread count;
//! * [`cache`] — the content-addressed column-artifact cache (128-bit
//!   multiset fingerprints → interned sketches/statistics; on by default,
//!   `AUTOSUGGEST_CACHE=0` disables, hit/miss/eviction counters land in the
//!   deterministic obs section);
//! * [`server`] — `autosuggestd`, the long-running HTTP suggestion daemon
//!   (bounded admission queue, cross-request micro-batching, versioned
//!   model hot-reload, JSON wire format from [`core::wire`]).
//!
//! ```no_run
//! use auto_suggest::core::{AutoSuggest, AutoSuggestConfig};
//!
//! // Crawl-substitute → replay → train (minutes at full scale; use
//! // `AutoSuggestConfig::fast(seed)` for seconds).
//! let system = AutoSuggest::train(AutoSuggestConfig::fast(42));
//! let join = system.models.join.as_ref().unwrap();
//! let case = &system.test.join[0];
//! for s in join.suggest(&case.inputs[0], &case.inputs[1], 3) {
//!     println!("join {:?} = {:?} (score {:.2})", s.left_cols, s.right_cols, s.score);
//! }
//! ```

pub use autosuggest_baselines as baselines;
pub use autosuggest_cache as cache;
pub use autosuggest_parallel as parallel;
pub use autosuggest_core as core;
pub use autosuggest_corpus as corpus;
pub use autosuggest_dataframe as dataframe;
pub use autosuggest_features as features;
pub use autosuggest_gbdt as gbdt;
pub use autosuggest_graph as graph;
pub use autosuggest_nn as nn;
pub use autosuggest_obs as obs;
pub use autosuggest_ranking as ranking;
pub use autosuggest_server as server;
