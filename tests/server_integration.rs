//! End-to-end daemon tests: a real `autosuggestd` server on a loopback
//! port, driven over TCP by concurrent clients.
//!
//! The load-bearing assertion is *bit-for-bit equivalence*: the JSON a
//! served request answers with must render identically to encoding the
//! response of a direct in-process `AutoSuggest::suggest` call on the
//! same model. Plus: health/stats endpoints, 400s for malformed bodies,
//! 404s for unknown routes, versioned hot-reload, and graceful shutdown.

use auto_suggest::core::model_slot::ModelSlot;
use auto_suggest::core::wire::{self, OwnedSuggestRequest};
use auto_suggest::core::{AutoSuggest, AutoSuggestConfig, RetrainPlanner};
use auto_suggest::dataframe::{DataFrame, Value as Cell};
use auto_suggest::server::{http, serve, Server, ServerConfig};
use serde_json::Value;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};

const MAX_RESPONSE: usize = 64 * 1024 * 1024;

fn call(addr: &str, method: &str, path: &str, body: &str) -> (u16, Value) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    http::write_request(&mut writer, method, path, body).expect("send");
    let (status, text) = http::read_response(&mut reader, MAX_RESPONSE).expect("recv");
    let value = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("non-JSON body from {path}: {e}\n{text}"));
    (status, value)
}

fn mixed_requests() -> Vec<OwnedSuggestRequest> {
    let customers = DataFrame::from_columns(vec![
        ("customer_id", (0..30).map(Cell::Int).collect()),
        (
            "segment",
            (0..30)
                .map(|i| Cell::Str(["retail", "wholesale"][i % 2].to_string()))
                .collect(),
        ),
        ("balance", (0..30).map(|i| Cell::Float(i as f64 * 1.5)).collect()),
    ])
    .unwrap();
    let orders = DataFrame::from_columns(vec![
        ("customer_id", (0..30).map(|i| Cell::Int(i % 10)).collect()),
        ("total", (0..30).map(|i| Cell::Float(100.0 + i as f64)).collect()),
    ])
    .unwrap();
    let sales = DataFrame::from_columns(vec![
        (
            "region",
            (0..40)
                .map(|i| Cell::Str(["n", "s", "e", "w"][i % 4].to_string()))
                .collect(),
        ),
        ("year", (0..40).map(|i| Cell::Int(2020 + (i as i64 % 3))).collect()),
        ("revenue", (0..40).map(|i| Cell::Float(i as f64 * 7.25)).collect()),
    ])
    .unwrap();
    let wide = DataFrame::from_columns(vec![
        ("id", (0..20).map(Cell::Int).collect()),
        ("q1", (0..20).map(|i| Cell::Float(i as f64)).collect()),
        ("q2", (0..20).map(|i| Cell::Float(i as f64 + 0.5)).collect()),
        ("q3", (0..20).map(|i| Cell::Float(i as f64 + 0.25)).collect()),
    ])
    .unwrap();
    vec![
        OwnedSuggestRequest::Join { left: customers.clone(), right: orders, top_k: 3 },
        OwnedSuggestRequest::GroupBy { table: sales.clone() },
        OwnedSuggestRequest::Pivot { table: sales, dims: vec![0, 1] },
        OwnedSuggestRequest::Unpivot { table: wide },
        OwnedSuggestRequest::GroupBy { table: customers },
    ]
}

/// Train once, compute the expected (directly-suggested) response
/// renderings, then move the system into a served daemon.
fn start_server() -> (Server, Vec<String>, Vec<String>) {
    let system = AutoSuggest::train(AutoSuggestConfig::fast(3));
    let requests = mixed_requests();
    let bodies: Vec<String> = requests
        .iter()
        .map(|r| wire::encode_request(&r.as_request()).to_string())
        .collect();
    let expected: Vec<String> = requests
        .iter()
        .map(|r| wire::encode_response(&system.suggest(&r.as_request())).to_string())
        .collect();
    let slot = Arc::new(ModelSlot::new(system));
    let config = ServerConfig {
        // Cheap reload trainer so the hot-reload test stays fast.
        trainer: Box::new(|seed| AutoSuggest::train(AutoSuggestConfig::fast(seed))),
        ..Default::default()
    };
    // Both tests in this binary run concurrently in one process; giving
    // each daemon its own obs registry (captured as the serve-time
    // ambient) keeps their `/stats` counters from cross-contaminating.
    let (server, _empty_snapshot) =
        auto_suggest::obs::with_local_registry(|| serve(slot, config).expect("bind loopback"));
    (server, bodies, expected)
}

#[test]
fn served_responses_are_bit_for_bit_equal_to_direct_suggest() {
    let (server, bodies, expected) = start_server();
    let addr = server.addr().to_string();

    // Health first.
    let (status, health) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("model_version").and_then(Value::as_i64), Some(1));

    // Fire every request from its own concurrent client, twice (the
    // second round hits warm caches — answers must not change).
    for round in 0..2 {
        let answers: Vec<(usize, u16, Value)> = std::thread::scope(|scope| {
            let handles: Vec<_> = bodies
                .iter()
                .enumerate()
                .map(|(i, body)| {
                    let addr = addr.clone();
                    scope.spawn(move || {
                        let (status, v) = call(&addr, "POST", "/suggest", body);
                        (i, status, v)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client")).collect()
        });
        for (i, status, v) in answers {
            assert_eq!(status, 200, "round {round} request {i}: {v}");
            assert!(v.get("trace_id").and_then(Value::as_i64).is_some());
            assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(1));
            let served = v.get("response").expect("response field").to_string();
            assert_eq!(
                served, expected[i],
                "round {round} request {i}: served response diverged from direct suggest"
            );
        }
    }

    // Decoding the served payload yields a valid SuggestResponse too.
    let (_, v) = call(&addr, "POST", "/suggest", &bodies[0]);
    let decoded = wire::decode_response(v.get("response").unwrap()).expect("decodable");
    assert_eq!(wire::encode_response(&decoded).to_string(), expected[0]);

    // Stats reflect the traffic: the curated deterministic section counts
    // every request above as ok.
    let (status, stats) = call(&addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let det = stats.get("deterministic").expect("deterministic section");
    let requests = det.get("server.requests").and_then(Value::as_i64).unwrap_or(0);
    let ok = det.get("server.responses_ok").and_then(Value::as_i64).unwrap_or(0);
    assert_eq!(requests, 2 * bodies.len() as i64 + 1);
    assert_eq!(ok, requests);
    assert!(det.get("server.responses_error").is_none());

    server.shutdown();
    server.wait().expect("clean shutdown");
}

#[test]
fn bad_requests_unknown_routes_and_reload_then_shutdown() {
    let (server, bodies, _expected) = start_server();
    let addr = server.addr().to_string();

    // Malformed JSON → 400 with an error message and a trace id.
    let (status, v) = call(&addr, "POST", "/suggest", "{not json");
    assert_eq!(status, 400);
    assert!(v.get("error").and_then(Value::as_str).is_some());
    assert!(v.get("trace_id").is_some());

    // Valid JSON, invalid request document → 400.
    let (status, v) = call(&addr, "POST", "/suggest", r#"{"op":"teleport"}"#);
    assert_eq!(status, 400);
    let msg = v.get("error").and_then(Value::as_str).unwrap_or_default();
    assert!(msg.contains("unknown op"), "unhelpful error: {msg}");

    // Unknown route → 404; unsupported method → 405.
    let (status, _) = call(&addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = call(&addr, "DELETE", "/suggest", "");
    assert_eq!(status, 405);

    // Hot reload: version bumps, daemon answers on the new model.
    let (status, v) = call(&addr, "POST", "/admin/reload", r#"{"seed": 5}"#);
    assert_eq!(status, 200, "{v}");
    assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(2));
    let (status, v) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(2));
    let (status, v) = call(&addr, "POST", "/suggest", &bodies[1]);
    assert_eq!(status, 200);
    assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(2));

    // Bad reload body → 400, version unchanged.
    let (status, _) = call(&addr, "POST", "/admin/reload", r#"{"sneed": 1}"#);
    assert_eq!(status, 400);
    let (_, v) = call(&addr, "GET", "/healthz", "");
    assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(2));

    // HTTP-level shutdown: acknowledged, then the daemon drains and exits.
    let (status, v) = call(&addr, "POST", "/admin/shutdown", "{}");
    assert_eq!(status, 200);
    assert_eq!(v.get("status").and_then(Value::as_str), Some("shutting down"));
    server.wait().expect("clean shutdown after HTTP request");
}

/// Hammer `/suggest` from concurrent clients while the model slot is
/// repeatedly swapped by incremental reloads. Every response must be
/// self-consistent: exactly one model version, versions monotone per
/// sequential client, and — because the default incremental trainer is an
/// empty-delta retrain that provably carries every model — renderings
/// bit-identical to the original system no matter which version answered.
#[test]
fn suggest_traffic_stays_consistent_across_incremental_reload_swaps() {
    let (server, bodies, expected) = start_server();
    let addr = server.addr().to_string();
    const RELOADS: i64 = 3;

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|worker| {
            let addr = addr.clone();
            let bodies = bodies.clone();
            let expected = expected.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut served = 0usize;
                let mut last_version = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    for (i, body) in bodies.iter().enumerate() {
                        let (status, v) = call(&addr, "POST", "/suggest", body);
                        assert_eq!(status, 200, "worker {worker} request {i}: {v}");
                        let version = v
                            .get("model_version")
                            .and_then(Value::as_i64)
                            .expect("model_version field");
                        assert!(
                            (1..=1 + RELOADS).contains(&version),
                            "worker {worker}: impossible model version {version}"
                        );
                        assert!(
                            version >= last_version,
                            "worker {worker}: served version went backwards \
                             ({last_version} then {version})"
                        );
                        last_version = version;
                        let served_body =
                            v.get("response").expect("response field").to_string();
                        assert_eq!(
                            served_body, expected[i],
                            "worker {worker} request {i} on model v{version}: \
                             rendering diverged after incremental swap"
                        );
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();

    // Sequential incremental reloads while the workers hammer away. Each
    // is an empty-delta retrain: nothing replayed, every family carried.
    let mut carried_total = 0i64;
    for k in 0..RELOADS {
        let (status, v) =
            call(&addr, "POST", "/admin/reload?mode=incremental", r#"{"seed": 9}"#);
        assert_eq!(status, 200, "{v}");
        assert_eq!(v.get("mode").and_then(Value::as_str), Some("incremental"));
        assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(2 + k));
        assert_eq!(v.get("notebooks_replayed").and_then(Value::as_i64), Some(0));
        assert_eq!(v.get("full_replay_fallback").and_then(Value::as_bool), Some(false));
        let carried = v.get("carried").and_then(Value::as_array).expect("carried");
        let rebuilt = v.get("rebuilt").and_then(Value::as_array).expect("rebuilt");
        assert!(!carried.is_empty(), "empty-delta retrain must carry models: {v}");
        assert!(rebuilt.is_empty(), "empty-delta retrain must rebuild nothing: {v}");
        carried_total += carried.len() as i64;
    }

    stop.store(true, Ordering::Relaxed);
    let served: usize =
        workers.into_iter().map(|h| h.join().expect("suggest worker")).sum();
    assert!(served > 0, "workers must have served at least one round");

    let (_, v) = call(&addr, "GET", "/healthz", "");
    assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(1 + RELOADS));

    // The curated deterministic stats expose the retrain accounting.
    let (_, stats) = call(&addr, "GET", "/stats", "");
    let det = stats.get("deterministic").expect("deterministic section");
    let count = |name: &str| det.get(name).and_then(Value::as_i64).unwrap_or(0);
    assert_eq!(count("server.retrain.reloads"), RELOADS);
    assert_eq!(count("server.retrain.models_carried"), carried_total);
    assert_eq!(count("server.retrain.models_rebuilt"), 0);
    assert_eq!(count("server.retrain.notebooks_replayed"), 0);
    assert_eq!(count("server.model_swaps"), RELOADS);

    server.shutdown();
    server.wait().expect("clean shutdown");
}

/// Send raw bytes over a fresh connection and read back one response.
/// Bypasses [`http::write_request`], which always frames correctly — the
/// point here is deliberately broken framing.
fn call_raw(addr: &str, raw: &str) -> (u16, Value) {
    use std::io::Write;
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("read timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer.write_all(raw.as_bytes()).expect("send raw");
    writer.flush().expect("flush");
    let (status, text) = http::read_response(&mut reader, MAX_RESPONSE).expect("recv");
    let value = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("non-JSON body: {e}\n{text}"));
    (status, value)
}

/// Protocol hardening: a POST without `Content-Length` must be answered
/// `411 Length Required` (not stalled waiting for bytes that were already
/// consumed as a guessed-zero body), a non-numeric length is a `400`, and
/// header names are case-insensitive per RFC 7230.
#[test]
fn post_framing_errors_answer_411_and_400_without_stalling() {
    let (server, bodies, expected) = start_server();
    let addr = server.addr().to_string();

    // Missing Content-Length on a body-bearing request → 411, fast.
    let started = std::time::Instant::now();
    let (status, v) = call_raw(
        &addr,
        "POST /suggest HTTP/1.1\r\nContent-Type: application/json\r\n\r\n{\"op\":\"x\"}",
    );
    assert_eq!(status, 411, "{v}");
    let msg = v.get("error").and_then(Value::as_str).unwrap_or_default();
    assert!(msg.contains("content-length"), "unhelpful error: {msg}");
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "411 must come back immediately, not via a stall"
    );

    // Non-numeric Content-Length → 400.
    let (status, v) =
        call_raw(&addr, "POST /suggest HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n");
    assert_eq!(status, 400, "{v}");

    // Lowercase header names are honoured (RFC 7230 §3.2): a correctly
    // framed request with `content-length` serves normally.
    let body = &bodies[0];
    let (status, v) = call_raw(
        &addr,
        &format!(
            "POST /suggest HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        ),
    );
    assert_eq!(status, 200, "{v}");
    assert_eq!(v.get("response").expect("response field").to_string(), expected[0]);

    // The daemon is still healthy after the protocol abuse.
    let (status, _) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    server.shutdown();
    server.wait().expect("clean shutdown");
}

/// While one reload is training, any further reload (either mode) must be
/// answered `409 Conflict` with a JSON error — not queued behind the lock.
#[test]
fn second_reload_while_one_is_in_flight_answers_409() {
    let system = AutoSuggest::train(AutoSuggestConfig::fast(3));
    let slot = Arc::new(ModelSlot::new(system));
    // A trainer the test can hold open: signals entry, then blocks until
    // released. Senders/receivers go behind mutexes because the trainer
    // closure must be Sync.
    let (entered_tx, entered_rx) = mpsc::channel::<()>();
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let entered_tx = Mutex::new(entered_tx);
    let release_rx = Mutex::new(release_rx);
    let config = ServerConfig {
        incremental_trainer: Box::new(move |_seed, prev| {
            entered_tx.lock().unwrap().send(()).expect("test alive");
            release_rx.lock().unwrap().recv().expect("release signal");
            RetrainPlanner::new().retrain(prev, prev.config.clone())
        }),
        ..Default::default()
    };
    let (server, _snapshot) =
        auto_suggest::obs::with_local_registry(|| serve(slot, config).expect("bind loopback"));
    let addr = server.addr().to_string();

    // Unknown mode is rejected outright, before the lock is involved.
    let (status, v) = call(&addr, "POST", "/admin/reload?mode=sideways", r#"{"seed": 1}"#);
    assert_eq!(status, 400);
    let msg = v.get("error").and_then(Value::as_str).unwrap_or_default();
    assert!(msg.contains("sideways"), "unhelpful error: {msg}");

    // First reload enters its trainer and parks there...
    let first = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            call(&addr, "POST", "/admin/reload?mode=incremental", r#"{"seed": 1}"#)
        })
    };
    entered_rx.recv().expect("first reload reaches its trainer");

    // ...so any further reload answers 409 with a JSON error body.
    for path in ["/admin/reload?mode=incremental", "/admin/reload"] {
        let (status, v) = call(&addr, "POST", path, r#"{"seed": 2}"#);
        assert_eq!(status, 409, "{path}: {v}");
        let msg = v.get("error").and_then(Value::as_str).unwrap_or_default();
        assert!(msg.contains("in flight"), "{path}: unhelpful error: {msg}");
    }

    // Serving is unaffected while the reload holds the lock.
    let (status, v) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(1));

    // Release the trainer: the parked reload completes normally.
    release_tx.send(()).expect("trainer waiting");
    let (status, v) = first.join().expect("reload client");
    assert_eq!(status, 200, "{v}");
    assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(2));

    // And the lock is free again: a plain full reload goes through.
    let (status, v) = call(&addr, "POST", "/admin/reload", r#"{"seed": 4}"#);
    assert_eq!(status, 200, "{v}");
    assert_eq!(v.get("mode").and_then(Value::as_str), Some("full"));
    assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(3));

    server.shutdown();
    server.wait().expect("clean shutdown");
}
