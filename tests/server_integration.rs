//! End-to-end daemon tests: a real `autosuggestd` server on a loopback
//! port, driven over TCP by concurrent clients.
//!
//! The load-bearing assertion is *bit-for-bit equivalence*: the JSON a
//! served request answers with must render identically to encoding the
//! response of a direct in-process `AutoSuggest::suggest` call on the
//! same model. Plus: health/stats endpoints, 400s for malformed bodies,
//! 404s for unknown routes, versioned hot-reload, and graceful shutdown.

use auto_suggest::core::model_slot::ModelSlot;
use auto_suggest::core::wire::{self, OwnedSuggestRequest};
use auto_suggest::core::{AutoSuggest, AutoSuggestConfig};
use auto_suggest::dataframe::{DataFrame, Value as Cell};
use auto_suggest::server::{http, serve, Server, ServerConfig};
use serde_json::Value;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;

const MAX_RESPONSE: usize = 64 * 1024 * 1024;

fn call(addr: &str, method: &str, path: &str, body: &str) -> (u16, Value) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    http::write_request(&mut writer, method, path, body).expect("send");
    let (status, text) = http::read_response(&mut reader, MAX_RESPONSE).expect("recv");
    let value = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("non-JSON body from {path}: {e}\n{text}"));
    (status, value)
}

fn mixed_requests() -> Vec<OwnedSuggestRequest> {
    let customers = DataFrame::from_columns(vec![
        ("customer_id", (0..30).map(Cell::Int).collect()),
        (
            "segment",
            (0..30)
                .map(|i| Cell::Str(["retail", "wholesale"][i % 2].to_string()))
                .collect(),
        ),
        ("balance", (0..30).map(|i| Cell::Float(i as f64 * 1.5)).collect()),
    ])
    .unwrap();
    let orders = DataFrame::from_columns(vec![
        ("customer_id", (0..30).map(|i| Cell::Int(i % 10)).collect()),
        ("total", (0..30).map(|i| Cell::Float(100.0 + i as f64)).collect()),
    ])
    .unwrap();
    let sales = DataFrame::from_columns(vec![
        (
            "region",
            (0..40)
                .map(|i| Cell::Str(["n", "s", "e", "w"][i % 4].to_string()))
                .collect(),
        ),
        ("year", (0..40).map(|i| Cell::Int(2020 + (i as i64 % 3))).collect()),
        ("revenue", (0..40).map(|i| Cell::Float(i as f64 * 7.25)).collect()),
    ])
    .unwrap();
    let wide = DataFrame::from_columns(vec![
        ("id", (0..20).map(Cell::Int).collect()),
        ("q1", (0..20).map(|i| Cell::Float(i as f64)).collect()),
        ("q2", (0..20).map(|i| Cell::Float(i as f64 + 0.5)).collect()),
        ("q3", (0..20).map(|i| Cell::Float(i as f64 + 0.25)).collect()),
    ])
    .unwrap();
    vec![
        OwnedSuggestRequest::Join { left: customers.clone(), right: orders, top_k: 3 },
        OwnedSuggestRequest::GroupBy { table: sales.clone() },
        OwnedSuggestRequest::Pivot { table: sales, dims: vec![0, 1] },
        OwnedSuggestRequest::Unpivot { table: wide },
        OwnedSuggestRequest::GroupBy { table: customers },
    ]
}

/// Train once, compute the expected (directly-suggested) response
/// renderings, then move the system into a served daemon.
fn start_server() -> (Server, Vec<String>, Vec<String>) {
    let system = AutoSuggest::train(AutoSuggestConfig::fast(3));
    let requests = mixed_requests();
    let bodies: Vec<String> = requests
        .iter()
        .map(|r| wire::encode_request(&r.as_request()).to_string())
        .collect();
    let expected: Vec<String> = requests
        .iter()
        .map(|r| wire::encode_response(&system.suggest(&r.as_request())).to_string())
        .collect();
    let slot = Arc::new(ModelSlot::new(system));
    let config = ServerConfig {
        // Cheap reload trainer so the hot-reload test stays fast.
        trainer: Box::new(|seed| AutoSuggest::train(AutoSuggestConfig::fast(seed))),
        ..Default::default()
    };
    // Both tests in this binary run concurrently in one process; giving
    // each daemon its own obs registry (captured as the serve-time
    // ambient) keeps their `/stats` counters from cross-contaminating.
    let (server, _empty_snapshot) =
        auto_suggest::obs::with_local_registry(|| serve(slot, config).expect("bind loopback"));
    (server, bodies, expected)
}

#[test]
fn served_responses_are_bit_for_bit_equal_to_direct_suggest() {
    let (server, bodies, expected) = start_server();
    let addr = server.addr().to_string();

    // Health first.
    let (status, health) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("model_version").and_then(Value::as_i64), Some(1));

    // Fire every request from its own concurrent client, twice (the
    // second round hits warm caches — answers must not change).
    for round in 0..2 {
        let answers: Vec<(usize, u16, Value)> = std::thread::scope(|scope| {
            let handles: Vec<_> = bodies
                .iter()
                .enumerate()
                .map(|(i, body)| {
                    let addr = addr.clone();
                    scope.spawn(move || {
                        let (status, v) = call(&addr, "POST", "/suggest", body);
                        (i, status, v)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client")).collect()
        });
        for (i, status, v) in answers {
            assert_eq!(status, 200, "round {round} request {i}: {v}");
            assert!(v.get("trace_id").and_then(Value::as_i64).is_some());
            assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(1));
            let served = v.get("response").expect("response field").to_string();
            assert_eq!(
                served, expected[i],
                "round {round} request {i}: served response diverged from direct suggest"
            );
        }
    }

    // Decoding the served payload yields a valid SuggestResponse too.
    let (_, v) = call(&addr, "POST", "/suggest", &bodies[0]);
    let decoded = wire::decode_response(v.get("response").unwrap()).expect("decodable");
    assert_eq!(wire::encode_response(&decoded).to_string(), expected[0]);

    // Stats reflect the traffic: the curated deterministic section counts
    // every request above as ok.
    let (status, stats) = call(&addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let det = stats.get("deterministic").expect("deterministic section");
    let requests = det.get("server.requests").and_then(Value::as_i64).unwrap_or(0);
    let ok = det.get("server.responses_ok").and_then(Value::as_i64).unwrap_or(0);
    assert_eq!(requests, 2 * bodies.len() as i64 + 1);
    assert_eq!(ok, requests);
    assert!(det.get("server.responses_error").is_none());

    server.shutdown();
    server.wait().expect("clean shutdown");
}

#[test]
fn bad_requests_unknown_routes_and_reload_then_shutdown() {
    let (server, bodies, _expected) = start_server();
    let addr = server.addr().to_string();

    // Malformed JSON → 400 with an error message and a trace id.
    let (status, v) = call(&addr, "POST", "/suggest", "{not json");
    assert_eq!(status, 400);
    assert!(v.get("error").and_then(Value::as_str).is_some());
    assert!(v.get("trace_id").is_some());

    // Valid JSON, invalid request document → 400.
    let (status, v) = call(&addr, "POST", "/suggest", r#"{"op":"teleport"}"#);
    assert_eq!(status, 400);
    let msg = v.get("error").and_then(Value::as_str).unwrap_or_default();
    assert!(msg.contains("unknown op"), "unhelpful error: {msg}");

    // Unknown route → 404; unsupported method → 405.
    let (status, _) = call(&addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = call(&addr, "DELETE", "/suggest", "");
    assert_eq!(status, 405);

    // Hot reload: version bumps, daemon answers on the new model.
    let (status, v) = call(&addr, "POST", "/admin/reload", r#"{"seed": 5}"#);
    assert_eq!(status, 200, "{v}");
    assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(2));
    let (status, v) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(2));
    let (status, v) = call(&addr, "POST", "/suggest", &bodies[1]);
    assert_eq!(status, 200);
    assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(2));

    // Bad reload body → 400, version unchanged.
    let (status, _) = call(&addr, "POST", "/admin/reload", r#"{"sneed": 1}"#);
    assert_eq!(status, 400);
    let (_, v) = call(&addr, "GET", "/healthz", "");
    assert_eq!(v.get("model_version").and_then(Value::as_i64), Some(2));

    // HTTP-level shutdown: acknowledged, then the daemon drains and exits.
    let (status, v) = call(&addr, "POST", "/admin/shutdown", "{}");
    assert_eq!(status, 200);
    assert_eq!(v.get("status").and_then(Value::as_str), Some("shutting down"));
    server.wait().expect("clean shutdown after HTTP request");
}
