//! Seeded property tests for the two sampling primitives the retrain and
//! split paths lean on: `nn::ExampleBuffer` (Algorithm R reservoir with
//! stateless per-index randomness) and `corpus::grouped_split` (leakage-
//! safe train/test split). Cases come from a seeded `StdRng`, same idiom
//! as `tests/properties.rs` — deterministic, no external framework.
//!
//! The edges pinned here are exactly the ones config arithmetic can
//! produce: capacity 0, capacity ≥ population, a 1-notebook shard, and
//! extreme test fractions — plus the invariant that makes streamed replay
//! safe: chunking (however shards or threads batch the offers) never
//! changes the outcome.

use auto_suggest::corpus::grouped_split;
use auto_suggest::nn::ExampleBuffer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// Random chunk lengths covering `total` items (some chunks empty).
fn random_chunks(rng: &mut StdRng, total: usize) -> Vec<usize> {
    let mut lens = Vec::new();
    let mut left = total;
    while left > 0 {
        let take = rng.random_range(0..=left.min(17));
        lens.push(take);
        left -= take;
    }
    lens
}

#[test]
fn reservoir_capacity_zero_retains_nothing_for_any_offer_count() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xb0f_0001 + case);
        let n = rng.random_range(0usize..200);
        let mut buf = ExampleBuffer::new(0, rng.random_range(0..u64::MAX));
        buf.extend(0..n as u32);
        assert!(buf.is_empty(), "case {case}: capacity 0 retained items");
        assert_eq!(buf.seen(), n as u64);
        assert_eq!(buf.capacity(), 0);
    }
}

#[test]
fn reservoir_at_or_above_population_is_the_identity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xb0f_0002 + case);
        let n = rng.random_range(0usize..150);
        let extra = rng.random_range(0usize..50);
        let items: Vec<u32> = (0..n as u32).collect();
        // capacity == population and capacity > population both reduce to
        // "keep everything in insertion order".
        for capacity in [n, n + extra.max(1)] {
            let mut buf = ExampleBuffer::new(capacity, rng.random_range(0..u64::MAX));
            buf.extend(items.iter().copied());
            assert_eq!(buf.items(), items.as_slice(), "case {case} capacity {capacity}");
        }
    }
}

#[test]
fn reservoir_is_invariant_to_offer_chunking() {
    // The streamed-replay guarantee: per-shard batches of any size (the
    // thread count only changes batching, never offer order) produce the
    // same retained set as one sequential pass.
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xb0f_0003 + case);
        let n = rng.random_range(1usize..400);
        let capacity = rng.random_range(0usize..40);
        let seed = rng.random_range(0..u64::MAX);
        let items: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(2654435761)).collect();

        let mut whole = ExampleBuffer::new(capacity, seed);
        whole.extend(items.iter().copied());

        let mut chunked = ExampleBuffer::new(capacity, seed);
        let mut offset = 0;
        for len in random_chunks(&mut rng, n) {
            chunked.extend(items[offset..offset + len].iter().copied());
            offset += len;
        }
        assert_eq!(chunked.items(), whole.items(), "case {case}: chunking changed reservoir");
        assert_eq!(chunked.seen(), whole.seen());
    }
}

#[test]
fn reservoir_never_exceeds_capacity_and_counts_all_offers() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xb0f_0004 + case);
        let n = rng.random_range(0usize..300);
        let capacity = rng.random_range(0usize..20);
        let mut buf = ExampleBuffer::new(capacity, case);
        buf.extend(0..n as u32);
        assert!(buf.len() <= capacity, "case {case}: len {} > capacity {capacity}", buf.len());
        assert_eq!(buf.len(), n.min(capacity));
        assert_eq!(buf.seen(), n as u64);
    }
}

#[test]
fn split_single_item_shard_lands_wholly_on_one_side() {
    // The 1-notebook-shard edge: a split over a single item must place it
    // on exactly one side, for any fraction and seed.
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xb0f_0005 + case);
        let items = vec![format!("group-{}", rng.random_range(0u32..1000))];
        let frac = rng.random_range(0..=10) as f64 / 10.0;
        let split = grouped_split(&items, |s| s.as_str(), frac, rng.random_range(0..u64::MAX));
        assert_eq!(split.train.len() + split.test.len(), 1, "case {case}");
        assert!(split.train == vec![0] || split.test == vec![0]);
    }
}

#[test]
fn split_partitions_indices_and_respects_extreme_fractions() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xb0f_0006 + case);
        let n = rng.random_range(1usize..200);
        let items: Vec<String> =
            (0..n).map(|_| format!("g{}", rng.random_range(0u32..50))).collect();
        let seed = rng.random_range(0..u64::MAX);

        // frac 0.0 / 1.0 are total: everything on one side.
        assert!(grouped_split(&items, |s| s.as_str(), 0.0, seed).test.is_empty());
        assert!(grouped_split(&items, |s| s.as_str(), 1.0, seed).train.is_empty());

        // Any fraction partitions [0, n) exactly, preserving index order.
        let frac = rng.random_range(1..10) as f64 / 10.0;
        let split = grouped_split(&items, |s| s.as_str(), frac, seed);
        let mut all: Vec<usize> = split.train.iter().chain(&split.test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "case {case}: not a partition");
        assert!(split.train.windows(2).all(|w| w[0] < w[1]));
        assert!(split.test.windows(2).all(|w| w[0] < w[1]));
    }
}

#[test]
fn split_groups_never_straddle_and_membership_is_population_independent() {
    // Group side-assignment is a pure function of (seed, group): adding or
    // removing other notebooks (the thread/shard count changing what is in
    // a batch) can never flip an existing group's side.
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xb0f_0007 + case);
        let n = rng.random_range(2usize..120);
        let items: Vec<String> =
            (0..n).map(|_| format!("g{}", rng.random_range(0u32..12))).collect();
        let seed = rng.random_range(0..u64::MAX);
        let split = grouped_split(&items, |s| s.as_str(), 0.3, seed);

        let side_of = |idx: &usize| split.test.contains(idx);
        for i in 0..n {
            for j in 0..n {
                if items[i] == items[j] {
                    assert_eq!(
                        side_of(&i),
                        side_of(&j),
                        "case {case}: group {} straddles the split",
                        items[i]
                    );
                }
            }
        }

        // Re-splitting any subset keeps each group on its original side.
        let subset: Vec<String> =
            items.iter().filter(|_| rng.random_range(0..2) == 0).cloned().collect();
        let sub_split = grouped_split(&subset, |s| s.as_str(), 0.3, seed);
        for (k, g) in subset.iter().enumerate() {
            let full_side = (0..n).find(|i| &items[*i] == g).map(|i| side_of(&i));
            assert_eq!(
                Some(sub_split.test.contains(&k)),
                full_side,
                "case {case}: group {g} flipped sides in a subset"
            );
        }
    }
}
