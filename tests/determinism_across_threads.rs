//! The parallel runtime's core contract: every result is bit-identical
//! regardless of thread count. This exercises the full stack — corpus
//! generation, replay fan-out, GBDT split scans and prediction batching,
//! candidate enumeration — at 1 thread vs 4 and compares outputs exactly.
//!
//! Thread width is switched in-process via `set_thread_override` (the
//! `AUTOSUGGEST_THREADS` env var is read once per process, so an env-based
//! sweep would need subprocesses).

use auto_suggest::core::{AutoSuggest, AutoSuggestConfig};
use auto_suggest::corpus::{CorpusConfig, CorpusGenerator, FaultSpec, ReplayEngine};
use auto_suggest::parallel::set_thread_override;
use std::sync::Mutex;

/// The thread override is process-global, so tests that sweep it must not
/// overlap (cargo runs `#[test]`s concurrently by default).
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Compact, fully-ordered textual log of one replay sweep.
fn replay_fingerprint(threads: usize) -> String {
    set_thread_override(Some(threads));
    let corpus = CorpusGenerator::new(CorpusConfig::small(9)).generate();
    let engine = ReplayEngine::new(corpus.repository.clone());
    let mut log = String::new();
    for nb in &corpus.notebooks {
        let report = engine.replay(nb);
        log.push_str(&format!(
            "{} {:?} cells={} inv={}\n",
            nb.id,
            report.outcome,
            report.cells_executed,
            report.invocations.len(),
        ));
        for inv in &report.invocations {
            log.push_str(&format!(
                "  {:?} in={:?} out={}x{} hash={:016x}\n",
                inv.op,
                inv.inputs.iter().map(|d| (d.num_rows(), d.num_columns())).collect::<Vec<_>>(),
                inv.output_rows,
                inv.output_cols,
                inv.output_hash,
            ));
        }
    }
    set_thread_override(None);
    log
}

#[test]
fn replay_logs_are_bit_identical_across_thread_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let one = replay_fingerprint(1);
    let four = replay_fingerprint(4);
    assert!(!one.is_empty());
    assert_eq!(one, four, "replay diverged between 1 and 4 threads");
}

/// Train the full fast pipeline and fingerprint every learned artefact
/// that could be perturbed by a non-deterministic reduction: GBDT scores
/// on held-out cases and the test-split composition itself.
fn pipeline_fingerprint(threads: usize) -> String {
    set_thread_override(Some(threads));
    let system = AutoSuggest::train(AutoSuggestConfig::fast(7));
    let mut log = format!(
        "splits join={} groupby={} pivot={} melt={} nextop={}\n",
        system.test.join.len(),
        system.test.groupby.len(),
        system.test.pivot.len(),
        system.test.melt.len(),
        system.test.nextop.len(),
    );
    if let Some(join) = &system.models.join {
        for case in system.test.join.iter().take(5) {
            let cands = auto_suggest::features::enumerate_join_candidates(
                &case.inputs[0],
                &case.inputs[1],
                join.candidate_params(),
            );
            log.push_str(&format!("cands={}\n", cands.len()));
            for c in cands.iter().take(20) {
                // Full bit pattern: the exact f64, not a rounded rendering.
                let score = join.score(&case.inputs[0], &case.inputs[1], c);
                log.push_str(&format!(
                    "  {:?}/{:?} {:016x}\n",
                    c.left_cols,
                    c.right_cols,
                    score.to_bits()
                ));
            }
        }
    }
    if let Some(gb) = &system.models.groupby {
        for case in system.test.groupby.iter().take(5) {
            if let Some(df) = case.inputs.first() {
                for s in gb.suggest(df) {
                    log.push_str(&format!("gb {} {:016x}\n", s.column, s.score.to_bits()));
                }
            }
        }
    }
    set_thread_override(None);
    log
}

#[test]
fn trained_models_are_bit_identical_across_thread_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let one = pipeline_fingerprint(1);
    let four = pipeline_fingerprint(4);
    assert!(one.contains("splits"));
    assert_eq!(one, four, "trained pipeline diverged between 1 and 4 threads");
}

/// Full quarantine-with-retry sweep under seeded fault injection: replay
/// logs, injected-fault traces, retry counters, and quarantine lists must
/// all be pure functions of the spec, never of scheduling.
fn fault_injection_fingerprint(threads: usize) -> String {
    set_thread_override(Some(threads));
    let spec = FaultSpec::parse("panic=0.08,io=0.06,timeout=0.05,seed=11,transient=0.5")
        .expect("valid spec");
    let corpus = CorpusGenerator::new(CorpusConfig::small(9)).generate();
    let engine = ReplayEngine::new(corpus.repository.clone()).with_faults(Some(spec));
    let (reports, stats) = engine.replay_corpus(&corpus.notebooks);
    assert_eq!(reports.len(), corpus.notebooks.len());
    assert!(stats.total_injected() > 0, "spec injected nothing");
    let mut log = String::new();
    for r in &reports {
        log.push_str(&format!(
            "{} {:?} cells={} inv={} retries={} injected={:?}\n",
            r.notebook_id,
            r.outcome,
            r.cells_executed,
            r.invocations.len(),
            r.cell_retries,
            r.injected_faults,
        ));
    }
    log.push_str(&format!("{stats:?}\n"));
    set_thread_override(None);
    log
}

#[test]
fn fault_injection_is_deterministic_across_thread_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let one = fault_injection_fingerprint(1);
    let four = fault_injection_fingerprint(4);
    assert!(one.contains("injected"));
    assert_eq!(
        one, four,
        "fault-injected replay diverged between 1 and 4 threads"
    );
}
