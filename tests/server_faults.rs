//! Graceful degradation under injected faults: with `AUTOSUGGEST_FAULTS`
//! set, some `/suggest` requests fail with `500` — but only those
//! requests. Batch siblings answer normally, the daemon never dies, and
//! the injected-fault counter is a pure function of request content
//! (verified by running the identical workload twice and comparing).
//!
//! Lives in its own integration-test binary because it mutates the
//! process environment before starting the daemon.

use auto_suggest::core::model_slot::ModelSlot;
use auto_suggest::core::wire::{self, OwnedSuggestRequest};
use auto_suggest::core::{AutoSuggest, AutoSuggestConfig};
use auto_suggest::dataframe::{DataFrame, Value as Cell};
use auto_suggest::server::{http, serve};
use serde_json::Value;
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;

fn call(addr: &str, method: &str, path: &str, body: &str) -> (u16, Value) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    http::write_request(&mut writer, method, path, body).expect("send");
    let (status, text) = http::read_response(&mut reader, 16 << 20).expect("recv");
    (status, serde_json::from_str(&text).expect("JSON body"))
}

fn bodies() -> Vec<String> {
    // Enough distinct requests that a 30% panic rate hits some of them.
    (0..16)
        .map(|i| {
            let table = DataFrame::from_columns(vec![
                ("key", (0..20).map(|r| Cell::Int(r + i)).collect()),
                (
                    "label",
                    (0..20).map(|r| Cell::Str(format!("v{}", (r + i) % 5))).collect(),
                ),
                ("metric", (0..20).map(|r| Cell::Float((r + i) as f64 / 3.0)).collect()),
            ])
            .unwrap();
            let req = OwnedSuggestRequest::GroupBy { table };
            wire::encode_request(&req.as_request()).to_string()
        })
        .collect()
}

fn drive(addr: &str, bodies: &[String]) -> (u64, u64) {
    let results: Vec<(u16, Value)> = std::thread::scope(|scope| {
        let handles: Vec<_> = bodies
            .iter()
            .map(|body| {
                scope.spawn(move || call(addr, "POST", "/suggest", body))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });
    let mut ok = 0;
    let mut faulted = 0;
    for (status, v) in results {
        match status {
            200 => {
                assert!(v.get("response").is_some());
                ok += 1;
            }
            500 => {
                let msg = v.get("error").and_then(Value::as_str).unwrap_or_default();
                assert!(
                    msg.contains("injected"),
                    "500 without injected-fault marker: {msg}"
                );
                faulted += 1;
            }
            other => panic!("unexpected status {other}: {v}"),
        }
    }
    (ok, faulted)
}

#[test]
fn injected_faults_error_single_requests_never_the_daemon() {
    // Must be set before `serve` reads it. Rates chosen so both the
    // panic path (contained by catch_unwind) and the error-return path
    // are exercised across 16 distinct request bodies.
    std::env::set_var("AUTOSUGGEST_FAULTS", "seed=11,panic=0.2,io=0.2");

    let system = AutoSuggest::train(AutoSuggestConfig::fast(3));
    let slot = Arc::new(ModelSlot::new(system));
    let server = serve(slot, Default::default()).expect("bind");
    let addr = server.addr().to_string();
    let bodies = bodies();

    let (ok_a, faulted_a) = drive(&addr, &bodies);
    assert!(faulted_a > 0, "fault spec injected nothing across 16 requests");
    assert!(ok_a > 0, "every request faulted — siblings did not survive");
    assert_eq!(ok_a + faulted_a, bodies.len() as u64);

    // Same workload again: fault placement is content-keyed, so the
    // split must repeat exactly, and the daemon is still healthy.
    let (ok_b, faulted_b) = drive(&addr, &bodies);
    assert_eq!((ok_a, faulted_a), (ok_b, faulted_b));

    let (status, stats) = call(&addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let det = stats.get("deterministic").expect("deterministic section");
    assert_eq!(
        det.get("server.faults_injected").and_then(Value::as_i64),
        Some(2 * faulted_a as i64)
    );
    assert_eq!(
        det.get("server.responses_error").and_then(Value::as_i64),
        Some(2 * faulted_a as i64)
    );

    let (status, _) = call(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "daemon unhealthy after fault storm");

    server.shutdown();
    server.wait().expect("clean shutdown");
}
