//! Deeper property tests for the DataFrame operators: cross-checks against
//! naive reference implementations, schema preservation, and null handling.
//!
//! Complements `tests/properties.rs` (which pins coarse invariants like row
//! count bounds) with exact models: the inner join is compared cell-free
//! against a nested-loop count, left/outer joins against match bookkeeping,
//! and pivot→melt against a per-cell groupby of the original table.
//!
//! Cases come from a seeded `StdRng` (64 per property), so runs are
//! deterministic and need no external property-testing framework.

use auto_suggest::dataframe::ops::{self, Agg, DropHow, JoinType};
use auto_suggest::dataframe::{DataFrame, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

const CASES: u64 = 64;

/// A keyed table whose key column `k` contains ~15% nulls and whose value
/// column is always present — so null padding introduced by a join is
/// attributable to the join alone.
fn keyed_table(rng: &mut StdRng, value_col: &str) -> DataFrame {
    let rows = rng.random_range(1..30);
    DataFrame::from_rows(
        &["k", value_col],
        (0..rows)
            .map(|_| {
                let key = if rng.random_bool(0.15) {
                    Value::Null
                } else {
                    Value::Int(rng.random_range(0i64..6))
                };
                vec![key, Value::Int(rng.random_range(0i64..1000))]
            })
            .collect(),
    )
    .expect("valid frame")
}

/// A table with nullable cells in every column, for the missing-data
/// properties.
fn holey_table(rng: &mut StdRng) -> DataFrame {
    let rows = rng.random_range(1..30);
    fn maybe(rng: &mut StdRng, v: Value) -> Value {
        if rng.random_bool(0.25) {
            Value::Null
        } else {
            v
        }
    }
    DataFrame::from_rows(
        &["a", "b", "c"],
        (0..rows)
            .map(|_| {
                let a = Value::Int(rng.random_range(0i64..10));
                let b = Value::Str(format!("s{}", rng.random_range(0u8..4)));
                let c = Value::Float(rng.random_range(0i64..100) as f64 / 4.0);
                vec![maybe(rng, a), maybe(rng, b), maybe(rng, c)]
            })
            .collect(),
    )
    .expect("valid frame")
}

/// Naive nested-loop match counts: (matches, unmatched_left, unmatched_right).
/// Null keys never match, exactly as SQL/Pandas define it.
fn naive_match_counts(a: &DataFrame, b: &DataFrame) -> (usize, usize, usize) {
    let ka = a.column("k").expect("key");
    let kb = b.column("k").expect("key");
    let mut matches = 0usize;
    let mut left_matched = vec![false; a.num_rows()];
    let mut right_matched = vec![false; b.num_rows()];
    for (i, lm) in left_matched.iter_mut().enumerate() {
        for (j, rm) in right_matched.iter_mut().enumerate() {
            let (va, vb) = (ka.get(i), kb.get(j));
            if !va.is_null() && !vb.is_null() && va == vb {
                matches += 1;
                *lm = true;
                *rm = true;
            }
        }
    }
    let ul = left_matched.iter().filter(|&&m| !m).count();
    let ur = right_matched.iter().filter(|&&m| !m).count();
    (matches, ul, ur)
}

#[test]
fn join_row_counts_match_naive_nested_loop() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xdf_0001 + case);
        let a = keyed_table(&mut rng, "va");
        let b = keyed_table(&mut rng, "vb");
        let (matches, ul, ur) = naive_match_counts(&a, &b);
        let rows = |how| {
            ops::merge(&a, &b, &["k"], &["k"], how)
                .expect("merge succeeds")
                .num_rows()
        };
        assert_eq!(rows(JoinType::Inner), matches);
        assert_eq!(rows(JoinType::Left), matches + ul);
        assert_eq!(rows(JoinType::Right), matches + ur);
        assert_eq!(rows(JoinType::Outer), matches + ul + ur);
    }
}

#[test]
fn left_join_null_padding_counts_unmatched_rows() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xdf_0002 + case);
        let a = keyed_table(&mut rng, "va");
        let b = keyed_table(&mut rng, "vb");
        let (_, ul, ur) = naive_match_counts(&a, &b);
        // The value columns are non-null by construction, so every null in
        // the opposite side's value column is join padding.
        let left = ops::merge(&a, &b, &["k"], &["k"], JoinType::Left).unwrap();
        assert_eq!(left.column("vb").unwrap().null_count(), ul);
        assert_eq!(left.column("va").unwrap().null_count(), 0);
        let outer = ops::merge(&a, &b, &["k"], &["k"], JoinType::Outer).unwrap();
        assert_eq!(outer.column("vb").unwrap().null_count(), ul);
        assert_eq!(outer.column("va").unwrap().null_count(), ur);
    }
}

/// The `dim`/`year`/`value` shape that pivot tests use: string dim, int
/// year, float measure — all non-null so cell sums are exact.
fn measure_table(rng: &mut StdRng) -> DataFrame {
    let rows = rng.random_range(1..40);
    DataFrame::from_rows(
        &["dim", "year", "value"],
        (0..rows)
            .map(|_| {
                vec![
                    Value::Str(format!("d{}", rng.random_range(0u8..5))),
                    Value::Int(rng.random_range(2000i64..2004)),
                    // Quarter-integers sum exactly in f64, so the per-cell
                    // comparison below can demand equality, not tolerance.
                    Value::Float(rng.random_range(-1000i64..1000) as f64 / 4.0),
                ]
            })
            .collect(),
    )
    .expect("valid frame")
}

#[test]
fn pivot_then_melt_recovers_every_aggregated_cell() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xdf_0003 + case);
        let df = measure_table(&mut rng);
        // Reference: group the original by (dim, year) with a sum.
        let mut expect: HashMap<(String, i64), f64> = HashMap::new();
        for row in df.rows() {
            let (Value::Str(d), Value::Int(y)) = (&row[0], &row[1]) else {
                panic!("generator emits str/int keys")
            };
            *expect.entry((d.clone(), *y)).or_default() += row[2].as_f64().expect("float measure");
        }

        let pivoted = ops::pivot_table(&df, &["dim"], &["year"], "value", Agg::Sum).unwrap();
        let value_vars: Vec<String> = pivoted
            .column_names()
            .into_iter()
            .filter(|n| *n != "dim")
            .map(String::from)
            .collect();
        let vv: Vec<&str> = value_vars.iter().map(String::as_str).collect();
        let long = ops::melt(&pivoted, &["dim"], &vv, "year", "value").unwrap();

        // Every non-null melted cell must equal the reference aggregate,
        // and the non-null cell count must equal the number of distinct
        // (dim, year) pairs — NULL padding only where no input row exists.
        let mut seen = 0usize;
        for row in long.rows() {
            if row[2].is_null() {
                continue;
            }
            seen += 1;
            let Value::Str(d) = &row[0] else { panic!("dim is str") };
            let y = row[1].as_f64().expect("year label re-parses as numeric") as i64;
            let got = row[2].as_f64().expect("value is numeric");
            let want = expect
                .get(&(d.clone(), y))
                .unwrap_or_else(|| panic!("cell ({d}, {y}) not in input"));
            assert_eq!(got, *want, "cell ({d}, {y}) changed under pivot+melt");
        }
        assert_eq!(seen, expect.len());
    }
}

#[test]
fn groupby_preserves_key_schema_and_values() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xdf_0004 + case);
        let df = measure_table(&mut rng);
        let out = ops::groupby(&df, &["dim", "year"], &[("value", Agg::Sum)]).unwrap();
        // Schema: key columns first (names and dtypes preserved), then the
        // aggregate column under the source name.
        assert_eq!(out.column_names(), vec!["dim", "year", "value"]);
        assert_eq!(
            out.column("dim").unwrap().dtype(),
            df.column("dim").unwrap().dtype()
        );
        assert_eq!(
            out.column("year").unwrap().dtype(),
            df.column("year").unwrap().dtype()
        );
        // The group tuples are exactly the distinct input key tuples.
        let input_keys: HashSet<(Value, Value)> = df
            .rows()
            .map(|r| (r[0].clone(), r[1].clone()))
            .collect();
        let output_keys: HashSet<(Value, Value)> = out
            .rows()
            .map(|r| (r[0].clone(), r[1].clone()))
            .collect();
        assert_eq!(output_keys, input_keys);
        assert_eq!(out.num_rows(), input_keys.len());
    }
}

#[test]
fn fillna_eliminates_exactly_the_targeted_nulls() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xdf_0005 + case);
        let df = holey_table(&mut rng);
        // fillna_all leaves no nulls anywhere and touches nothing else.
        let filled = ops::fillna_all(&df, &Value::Int(-1)).unwrap();
        assert_eq!(filled.num_rows(), df.num_rows());
        for col in filled.columns() {
            assert_eq!(col.null_count(), 0, "column {} kept nulls", col.name());
        }
        // Column-targeted fillna leaves other columns untouched.
        let partial = ops::fillna(&df, &["a"], &Value::Int(-1)).unwrap();
        assert_eq!(partial.column("a").unwrap().null_count(), 0);
        assert_eq!(
            partial.column("b").unwrap().null_count(),
            df.column("b").unwrap().null_count()
        );
        assert_eq!(
            partial.column("c").unwrap().null_count(),
            df.column("c").unwrap().null_count()
        );
        // Non-null cells are never rewritten.
        for (fc, oc) in partial.columns().iter().zip(df.columns()) {
            for (fv, ov) in fc.values().iter().zip(oc.values()) {
                if !ov.is_null() {
                    assert_eq!(fv, ov);
                }
            }
        }
    }
}

#[test]
fn dropna_matches_per_row_null_census() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xdf_0006 + case);
        let df = holey_table(&mut rng);
        let nulls_in_row = |i: usize| {
            df.columns()
                .iter()
                .filter(|c| c.get(i).is_null())
                .count()
        };
        let any = ops::dropna(&df, DropHow::Any, None).unwrap();
        let all = ops::dropna(&df, DropHow::All, None).unwrap();
        let expect_any = (0..df.num_rows()).filter(|&i| nulls_in_row(i) == 0).count();
        let expect_all = (0..df.num_rows())
            .filter(|&i| nulls_in_row(i) < df.num_columns())
            .count();
        assert_eq!(any.num_rows(), expect_any);
        assert_eq!(all.num_rows(), expect_all);
        // Schema is untouched either way, and surviving rows are clean.
        assert_eq!(any.column_names(), df.column_names());
        assert_eq!(all.column_names(), df.column_names());
        for col in any.columns() {
            assert_eq!(col.null_count(), 0);
        }
        // Subset-restricted dropna ignores nulls outside the subset.
        let by_a = ops::dropna(&df, DropHow::Any, Some(&["a"])).unwrap();
        assert_eq!(by_a.num_rows(), df.num_rows() - df.column("a").unwrap().null_count());
    }
}

#[test]
fn concat_aligns_union_schema_with_null_padding() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xdf_0007 + case);
        let a = keyed_table(&mut rng, "only_a");
        let b = keyed_table(&mut rng, "only_b");
        let out = ops::concat(&[&a, &b]).unwrap();
        // Row count adds; schema is the union in first-appearance order.
        assert_eq!(out.num_rows(), a.num_rows() + b.num_rows());
        assert_eq!(out.column_names(), vec!["k", "only_a", "only_b"]);
        // Columns absent from one input are padded with exactly that
        // input's row count of nulls (the value columns are non-null by
        // construction).
        assert_eq!(out.column("only_a").unwrap().null_count(), b.num_rows());
        assert_eq!(out.column("only_b").unwrap().null_count(), a.num_rows());
        // The shared key column survives in input order: a's rows first.
        let ka = a.column("k").unwrap();
        for i in 0..a.num_rows() {
            assert_eq!(out.column("k").unwrap().get(i), ka.get(i));
        }
    }
}
