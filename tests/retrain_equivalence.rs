//! Equivalence suite for the incremental-retrain subsystem.
//!
//! The load-bearing claim: the planner's default `Exact` strategy makes
//! `retrain(prev, union_config)` **bit-for-bit identical** to
//! `AutoSuggest::train(union_config)` — every served suggestion, every
//! next-op ranking — while replaying only the notebooks the previous
//! snapshot has not seen. The suite pins that claim from the bottom up:
//!
//! 1. warm-start GBDT boosting (`fit_incremental`) reproduces full
//!    training bitwise on unchanged data, in every split-kernel mode;
//! 2. `train_continue` with an empty delta is a bitwise no-op (weights,
//!    optimiser step count, and predictions all untouched), and resuming
//!    a fresh state reproduces `train` exactly;
//! 3. the seeded reservoir retains an identical set no matter how pushes
//!    are chunked, with per-item retention frequencies near `cap/n`;
//! 4. incremental retrain ≡ full union training (suggestion fingerprints
//!    bitwise), the empty delta carries every model and replays nothing,
//!    fingerprints are thread-count-invariant, and a seeded property loop
//!    over random base/delta splits never finds a divergence;
//! 5. the opt-in `WarmNextOp` strategy is deterministic (it trades
//!    exactness for a bounded training set — never determinism).

use auto_suggest::core::wire;
use auto_suggest::core::{
    AutoSuggest, AutoSuggestConfig, RetrainPlanner, RetrainStrategy, SuggestRequest,
};
use auto_suggest::dataframe::{DataFrame, Value as Cell};
use auto_suggest::gbdt::{Dataset, Gbdt, GbdtParams};
use auto_suggest::nn::{ExampleBuffer, RnnClassifier, RnnConfig, SequenceExample};
use auto_suggest::parallel::set_thread_override;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// The thread override is process-global; tests that sweep it serialise.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

// ---------------------------------------------------------------------
// 1. GBDT warm start
// ---------------------------------------------------------------------

fn gbdt_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| vec![(rng.random::<f64>() * 8.0).floor() / 8.0, (rng.random::<f64>() * 4.0).floor()])
        .collect();
    let labels: Vec<f64> =
        rows.iter().map(|r| if r[0] + 0.1 * r[1] > 0.6 { 1.0 } else { 0.0 }).collect();
    let names = (0..2).map(|i| format!("f{i}")).collect();
    Dataset::new(names, rows, labels).unwrap()
}

#[test]
fn gbdt_incremental_matches_full_fit_bitwise_in_every_mode() {
    let data = gbdt_dataset(180, 11);
    for (name, params) in [
        ("exact", GbdtParams::default()),
        ("histogram", GbdtParams { histogram: true, max_bins: 64, ..Default::default() }),
        ("subsample", GbdtParams { subsample: 0.6, ..Default::default() }),
    ] {
        let full = Gbdt::fit(&data, &GbdtParams { n_trees: 15, ..params.clone() });
        let head = Gbdt::fit(&data, &GbdtParams { n_trees: 9, ..params.clone() });
        let warm = Gbdt::fit_incremental(&head, &data, &GbdtParams { n_trees: 6, ..params });
        assert_eq!(warm.num_trees(), full.num_trees(), "{name}");
        for i in 0..data.len() {
            assert_eq!(
                warm.predict(data.row(i)).to_bits(),
                full.predict(data.row(i)).to_bits(),
                "{name}: row {i} diverged between warm-start and full fit"
            );
        }
    }
}

// ---------------------------------------------------------------------
// 2. RNN train_continue
// ---------------------------------------------------------------------

fn rnn_examples(n: usize, seed: u64) -> Vec<SequenceExample> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.random_range(0..5);
            let prefix: Vec<usize> = (0..len).map(|_| rng.random_range(0..7)).collect();
            let label = prefix.last().copied().unwrap_or(0);
            SequenceExample { prefix, extra: vec![], label: (label + 1) % 7 }
        })
        .collect()
}

fn rnn_cfg(seed: u64) -> RnnConfig {
    RnnConfig {
        vocab: 7,
        embed_dim: 6,
        hidden_dim: 8,
        extra_dim: 0,
        mlp_hidden: 10,
        classes: 7,
        lr: 5e-3,
        epochs: 6,
        batch_size: 1,
        seed,
    }
}

fn rnn_fingerprint(model: &RnnClassifier) -> Vec<u64> {
    let probes: Vec<Vec<usize>> = vec![vec![], vec![0], vec![3, 5], vec![1, 2, 6, 4]];
    probes
        .iter()
        .flat_map(|p| model.predict_proba(p, &[]).into_iter().map(f64::to_bits))
        .collect()
}

#[test]
fn train_continue_with_empty_delta_is_a_bitwise_noop() {
    let examples = rnn_examples(40, 3);
    let mut model = RnnClassifier::new(rnn_cfg(9));
    let mut state = model.train_state();
    model.train_continue(&examples, &mut state);
    let before = rnn_fingerprint(&model);
    let steps_before = state.steps();
    assert!(steps_before > 0);

    let loss = model.train_continue(&[], &mut state);
    assert_eq!(loss, 0.0);
    assert_eq!(state.steps(), steps_before, "empty delta advanced the optimiser");
    assert_eq!(rnn_fingerprint(&model), before, "empty delta changed the weights");

    // And the state still works: continuing with real examples trains.
    model.train_continue(&examples, &mut state);
    assert!(state.steps() > steps_before);
}

#[test]
fn train_continue_from_fresh_state_reproduces_train_bitwise() {
    let examples = rnn_examples(50, 4);
    let mut direct = RnnClassifier::new(rnn_cfg(21));
    let direct_loss = direct.train(&examples);

    let mut resumed = RnnClassifier::new(rnn_cfg(21));
    let mut state = resumed.train_state();
    let resumed_loss = resumed.train_continue(&examples, &mut state);

    assert_eq!(direct_loss.to_bits(), resumed_loss.to_bits());
    assert_eq!(rnn_fingerprint(&direct), rnn_fingerprint(&resumed));
}

// ---------------------------------------------------------------------
// 3. Reservoir properties
// ---------------------------------------------------------------------

#[test]
fn reservoir_retained_set_is_invariant_to_insertion_chunking() {
    let items: Vec<u32> = (0..400).collect();
    let mut whole = ExampleBuffer::new(24, 77);
    whole.extend(items.iter().copied());
    for chunk_size in [1usize, 2, 5, 24, 101, 399] {
        let mut chunked = ExampleBuffer::new(24, 77);
        for chunk in items.chunks(chunk_size) {
            chunked.extend(chunk.iter().copied());
        }
        assert_eq!(chunked.items(), whole.items(), "chunk size {chunk_size}");
    }
    // Capacity ≥ offers keeps everything in insertion order — the planner
    // relies on this for "reservoir keeps everything" retrains.
    let mut roomy = ExampleBuffer::new(400, 77);
    roomy.extend(items.iter().copied());
    assert_eq!(roomy.items(), items.as_slice());
}

#[test]
fn reservoir_retention_frequencies_are_near_uniform() {
    const CAP: usize = 10;
    const N: usize = 40;
    const TRIALS: u64 = 1000;
    let mut kept = [0u32; N];
    for seed in 0..TRIALS {
        let mut buf = ExampleBuffer::new(CAP, seed);
        buf.extend(0..N);
        for &item in buf.items() {
            kept[item] += 1;
        }
    }
    let expected = CAP as f64 / N as f64; // 0.25
    for (item, &count) in kept.iter().enumerate() {
        let freq = count as f64 / TRIALS as f64;
        assert!(
            (freq - expected).abs() < 0.07,
            "item {item} retained with frequency {freq:.3}, expected ≈ {expected}"
        );
    }
}

// ---------------------------------------------------------------------
// 4. End-to-end incremental retrain
// ---------------------------------------------------------------------

/// A corpus sized for many trainings per test: big enough that every model
/// family trains, small enough for debug builds.
fn tiny_config(seed: u64) -> AutoSuggestConfig {
    let mut config = AutoSuggestConfig::fast(seed);
    config.corpus.join_notebooks = 12;
    config.corpus.groupby_notebooks = 10;
    config.corpus.pivot_notebooks = 10;
    config.corpus.unpivot_notebooks = 6;
    config.corpus.json_notebooks = 3;
    config.corpus.flow_notebooks = 12;
    config.gbdt.n_trees = 12;
    config.nextop.epochs = 6;
    config
}

/// `base` grown by new notebooks in two archetypes (join feeds the single
/// -operator models, flow feeds next-op sequences).
fn grown_config(base: &AutoSuggestConfig) -> AutoSuggestConfig {
    let mut union = base.clone();
    union.corpus.join_notebooks += 4;
    union.corpus.flow_notebooks += 5;
    union
}

fn probe_tables() -> (DataFrame, DataFrame, DataFrame, DataFrame) {
    let customers = DataFrame::from_columns(vec![
        ("customer_id", (0..24).map(Cell::Int).collect()),
        (
            "segment",
            (0..24).map(|i| Cell::Str(["retail", "wholesale"][i % 2].to_string())).collect(),
        ),
        ("balance", (0..24).map(|i| Cell::Float(i as f64 * 1.5)).collect()),
    ])
    .unwrap();
    let orders = DataFrame::from_columns(vec![
        ("customer_id", (0..24).map(|i| Cell::Int(i % 8)).collect()),
        ("total", (0..24).map(|i| Cell::Float(100.0 + i as f64)).collect()),
    ])
    .unwrap();
    let sales = DataFrame::from_columns(vec![
        ("region", (0..32).map(|i| Cell::Str(["n", "s", "e", "w"][i % 4].to_string())).collect()),
        ("year", (0..32).map(|i| Cell::Int(2020 + (i as i64 % 3))).collect()),
        ("revenue", (0..32).map(|i| Cell::Float(i as f64 * 7.25)).collect()),
    ])
    .unwrap();
    let wide = DataFrame::from_columns(vec![
        ("id", (0..16).map(Cell::Int).collect()),
        ("q1", (0..16).map(|i| Cell::Float(i as f64)).collect()),
        ("q2", (0..16).map(|i| Cell::Float(i as f64 + 0.5)).collect()),
    ])
    .unwrap();
    (customers, orders, sales, wide)
}

/// Bitwise fingerprint of a system's *served behaviour*: wire renderings
/// of every suggestion kind plus next-op rankings over fixed prefixes.
fn fingerprint(system: &AutoSuggest) -> Vec<String> {
    let (customers, orders, sales, wide) = probe_tables();
    let requests = [
        SuggestRequest::Join { left: &customers, right: &orders, top_k: 3 },
        SuggestRequest::GroupBy { table: &sales },
        SuggestRequest::Pivot { table: &sales, dims: &[0, 1] },
        SuggestRequest::Unpivot { table: &wide },
    ];
    let mut parts: Vec<String> = requests
        .iter()
        .map(|r| wire::encode_response(&system.suggest(r)).to_string())
        .collect();
    let scores = [0.4, 0.1, 0.0, 0.8, 0.2, 0.6, 0.3];
    for prefix in [&[][..], &[3][..], &[3, 6][..], &[0, 1, 5][..]] {
        parts.push(format!("{:?}", system.models.nextop_full.predict_ranked(prefix, &scores)));
        parts.push(format!("{:?}", system.models.nextop_rnn_only.predict_ranked(prefix, &scores)));
    }
    parts
}

#[test]
fn incremental_retrain_is_bitwise_equal_to_full_union_training() {
    // Join-only growth: new join notebooks add Merge invocations but touch
    // no groupby/pivot/melt training input, so those families must be
    // carried — and with the scoring models carried, every old report's
    // next-op examples are lifted instead of re-scored.
    let base = tiny_config(23);
    let mut union = base.clone();
    union.corpus.join_notebooks += 5;
    let prev = AutoSuggest::train(base);
    let full = AutoSuggest::train(union.clone());
    let (inc, report) = RetrainPlanner::new().retrain(&prev, union);

    assert!(!report.full_replay_fallback, "reuse gates should pass on a pure growth");
    // Only the notebooks absent from the previous corpus replay (the grown
    // ordinals, plus any probabilistic companion notebooks they spawn).
    assert_eq!(
        report.delta.replayed_notebooks,
        report.delta.union_notebooks - report.delta.prev_notebooks,
        "delta accounting"
    );
    assert!(report.delta.replayed_notebooks >= 5);
    assert!(report.delta.replayed_notebooks < report.delta.union_notebooks / 2);
    assert_eq!(report.delta.reused_reports, prev.reports.len());
    // Join inputs changed → the join families retrain. (Other families may
    // retrain too: join notebooks probabilistically carry enrichment cells
    // of other operators, and the analysis must notice exactly that.)
    assert!(report.rebuilt.contains(&"join"), "rebuilt: {:?}", report.rebuilt);
    assert!(report.rebuilt.contains(&"join_type"), "rebuilt: {:?}", report.rebuilt);
    assert!(!report.carried.is_empty(), "nothing carried on a join-only growth");

    assert!(inc.models.join.is_some() && inc.models.groupby.is_some());
    assert_eq!(fingerprint(&inc), fingerprint(&full), "served suggestions diverged");
    // The merged bookkeeping matches the full run too.
    assert_eq!(inc.reports.len(), full.reports.len());
    assert_eq!(inc.train.nextop.len(), full.train.nextop.len());
    assert_eq!(inc.robustness, full.robustness);
}

#[test]
fn pure_growth_without_training_input_shift_carries_every_model() {
    // Json notebooks contain only `json_normalize` invocations — no
    // trained family's input and no next-op sequence. Growing them is the
    // cleanest incremental case: new notebooks replay, every model (and
    // every already-scored next-op example) is carried.
    let base = tiny_config(37);
    let mut union = base.clone();
    union.corpus.json_notebooks += 4;
    let prev = AutoSuggest::train(base);
    let full = AutoSuggest::train(union.clone());
    let (inc, report) = RetrainPlanner::new().retrain(&prev, union);

    assert!(!report.full_replay_fallback);
    assert!(report.delta.replayed_notebooks >= 4);
    for family in ["join", "join_type", "groupby", "pivot", "nextop"] {
        assert!(report.carried.contains(&family), "{family} not carried: {:?}", report.carried);
    }
    assert!(report.rebuilt.is_empty(), "rebuilt: {:?}", report.rebuilt);
    assert_eq!(fingerprint(&inc), fingerprint(&full));
    assert_eq!(inc.robustness, full.robustness);
}

#[test]
fn flow_growth_rebuilds_every_family_yet_stays_equal_to_full_training() {
    // Flow notebooks contain every operator kind, so growing them shifts
    // every family's training set — the carry analysis must notice and
    // retrain everything, and the result must still match full training.
    let base = tiny_config(29);
    let mut union = base.clone();
    union.corpus.flow_notebooks += 4;
    let prev = AutoSuggest::train(base);
    let full = AutoSuggest::train(union.clone());
    let (inc, report) = RetrainPlanner::new().retrain(&prev, union);
    assert!(!report.full_replay_fallback);
    assert!(report.rebuilt.contains(&"nextop"), "rebuilt: {:?}", report.rebuilt);
    assert_eq!(fingerprint(&inc), fingerprint(&full));
}

#[test]
fn empty_delta_retrain_replays_nothing_and_carries_every_model() {
    let base = tiny_config(31);
    let prev = AutoSuggest::train(base.clone());
    let (inc, report) = RetrainPlanner::new().retrain(&prev, base);

    assert!(!report.full_replay_fallback);
    assert_eq!(report.delta.replayed_notebooks, 0);
    assert_eq!(report.delta.reused_reports, prev.reports.len());
    for family in ["join", "join_type", "groupby", "pivot", "nextop"] {
        assert!(report.carried.contains(&family), "{family} not carried: {:?}", report.carried);
    }
    assert!(report.rebuilt.is_empty(), "rebuilt: {:?}", report.rebuilt);
    assert_eq!(fingerprint(&inc), fingerprint(&prev));
}

#[test]
fn changed_corpus_seed_falls_back_to_full_replay_and_stays_correct() {
    let prev = AutoSuggest::train(tiny_config(5));
    let other = tiny_config(6); // different corpus seed → no reuse is sound
    let full = AutoSuggest::train(other.clone());
    let (inc, report) = RetrainPlanner::new().retrain(&prev, other);
    assert!(report.full_replay_fallback);
    assert_eq!(report.delta.reused_reports, 0);
    assert_eq!(fingerprint(&inc), fingerprint(&full));
}

#[test]
fn incremental_retrain_fingerprints_are_thread_invariant() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let base = tiny_config(41);
    let union = grown_config(&base);
    let mut fps = Vec::new();
    for threads in [1usize, 4] {
        set_thread_override(Some(threads));
        let prev = AutoSuggest::train(base.clone());
        let (inc, report) = RetrainPlanner::new().retrain(&prev, union.clone());
        assert!(!report.full_replay_fallback);
        fps.push(fingerprint(&inc));
    }
    set_thread_override(None);
    assert_eq!(fps[0], fps[1], "incremental retrain output depends on thread count");
}

#[test]
fn seeded_property_random_growth_never_changes_ranked_suggestions() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xbeef);
    for round in 0..3u32 {
        let mut base = tiny_config(100 + round as u64);
        base.corpus.join_notebooks = rng.random_range(8..14);
        base.corpus.groupby_notebooks = rng.random_range(8..12);
        base.corpus.flow_notebooks = rng.random_range(8..14);
        let mut union = base.clone();
        union.corpus.join_notebooks += rng.random_range(0..5);
        union.corpus.groupby_notebooks += rng.random_range(0..4);
        union.corpus.flow_notebooks += rng.random_range(0..5);

        let prev = AutoSuggest::train(base);
        let full = AutoSuggest::train(union.clone());
        let (inc, report) = RetrainPlanner::new().retrain(&prev, union);
        assert!(!report.full_replay_fallback, "round {round}");
        assert_eq!(
            fingerprint(&inc),
            fingerprint(&full),
            "round {round}: ranked suggestions diverged (carried {:?}, rebuilt {:?})",
            report.carried,
            report.rebuilt
        );
    }
}

// ---------------------------------------------------------------------
// 5. Warm strategy: approximate but deterministic
// ---------------------------------------------------------------------

#[test]
fn warm_nextop_strategy_is_deterministic_and_reports_itself() {
    let base = tiny_config(53);
    let union = grown_config(&base);
    let prev = AutoSuggest::train(base);
    let planner =
        RetrainPlanner::with_strategy(RetrainStrategy::WarmNextOp { reservoir_capacity: 64 });
    let (a, report_a) = planner.retrain(&prev, union.clone());
    let (b, report_b) = planner.retrain(&prev, union);
    assert!(report_a.warm_applied, "growth in flow notebooks must rebuild nextop");
    assert_eq!(report_a.warm_applied, report_b.warm_applied);
    assert_eq!(fingerprint(&a), fingerprint(&b), "warm retrain is not deterministic");
}
