//! End-to-end integration: the trained system must beat simple baselines
//! on held-out data, with all the paper's qualitative orderings intact.

use auto_suggest::baselines::join::{JoinBaseline, MaxOverlap};
use auto_suggest::baselines::unpivot::data_type_select;
use auto_suggest::core::join::{candidates_with_truth, ground_truth_candidate};
use auto_suggest::core::pivot::melt_ground_truth;
use auto_suggest::core::{AutoSuggest, AutoSuggestConfig};
use auto_suggest::ranking::{mean, set_prf};

fn system() -> &'static AutoSuggest {
    use std::sync::OnceLock;
    static SYSTEM: OnceLock<AutoSuggest> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        // Medium scale: large enough that held-out metrics are stable, small
        // enough for CI.
        let mut cfg = AutoSuggestConfig::fast(77);
        cfg.corpus.join_notebooks = 140;
        cfg.corpus.groupby_notebooks = 100;
        cfg.corpus.pivot_notebooks = 80;
        cfg.corpus.unpivot_notebooks = 40;
        cfg.corpus.json_notebooks = 10;
        cfg.corpus.flow_notebooks = 140;
        cfg.nextop.epochs = 50;
        AutoSuggest::train(cfg)
    })
}

#[test]
fn join_model_beats_max_overlap_on_held_out_cases() {
    let sys = system();
    let model = sys.models.join.as_ref().expect("join model");
    let mut ours = Vec::new();
    let mut overlap = Vec::new();
    for inv in &sys.test.join {
        let Some(truth) = ground_truth_candidate(inv) else { continue };
        let cands = candidates_with_truth(
            &inv.inputs[0],
            &inv.inputs[1],
            &truth,
            model.candidate_params(),
        );
        let best = model.rank_candidates(&inv.inputs[0], &inv.inputs[1], &cands)[0];
        ours.push(if cands[best] == truth { 1.0 } else { 0.0 });
        let ob = MaxOverlap.rank(&inv.inputs[0], &inv.inputs[1], &cands)[0];
        overlap.push(if cands[ob] == truth { 1.0 } else { 0.0 });
    }
    assert!(ours.len() >= 5, "need held-out join cases");
    assert!(
        mean(&ours) > mean(&overlap),
        "learned {} <= max-overlap {}",
        mean(&ours),
        mean(&overlap)
    );
    assert!(mean(&ours) > 0.65, "held-out join prec@1 {}", mean(&ours));
}

#[test]
fn unpivot_model_high_f1_and_beats_data_type_on_traps() {
    let sys = system();
    let model = sys.models.unpivot.as_ref().expect("unpivot model");
    let mut ours = Vec::new();
    let mut dtype = Vec::new();
    for inv in &sys.test.melt {
        let Some((_, truth)) = melt_ground_truth(inv) else { continue };
        let sel = model.select(&inv.inputs[0]).map(|s| s.selected).unwrap_or_default();
        ours.push(set_prf(&sel, &truth).f1);
        dtype.push(set_prf(&data_type_select(&inv.inputs[0]), &truth).f1);
    }
    assert!(ours.len() >= 3);
    assert!(mean(&ours) > 0.8, "unpivot F1 {}", mean(&ours));
    assert!(mean(&ours) >= mean(&dtype), "must not lose to the dtype heuristic");
}

#[test]
fn next_op_full_model_beats_sequence_only_and_random() {
    let sys = system();
    let mut full = Vec::new();
    let mut rnn = Vec::new();
    let mut random_hits = Vec::new();
    for (i, ex) in sys.test.nextop.iter().enumerate() {
        let f = sys.models.nextop_full.predict_ranked(&ex.prefix, &ex.table_scores)[0];
        full.push(if f == ex.label { 1.0 } else { 0.0 });
        let r = sys.models.nextop_rnn_only.predict_ranked(&ex.prefix, &[])[0];
        rnn.push(if r == ex.label { 1.0 } else { 0.0 });
        // A fixed pseudo-random guess.
        random_hits.push(if i % 7 == ex.label { 1.0 } else { 0.0 });
    }
    assert!(full.len() >= 20, "need held-out next-op queries");
    // At full corpus scale the combined model beats the sequence-only RNN
    // by a wide margin (Table 11 / EXPERIMENTS.md); at this CI scale the
    // table-score features are noisy, so we only require parity within a
    // small tolerance.
    assert!(
        mean(&full) + 0.08 >= mean(&rnn),
        "full {} far below rnn {}",
        mean(&full),
        mean(&rnn)
    );
    assert!(mean(&full) > mean(&random_hits) + 0.15);
    assert!(mean(&full) > 0.4, "next-op accuracy {}", mean(&full));
}

#[test]
fn groupby_model_accurate_on_held_out_tables() {
    let sys = system();
    let model = sys.models.groupby.as_ref().expect("groupby model");
    let mut hits = Vec::new();
    for inv in &sys.test.groupby {
        let labels = auto_suggest::core::groupby::labelled_columns(inv);
        if labels.is_empty() {
            continue;
        }
        let scores = model.scores(&inv.inputs[0]);
        let top = labels
            .iter()
            .max_by(|a, b| scores[a.0].total_cmp(&scores[b.0]))
            .expect("non-empty");
        hits.push(if top.1 { 1.0 } else { 0.0 });
    }
    assert!(hits.len() >= 10);
    assert!(mean(&hits) > 0.85, "groupby prec@1 {}", mean(&hits));
}

#[test]
fn join_type_prediction_at_least_matches_the_inner_default() {
    use auto_suggest::corpus::replay::OpParams;
    use auto_suggest::dataframe::ops::JoinType;
    let sys = system();
    let model = sys.models.join_type.as_ref().expect("join type model");
    let mut ours = 0usize;
    let mut inner = 0usize;
    let mut total = 0usize;
    for inv in &sys.test.join {
        let OpParams::Merge { how, .. } = &inv.params else { continue };
        let Some(truth) = ground_truth_candidate(inv) else { continue };
        total += 1;
        if model.predict(&inv.inputs[0], &inv.inputs[1], &truth) == *how {
            ours += 1;
        }
        if *how == JoinType::Inner {
            inner += 1;
        }
    }
    assert!(total >= 5);
    // Sample noise allowance: one miss on a small held-out set.
    assert!(ours + 1 >= inner, "learned {ours}/{total} vs default {inner}/{total}");
}
