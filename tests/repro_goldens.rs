//! Golden-file regression tests for every repro table.
//!
//! Each table's machine-readable rows (method names + metric values, via
//! `autosuggest_bench::tables::GOLDEN_TABLES`) are compared against
//! `tests/goldens/<name>.json` to an absolute tolerance of 1e-9, so any
//! drift in a reported metric — a feature change, a GBDT tweak, a corpus
//! regeneration bug — fails the suite with the exact cell that moved.
//!
//! The shared context mirrors `repro --fast --seed 42`, with fault
//! injection pinned off so an ambient `AUTOSUGGEST_FAULTS` cannot perturb
//! the goldens. Training runs once and is shared by all table tests.
//!
//! After an intentional metric change, regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test repro_goldens
//! ```
//!
//! and review the golden diff like any other code change.

use autosuggest_bench::tables::{ReproContext, TableRow, GOLDEN_TABLES};
use autosuggest_core::AutoSuggestConfig;
use autosuggest_corpus::{CorpusConfig, FaultSpec};
use serde_json::{json, Value};
use std::path::PathBuf;
use std::sync::OnceLock;

const TOLERANCE: f64 = 1e-9;

/// Train once with the exact `repro --fast --seed 42` configuration and
/// share the context across all table tests.
fn ctx() -> &'static ReproContext {
    static CTX: OnceLock<ReproContext> = OnceLock::new();
    CTX.get_or_init(|| {
        let mut config = AutoSuggestConfig::fast(42);
        config.corpus = CorpusConfig::small(42);
        // A rate-free spec disables injection while short-circuiting the
        // FaultSpec::from_env fallback, keeping the goldens hermetic.
        config.faults = Some(FaultSpec::parse("seed=0").expect("rate-free fault spec parses"));
        ReproContext::build(config)
    })
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.json"))
}

/// Serialize rows in the golden format. Non-finite values render as JSON
/// null (the serde_json shim's convention), which `value_close` accepts
/// back as equal to any non-finite float.
fn rows_value(name: &str, rows: &[TableRow]) -> Value {
    let rows_json: Vec<Value> = rows
        .iter()
        .map(|r| {
            let values: Vec<Value> = r.values.iter().map(|&v| json!(v)).collect();
            json!({"method": r.method.clone(), "values": Value::Array(values)})
        })
        .collect();
    json!({"table": name, "rows": Value::Array(rows_json)})
}

fn value_close(ours: f64, golden: &Value) -> bool {
    match golden {
        Value::Null => !ours.is_finite(),
        _ => match golden.as_f64() {
            Some(g) => (ours - g).abs() <= TOLERANCE,
            None => false,
        },
    }
}

fn compare_to_golden(name: &str, rows: &[TableRow], golden: &Value) {
    let golden_rows = golden
        .get("rows")
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("{name}: golden file has no \"rows\" array"));
    assert_eq!(
        rows.len(),
        golden_rows.len(),
        "{name}: row count changed (ours {}, golden {}); regenerate with \
         UPDATE_GOLDENS=1 if intentional",
        rows.len(),
        golden_rows.len(),
    );
    for (i, (row, grow)) in rows.iter().zip(golden_rows).enumerate() {
        let gmethod = grow
            .get("method")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("{name}: golden row {i} has no \"method\""));
        assert_eq!(
            row.method, gmethod,
            "{name}: row {i} method changed; regenerate with UPDATE_GOLDENS=1 if intentional"
        );
        let gvalues = grow
            .get("values")
            .and_then(Value::as_array)
            .unwrap_or_else(|| panic!("{name}: golden row {i} has no \"values\" array"));
        assert_eq!(
            row.values.len(),
            gvalues.len(),
            "{name}: row {i} ({}) metric count changed",
            row.method,
        );
        for (j, (&ours, gv)) in row.values.iter().zip(gvalues).enumerate() {
            assert!(
                value_close(ours, gv),
                "{name}: row {i} ({}), metric {j} drifted beyond {TOLERANCE}: \
                 ours {ours:?}, golden {gv:?}",
                row.method,
            );
        }
    }
}

fn check(name: &str) {
    let rows_fn = GOLDEN_TABLES
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("{name} is not in GOLDEN_TABLES"))
        .1;
    let rows = rows_fn(ctx());
    assert!(!rows.is_empty(), "{name}: evaluator produced no rows");
    let path = golden_path(name);
    let actual = rows_value(name, &rows);
    if std::env::var("UPDATE_GOLDENS").is_ok_and(|v| !v.is_empty() && v != "0") {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create tests/goldens");
        }
        std::fs::write(&path, format!("{actual}\n")).expect("write golden file");
        eprintln!("[repro_goldens] wrote {}", path.display());
        return;
    }
    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{name}: missing golden {} ({e}); generate with \
             UPDATE_GOLDENS=1 cargo test --test repro_goldens",
            path.display()
        )
    });
    let golden: Value = serde_json::from_str(raw.trim())
        .unwrap_or_else(|e| panic!("{name}: golden {} is not valid JSON: {e:?}", path.display()));
    compare_to_golden(name, &rows, &golden);
}

macro_rules! golden_tests {
    ($($test_name:ident => $table:literal),* $(,)?) => {
        $(
            #[test]
            fn $test_name() {
                check($table);
            }
        )*

        /// Every entry in GOLDEN_TABLES must have a test above — adding a
        /// table to the registry without a golden fails here, not silently.
        #[test]
        fn every_registered_table_has_a_golden_test() {
            let covered = [$($table),*];
            for (name, _) in GOLDEN_TABLES {
                assert!(
                    covered.contains(name),
                    "table {name} is registered in GOLDEN_TABLES but has no \
                     golden test; add one to tests/repro_goldens.rs"
                );
            }
            assert_eq!(covered.len(), GOLDEN_TABLES.len());
        }
    };
}

golden_tests! {
    table2_matches_golden => "table2",
    table3_matches_golden => "table3",
    table4_matches_golden => "table4",
    table5_matches_golden => "table5",
    table6_matches_golden => "table6",
    table7_matches_golden => "table7",
    table8_matches_golden => "table8",
    table9_matches_golden => "table9",
    table10_matches_golden => "table10",
    table11_matches_golden => "table11",
}
