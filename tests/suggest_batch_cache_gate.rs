//! The `suggest_batch` warm phase must be gated on the column cache:
//! with the cache disabled, pre-warming would compute artifacts that are
//! immediately discarded (the regression this pins down — the warm pass
//! used to run regardless and silently double the featurisation work).
//!
//! Counter-based proof: `suggest.warm_columns` counts every column pushed
//! through the warm phase. Disabled cache → the counter never moves and
//! responses still exactly match sequential `suggest`. Enabled cache →
//! the counter equals the distinct-column count of the batch.
//!
//! Lives in its own integration-test binary because it toggles the
//! process-global cache switch.

use auto_suggest::cache;
use auto_suggest::core::pipeline::WARM_COLUMNS_COUNTER;
use auto_suggest::core::{AutoSuggest, AutoSuggestConfig, SuggestRequest};
use auto_suggest::dataframe::{DataFrame, Value};
use auto_suggest::obs;

fn tables() -> (DataFrame, DataFrame) {
    let a = DataFrame::from_columns(vec![
        ("id", (0..40).map(Value::Int).collect()),
        (
            "group",
            (0..40).map(|i| Value::Str(format!("g{}", i % 4))).collect(),
        ),
        ("score", (0..40).map(|i| Value::Float(i as f64 / 2.0)).collect()),
    ])
    .unwrap();
    let b = DataFrame::from_columns(vec![
        ("id", (0..40).map(|i| Value::Int(i % 12)).collect()),
        ("weight", (0..40).map(|i| Value::Float(i as f64 * 0.1)).collect()),
    ])
    .unwrap();
    (a, b)
}

#[test]
fn warm_phase_skips_entirely_when_cache_disabled() {
    let system = AutoSuggest::train(AutoSuggestConfig::fast(2));
    let (a, b) = tables();
    let reqs = [
        SuggestRequest::Join { left: &a, right: &b, top_k: 3 },
        SuggestRequest::GroupBy { table: &a },
        SuggestRequest::GroupBy { table: &b },
        SuggestRequest::Unpivot { table: &a },
    ];
    // Distinct tables: a, b → 3 + 2 = 5 distinct columns to warm.
    let distinct_columns = 5u64;

    // --- Cache enabled (the default): warm phase runs and is counted.
    cache::set_all_enabled(true);
    cache::clear_memory();
    let (enabled_responses, enabled_snap) = obs::with_local_registry(|| {
        let batch = system.suggest_batch(&reqs);
        let sequential: Vec<_> = reqs.iter().map(|r| system.suggest(r)).collect();
        (batch, sequential)
    });
    let (batch, sequential) = enabled_responses;
    assert_eq!(batch, sequential, "batch diverged from sequential (cache on)");
    assert_eq!(
        enabled_snap.counters.get(WARM_COLUMNS_COUNTER).copied(),
        Some(distinct_columns),
        "warm phase should cover every distinct column exactly once"
    );
    assert_eq!(
        enabled_snap.counters.get("suggest.batch_distinct_tables").copied(),
        Some(2)
    );

    // --- Cache disabled: zero warm compute, identical responses.
    cache::set_all_enabled(false);
    cache::clear_memory();
    let (disabled_responses, disabled_snap) = obs::with_local_registry(|| {
        let batch = system.suggest_batch(&reqs);
        let sequential: Vec<_> = reqs.iter().map(|r| system.suggest(r)).collect();
        (batch, sequential)
    });
    cache::set_all_enabled(true);

    let (batch, sequential) = disabled_responses;
    assert_eq!(batch, sequential, "batch diverged from sequential (cache off)");
    assert_eq!(
        disabled_snap.counters.get(WARM_COLUMNS_COUNTER),
        None,
        "warm phase ran despite AUTOSUGGEST_CACHE-style disablement"
    );
    // Table dedup still happens (it is how the batch decides what *would*
    // be warmed), but no cache traffic follows from the warm phase.
    assert_eq!(
        disabled_snap.counters.get("suggest.batch_distinct_tables").copied(),
        Some(2)
    );
    assert_eq!(
        disabled_snap.counters.get(cache::HITS_COUNTER),
        None,
        "disabled cache must not record hit/miss traffic"
    );
    assert_eq!(disabled_snap.counters.get(cache::MISSES_COUNTER), None);

    // And the return value reports what was warmed.
    assert_eq!(system.warm_tables(&reqs), distinct_columns as usize);
    cache::set_all_enabled(false);
    assert_eq!(system.warm_tables(&reqs), 0);
    cache::set_all_enabled(true);
}
