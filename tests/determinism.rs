//! Full-pipeline determinism: identical seeds must yield identical trained
//! systems — a hard requirement for reproducible evaluation tables.

use auto_suggest::core::{AutoSuggest, AutoSuggestConfig};

#[test]
fn same_seed_same_models_and_data() {
    let a = AutoSuggest::train(AutoSuggestConfig::fast(55));
    let b = AutoSuggest::train(AutoSuggestConfig::fast(55));

    assert_eq!(a.reports.len(), b.reports.len());
    assert_eq!(a.filter_stats, b.filter_stats);
    assert_eq!(a.test.join.len(), b.test.join.len());
    assert_eq!(a.test.nextop.len(), b.test.nextop.len());

    // Identical join rankings on identical test cases.
    let (ja, jb) = (a.models.join.as_ref().unwrap(), b.models.join.as_ref().unwrap());
    for (ia, ib) in a.test.join.iter().zip(&b.test.join).take(10) {
        assert_eq!(ia.output_hash, ib.output_hash);
        let sa = ja.suggest(&ia.inputs[0], &ia.inputs[1], 3);
        let sb = jb.suggest(&ib.inputs[0], &ib.inputs[1], 3);
        assert_eq!(sa, sb);
    }

    // Identical next-operator probabilities.
    for (ea, eb) in a.test.nextop.iter().zip(&b.test.nextop).take(20) {
        assert_eq!(ea.prefix, eb.prefix);
        assert_eq!(
            a.models.nextop_full.predict_ranked(&ea.prefix, &ea.table_scores),
            b.models.nextop_full.predict_ranked(&eb.prefix, &eb.table_scores),
        );
    }
}

#[test]
fn different_seeds_differ() {
    let a = AutoSuggest::train(AutoSuggestConfig::fast(1));
    let b = AutoSuggest::train(AutoSuggestConfig::fast(2));
    // The corpora must actually differ (paranoia against seed plumbing bugs).
    let ha: Vec<u64> = a.test.join.iter().map(|i| i.output_hash).collect();
    let hb: Vec<u64> = b.test.join.iter().map(|i| i.output_hash).collect();
    assert_ne!(ha, hb);
}
