//! The on-disk artifact-shard tier, end to end:
//!
//! * column artifacts and key-tuple sets persist across cache instances
//!   (a fresh in-memory cache over the same directory loads instead of
//!   recomputing, byte-identically);
//! * corrupted shards are detected, deleted, and transparently recomputed;
//! * disk-tier counters are bit-identical at 1 and 4 threads;
//! * the disk counters surface in the deterministic obs section.

use auto_suggest::cache::{
    column_fingerprint, encode_column, encode_tuples, ColumnCache, DiskCache, DiskStats,
    PairCache, DEFAULT_DISK_BUDGET,
};
use auto_suggest::dataframe::{Column, DataFrame, Value};
use auto_suggest::obs;
use auto_suggest::parallel::set_thread_override;
use std::path::PathBuf;
use std::sync::Mutex;

/// The thread override is process-global, so tests that sweep it must not
/// overlap (cargo runs `#[test]`s concurrently by default).
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Fresh scratch directory for one test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Scratch {
        let dir = std::env::temp_dir()
            .join(format!("autosuggest-disk-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn int_col(name: &str, lo: i64, hi: i64) -> Column {
    Column::new(name, (lo..hi).map(Value::Int).collect::<Vec<_>>())
}

#[test]
fn column_artifacts_persist_across_cache_instances() {
    let scratch = Scratch::new("col-persist");
    let col = int_col("id", 0, 500);
    let fp = column_fingerprint(&col);

    // First instance computes and writes a shard.
    let first_bytes = {
        let cache = ColumnCache::new(64);
        cache.set_disk(Some(DiskCache::open(&scratch.0, DEFAULT_DISK_BUDGET).unwrap()));
        let art = cache.artifacts(&col);
        let disk = cache.disk().unwrap();
        assert_eq!(disk.stats().writes, 1, "cold miss must write a shard");
        assert_eq!(disk.stats().hits, 0);
        encode_column(fp, &art)
    };

    // A brand-new memory cache over a brand-new handle to the same
    // directory serves the artifacts from disk, byte-identically.
    let cache = ColumnCache::new(64);
    let disk = DiskCache::open(&scratch.0, DEFAULT_DISK_BUDGET).unwrap();
    cache.set_disk(Some(disk.clone()));
    let art = cache.artifacts(&col);
    assert_eq!(
        disk.stats(),
        DiskStats { hits: 1, misses: 0, evictions: 0, corrupt: 0, writes: 0 }
    );
    // The in-memory tier still counts a miss — the point is the miss was
    // satisfied from disk rather than recomputed.
    assert_eq!(cache.stats().misses, 1);
    assert_eq!(encode_column(fp, &art), first_bytes, "loaded artifacts must be bit-identical");
}

#[test]
fn key_tuple_sets_persist_across_cache_instances() {
    let scratch = Scratch::new("tup-persist");
    let frame = DataFrame::from_columns(vec![
        ("a", (0..80).map(Value::Int).collect()),
        ("b", (0..80).map(|i| Value::Str(format!("s{}", i % 11))).collect()),
    ])
    .unwrap();

    let first_bytes = {
        let pairs = PairCache::new(64, 64);
        pairs.set_disk(Some(DiskCache::open(&scratch.0, DEFAULT_DISK_BUDGET).unwrap()));
        let set = pairs.key_tuples(&frame, &[0, 1]);
        encode_tuples(&set)
    };

    let pairs = PairCache::new(64, 64);
    let disk = DiskCache::open(&scratch.0, DEFAULT_DISK_BUDGET).unwrap();
    pairs.set_disk(Some(disk.clone()));
    let set = pairs.key_tuples(&frame, &[0, 1]);
    assert_eq!(disk.stats().hits, 1, "second instance must load the tuple shard");
    assert_eq!(encode_tuples(&set), first_bytes);
    // A different column tuple over the same frame is a different key.
    let other = pairs.key_tuples(&frame, &[0]);
    assert_ne!(other.fingerprint(), set.fingerprint());
}

#[test]
fn corrupted_shards_are_deleted_and_recomputed() {
    let scratch = Scratch::new("corrupt");
    let col = int_col("id", 0, 300);
    let fp = column_fingerprint(&col);

    let clean_bytes = {
        let cache = ColumnCache::new(64);
        cache.set_disk(Some(DiskCache::open(&scratch.0, DEFAULT_DISK_BUDGET).unwrap()));
        encode_column(fp, &cache.artifacts(&col))
    };

    // Flip one payload byte in the single shard file on disk.
    let shard = std::fs::read_dir(scratch.0.join("col"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "shard"))
        .expect("one column shard written");
    let mut bytes = std::fs::read(&shard).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&shard, &bytes).unwrap();

    // A fresh instance detects the corruption, deletes the shard, and
    // recomputes the identical artifacts.
    let cache = ColumnCache::new(64);
    let disk = DiskCache::open(&scratch.0, DEFAULT_DISK_BUDGET).unwrap();
    cache.set_disk(Some(disk.clone()));
    let art = cache.artifacts(&col);
    assert_eq!(encode_column(fp, &art), clean_bytes, "recompute must match the clean run");
    let stats = disk.stats();
    assert_eq!(stats.corrupt, 1, "corruption must be counted");
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.writes, 1, "recomputed artifacts are re-persisted");
    assert!(!shard.exists() || std::fs::read(&shard).unwrap() != bytes,
        "the corrupt shard must not survive as-is");
}

#[test]
fn disk_counters_are_deterministic_across_thread_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let run = |threads: usize, scratch: &Scratch| {
        set_thread_override(Some(threads));
        // Seed the directory from a first cache instance, then drive a
        // second, empty memory cache over it concurrently: every lookup
        // falls through memory and races on the disk tier.
        let cols: Vec<Column> = (0..48).map(|i| int_col("c", i * 50, i * 50 + 25)).collect();
        let seed_cache = ColumnCache::new(256);
        seed_cache.set_disk(Some(DiskCache::open(&scratch.0, DEFAULT_DISK_BUDGET).unwrap()));
        auto_suggest::parallel::par_map(&cols, |c| {
            seed_cache.artifacts(c);
        });
        let cache = ColumnCache::new(256);
        let disk = DiskCache::open(&scratch.0, DEFAULT_DISK_BUDGET).unwrap();
        cache.set_disk(Some(disk.clone()));
        let doubled: Vec<&Column> = cols.iter().chain(cols.iter()).collect();
        auto_suggest::parallel::par_map(&doubled, |c| {
            cache.artifacts(c);
        });
        set_thread_override(None);
        (seed_cache.disk().unwrap().stats(), disk.stats(), cache.stats())
    };
    let s1 = Scratch::new("det-1");
    let s4 = Scratch::new("det-4");
    let (seed1, disk1, mem1) = run(1, &s1);
    let (seed4, disk4, mem4) = run(4, &s4);
    assert_eq!(seed1, seed4, "seeding-phase disk counters diverged");
    assert_eq!(disk1, disk4, "warm-phase disk counters diverged");
    assert_eq!(mem1, mem4, "memory counters diverged");
    // The warm phase: 48 distinct keys × 2 concurrent passes — single-flight
    // means exactly 48 disk hits (one per key) and zero writes.
    assert_eq!(
        disk1,
        DiskStats { hits: 48, misses: 0, evictions: 0, corrupt: 0, writes: 0 }
    );
    assert_eq!(seed1.writes, 48);
}

#[test]
fn disk_counters_appear_in_deterministic_trace_section() {
    let scratch = Scratch::new("obs");
    let col = int_col("id", 0, 100);
    let ((), snap) = obs::with_local_registry(|| {
        let cache = ColumnCache::new(16);
        cache.set_disk(Some(DiskCache::open(&scratch.0, DEFAULT_DISK_BUDGET).unwrap()));
        cache.artifacts(&col); // miss → write
        let warm = ColumnCache::new(16);
        warm.set_disk(Some(DiskCache::open(&scratch.0, DEFAULT_DISK_BUDGET).unwrap()));
        warm.artifacts(&col); // memory miss → disk hit
    });
    let det = snap.deterministic_value().to_string();
    for c in ["cache.disk.writes", "cache.disk.hits"] {
        assert!(det.contains(&format!("\"{c}\"")), "{c} missing from {det}");
    }
    assert_eq!(snap.counters.get("cache.disk.writes"), Some(&1));
    assert_eq!(snap.counters.get("cache.disk.hits"), Some(&1));
    assert!(!snap.timing_value().to_string().contains("cache.disk."));
}
