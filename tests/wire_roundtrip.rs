//! Property tests for the daemon wire format (`core::wire`): seeded
//! random requests, responses, and tables must survive
//! encode → render → parse → decode → re-encode *byte-for-byte*, for
//! every variant — including `Unavailable`, empty suggestion lists, and
//! non-finite float payloads the JSON shim cannot represent natively.

use auto_suggest::core::wire::{
    decode_request, decode_response, encode_request, encode_response, OwnedSuggestRequest,
};
use auto_suggest::core::{
    GroupBySuggestion, JoinSuggestion, PivotSuggestion, SuggestResponse, UnpivotSuggestion,
};
use auto_suggest::dataframe::{DataFrame, Value as Cell};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random cell spanning every dtype, biased toward awkward floats
/// (NaN, infinities, -0.0, subnormal-ish magnitudes).
fn random_cell(rng: &mut u64) -> Cell {
    match splitmix(rng) % 10 {
        0 => Cell::Null,
        1 => Cell::Bool(splitmix(rng).is_multiple_of(2)),
        2 => Cell::Int(splitmix(rng) as i64),
        3 => Cell::Int(i64::MIN + (splitmix(rng) % 1000) as i64),
        4 => Cell::Date((splitmix(rng) % 1_000_000) as i64 - 500_000),
        5 => Cell::Str(format!("s{}\u{00e9}\"\\\n", splitmix(rng) % 100)),
        6 => Cell::Float(f64::from_bits(splitmix(rng))), // any bit pattern, incl. NaN payloads
        7 => Cell::Float(match splitmix(rng) % 4 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => -0.0,
        }),
        8 => Cell::Float((splitmix(rng) as i64 as f64) / 1e3),
        _ => Cell::Str(String::new()),
    }
}

fn random_table(rng: &mut u64) -> DataFrame {
    let cols = 1 + (splitmix(rng) % 4) as usize;
    let rows = (splitmix(rng) % 12) as usize;
    let columns = (0..cols)
        .map(|c| {
            let values = (0..rows).map(|_| random_cell(rng)).collect::<Vec<_>>();
            (format!("col_{c}"), values)
        })
        .collect::<Vec<_>>();
    DataFrame::from_columns(
        columns.iter().map(|(n, v)| (n.as_str(), v.clone())).collect(),
    )
    .expect("generated tables are rectangular")
}

fn random_request(rng: &mut u64) -> OwnedSuggestRequest {
    match splitmix(rng) % 4 {
        0 => OwnedSuggestRequest::Join {
            left: random_table(rng),
            right: random_table(rng),
            top_k: (splitmix(rng) % 10) as usize,
        },
        1 => OwnedSuggestRequest::GroupBy { table: random_table(rng) },
        2 => {
            let table = random_table(rng);
            let dims = (0..table.columns().len())
                .filter(|_| splitmix(rng).is_multiple_of(2))
                .collect();
            OwnedSuggestRequest::Pivot { table, dims }
        }
        _ => OwnedSuggestRequest::Unpivot { table: random_table(rng) },
    }
}

fn random_strings(rng: &mut u64) -> Vec<String> {
    (0..splitmix(rng) % 4).map(|i| format!("c{i}")).collect()
}

fn random_score(rng: &mut u64) -> f64 {
    match splitmix(rng) % 5 {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => f64::from_bits(splitmix(rng) % (1u64 << 62)), // finite-ish spread
    }
}

fn random_response(rng: &mut u64) -> SuggestResponse {
    match splitmix(rng) % 7 {
        0 => SuggestResponse::Join(
            (0..splitmix(rng) % 4)
                .map(|_| JoinSuggestion {
                    left_cols: random_strings(rng),
                    right_cols: random_strings(rng),
                    score: random_score(rng),
                })
                .collect(),
        ),
        1 => SuggestResponse::GroupBy(
            (0..splitmix(rng) % 4)
                .map(|i| GroupBySuggestion {
                    column: format!("g{i}"),
                    score: random_score(rng),
                })
                .collect(),
        ),
        2 => SuggestResponse::Pivot(Some(PivotSuggestion {
            index: random_strings(rng),
            header: random_strings(rng),
            objective: random_score(rng),
        })),
        3 => SuggestResponse::Pivot(None),
        4 => SuggestResponse::Unpivot(Some(UnpivotSuggestion {
            collapse: random_strings(rng),
            objective: random_score(rng),
        })),
        5 => SuggestResponse::Unpivot(None),
        _ => SuggestResponse::Unavailable(
            ["join", "groupby", "pivot", "unpivot"][(splitmix(rng) % 4) as usize],
        ),
    }
}

#[test]
fn requests_roundtrip_bit_for_bit_over_seeded_fuzz() {
    let mut rng = 0x5eed_0001u64;
    for case in 0..500 {
        let req = random_request(&mut rng);
        let rendered = encode_request(&req.as_request()).to_string();
        let parsed = serde_json::from_str(&rendered)
            .unwrap_or_else(|e| panic!("case {case}: rendered JSON unparseable: {e}\n{rendered}"));
        let back = decode_request(&parsed)
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}\n{rendered}"));
        let rerendered = encode_request(&back.as_request()).to_string();
        assert_eq!(rendered, rerendered, "case {case}: request round-trip drifted");
    }
}

#[test]
fn responses_roundtrip_bit_for_bit_over_seeded_fuzz() {
    let mut rng = 0x5eed_0002u64;
    for case in 0..500 {
        let resp = random_response(&mut rng);
        let rendered = encode_response(&resp).to_string();
        let parsed = serde_json::from_str(&rendered)
            .unwrap_or_else(|e| panic!("case {case}: rendered JSON unparseable: {e}\n{rendered}"));
        let back = decode_response(&parsed)
            .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}\n{rendered}"));
        let rerendered = encode_response(&back).to_string();
        assert_eq!(rendered, rerendered, "case {case}: response round-trip drifted");
        // For variants without float payloads the decoded value must also
        // be structurally identical; float-bearing ones are compared via
        // the rendering (bit-preserving for floats by construction).
        if let SuggestResponse::Unavailable(model) = resp {
            assert_eq!(back, SuggestResponse::Unavailable(model));
        }
    }
}

#[test]
fn error_documents_decode_to_errors_never_panics() {
    // Truncations and type confusions of a valid document must all
    // surface as WireError, not panic.
    let valid = r#"{"op":"join","left":{"columns":[{"name":"a","values":[1]}]},"right":{"columns":[{"name":"b","values":[2]}]},"top_k":3}"#;
    for cut in 1..valid.len() {
        let prefix = &valid[..cut];
        if let Ok(v) = serde_json::from_str(prefix) {
            let _ = decode_request(&v); // any Result is fine; no panic
        }
    }
    let confusions = [
        r#"{"op":3}"#,
        r#"{"op":"join","left":3,"right":4,"top_k":1}"#,
        r#"{"op":"pivot","table":{"columns":[]},"dims":3}"#,
        r#"{"kind":"join","suggestions":3}"#,
        r#"{"kind":"join","suggestions":[{"left_cols":"x","right_cols":[],"score":1}]}"#,
        r#"{"kind":"pivot","suggestion":3}"#,
        r#"{"kind":"unavailable","model":3}"#,
        r#"{"kind":"unavailable","model":"mystery"}"#,
    ];
    for text in confusions {
        let v = serde_json::from_str(text).unwrap();
        assert!(
            decode_request(&v).is_err(),
            "request decoder accepted {text}"
        );
        assert!(
            decode_response(&v).is_err(),
            "response decoder accepted {text}"
        );
    }
}
