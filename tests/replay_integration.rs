//! Cross-crate replay integration: corpus → replay → filter → split.

use auto_suggest::corpus::{
    filter_invocations, grouped_split, CorpusConfig, CorpusGenerator, OpKind, ReplayEngine,
    ReplayOutcome,
};

#[test]
fn corpus_replay_filter_split_pipeline() {
    let cfg = CorpusConfig::small(101);
    let corpus = CorpusGenerator::new(cfg).generate();
    let engine = ReplayEngine::new(corpus.repository.clone());

    let mut invocations = Vec::new();
    let mut successes = 0;
    let mut recovered_files = 0;
    let mut installed_packages = 0;
    for nb in &corpus.notebooks {
        let report = engine.replay(nb);
        if report.outcome == ReplayOutcome::Success {
            successes += 1;
        }
        recovered_files += report.files_recovered.len();
        installed_packages += report.packages_installed.len();
        invocations.extend(report.invocations);
    }
    // The repair machinery must actually fire on a planted-failure corpus.
    assert!(recovered_files > 10, "file repairs: {recovered_files}");
    assert!(installed_packages > 5, "package installs: {installed_packages}");
    assert!(successes > corpus.notebooks.len() / 4);

    let total = invocations.len();
    let (filtered, stats) = filter_invocations(invocations, 5);
    assert_eq!(stats.total, total);
    assert_eq!(stats.kept, filtered.len());
    assert!(stats.dropped_duplicate > 0, "loop-duplicates must be planted and dropped");
    assert_eq!(
        stats.kept + stats.dropped_duplicate + stats.dropped_tiny,
        stats.total
    );

    // Every operator class appears post-filtering.
    for op in [OpKind::Merge, OpKind::GroupBy, OpKind::Pivot, OpKind::Melt] {
        assert!(
            filtered.iter().any(|i| i.op == op),
            "no {op} invocations survived filtering"
        );
    }

    // Grouped split keeps dataset groups intact.
    let split = grouped_split(&filtered, |i| i.dataset_group.as_str(), 0.2, 3);
    let test_groups: std::collections::HashSet<&str> = split
        .test
        .iter()
        .map(|&i| filtered[i].dataset_group.as_str())
        .collect();
    for &i in &split.train {
        assert!(!test_groups.contains(filtered[i].dataset_group.as_str()));
    }
}

#[test]
fn replay_is_deterministic() {
    let corpus = CorpusGenerator::new(CorpusConfig::small(202)).generate();
    let engine = ReplayEngine::new(corpus.repository.clone());
    for nb in corpus.notebooks.iter().take(20) {
        let a = engine.replay(nb);
        let b = engine.replay(nb);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.invocations.len(), b.invocations.len());
        for (x, y) in a.invocations.iter().zip(&b.invocations) {
            assert_eq!(x.output_hash, y.output_hash);
        }
    }
}

#[test]
fn flow_graphs_capture_multi_step_pipelines() {
    let mut cfg = CorpusConfig::small(303);
    cfg.plant_failures = false;
    let corpus = CorpusGenerator::new(cfg).generate();
    let engine = ReplayEngine::new(corpus.repository.clone());
    let mut max_len = 0;
    let mut with_sources = 0;
    for nb in &corpus.notebooks {
        let report = engine.replay(nb);
        let seq = report.flow.op_sequence();
        max_len = max_len.max(seq.len());
        if !report.flow.source_frames().is_empty() {
            with_sources += 1;
        }
    }
    assert!(max_len >= 3, "longest pipeline {max_len}");
    assert!(with_sources > corpus.notebooks.len() / 2);
}
