//! The observability layer's core contract: the deterministic section of a
//! metrics snapshot — counters, non-timing gauges, and the span tree with
//! call counts — is bit-identical at any thread count. Only the timing
//! section (histograms over wall-clock, span nanos) may vary.
//!
//! This drives the full fast training pipeline under an isolated local
//! registry at 1 thread and at 4, and compares the rendered deterministic
//! JSON byte for byte. Thread width is switched in-process via
//! `set_thread_override`, so the sweep takes the same process-global lock
//! convention as `tests/determinism_across_threads.rs`.

use auto_suggest::core::{AutoSuggest, AutoSuggestConfig};
use auto_suggest::obs;
use auto_suggest::parallel::set_thread_override;
use std::sync::Mutex;

/// The thread override is process-global, so tests that sweep it must not
/// overlap (cargo runs `#[test]`s concurrently by default).
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Train the fast pipeline under a fresh local registry and return the
/// rendered deterministic and timing sections.
fn trace_sections(threads: usize) -> (String, String) {
    set_thread_override(Some(threads));
    // The column/pair caches are process-global; start each run cold so
    // their hit/miss counters (part of the deterministic section) reflect
    // this run alone rather than entries interned by a previous in-process
    // run.
    auto_suggest::cache::clear_memory();
    let (_, snapshot) = obs::with_local_registry(|| {
        AutoSuggest::train(AutoSuggestConfig::fast(7))
    });
    set_thread_override(None);
    (
        snapshot.deterministic_value().to_string(),
        snapshot.timing_value().to_string(),
    )
}

#[test]
fn deterministic_trace_section_is_bit_identical_across_thread_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let (det1, _) = trace_sections(1);
    let (det4, _) = trace_sections(4);
    assert_eq!(
        det1, det4,
        "deterministic metrics diverged between 1 and 4 threads"
    );
}

#[test]
fn trace_covers_the_pipeline_and_separates_timing() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let (det, timing) = trace_sections(2);
    // The span tree must cover the training stages...
    for span in ["train", "generate_corpus", "replay", "filter_and_split", "train_predictors"] {
        assert!(det.contains(&format!("\"{span}\"")), "span {span} missing from {det}");
    }
    // ...and the headline counters must be present and nonzero.
    for counter in ["corpus.notebooks_generated", "replay.cells_executed", "gbdt.fits"] {
        assert!(det.contains(&format!("\"{counter}\"")), "counter {counter} missing");
    }
    // Wall-clock measurements live only in the timing section: per-stage
    // histograms appear there and never in the deterministic view.
    for histo in ["pipeline.", "replay.notebook_seconds", "gbdt.split_scan_seconds"] {
        assert!(timing.contains(histo), "timing histogram {histo} missing");
        assert!(!det.contains(histo), "{histo} leaked into the deterministic view");
    }
    // The registry was local: the process-global snapshot is untouched by
    // the training run above.
    assert!(!obs::snapshot().counters.contains_key("gbdt.fits"));
}

#[test]
fn local_registries_isolate_concurrent_measurements() {
    // Two nested local registries must not bleed counters into each other
    // or into the global registry.
    let (_, outer) = obs::with_local_registry(|| {
        obs::counter_add("outer.only", 1);
        let (_, inner) = obs::with_local_registry(|| {
            obs::counter_add("inner.only", 1);
        });
        assert!(inner.counters.contains_key("inner.only"));
        assert!(!inner.counters.contains_key("outer.only"));
    });
    assert!(outer.counters.contains_key("outer.only"));
    assert!(!outer.counters.contains_key("inner.only"));
    assert!(!obs::snapshot().counters.contains_key("outer.only"));
    assert!(!obs::snapshot().counters.contains_key("inner.only"));
}
