//! Property-based tests over the DataFrame substrate and solvers —
//! invariants every replayed notebook implicitly relies on.

use auto_suggest::dataframe::ops::{self, Agg, DropHow, JoinType};
use auto_suggest::dataframe::{DataFrame, Value};
use auto_suggest::graph::{ampt_exact, ampt_objective, cmut_greedy, AffinityGraph};
use auto_suggest::ranking::{ndcg_at_k, precision_at_k};
use proptest::prelude::*;

/// A small table: one string dim (bounded domain), one int dim, one float
/// measure.
fn table_strategy() -> impl Strategy<Value = DataFrame> {
    let row = (0u8..5, 2000i64..2004, -1000i64..1000);
    proptest::collection::vec(row, 1..40).prop_map(|rows| {
        DataFrame::from_rows(
            &["dim", "year", "value"],
            rows.into_iter()
                .map(|(d, y, v)| {
                    vec![
                        Value::Str(format!("d{d}")),
                        Value::Int(y),
                        Value::Float(v as f64 / 10.0),
                    ]
                })
                .collect(),
        )
        .expect("valid frame")
    })
}

proptest! {
    #[test]
    fn groupby_partitions_rows(df in table_strategy()) {
        let out = ops::groupby(&df, &["dim"], &[("value", Agg::Count)]).unwrap();
        // Group count totals must equal the row count.
        let total: i64 = out
            .column("value")
            .unwrap()
            .values()
            .iter()
            .filter_map(Value::as_f64)
            .map(|f| f as i64)
            .sum();
        prop_assert_eq!(total as usize, df.num_rows());
        // Group keys are distinct.
        let keys = out.column("dim").unwrap();
        prop_assert_eq!(keys.distinct_count(), out.num_rows());
    }

    #[test]
    fn melt_then_pivot_roundtrips_cell_sums(df in table_strategy()) {
        // pivot → melt preserves the total of the measure (sum-aggregated,
        // ignoring NULL padding).
        let pivoted = ops::pivot_table(&df, &["dim"], &["year"], "value", Agg::Sum).unwrap();
        let value_vars: Vec<String> = pivoted
            .column_names()
            .into_iter()
            .filter(|n| *n != "dim")
            .map(String::from)
            .collect();
        let vv: Vec<&str> = value_vars.iter().map(String::as_str).collect();
        let long = ops::melt(&pivoted, &["dim"], &vv, "year", "value").unwrap();
        let sum = |frame: &DataFrame| -> f64 {
            frame
                .column("value")
                .unwrap()
                .values()
                .iter()
                .filter_map(Value::as_f64)
                .sum()
        };
        prop_assert!((sum(&df) - sum(&long)).abs() < 1e-6);
    }

    #[test]
    fn join_row_count_bounds(a in table_strategy(), b in table_strategy()) {
        let inner = ops::merge(&a, &b, &["dim"], &["dim"], JoinType::Inner).unwrap();
        let left = ops::merge(&a, &b, &["dim"], &["dim"], JoinType::Left).unwrap();
        let outer = ops::merge(&a, &b, &["dim"], &["dim"], JoinType::Outer).unwrap();
        prop_assert!(inner.num_rows() <= left.num_rows());
        prop_assert!(left.num_rows() <= outer.num_rows());
        prop_assert!(left.num_rows() >= a.num_rows());
        prop_assert!(inner.num_rows() <= a.num_rows() * b.num_rows());
    }

    #[test]
    fn dropna_then_fillna_idempotent(df in table_strategy()) {
        // A clean frame is a fixed point of both operators.
        let clean = ops::dropna(&df, DropHow::Any, None).unwrap();
        let filled = ops::fillna_all(&clean, &Value::Int(0)).unwrap();
        prop_assert_eq!(clean.content_hash(), filled.content_hash());
    }

    #[test]
    fn csv_roundtrip_preserves_content(df in table_strategy()) {
        let text = auto_suggest::dataframe::io::write_csv_string(&df);
        let back = auto_suggest::dataframe::io::read_csv_str(&text).unwrap();
        prop_assert_eq!(df.content_hash(), back.content_hash());
    }
}

/// Random affinity graphs for solver properties.
fn graph_strategy(n: usize) -> impl Strategy<Value = AffinityGraph> {
    proptest::collection::vec(-100i32..100, n * (n - 1) / 2).prop_map(move |ws| {
        let mut g = AffinityGraph::new(n);
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                g.set(i, j, ws[k] as f64 / 100.0);
                k += 1;
            }
        }
        g
    })
}

proptest! {
    #[test]
    fn ampt_exact_is_optimal_over_all_bisections(g in graph_strategy(6)) {
        let best = ampt_exact(&g).unwrap();
        for mask in 1u32..(1 << 6) - 1 {
            let in_first: Vec<bool> = (0..6).map(|v| mask >> v & 1 == 1).collect();
            prop_assert!(ampt_objective(&g, &in_first) <= best.objective + 1e-9);
        }
    }

    #[test]
    fn cmut_greedy_solution_is_valid(g in graph_strategy(8)) {
        let sol = cmut_greedy(&g).unwrap();
        prop_assert!(sol.selected.len() >= 2);
        prop_assert!(sol.selected.len() < 8);
        let mut sorted = sol.selected.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sol.selected.len());
    }

    #[test]
    fn metrics_are_bounded(rels in proptest::collection::vec(any::<bool>(), 1..10), k in 1usize..5) {
        let num_relevant = rels.iter().filter(|&&r| r).count();
        let p = precision_at_k(&rels, num_relevant, k);
        let n = ndcg_at_k(&rels, num_relevant, k);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&n));
    }
}
