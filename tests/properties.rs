//! Property-based tests over the DataFrame substrate and solvers —
//! invariants every replayed notebook implicitly relies on.
//!
//! Cases are generated from a seeded `StdRng` (64 per property), so runs
//! are deterministic and need no external property-testing framework.

use auto_suggest::dataframe::ops::{self, Agg, DropHow, JoinType};
use auto_suggest::dataframe::{DataFrame, Value};
use auto_suggest::graph::{ampt_exact, ampt_objective, cmut_greedy, AffinityGraph};
use auto_suggest::ranking::{ndcg_at_k, precision_at_k};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

/// A small table: one string dim (bounded domain), one int dim, one float
/// measure.
fn random_table(rng: &mut StdRng) -> DataFrame {
    let rows = rng.random_range(1..40);
    DataFrame::from_rows(
        &["dim", "year", "value"],
        (0..rows)
            .map(|_| {
                vec![
                    Value::Str(format!("d{}", rng.random_range(0u8..5))),
                    Value::Int(rng.random_range(2000i64..2004)),
                    Value::Float(rng.random_range(-1000i64..1000) as f64 / 10.0),
                ]
            })
            .collect(),
    )
    .expect("valid frame")
}

#[test]
fn groupby_partitions_rows() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5e_0001 + case);
        let df = random_table(&mut rng);
        let out = ops::groupby(&df, &["dim"], &[("value", Agg::Count)]).unwrap();
        // Group count totals must equal the row count.
        let total: i64 = out
            .column("value")
            .unwrap()
            .values()
            .iter()
            .filter_map(Value::as_f64)
            .map(|f| f as i64)
            .sum();
        assert_eq!(total as usize, df.num_rows());
        // Group keys are distinct.
        let keys = out.column("dim").unwrap();
        assert_eq!(keys.distinct_count(), out.num_rows());
    }
}

#[test]
fn melt_then_pivot_roundtrips_cell_sums() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5e_0002 + case);
        let df = random_table(&mut rng);
        // pivot → melt preserves the total of the measure (sum-aggregated,
        // ignoring NULL padding).
        let pivoted = ops::pivot_table(&df, &["dim"], &["year"], "value", Agg::Sum).unwrap();
        let value_vars: Vec<String> = pivoted
            .column_names()
            .into_iter()
            .filter(|n| *n != "dim")
            .map(String::from)
            .collect();
        let vv: Vec<&str> = value_vars.iter().map(String::as_str).collect();
        let long = ops::melt(&pivoted, &["dim"], &vv, "year", "value").unwrap();
        let sum = |frame: &DataFrame| -> f64 {
            frame
                .column("value")
                .unwrap()
                .values()
                .iter()
                .filter_map(Value::as_f64)
                .sum()
        };
        assert!((sum(&df) - sum(&long)).abs() < 1e-6);
    }
}

#[test]
fn join_row_count_bounds() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5e_0003 + case);
        let a = random_table(&mut rng);
        let b = random_table(&mut rng);
        let inner = ops::merge(&a, &b, &["dim"], &["dim"], JoinType::Inner).unwrap();
        let left = ops::merge(&a, &b, &["dim"], &["dim"], JoinType::Left).unwrap();
        let outer = ops::merge(&a, &b, &["dim"], &["dim"], JoinType::Outer).unwrap();
        assert!(inner.num_rows() <= left.num_rows());
        assert!(left.num_rows() <= outer.num_rows());
        assert!(left.num_rows() >= a.num_rows());
        assert!(inner.num_rows() <= a.num_rows() * b.num_rows());
    }
}

#[test]
fn dropna_then_fillna_idempotent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5e_0004 + case);
        let df = random_table(&mut rng);
        // A clean frame is a fixed point of both operators.
        let clean = ops::dropna(&df, DropHow::Any, None).unwrap();
        let filled = ops::fillna_all(&clean, &Value::Int(0)).unwrap();
        assert_eq!(clean.content_hash(), filled.content_hash());
    }
}

#[test]
fn csv_roundtrip_preserves_content() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5e_0005 + case);
        let df = random_table(&mut rng);
        let text = auto_suggest::dataframe::io::write_csv_string(&df);
        let back = auto_suggest::dataframe::io::read_csv_str(&text).unwrap();
        assert_eq!(df.content_hash(), back.content_hash());
    }
}

/// Random affinity graph for solver properties.
fn random_graph(rng: &mut StdRng, n: usize) -> AffinityGraph {
    let mut g = AffinityGraph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            g.set(i, j, rng.random_range(-100i32..100) as f64 / 100.0);
        }
    }
    g
}

#[test]
fn ampt_exact_is_optimal_over_all_bisections() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5e_0006 + case);
        let g = random_graph(&mut rng, 6);
        let best = ampt_exact(&g).unwrap();
        for mask in 1u32..(1 << 6) - 1 {
            let in_first: Vec<bool> = (0..6).map(|v| mask >> v & 1 == 1).collect();
            assert!(ampt_objective(&g, &in_first) <= best.objective + 1e-9);
        }
    }
}

#[test]
fn cmut_greedy_solution_is_valid() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5e_0007 + case);
        let g = random_graph(&mut rng, 8);
        let sol = cmut_greedy(&g).unwrap();
        assert!(sol.selected.len() >= 2);
        assert!(sol.selected.len() < 8);
        let mut sorted = sol.selected.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), sol.selected.len());
    }
}

#[test]
fn metrics_are_bounded() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5e_0008 + case);
        let len = rng.random_range(1usize..10);
        let rels: Vec<bool> = (0..len).map(|_| rng.random_bool(0.5)).collect();
        let k = rng.random_range(1usize..5);
        let num_relevant = rels.iter().filter(|&&r| r).count();
        let p = precision_at_k(&rels, num_relevant, k);
        let n = ndcg_at_k(&rels, num_relevant, k);
        assert!((0.0..=1.0).contains(&p));
        assert!((0.0..=1.0).contains(&n));
    }
}
