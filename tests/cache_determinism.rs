//! The content-addressed column cache's contracts, end to end:
//!
//! * fingerprints are stable under row permutation and sensitive to edits;
//! * cache counters (the deterministic-trace contract) are bit-identical
//!   at 1 and 4 threads, including under LRU eviction pressure;
//! * `AutoSuggest::suggest_batch` answers exactly like sequential
//!   `suggest` calls;
//! * hit/miss counters surface in the deterministic obs section.

use auto_suggest::cache::{column_fingerprint, CacheStats, ColumnCache};
use auto_suggest::core::{AutoSuggest, AutoSuggestConfig, SuggestRequest, SuggestResponse};
use auto_suggest::dataframe::{Column, DataFrame, Value};
use auto_suggest::obs;
use auto_suggest::parallel::set_thread_override;
use std::sync::{Mutex, OnceLock};

/// The thread override is process-global, so tests that sweep it must not
/// overlap (cargo runs `#[test]`s concurrently by default).
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// One shared fast-trained system for the suggestion tests (training once
/// keeps this binary's wall-clock close to the other integration suites).
fn system() -> &'static AutoSuggest {
    static SYSTEM: OnceLock<AutoSuggest> = OnceLock::new();
    SYSTEM.get_or_init(|| AutoSuggest::train(AutoSuggestConfig::fast(7)))
}

fn int_col(name: &str, lo: i64, hi: i64) -> Column {
    Column::new(name, (lo..hi).map(Value::Int).collect::<Vec<_>>())
}

#[test]
fn fingerprint_stable_across_row_order_sensitive_to_edits() {
    let frame = DataFrame::from_columns(vec![
        ("id", (0..50).map(Value::Int).collect()),
        (
            "name",
            (0..50).map(|i| Value::Str(format!("row{i}"))).collect(),
        ),
    ])
    .unwrap();
    // Reverse the row order: every column fingerprint must be unchanged.
    let reversed_idx: Vec<usize> = (0..frame.num_rows()).rev().collect();
    let reversed = frame.take(&reversed_idx);
    for (a, b) in frame.columns().iter().zip(reversed.columns()) {
        assert_eq!(column_fingerprint(a), column_fingerprint(b));
    }
    // Edit one cell: that column's fingerprint must move, the other's not.
    let mut edited = frame.clone();
    edited.column_at_mut(0).values_mut()[17] = Value::Int(9999);
    assert_ne!(
        column_fingerprint(frame.column_at(0)),
        column_fingerprint(edited.column_at(0))
    );
    assert_eq!(
        column_fingerprint(frame.column_at(1)),
        column_fingerprint(edited.column_at(1))
    );
}

/// Drive `n` distinct columns (each looked up twice) through a private
/// small-capacity cache across the pool at the given thread count.
fn pressure_run(threads: usize, n: i64) -> (CacheStats, usize) {
    set_thread_override(Some(threads));
    let cache = ColumnCache::new(32); // far below n → sustained eviction
    let cols: Vec<Column> = (0..n).map(|i| int_col("c", i * 100, i * 100 + 20)).collect();
    // First pass: every distinct column once, concurrently.
    auto_suggest::parallel::par_map(&cols, |c| {
        cache.artifacts(c);
    });
    set_thread_override(None);
    (cache.stats(), cache.len())
}

#[test]
fn lru_eviction_counters_are_deterministic_across_thread_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let (stats1, len1) = pressure_run(1, 200);
    let (stats4, len4) = pressure_run(4, 200);
    assert_eq!(stats1, stats4, "cache counters diverged between 1 and 4 threads");
    assert_eq!(len1, len4);
    // The run actually exercised eviction, not just insertion.
    assert_eq!(stats1.misses, 200);
    assert!(stats1.evictions > 0, "capacity 32 with 200 keys must evict");
    assert!(len1 <= 32);
}

#[test]
fn warm_lookups_hit_deterministically_at_any_thread_count() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let run = |threads: usize| {
        set_thread_override(Some(threads));
        let cache = ColumnCache::new(1024); // ample: no eviction
        let cols: Vec<Column> =
            (0..64).map(|i| int_col("c", i * 100, i * 100 + 20)).collect();
        // Two concurrent passes over the same columns: single-flight
        // guarantees exactly 64 misses however the passes interleave.
        let doubled: Vec<&Column> = cols.iter().chain(cols.iter()).collect();
        auto_suggest::parallel::par_map(&doubled, |c| {
            cache.artifacts(c);
        });
        set_thread_override(None);
        cache.stats()
    };
    let s1 = run(1);
    let s4 = run(4);
    assert_eq!(s1, s4);
    assert_eq!(s1, CacheStats { hits: 64, misses: 64, evictions: 0 });
}

#[test]
fn suggest_batch_matches_sequential_suggest() {
    let sys = system();
    let join_case = sys.test.join.first().expect("fast corpus has join test cases");
    let dims = [0usize, 1];
    let mut reqs: Vec<SuggestRequest> = vec![SuggestRequest::Join {
        left: &join_case.inputs[0],
        right: &join_case.inputs[1],
        top_k: 3,
    }];
    if let Some(g) = sys.test.groupby.first() {
        reqs.push(SuggestRequest::GroupBy { table: &g.inputs[0] });
    }
    if let Some(m) = sys.test.melt.first() {
        reqs.push(SuggestRequest::Unpivot { table: &m.inputs[0] });
    }
    if let Some(p) = sys.test.pivot.first() {
        if p.inputs[0].num_columns() > dims.iter().max().copied().unwrap_or(0) {
            reqs.push(SuggestRequest::Pivot { table: &p.inputs[0], dims: &dims });
        }
    }
    // Repeat tables across requests to exercise the dedup path: the same
    // frame appears in a Join and a GroupBy request, plus an exact repeat.
    reqs.push(SuggestRequest::GroupBy { table: &join_case.inputs[0] });
    reqs.push(SuggestRequest::Join {
        left: &join_case.inputs[0],
        right: &join_case.inputs[1],
        top_k: 5,
    });
    assert!(reqs.len() >= 4);

    let sequential: Vec<SuggestResponse> = reqs.iter().map(|r| sys.suggest(r)).collect();
    let batched = sys.suggest_batch(&reqs);
    assert_eq!(batched, sequential, "batched answers must equal sequential ones");
    // The requests above must actually produce suggestions, not fall through
    // to Unavailable.
    assert!(matches!(&batched[0], SuggestResponse::Join(v) if !v.is_empty()));
}

#[test]
fn suggest_batch_deduplicates_tables_and_reports_counters() {
    let sys = system();
    let join_case = sys.test.join.first().expect("fast corpus has join test cases");
    let reqs = vec![
        SuggestRequest::GroupBy { table: &join_case.inputs[0] },
        SuggestRequest::GroupBy { table: &join_case.inputs[0] },
        SuggestRequest::GroupBy { table: &join_case.inputs[1] },
    ];
    let (_, snap) = obs::with_local_registry(|| {
        sys.suggest_batch(&reqs);
    });
    assert_eq!(snap.counters.get("suggest.batch_requests"), Some(&3));
    // Three requests, two distinct tables by content fingerprint.
    assert_eq!(snap.counters.get("suggest.batch_distinct_tables"), Some(&2));
}

#[test]
fn pair_tier_counters_are_deterministic_across_thread_counts() {
    use auto_suggest::cache::PairCache;
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let frames: Vec<DataFrame> = (0..12)
        .map(|t| {
            DataFrame::from_columns(vec![
                ("k", (t..t + 30).map(Value::Int).collect()),
                ("v", (0..30).map(|i| Value::Str(format!("v{i}"))).collect()),
            ])
            .unwrap()
        })
        .collect();
    let run = |threads: usize| {
        set_thread_override(Some(threads));
        let pairs = PairCache::new(256, 256);
        // Each frame's key tuple fetched three times concurrently, and each
        // adjacent pair's overlap requested twice: single-flight makes the
        // hit/miss split exact however the pool interleaves.
        let work: Vec<usize> = (0..frames.len() * 3).collect();
        auto_suggest::parallel::par_map(&work, |&i| {
            let f = &frames[i % frames.len()];
            let l = pairs.key_tuples(f, &[0]);
            let r = pairs.key_tuples(&frames[(i % frames.len() + 1) % frames.len()], &[0]);
            pairs.intersection(&l, &r)
        });
        set_thread_override(None);
        (pairs.tuple_stats(), pairs.pair_stats())
    };
    let (t1, p1) = run(1);
    let (t4, p4) = run(4);
    assert_eq!(t1, t4, "tuple-tier counters diverged between 1 and 4 threads");
    assert_eq!(p1, p4, "pair-tier counters diverged between 1 and 4 threads");
    // 12 distinct (frame, [0]) tuples fetched 6 times each (once as left,
    // once as right, per 3 passes) → 12 misses, 60 hits.
    assert_eq!(t1, CacheStats { hits: 60, misses: 12, evictions: 0 });
    // 12 distinct adjacent pairs, each requested 3 times.
    assert_eq!(p1, CacheStats { hits: 24, misses: 12, evictions: 0 });
}

#[test]
fn join_features_batch_matches_sequential_join_features() {
    use auto_suggest::features::{
        enumerate_join_candidates, join_features, join_features_batch, CandidateParams,
    };
    let left = DataFrame::from_columns(vec![
        ("id", (0..60).map(Value::Int).collect()),
        ("region", (0..60).map(|i| Value::Str(format!("r{}", i % 7))).collect()),
        ("score", (0..60).map(|i| Value::Float(i as f64 * 0.5)).collect()),
    ])
    .unwrap();
    let right = DataFrame::from_columns(vec![
        ("key", (20..80).map(Value::Int).collect()),
        ("region", (0..60).map(|i| Value::Str(format!("r{}", i % 9))).collect()),
    ])
    .unwrap();
    let cands = enumerate_join_candidates(&left, &right, &CandidateParams::default());
    assert!(cands.len() >= 2, "workload needs several candidates");
    let sequential: Vec<Vec<f64>> = cands
        .iter()
        .map(|c| join_features(&left, &right, c).values)
        .collect();
    let batched: Vec<Vec<f64>> = join_features_batch(&left, &right, &cands)
        .into_iter()
        .map(|f| f.values)
        .collect();
    // Bit-identical, not approximately equal: the batch path must reuse the
    // exact same tuple sets and intersection counts.
    assert_eq!(sequential, batched);
}

#[test]
fn cache_counters_appear_in_deterministic_trace_section() {
    let params = auto_suggest::features::CandidateParams::default();
    let left = DataFrame::from_columns(vec![
        ("a", (0..40).map(Value::Int).collect()),
        ("b", (0..40).map(|i| Value::Str(format!("v{i}"))).collect()),
    ])
    .unwrap();
    let right = left.clone();
    let ((), snap) = obs::with_local_registry(|| {
        // Enumerate the same pair twice: the second pass hits for every
        // column the first pass interned.
        auto_suggest::features::enumerate_join_candidates(&left, &right, &params);
        auto_suggest::features::enumerate_join_candidates(&left, &right, &params);
    });
    let det = snap.deterministic_value().to_string();
    assert!(det.contains("\"cache.hits\""), "cache.hits missing from {det}");
    assert!(det.contains("\"cache.misses\""), "cache.misses missing from {det}");
    let hits = snap.counters.get("cache.hits").copied().unwrap_or(0);
    assert!(hits >= 2, "second enumeration must hit the cache (hits={hits})");
    // Counters are deterministic-section material, never timing material.
    assert!(!snap.timing_value().to_string().contains("cache.hits"));
}
