//! Equivalence and determinism suite for the batched training kernels.
//!
//! Four claims, each checked bit-for-bit through the public API:
//!
//! 1. the presort-once GBDT split search produces the *same tree* as the
//!    historical per-node re-sort kernel, ties and all;
//! 2. histogram mode with enough bins to cover every distinct value is
//!    exact, and both GBDT modes train deterministically;
//! 3. RNN training at `batch_size = 1` (the default) and at larger batch
//!    sizes is a pure function of the seed — and batched prediction matches
//!    per-example prediction bitwise;
//! 4. every trainer is bit-identical at 1 thread vs 4 (the pool contract).
//!
//! Thread width is switched in-process via `set_thread_override`; tests
//! that sweep it serialise on a lock because the override is process-global.

use auto_suggest::gbdt::{Dataset, Gbdt, GbdtParams, RegressionTree, TreeParams};
use auto_suggest::nn::{RnnClassifier, RnnConfig, SequenceExample};
use auto_suggest::parallel::set_thread_override;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Random dataset with deliberately heavy value ties (values snapped to a
/// coarse grid) so tie-ordering differences between split kernels surface.
fn tied_dataset(n: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..features)
                .map(|_| (rng.random_range(-1.0f64..1.0) * 8.0).round() / 8.0)
                .collect()
        })
        .collect();
    let labels: Vec<f64> = rows
        .iter()
        .map(|r| if r[0] + 0.5 * r[1] - 0.25 * r[2] > 0.0 { 1.0 } else { 0.0 })
        .collect();
    let names = (0..features).map(|i| format!("f{i}")).collect();
    Dataset::new(names, rows, labels).expect("rectangular")
}

fn sequences(n: usize, vocab: usize, seed: u64) -> Vec<SequenceExample> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.random_range(1..7usize);
            let prefix: Vec<usize> = (0..len).map(|_| rng.random_range(0..vocab)).collect();
            let label = (prefix[len - 1] + 1) % vocab;
            SequenceExample { prefix, extra: vec![rng.random_range(0.0..1.0)], label }
        })
        .collect()
}

/// Exact bit pattern of a model's scores over a probe grid.
fn gbdt_fingerprint(model: &Gbdt, data: &Dataset, features: usize) -> String {
    let mut log = String::new();
    for i in 0..data.len().min(64) {
        let x: Vec<f64> = (0..features).map(|f| data.row(i)[f]).collect();
        log.push_str(&format!("{:016x}\n", model.predict(&x).to_bits()));
    }
    for imp in model.feature_importance() {
        log.push_str(&format!("imp {:016x}\n", imp.to_bits()));
    }
    log
}

fn rnn_fingerprint(model: &RnnClassifier, examples: &[SequenceExample]) -> String {
    let queries: Vec<(&[usize], &[f64])> = examples
        .iter()
        .map(|e| (e.prefix.as_slice(), e.extra.as_slice()))
        .collect();
    let mut log = String::new();
    for row in model.predict_proba_batch(&queries) {
        for p in row {
            log.push_str(&format!("{:016x} ", p.to_bits()));
        }
        log.push('\n');
    }
    log
}

#[test]
fn presorted_tree_matches_historical_resort_kernel() {
    for seed in [3u64, 17, 91] {
        let data = tied_dataset(400, 9, seed);
        let targets: Vec<f64> = (0..data.len()).map(|i| data.label(i)).collect();
        let idx: Vec<usize> = (0..data.len()).collect();
        let params = TreeParams { max_depth: 5, ..Default::default() };
        let fast = RegressionTree::fit(&data, &targets, &idx, &params);
        let slow = RegressionTree::fit_resort(&data, &targets, &idx, &params);
        for i in 0..data.len() {
            let x: Vec<f64> = (0..9).map(|f| data.row(i)[f]).collect();
            assert_eq!(
                fast.predict(&x).to_bits(),
                slow.predict(&x).to_bits(),
                "presorted and re-sort kernels diverged (seed {seed}, row {i})"
            );
        }
    }
}

#[test]
fn histogram_mode_is_exact_when_bins_cover_the_grid() {
    // Grid-snapped values have ≤ 17 distinct values per feature, far under
    // max_bins, so the binner reuses the exact midpoint cuts.
    // Split choices are identical; leaf values agree up to summation order
    // (bin-ordered vs row-ordered accumulation), so compare predictions at
    // a tolerance far below any label scale.
    let data = tied_dataset(300, 6, 5);
    let exact = Gbdt::fit(&data, &GbdtParams { n_trees: 12, ..Default::default() });
    let hist = Gbdt::fit(
        &data,
        &GbdtParams { n_trees: 12, histogram: true, ..Default::default() },
    );
    for i in 0..data.len() {
        let x: Vec<f64> = (0..6).map(|f| data.row(i)[f]).collect();
        let (e, h) = (exact.predict(&x), hist.predict(&x));
        assert!(
            (e - h).abs() < 1e-9,
            "histogram mode with covering bins must reproduce exact mode: {e} vs {h} (row {i})"
        );
    }
}

#[test]
fn rnn_batched_training_at_batch_size_one_matches_default() {
    let vocab = 9;
    let examples = sequences(80, vocab, 21);
    let cfg = RnnConfig {
        vocab,
        classes: vocab,
        extra_dim: 1,
        epochs: 4,
        seed: 13,
        ..Default::default()
    };
    let mut a = RnnClassifier::new(cfg.clone());
    let mut b = RnnClassifier::new(cfg);
    let loss_a = a.train(&examples);
    let loss_b = b.train_with_batch_size(&examples, 1);
    assert_eq!(loss_a.to_bits(), loss_b.to_bits());
    assert_eq!(rnn_fingerprint(&a, &examples), rnn_fingerprint(&b, &examples));
}

#[test]
fn trainers_are_bit_identical_across_thread_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let data = tied_dataset(500, 9, 29);
    let vocab = 9;
    let examples = sequences(120, vocab, 33);

    let fingerprint = |threads: usize| {
        set_thread_override(Some(threads));
        let mut log = String::new();
        // Exact-mode and histogram-mode ensembles: split scans and histogram
        // builds both cross the parallel gate at this size.
        for histogram in [false, true] {
            let model = Gbdt::fit(
                &data,
                &GbdtParams { n_trees: 16, histogram, ..Default::default() },
            );
            log.push_str(&gbdt_fingerprint(&model, &data, 9));
        }
        // Both RNN schedules (per-example and macro-batched).
        for bs in [1usize, 8] {
            let mut model = RnnClassifier::new(RnnConfig {
                vocab,
                classes: vocab,
                extra_dim: 1,
                epochs: 3,
                batch_size: bs,
                seed: 41,
                ..Default::default()
            });
            let loss = model.train(&examples);
            log.push_str(&format!("loss {:016x}\n", loss.to_bits()));
            log.push_str(&rnn_fingerprint(&model, &examples));
        }
        set_thread_override(None);
        log
    };

    let one = fingerprint(1);
    let four = fingerprint(4);
    assert!(one.contains("loss"));
    assert_eq!(one, four, "a trainer diverged between 1 and 4 threads");
}
