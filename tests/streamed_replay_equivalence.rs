//! The streamed-replay contract: replaying a corpus shard-by-shard through
//! the disk-backed [`SampleStore`] must be **byte-identical** to the
//! in-memory `replay_corpus` sweep — same reports in the same order, same
//! robustness accounting — at any shard size, across kill/resume cycles,
//! after shard corruption, and with fault injection active. Plus the
//! end-to-end form: `AutoSuggest::train_streamed` serves the same bits as
//! `AutoSuggest::train`.

use auto_suggest::core::wire;
use auto_suggest::core::{AutoSuggest, AutoSuggestConfig, SuggestRequest};
use auto_suggest::corpus::{
    replay_corpus_streamed, CorpusConfig, CorpusGenerator, FaultSpec, ReplayEngine, ReplayReport,
    RobustnessStats, StreamConfig,
};
use auto_suggest::dataframe::{DataFrame, Value as Cell};
use std::path::PathBuf;

/// A corpus small enough to replay several times in one test binary.
fn tiny_corpus(seed: u64) -> CorpusConfig {
    CorpusConfig {
        join_notebooks: 10,
        groupby_notebooks: 8,
        pivot_notebooks: 6,
        unpivot_notebooks: 4,
        json_notebooks: 3,
        flow_notebooks: 10,
        ..CorpusConfig::small(seed)
    }
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("autosuggest-stream-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The in-memory baseline: full generation, one `replay_corpus` sweep.
fn in_memory_replay(
    cfg: &CorpusConfig,
    faults: Option<FaultSpec>,
) -> (Vec<ReplayReport>, RobustnessStats) {
    let corpus = CorpusGenerator::new(cfg.clone()).generate();
    let engine = ReplayEngine::new(corpus.repository).with_faults(faults);
    engine.replay_corpus(&corpus.notebooks)
}

/// Debug renderings are the strictest practical equality for reports
/// (every field, including nested flow graphs and fault labels).
fn render_reports(reports: &[ReplayReport]) -> Vec<String> {
    reports.iter().map(|r| format!("{r:?}")).collect()
}

fn streamed_reports(store: &auto_suggest::corpus::SampleStore) -> Vec<ReplayReport> {
    store.reports().collect::<std::io::Result<Vec<_>>>().expect("stream reports")
}

#[test]
fn streamed_replay_is_byte_identical_to_in_memory_at_any_shard_size() {
    let cfg = tiny_corpus(11);
    let (baseline_reports, baseline_stats) = in_memory_replay(&cfg, None);
    assert!(!baseline_reports.is_empty());

    for shard_size in [3usize, 7, 1000] {
        let dir = store_dir(&format!("shardsize-{shard_size}"));
        let (store, summary) = replay_corpus_streamed(
            &cfg,
            None,
            &dir,
            &StreamConfig { shard_size, ..Default::default() },
        )
        .expect("streamed replay");
        assert!(store.all_complete());
        assert!(!summary.aborted);
        assert_eq!(summary.shards_resumed, 0, "fresh store cannot resume");
        assert_eq!(summary.notebooks, baseline_reports.len());
        assert_eq!(
            render_reports(&streamed_reports(&store)),
            render_reports(&baseline_reports),
            "shard size {shard_size}: streamed reports diverged from in-memory replay"
        );
        assert_eq!(
            summary.stats, baseline_stats,
            "shard size {shard_size}: robustness accounting diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn killed_run_resumes_from_manifest_without_re_replaying() {
    let cfg = tiny_corpus(23);
    let dir = store_dir("resume");
    let shard = StreamConfig { shard_size: 5, ..Default::default() };

    // First run dies after 2 shards (simulated kill).
    let (_store, partial) = replay_corpus_streamed(
        &cfg,
        None,
        &dir,
        &StreamConfig { abort_after_shards: Some(2), ..shard.clone() },
    )
    .expect("aborted run");
    assert!(partial.aborted);
    assert_eq!(partial.shards_replayed, 2);
    assert!(partial.total_shards > 2, "corpus must span more than 2 shards");

    // Second run resumes: exactly the 2 completed shards are reused.
    let (store, resumed) =
        replay_corpus_streamed(&cfg, None, &dir, &shard).expect("resumed run");
    assert!(!resumed.aborted);
    assert_eq!(resumed.shards_resumed, 2, "manifest shards must be reused");
    assert_eq!(resumed.shards_replayed, resumed.total_shards - 2);
    assert!(store.all_complete());

    // And the result is indistinguishable from never having been killed.
    let (baseline_reports, baseline_stats) = in_memory_replay(&cfg, None);
    assert_eq!(render_reports(&streamed_reports(&store)), render_reports(&baseline_reports));
    assert_eq!(resumed.stats, baseline_stats);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_shard_is_re_replayed_not_trusted() {
    let cfg = tiny_corpus(31);
    let dir = store_dir("corrupt");
    let shard = StreamConfig { shard_size: 5, ..Default::default() };
    let (_store, first) = replay_corpus_streamed(&cfg, None, &dir, &shard).expect("first run");
    assert!(first.shards_replayed >= 2);

    // Flip one byte in the middle of shard 1's payload.
    let victim = dir.join("shards").join("shard-00001.asg");
    let mut bytes = std::fs::read(&victim).expect("read shard");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&victim, &bytes).expect("corrupt shard");

    let (store, second) = replay_corpus_streamed(&cfg, None, &dir, &shard).expect("second run");
    assert_eq!(second.shards_replayed, 1, "exactly the corrupted shard re-replays");
    assert_eq!(second.shards_resumed, second.total_shards - 1);

    let (baseline_reports, baseline_stats) = in_memory_replay(&cfg, None);
    assert_eq!(render_reports(&streamed_reports(&store)), render_reports(&baseline_reports));
    assert_eq!(second.stats, baseline_stats);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_injected_streamed_replay_matches_in_memory() {
    let cfg = tiny_corpus(47);
    let faults = FaultSpec::parse("seed=3;transient=0.6;io=0.4;panic=0.15;package=0.3")
        .expect("valid fault spec");
    let (baseline_reports, baseline_stats) = in_memory_replay(&cfg, Some(faults.clone()));
    assert!(
        baseline_stats.total_injected() > 0,
        "fault spec must actually fire for this test to mean anything"
    );

    let dir = store_dir("faulted");
    let (store, summary) = replay_corpus_streamed(
        &cfg,
        Some(faults),
        &dir,
        &StreamConfig { shard_size: 6, ..Default::default() },
    )
    .expect("faulted streamed replay");
    assert_eq!(
        render_reports(&streamed_reports(&store)),
        render_reports(&baseline_reports),
        "fault injection must be shard-invariant (notebook-indexed, not stream-indexed)"
    );
    assert_eq!(summary.stats, baseline_stats);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Wire renderings of every suggestion kind — the served-behaviour
/// fingerprint (same idiom as `retrain_equivalence.rs`).
fn fingerprint(system: &AutoSuggest) -> Vec<String> {
    let customers = DataFrame::from_columns(vec![
        ("customer_id", (0..24).map(Cell::Int).collect()),
        (
            "segment",
            (0..24).map(|i| Cell::Str(["retail", "wholesale"][i % 2].to_string())).collect(),
        ),
        ("balance", (0..24).map(|i| Cell::Float(i as f64 * 1.5)).collect()),
    ])
    .unwrap();
    let orders = DataFrame::from_columns(vec![
        ("customer_id", (0..24).map(|i| Cell::Int(i % 8)).collect()),
        ("total", (0..24).map(|i| Cell::Float(100.0 + i as f64)).collect()),
    ])
    .unwrap();
    let sales = DataFrame::from_columns(vec![
        ("region", (0..32).map(|i| Cell::Str(["n", "s", "e", "w"][i % 4].to_string())).collect()),
        ("year", (0..32).map(|i| Cell::Int(2020 + (i as i64 % 3))).collect()),
        ("revenue", (0..32).map(|i| Cell::Float(i as f64 * 7.25)).collect()),
    ])
    .unwrap();
    let wide = DataFrame::from_columns(vec![
        ("id", (0..16).map(Cell::Int).collect()),
        ("q1", (0..16).map(|i| Cell::Float(i as f64)).collect()),
        ("q2", (0..16).map(|i| Cell::Float(i as f64 + 0.5)).collect()),
    ])
    .unwrap();
    let requests = [
        SuggestRequest::Join { left: &customers, right: &orders, top_k: 3 },
        SuggestRequest::GroupBy { table: &sales },
        SuggestRequest::Pivot { table: &sales, dims: &[0, 1] },
        SuggestRequest::Unpivot { table: &wide },
    ];
    requests.iter().map(|r| wire::encode_response(&system.suggest(r)).to_string()).collect()
}

#[test]
fn train_streamed_serves_the_same_bits_as_train() {
    let config = AutoSuggestConfig {
        corpus: tiny_corpus(3),
        ..AutoSuggestConfig::fast(3)
    };
    let direct = AutoSuggest::train(config.clone());

    let dir = store_dir("train");
    let streamed =
        AutoSuggest::train_streamed(config, &dir, 6).expect("streamed training");

    assert_eq!(fingerprint(&streamed), fingerprint(&direct), "served suggestions diverged");
    assert_eq!(streamed.reports.len(), direct.reports.len());
    assert_eq!(streamed.filter_stats, direct.filter_stats);
    assert_eq!(streamed.robustness, direct.robustness);
    assert_eq!(streamed.train.nextop.len(), direct.train.nextop.len());
    let _ = std::fs::remove_dir_all(&dir);
}
