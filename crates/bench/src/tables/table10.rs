//! Table 10: distribution of operators in data flows.

use super::{render_table, ReproContext, TableRow};
use autosuggest_corpus::stats::operator_distribution;

/// Our computed rows only (golden-file regression surface).
pub fn rows(ctx: &ReproContext) -> Vec<TableRow> {
    operator_distribution(&ctx.system.reports)
        .into_iter()
        .map(|(op, frac)| TableRow::new(op.as_str(), vec![frac]))
        .collect()
}

pub fn run(ctx: &ReproContext) -> String {
    let ours = rows(ctx);
    let paper = vec![
        TableRow::new("groupby", vec![0.333]),
        TableRow::new("join", vec![0.276]),
        TableRow::new("concat", vec![0.122]),
        TableRow::new("dropna", vec![0.108]),
        TableRow::new("fillna", vec![0.096]),
        TableRow::new("pivot", vec![0.041]),
        TableRow::new("unpivot", vec![0.024]),
    ];
    render_table(
        "Table 10: Operator distribution in data flows",
        &["fraction"],
        &ours,
        &paper,
    )
}
