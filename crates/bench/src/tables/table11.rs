//! Table 11: next-operator prediction.

use super::{render_table, ReproContext, TableRow};
use autosuggest_baselines::nextop::RandomNextOp;
use autosuggest_ranking::{mean, precision_at_k, recall_at_k};

fn evaluate<R>(ctx: &ReproContext, mut rank: R) -> Vec<f64>
where
    R: FnMut(usize, &[usize], &[f64]) -> Vec<usize>,
{
    let mut p1 = Vec::new();
    let mut p2 = Vec::new();
    let mut r1 = Vec::new();
    let mut r2 = Vec::new();
    for (i, ex) in ctx.system.test.nextop.iter().enumerate() {
        let order = rank(i, &ex.prefix, &ex.table_scores);
        let ranked: Vec<bool> = order.iter().map(|&o| o == ex.label).collect();
        p1.push(precision_at_k(&ranked, 1, 1));
        p2.push(precision_at_k(&ranked, 1, 2));
        r1.push(recall_at_k(&ranked, 1, 1));
        r2.push(recall_at_k(&ranked, 1, 2));
    }
    vec![mean(&p1), mean(&p2), mean(&r1), mean(&r2)]
}

/// Our computed rows only (golden-file regression surface).
pub fn rows(ctx: &ReproContext) -> Vec<TableRow> {
    let m = &ctx.system.models;
    let random = RandomNextOp::new(99);
    // The learned models score the whole test set through the batched
    // (length-bucketed, scratch-reusing) prediction path; each row of the
    // result is bit-identical to a per-query `predict_ranked` call, so the
    // golden surface is unchanged.
    let queries: Vec<(&[usize], &[f64])> = ctx
        .system
        .test
        .nextop
        .iter()
        .map(|ex| (ex.prefix.as_slice(), ex.table_scores.as_slice()))
        .collect();
    let full = m.nextop_full.predict_ranked_batch(&queries);
    let rnn_only = m.nextop_rnn_only.predict_ranked_batch(&queries);
    let single = m.nextop_single_ops.predict_ranked_batch(&queries);
    vec![
        TableRow::new("Auto-Suggest", evaluate(ctx, |i, _, _| full[i].clone())),
        TableRow::new("RNN", evaluate(ctx, |i, _, _| rnn_only[i].clone())),
        TableRow::new(
            "N-gram model",
            evaluate(ctx, |_, p, _| m.ngram.predict_ranked(p)),
        ),
        TableRow::new(
            "Single-Operators",
            evaluate(ctx, |i, _, _| single[i].clone()),
        ),
        TableRow::new("Random", evaluate(ctx, |i, _, _| random.predict_ranked(i))),
    ]
}

pub fn run(ctx: &ReproContext) -> String {
    let ours = rows(ctx);
    let paper = vec![
        TableRow::new("Auto-Suggest", vec![0.72, 0.79, 0.72, 0.85]),
        TableRow::new("RNN", vec![0.56, 0.68, 0.56, 0.77]),
        TableRow::new("N-gram model", vec![0.40, 0.53, 0.40, 0.66]),
        TableRow::new("Single-Operators", vec![0.32, 0.41, 0.32, 0.50]),
        TableRow::new("Random", vec![0.23, 0.35, 0.24, 0.42]),
    ];
    format!(
        "{}\n({} test next-op queries; our ground truth has exactly one \
relevant operator per query, so prec@k uses the paper's no-tail-penalty \
convention and coincides with recall@k)\n",
        render_table(
            "Table 11: Next-operator prediction",
            &["prec@1", "prec@2", "rec@1", "rec@2"],
            &ours,
            &paper,
        ),
        ctx.system.test.nextop.len()
    )
}
