//! Shared evaluation context and table rendering for the `repro` binary.

pub mod ablations;
pub mod table10;
pub mod table11;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table8;
pub mod table9;

use autosuggest_baselines::groupby::SqlHistory;
use autosuggest_core::groupby::labelled_columns;
use autosuggest_core::pipeline::StageTiming;
use autosuggest_core::{AutoSuggest, AutoSuggestConfig};

/// One row of a rendered table: a method name and its metric values.
#[derive(Debug, Clone)]
pub struct TableRow {
    pub method: String,
    pub values: Vec<f64>,
}

impl TableRow {
    pub fn new(method: impl Into<String>, values: Vec<f64>) -> Self {
        TableRow { method: method.into(), values }
    }
}

/// A table's machine-readable evaluator: our computed rows, without the
/// paper's reference rows or rendering.
pub type RowsFn = fn(&ReproContext) -> Vec<TableRow>;

/// Every table under golden-file regression (tests/repro_goldens.rs).
/// The ablations are excluded: they retrain GBDTs and would dominate the
/// test-suite wall-clock for numbers the main tables already pin down.
pub const GOLDEN_TABLES: &[(&str, RowsFn)] = &[
    ("table2", table2::rows),
    ("table3", table3::rows),
    ("table4", table4::rows),
    ("table5", table5::rows),
    ("table6", table6::rows),
    ("table7", table6::importance_rows),
    ("table8", table8::rows),
    ("table9", table9::rows),
    ("table10", table10::rows),
    ("table11", table11::rows),
];

/// Everything the per-table evaluators need: the trained system plus
/// history-based baselines fit on the training split.
pub struct ReproContext {
    pub system: AutoSuggest,
    pub sql_history: SqlHistory,
}

impl ReproContext {
    /// Train the full system and the training-data-dependent baselines.
    pub fn build(config: AutoSuggestConfig) -> ReproContext {
        Self::build_timed(config).0
    }

    /// [`ReproContext::build`], also returning the pipeline's per-stage
    /// wall-clock timings (for `repro --timing`).
    pub fn build_timed(config: AutoSuggestConfig) -> (ReproContext, Vec<StageTiming>) {
        let (system, timings) = AutoSuggest::train_timed(config);
        let mut sql_history = SqlHistory::new();
        for inv in &system.train.groupby {
            if let Some(df) = inv.inputs.first() {
                for (ci, is_gb) in labelled_columns(inv) {
                    sql_history.observe(df.column_at(ci).name(), is_gb);
                }
            }
        }
        (ReproContext { system, sql_history }, timings)
    }
}

/// Render a table: header, our rows, and (optionally) the paper's reported
/// rows for side-by-side comparison.
pub fn render_table(
    title: &str,
    metric_names: &[&str],
    ours: &[TableRow],
    paper: &[TableRow],
) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let width = ours
        .iter()
        .chain(paper)
        .map(|r| r.method.len())
        .max()
        .unwrap_or(10)
        .max(12);
    out.push_str(&format!("{:w$}", "method", w = width + 2));
    for m in metric_names {
        out.push_str(&format!("{m:>10}"));
    }
    out.push('\n');
    for row in ours {
        out.push_str(&format!("{:w$}", row.method, w = width + 2));
        for v in &row.values {
            out.push_str(&format!("{v:>10.3}"));
        }
        out.push('\n');
    }
    if !paper.is_empty() {
        out.push_str(&format!(
            "{:-<w$}\n",
            "-- paper reports ",
            w = width + 2 + 10 * metric_names.len()
        ));
        for row in paper {
            out.push_str(&format!("{:w$}", row.method, w = width + 2));
            for v in &row.values {
                out.push_str(&format!("{v:>10.3}"));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_formats_rows_and_paper_section() {
        let s = render_table(
            "Table X",
            &["prec@1"],
            &[TableRow::new("ours", vec![0.9])],
            &[TableRow::new("paper-baseline", vec![0.5])],
        );
        assert!(s.contains("Table X"));
        assert!(s.contains("ours"));
        assert!(s.contains("0.900"));
        assert!(s.contains("paper-baseline"));
    }
}
