//! Table 3: join column prediction quality.

use super::{render_table, ReproContext, TableRow};
use autosuggest_baselines::join::{Holistic, JoinBaseline, MaxOverlap, MlFk, Multi, PowerPivot};
use autosuggest_baselines::vendors::{VendorA, VendorB, VendorC};
use autosuggest_core::join::{candidates_with_truth, ground_truth_candidate};
use autosuggest_corpus::replay::OpInvocation;
use autosuggest_ranking::{mean, ndcg_at_k, precision_at_k};

/// Per-method metrics over a set of join cases: prec@1, prec@2, ndcg@1,
/// ndcg@2.
fn evaluate<R>(cases: &[&OpInvocation], ctx: &ReproContext, mut rank: R) -> Vec<f64>
where
    R: FnMut(&OpInvocation, &[autosuggest_features::JoinCandidate]) -> Vec<usize>,
{
    let params = ctx
        .system
        .models
        .join
        .as_ref()
        .expect("join model trained")
        .candidate_params();
    let mut p1 = Vec::new();
    let mut p2 = Vec::new();
    let mut n1 = Vec::new();
    let mut n2 = Vec::new();
    for inv in cases {
        let Some(truth) = ground_truth_candidate(inv) else { continue };
        let cands =
            candidates_with_truth(&inv.inputs[0], &inv.inputs[1], &truth, params);
        let order = rank(inv, &cands);
        let ranked: Vec<bool> = order.iter().map(|&i| cands[i] == truth).collect();
        p1.push(precision_at_k(&ranked, 1, 1));
        p2.push(precision_at_k(&ranked, 1, 2));
        n1.push(ndcg_at_k(&ranked, 1, 1));
        n2.push(ndcg_at_k(&ranked, 1, 2));
    }
    vec![mean(&p1), mean(&p2), mean(&n1), mean(&n2)]
}

/// Our computed rows only (golden-file regression surface).
pub fn rows(ctx: &ReproContext) -> Vec<TableRow> {
    let model = ctx.system.models.join.as_ref().expect("join model trained");
    let cases: Vec<&OpInvocation> = ctx.system.test.join.iter().collect();

    let mut ours = vec![TableRow::new(
        "Auto-Suggest",
        evaluate(&cases, ctx, |inv, cands| {
            model.rank_candidates(&inv.inputs[0], &inv.inputs[1], cands)
        }),
    )];
    let literature: Vec<(&str, Box<dyn JoinBaseline>)> = vec![
        ("ML-FK", Box::new(MlFk)),
        ("PowerPivot", Box::new(PowerPivot)),
        ("Multi", Box::new(Multi)),
        ("Holistic", Box::new(Holistic)),
        ("max-overlap", Box::new(MaxOverlap)),
    ];
    for (name, method) in &literature {
        ours.push(TableRow::new(
            *name,
            evaluate(&cases, ctx, |inv, cands| {
                method.rank(&inv.inputs[0], &inv.inputs[1], cands)
            }),
        ));
    }
    // Vendors: evaluated on a sample of up to 200 cases (the paper cannot
    // script the vendor UIs; we keep the protocol for comparability).
    let sample: Vec<&OpInvocation> = cases.iter().take(200).copied().collect();
    let vendors: Vec<(&str, Box<dyn JoinBaseline>)> = vec![
        ("Vendor-A", Box::new(VendorA)),
        ("Vendor-B", Box::new(VendorB)),
        ("Vendor-C", Box::new(VendorC)),
    ];
    ours.push(TableRow::new(
        "Auto-Suggest (sampled)",
        evaluate(&sample, ctx, |inv, cands| {
            model.rank_candidates(&inv.inputs[0], &inv.inputs[1], cands)
        }),
    ));
    for (name, method) in &vendors {
        ours.push(TableRow::new(
            *name,
            evaluate(&sample, ctx, |inv, cands| {
                method.rank(&inv.inputs[0], &inv.inputs[1], cands)
            }),
        ));
    }
    ours
}

/// Run the Table 3 evaluation; returns the rendered table.
pub fn run(ctx: &ReproContext) -> String {
    let ours = rows(ctx);

    let paper = vec![
        TableRow::new("Auto-Suggest", vec![0.89, 0.92, 0.89, 0.93]),
        TableRow::new("ML-FK", vec![0.84, 0.87, 0.84, 0.87]),
        TableRow::new("PowerPivot", vec![0.31, 0.44, 0.31, 0.48]),
        TableRow::new("Multi", vec![0.33, 0.40, 0.33, 0.41]),
        TableRow::new("Holistic", vec![0.57, 0.63, 0.57, 0.65]),
        TableRow::new("max-overlap", vec![0.53, 0.61, 0.53, 0.63]),
        TableRow::new("Auto-Suggest (sampled)", vec![0.92, f64::NAN, 0.92, f64::NAN]),
        TableRow::new("Vendor-A", vec![0.76, f64::NAN, 0.76, f64::NAN]),
        TableRow::new("Vendor-C", vec![0.42, f64::NAN, 0.42, f64::NAN]),
        TableRow::new("Vendor-B", vec![0.33, f64::NAN, 0.33, f64::NAN]),
    ];
    format!(
        "{}\n({} test join cases)\n",
        render_table(
            "Table 3: Join column prediction",
            &["prec@1", "prec@2", "ndcg@1", "ndcg@2"],
            &ours,
            &paper,
        ),
        ctx.system.test.join.len()
    )
}
