//! Ablation studies for the design choices DESIGN.md §4 calls out.

use super::{render_table, ReproContext, TableRow};
use autosuggest_core::join::{candidates_with_truth, ground_truth_candidate};
use autosuggest_core::pivot::{melt_ground_truth, pivot_ground_truth};
use autosuggest_features::{
    join_features_batch, JoinCandidate, JOIN_FEATURE_GROUPS, JOIN_FEATURE_NAMES,
};
use autosuggest_gbdt::{Dataset, Gbdt};
use autosuggest_graph::{ampt_exact, ampt_min_cut, cmut_exhaustive, cmut_greedy};
use autosuggest_ranking::mean;

/// AMPT: exact enumeration vs. the Stoer–Wagner min-cut reduction, on the
/// learned affinity graphs of the test pivot cases.
pub fn ampt(ctx: &ReproContext) -> String {
    let model = ctx.system.models.pivot.as_ref().expect("pivot model");
    let mut agree = Vec::new();
    let mut gap = Vec::new();
    for inv in &ctx.system.test.pivot {
        let Some((index, header)) = pivot_ground_truth(inv) else { continue };
        let dims: Vec<usize> = index.iter().chain(&header).copied().collect();
        if dims.len() < 2 || dims.len() > 16 {
            continue;
        }
        let g = model.compatibility().graph(&inv.inputs[0], &dims);
        let (Some(exact), Some(fast)) = (ampt_exact(&g), ampt_min_cut(&g)) else {
            continue;
        };
        agree.push(if exact.index == fast.index || exact.index == fast.header {
            1.0
        } else {
            0.0
        });
        gap.push(exact.objective - fast.objective);
    }
    let rows = vec![
        TableRow::new("partition agreement", vec![mean(&agree)]),
        TableRow::new("mean objective gap (exact - mincut)", vec![mean(&gap)]),
        TableRow::new("cases", vec![agree.len() as f64]),
    ];
    render_table(
        "Ablation: AMPT exact vs. Stoer-Wagner min-cut (negative affinities shifted)",
        &["value"],
        &rows,
        &[],
    )
}

/// CMUT: the paper's greedy vs. exhaustive search on test melt graphs small
/// enough to brute-force.
pub fn cmut(ctx: &ReproContext) -> String {
    let model = ctx.system.models.unpivot.as_ref().expect("unpivot model");
    let compat = {
        // Reuse the shared compatibility model through the pivot predictor.
        ctx.system.models.pivot.as_ref().expect("pivot model").compatibility()
    };
    let _ = model;
    let mut agree = Vec::new();
    let mut ratio = Vec::new();
    for inv in &ctx.system.test.melt {
        let Some((_ids, _vals)) = melt_ground_truth(inv) else { continue };
        let n = inv.inputs[0].num_columns();
        if !(3..=16).contains(&n) {
            continue;
        }
        let cols: Vec<usize> = (0..n).collect();
        let g = compat.graph(&inv.inputs[0], &cols);
        let (Some(greedy), Some(exact)) = (cmut_greedy(&g), cmut_exhaustive(&g)) else {
            continue;
        };
        agree.push(if greedy.selected == exact.selected { 1.0 } else { 0.0 });
        if exact.objective.abs() > 1e-9 {
            ratio.push(greedy.objective / exact.objective);
        }
    }
    let rows = vec![
        TableRow::new("selection agreement", vec![mean(&agree)]),
        TableRow::new("mean objective ratio (greedy/exact)", vec![mean(&ratio)]),
        TableRow::new("cases", vec![agree.len() as f64]),
    ];
    render_table(
        "Ablation: CMUT greedy vs. exhaustive (n <= 16)",
        &["value"],
        &rows,
        &[],
    )
}

/// Join feature-group knockouts: retrain the ranker with one feature group
/// zeroed and report the prec@1 drop — the causal counterpart of Table 4.
pub fn join_knockout(ctx: &ReproContext) -> String {
    let gbdt = &ctx.system.config.gbdt;
    let cand_params = &ctx.system.config.candidates;
    let groups: Vec<&str> = {
        let mut g: Vec<&str> = JOIN_FEATURE_GROUPS.iter().map(|&(_, n)| n).collect();
        g.dedup();
        g
    };

    let build = |knockout: Option<&str>| -> f64 {
        let zeroed: Vec<usize> = JOIN_FEATURE_GROUPS
            .iter()
            .filter(|&&(_, n)| Some(n) == knockout)
            .map(|&(i, _)| i)
            .collect();
        let mask = |mut v: Vec<f64>| -> Vec<f64> {
            for &i in &zeroed {
                v[i] = 0.0;
            }
            v
        };
        // Train.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for inv in &ctx.system.train.join {
            let Some(truth) = ground_truth_candidate(inv) else { continue };
            let cands =
                candidates_with_truth(&inv.inputs[0], &inv.inputs[1], &truth, cand_params);
            let mut kept: Vec<JoinCandidate> = Vec::with_capacity(cands.len());
            let mut negs = 0;
            for cand in &cands {
                let is_truth = *cand == truth;
                if !is_truth {
                    negs += 1;
                    if negs > 40 {
                        continue;
                    }
                }
                kept.push(cand.clone());
                labels.push(if is_truth { 1.0 } else { 0.0 });
            }
            rows.extend(
                join_features_batch(&inv.inputs[0], &inv.inputs[1], &kept)
                    .into_iter()
                    .map(|f| mask(f.values)),
            );
        }
        let names = JOIN_FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
        let data = Dataset::new(names, rows, labels).expect("rectangular");
        let model = Gbdt::fit(&data, gbdt);
        // Evaluate prec@1.
        let mut hits = Vec::new();
        for inv in &ctx.system.test.join {
            let Some(truth) = ground_truth_candidate(inv) else { continue };
            let cands =
                candidates_with_truth(&inv.inputs[0], &inv.inputs[1], &truth, cand_params);
            // Featurise the pool once (batch path hashes each distinct key
            // tuple once per table) and compare predicted scores; `max_by`
            // tie-breaking (last max wins) matches the previous pairwise form.
            let scores: Vec<f64> = join_features_batch(&inv.inputs[0], &inv.inputs[1], &cands)
                .into_iter()
                .map(|f| model.predict(&mask(f.values)))
                .collect();
            let best = scores
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| i)
                .expect("candidates non-empty");
            hits.push(if cands[best] == truth { 1.0 } else { 0.0 });
        }
        mean(&hits)
    };

    let baseline = build(None);
    let mut rows = vec![TableRow::new("all features", vec![baseline, 0.0])];
    for g in groups {
        let acc = build(Some(g));
        rows.push(TableRow::new(format!("- {g}"), vec![acc, baseline - acc]));
    }
    render_table(
        "Ablation: join feature-group knockouts",
        &["prec@1", "drop"],
        &rows,
        &[],
    )
}
