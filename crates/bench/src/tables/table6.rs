//! Tables 6 and 7: GroupBy column prediction and feature importances.

use super::{render_table, ReproContext, TableRow};
use autosuggest_baselines::groupby::{
    coarse_type_scores, fine_type_scores, min_cardinality_scores, rank_desc,
};
use autosuggest_baselines::vendors::{vendor_b_groupby_scores, vendor_c_groupby_scores};
use autosuggest_core::groupby::labelled_columns;
use autosuggest_dataframe::DataFrame;
use autosuggest_ranking::{mean, ndcg_at_k, precision_at_k};

/// Evaluate a per-table column scorer: prec@1/2, ndcg@1/2 over the labelled
/// columns, plus table-level full accuracy (every GroupBy column ranked
/// above every Aggregation column).
fn evaluate<S>(ctx: &ReproContext, mut scorer: S) -> Vec<f64>
where
    S: FnMut(&DataFrame) -> Vec<f64>,
{
    let mut p1 = Vec::new();
    let mut p2 = Vec::new();
    let mut n1 = Vec::new();
    let mut n2 = Vec::new();
    let mut full = Vec::new();
    for inv in &ctx.system.test.groupby {
        let df = &inv.inputs[0];
        let labels = labelled_columns(inv);
        if labels.is_empty() {
            continue;
        }
        let all_scores = scorer(df);
        // Restrict the ranking to the columns the author actually used —
        // unused columns have no ground-truth role.
        let mut used: Vec<(usize, bool)> = labels.clone();
        used.sort_by(|a, b| {
            all_scores[b.0]
                .total_cmp(&all_scores[a.0])
                .then(a.0.cmp(&b.0))
        });
        let ranked: Vec<bool> = used.iter().map(|&(_, is_gb)| is_gb).collect();
        let num_relevant = ranked.iter().filter(|&&r| r).count();
        p1.push(precision_at_k(&ranked, num_relevant, 1));
        p2.push(precision_at_k(&ranked, num_relevant, 2));
        n1.push(ndcg_at_k(&ranked, num_relevant, 1));
        n2.push(ndcg_at_k(&ranked, num_relevant, 2));
        // Full accuracy: no aggregation column ranked above a groupby one.
        let first_agg = ranked.iter().position(|&r| !r).unwrap_or(ranked.len());
        full.push(if ranked[first_agg..].iter().all(|&r| !r) { 1.0 } else { 0.0 });
    }
    vec![mean(&p1), mean(&p2), mean(&n1), mean(&n2), mean(&full)]
}

/// Our computed Table 6 rows only (golden-file regression surface).
pub fn rows(ctx: &ReproContext) -> Vec<TableRow> {
    let model = ctx
        .system
        .models
        .groupby
        .as_ref()
        .expect("groupby model trained");
    vec![
        TableRow::new("Auto-Suggest", evaluate(ctx, |df| model.scores(df))),
        TableRow::new("SQL-history", evaluate(ctx, |df| ctx.sql_history.scores(df))),
        TableRow::new("Coarse-grained-types", evaluate(ctx, coarse_type_scores)),
        TableRow::new("Fine-grained-types", evaluate(ctx, fine_type_scores)),
        TableRow::new("Min-Cardinality", evaluate(ctx, min_cardinality_scores)),
        TableRow::new("Vendor-B", evaluate(ctx, vendor_b_groupby_scores)),
        TableRow::new("Vendor-C", evaluate(ctx, vendor_c_groupby_scores)),
    ]
}

/// Table 6.
pub fn run(ctx: &ReproContext) -> String {
    let ours = rows(ctx);
    let paper = vec![
        TableRow::new("Auto-Suggest", vec![0.95, 0.97, 0.95, 0.98, 0.93]),
        TableRow::new("SQL-history", vec![0.58, 0.61, 0.58, 0.63, 0.53]),
        TableRow::new("Coarse-grained-types", vec![0.47, 0.52, 0.47, 0.54, 0.46]),
        TableRow::new("Fine-grained-types", vec![0.31, 0.40, 0.31, 0.42, 0.38]),
        TableRow::new("Min-Cardinality", vec![0.68, 0.83, 0.68, 0.86, 0.68]),
        TableRow::new("Vendor-B", vec![0.56, 0.71, 0.56, 0.75, 0.45]),
        TableRow::new("Vendor-C", vec![0.71, 0.82, 0.71, 0.85, 0.67]),
    ];
    format!(
        "{}\n({} test groupby cases)\n",
        render_table(
            "Table 6: GroupBy column prediction",
            &["prec@1", "prec@2", "ndcg@1", "ndcg@2", "full-acc"],
            &ours,
            &paper,
        ),
        ctx.system.test.groupby.len()
    )
}

/// Our computed Table 7 rows only (golden-file regression surface).
pub fn importance_rows(ctx: &ReproContext) -> Vec<TableRow> {
    let model = ctx
        .system
        .models
        .groupby
        .as_ref()
        .expect("groupby model trained");
    model
        .importance_by_group()
        .into_iter()
        .map(|(group, imp)| TableRow::new(group, vec![imp]))
        .collect()
}

/// Table 7: GroupBy feature-group importances.
pub fn run_importance(ctx: &ReproContext) -> String {
    let ours = importance_rows(ctx);
    let paper = vec![
        TableRow::new("col-type", vec![0.78]),
        TableRow::new("col-name-freq", vec![0.11]),
        TableRow::new("distinct-val", vec![0.06]),
        TableRow::new("val-range", vec![0.02]),
        TableRow::new("left-ness", vec![0.01]),
        TableRow::new("peak-freq", vec![0.01]),
        TableRow::new("emptiness", vec![0.01]),
    ];
    render_table(
        "Table 7: GroupBy feature-group importance",
        &["importance"],
        &ours,
        &paper,
    )
}

/// Helper shared with tests: does a scorer rank all groupby columns above
/// all aggregation columns for one labelled case?
pub fn fully_correct(scores: &[f64], labels: &[(usize, bool)]) -> bool {
    let order = rank_desc(scores);
    let mut seen_agg = false;
    for idx in order {
        if let Some(&(_, is_gb)) = labels.iter().find(|&&(c, _)| c == idx) {
            if is_gb && seen_agg {
                return false;
            }
            if !is_gb {
                seen_agg = true;
            }
        }
    }
    true
}
