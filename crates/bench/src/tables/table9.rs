//! Table 9: Unpivot column selection.

use super::{render_table, ReproContext, TableRow};
use autosuggest_baselines::unpivot::{
    col_name_similarity_select, contiguous_type_select, data_type_select,
    pattern_similarity_select,
};
use autosuggest_core::pivot::melt_ground_truth;
use autosuggest_dataframe::DataFrame;
use autosuggest_ranking::{mean, set_prf};

fn evaluate<F>(ctx: &ReproContext, mut select: F) -> Vec<f64>
where
    F: FnMut(&DataFrame) -> Vec<usize>,
{
    let mut full = Vec::new();
    let mut precision = Vec::new();
    let mut recall = Vec::new();
    let mut f1 = Vec::new();
    for inv in &ctx.system.test.melt {
        let Some((_, mut truth)) = melt_ground_truth(inv) else { continue };
        truth.sort_unstable();
        let mut sel = select(&inv.inputs[0]);
        sel.sort_unstable();
        full.push(if sel == truth { 1.0 } else { 0.0 });
        let prf = set_prf(&sel, &truth);
        precision.push(prf.precision);
        recall.push(prf.recall);
        f1.push(prf.f1);
    }
    vec![mean(&full), mean(&precision), mean(&recall), mean(&f1)]
}

/// Our computed rows only (golden-file regression surface).
pub fn rows(ctx: &ReproContext) -> Vec<TableRow> {
    let model = ctx
        .system
        .models
        .unpivot
        .as_ref()
        .expect("unpivot model trained");
    vec![
        TableRow::new(
            "Auto-Suggest",
            evaluate(ctx, |df| {
                model.select(df).map(|s| s.selected).unwrap_or_default()
            }),
        ),
        TableRow::new("Pattern-similarity", evaluate(ctx, pattern_similarity_select)),
        TableRow::new(
            "Col-name-similarity",
            evaluate(ctx, col_name_similarity_select),
        ),
        TableRow::new("Data-type", evaluate(ctx, data_type_select)),
        TableRow::new("Contiguous-type", evaluate(ctx, contiguous_type_select)),
    ]
}

pub fn run(ctx: &ReproContext) -> String {
    let ours = rows(ctx);
    let paper = vec![
        TableRow::new("Auto-Suggest", vec![0.67, 0.93, 0.96, 0.94]),
        TableRow::new("Pattern-similarity", vec![0.21, 0.64, 0.46, 0.54]),
        TableRow::new("Col-name-similarity", vec![0.27, 0.71, 0.53, 0.61]),
        TableRow::new("Data-type", vec![0.44, 0.87, 0.92, 0.89]),
        TableRow::new("Contiguous-type", vec![0.46, 0.80, 0.83, 0.81]),
    ];
    format!(
        "{}\n({} test unpivot cases)\n",
        render_table(
            "Table 9: Unpivot column prediction",
            &["full-acc", "col-prec", "col-rec", "col-F1"],
            &ours,
            &paper,
        ),
        ctx.system.test.melt.len()
    )
}
