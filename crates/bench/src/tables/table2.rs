//! Tables 1–2: corpus statistics (at our ~1:40 generation scale).

use super::{render_table, ReproContext, TableRow};
use autosuggest_corpus::stats::corpus_stats;
use autosuggest_corpus::OpKind;

/// Map notebook-id archetype prefixes to the operator they target.
fn archetype_of(notebook_id: &str) -> Option<&'static str> {
    for tag in ["join", "groupby", "pivot", "unpivot", "json", "flow"] {
        if notebook_id.starts_with(&format!("nb-{tag}-")) {
            return Some(tag);
        }
    }
    None
}

fn stats_and_rows(ctx: &ReproContext) -> (autosuggest_corpus::stats::CorpusStats, Vec<TableRow>) {
    // Re-run filtering over the full invocation stream (including operators
    // like json_normalize that the predictors do not consume).
    let all: Vec<_> = ctx
        .system
        .reports
        .iter()
        .flat_map(|r| r.invocations.iter().cloned())
        .collect();
    let (filtered, _) = autosuggest_corpus::filter_invocations(all, 5);
    let stats = corpus_stats(&ctx.system.reports, &filtered);

    let ops = [
        ("join", OpKind::Merge),
        ("pivot", OpKind::Pivot),
        ("unpivot", OpKind::Melt),
        ("groupby", OpKind::GroupBy),
        ("json", OpKind::JsonNormalize),
    ];
    let mut rows = Vec::new();
    for (tag, op) in ops {
        let sampled = ctx
            .system
            .reports
            .iter()
            .filter(|r| archetype_of(&r.notebook_id) == Some(tag))
            .count();
        let counts = stats.per_operator.get(&op).cloned().unwrap_or_default();
        rows.push(TableRow::new(
            op.as_str(),
            vec![
                sampled as f64,
                counts.notebooks_replayed as f64,
                counts.operators_replayed as f64,
                counts.operators_post_filter as f64,
            ],
        ));
    }
    (stats, rows)
}

/// Our computed rows only (golden-file regression surface).
pub fn rows(ctx: &ReproContext) -> Vec<TableRow> {
    stats_and_rows(ctx).1
}

pub fn run(ctx: &ReproContext) -> String {
    let (stats, rows) = stats_and_rows(ctx);
    // Paper's Table 2 (counts in thousands at full GitHub scale).
    let paper = vec![
        TableRow::new("join (K)", vec![80.0, 12.6, 58.3, 11.2]),
        TableRow::new("pivot (K)", vec![68.9, 16.1, 79.0, 7.7]),
        TableRow::new("unpivot (K)", vec![16.8, 5.7, 7.2, 2.9]),
        TableRow::new("groupby (K)", vec![80.0, 9.6, 70.9, 8.9]),
        TableRow::new("json (K)", vec![8.3, 3.2, 4.3, 1.9]),
    ];
    format!(
        "{}\n(replayed {} of {} notebooks; failures: {} missing file, {} missing package, {} timeout, {} execution)\n",
        render_table(
            "Table 2: Corpus statistics (ours at ~1:40 scale; paper at GitHub scale)",
            &["#nb sampled", "#nb replayed", "#op replayed", "#op filtered"],
            &rows,
            &paper,
        ),
        stats.notebooks_replayed,
        stats.notebooks_total,
        stats.failures_missing_file,
        stats.failures_missing_package,
        stats.failures_timeout,
        stats.failures_execution,
    )
}
