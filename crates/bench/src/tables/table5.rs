//! Table 5: join type prediction.

use super::{render_table, ReproContext, TableRow};
use autosuggest_core::join::ground_truth_candidate;
use autosuggest_corpus::replay::OpParams;
use autosuggest_dataframe::ops::JoinType;

fn counts(ctx: &ReproContext) -> (usize, usize, usize) {
    let model = ctx
        .system
        .models
        .join_type
        .as_ref()
        .expect("join type model trained");
    let mut ours_hits = 0usize;
    let mut inner_hits = 0usize;
    let mut total = 0usize;
    for inv in &ctx.system.test.join {
        let OpParams::Merge { how, .. } = &inv.params else { continue };
        let Some(truth) = ground_truth_candidate(inv) else { continue };
        let pred = model.predict(&inv.inputs[0], &inv.inputs[1], &truth);
        total += 1;
        if pred == *how {
            ours_hits += 1;
        }
        if *how == JoinType::Inner {
            inner_hits += 1; // the vendor default always answers inner
        }
    }
    (ours_hits, inner_hits, total)
}

/// Our computed rows only (golden-file regression surface).
pub fn rows(ctx: &ReproContext) -> Vec<TableRow> {
    let (ours_hits, inner_hits, total) = counts(ctx);
    vec![
        TableRow::new("Auto-Suggest", vec![ours_hits as f64 / total.max(1) as f64]),
        TableRow::new(
            "Vendor-A (always inner)",
            vec![inner_hits as f64 / total.max(1) as f64],
        ),
    ]
}

pub fn run(ctx: &ReproContext) -> String {
    let (_, inner_hits, total) = counts(ctx);
    let ours = rows(ctx);
    let paper = vec![
        TableRow::new("Auto-Suggest", vec![0.88]),
        TableRow::new("Vendor-A (always inner)", vec![0.78]),
    ];
    format!(
        "{}\n({total} test cases; inner-join base rate {:.2})\n",
        render_table("Table 5: Join type prediction", &["prec@1"], &ours, &paper),
        inner_hits as f64 / total.max(1) as f64
    )
}
