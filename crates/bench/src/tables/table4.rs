//! Table 4: importance of feature groups for join column prediction.

use super::{render_table, ReproContext, TableRow};

pub fn run(ctx: &ReproContext) -> String {
    let model = ctx.system.models.join.as_ref().expect("join model trained");
    let ours: Vec<TableRow> = model
        .importance_by_group()
        .into_iter()
        .map(|(group, imp)| TableRow::new(group, vec![imp]))
        .collect();
    let paper = vec![
        TableRow::new("left-ness", vec![0.35]),
        TableRow::new("val-range-overlap", vec![0.35]),
        TableRow::new("distinct-val-ratio", vec![0.11]),
        TableRow::new("val-overlap", vec![0.05]),
        TableRow::new("single-col-candidate", vec![0.04]),
        TableRow::new("col-val-types", vec![0.01]),
        TableRow::new("table-stats", vec![0.01]),
        TableRow::new("sorted-ness", vec![0.01]),
    ];
    render_table(
        "Table 4: Join feature-group importance",
        &["importance"],
        &ours,
        &paper,
    )
}
