//! Table 4: importance of feature groups for join column prediction.

use super::{render_table, ReproContext, TableRow};

/// Our computed rows only (golden-file regression surface).
pub fn rows(ctx: &ReproContext) -> Vec<TableRow> {
    let model = ctx.system.models.join.as_ref().expect("join model trained");
    model
        .importance_by_group()
        .into_iter()
        .map(|(group, imp)| TableRow::new(group, vec![imp]))
        .collect()
}

pub fn run(ctx: &ReproContext) -> String {
    let ours = rows(ctx);
    let paper = vec![
        TableRow::new("left-ness", vec![0.35]),
        TableRow::new("val-range-overlap", vec![0.35]),
        TableRow::new("distinct-val-ratio", vec![0.11]),
        TableRow::new("val-overlap", vec![0.05]),
        TableRow::new("single-col-candidate", vec![0.04]),
        TableRow::new("col-val-types", vec![0.01]),
        TableRow::new("table-stats", vec![0.01]),
        TableRow::new("sorted-ness", vec![0.01]),
    ];
    render_table(
        "Table 4: Join feature-group importance",
        &["importance"],
        &ours,
        &paper,
    )
}
