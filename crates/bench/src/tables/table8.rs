//! Table 8: Pivot — splitting index vs. header columns.

use super::{render_table, ReproContext, TableRow};
use autosuggest_baselines::pivot::{
    affinity_split, balanced_split, min_emptiness_split, type_rules_split, Split,
};
use autosuggest_core::pivot::pivot_ground_truth;
use autosuggest_dataframe::DataFrame;
use autosuggest_graph::rand_index;
use autosuggest_ranking::mean;

fn score_split(pred: &Split, truth_index: &[usize], truth_header: &[usize], dims: &[usize]) -> (f64, f64) {
    let mut ti = truth_index.to_vec();
    ti.sort_unstable();
    let mut th = truth_header.to_vec();
    th.sort_unstable();
    let exact = (pred.index == ti && pred.header == th) as u8 as f64;
    let assign = |cols: &[usize], side0: &[usize]| -> Vec<usize> {
        cols.iter()
            .map(|c| usize::from(!side0.contains(c)))
            .collect()
    };
    let ri = rand_index(&assign(dims, &pred.index), &assign(dims, &ti));
    (exact, ri)
}

fn evaluate<F>(ctx: &ReproContext, mut split: F) -> Vec<f64>
where
    F: FnMut(&DataFrame, &[usize]) -> Option<Split>,
{
    let mut exact = Vec::new();
    let mut ri = Vec::new();
    for inv in &ctx.system.test.pivot {
        let Some((index, header)) = pivot_ground_truth(inv) else { continue };
        let mut dims: Vec<usize> = index.iter().chain(&header).copied().collect();
        dims.sort_unstable();
        if dims.len() < 2 {
            continue;
        }
        let Some(pred) = split(&inv.inputs[0], &dims) else { continue };
        let (e, r) = score_split(&pred, &index, &header, &dims);
        exact.push(e);
        ri.push(r);
    }
    vec![mean(&exact), mean(&ri)]
}

/// Our computed rows only (golden-file regression surface).
pub fn rows(ctx: &ReproContext) -> Vec<TableRow> {
    let model = ctx.system.models.pivot.as_ref().expect("pivot model trained");
    vec![
        TableRow::new(
            "Auto-Suggest",
            evaluate(ctx, |df, dims| {
                model.split(df, dims).map(|sol| Split {
                    index: sol.index.iter().map(|&i| dims[i]).collect(),
                    header: sol.header.iter().map(|&i| dims[i]).collect(),
                })
            }),
        ),
        TableRow::new("Affinity", evaluate(ctx, |df, dims| Some(affinity_split(df, dims)))),
        TableRow::new(
            "Type-Rules",
            evaluate(ctx, |df, dims| Some(type_rules_split(df, dims))),
        ),
        TableRow::new(
            "Min-Emptiness",
            evaluate(ctx, |df, dims| Some(min_emptiness_split(df, dims))),
        ),
        TableRow::new(
            "Balanced-Cut",
            evaluate(ctx, |df, dims| Some(balanced_split(df, dims))),
        ),
    ]
}

pub fn run(ctx: &ReproContext) -> String {
    let ours = rows(ctx);
    let paper = vec![
        TableRow::new("Auto-Suggest", vec![0.77, 0.87]),
        TableRow::new("Affinity", vec![0.42, 0.56]),
        TableRow::new("Type-Rules", vec![0.19, 0.55]),
        TableRow::new("Min-Emptiness", vec![0.46, 0.70]),
        TableRow::new("Balanced-Cut", vec![0.14, 0.55]),
    ];
    format!(
        "{}\n({} test pivot cases)\n",
        render_table(
            "Table 8: Pivot index/header split",
            &["full-acc", "rand-idx"],
            &ours,
            &paper,
        ),
        ctx.system.test.pivot.len()
    )
}
