//! Benchmark harness regenerating every table of the Auto-Suggest
//! evaluation (§6).
//!
//! The `repro` binary drives end-to-end reproduction: it generates the
//! synthetic corpus, replays it, trains all predictors, evaluates them and
//! every baseline, and prints each table of the paper side by side with the
//! paper's reported numbers. Criterion micro-benchmarks in `benches/` cover
//! the latency-sensitive pieces (candidate enumeration, AMPT/CMUT solvers,
//! GBDT scoring, DataFrame operators).

pub mod tables;

pub use tables::{ReproContext, TableRow};
