//! `repro` — regenerate every table of the Auto-Suggest evaluation.
//!
//! ```text
//! repro [--fast] [--seed N] all | table2 | table3 | table4 | table5 |
//!       table6 | table7 | table8 | table9 | table10 | table11 |
//!       ablation-ampt | ablation-cmut | ablation-join
//! ```
//!
//! `--fast` uses the small test-scale corpus (seconds instead of minutes);
//! the default corpus is the full ~1:40-scale generation DESIGN.md
//! describes. Output prints each reproduced table next to the paper's
//! reported numbers.

use autosuggest_bench::tables::{self, ReproContext};
use autosuggest_core::AutoSuggestConfig;
use autosuggest_corpus::CorpusConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut seed = 42u64;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer");
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }

    let mut config = if fast {
        AutoSuggestConfig::fast(seed)
    } else {
        AutoSuggestConfig::default()
    };
    config.corpus = if fast { CorpusConfig::small(seed) } else { CorpusConfig { seed, ..CorpusConfig::default() } };

    eprintln!(
        "[repro] generating corpus, replaying notebooks, training models (fast={fast}, seed={seed})..."
    );
    let t0 = std::time::Instant::now();
    let ctx = ReproContext::build(config);
    eprintln!(
        "[repro] pipeline trained in {:.1}s: {} join / {} groupby / {} pivot / {} melt test cases, {} next-op queries",
        t0.elapsed().as_secs_f64(),
        ctx.system.test.join.len(),
        ctx.system.test.groupby.len(),
        ctx.system.test.pivot.len(),
        ctx.system.test.melt.len(),
        ctx.system.test.nextop.len(),
    );

    for target in &targets {
        let all = target == "all";
        let run = |name: &str, f: &dyn Fn(&ReproContext) -> String| {
            if all || target == name {
                println!("{}", f(&ctx));
            }
        };
        run("table2", &tables::table2::run);
        run("table3", &tables::table3::run);
        run("table4", &tables::table4::run);
        run("table5", &tables::table5::run);
        run("table6", &tables::table6::run);
        run("table7", &tables::table6::run_importance);
        run("table8", &tables::table8::run);
        run("table9", &tables::table9::run);
        run("table10", &tables::table10::run);
        run("table11", &tables::table11::run);
        run("ablation-ampt", &tables::ablations::ampt);
        run("ablation-cmut", &tables::ablations::cmut);
        run("ablation-join", &tables::ablations::join_knockout);
    }
}
