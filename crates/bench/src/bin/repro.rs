//! `repro` — regenerate every table of the Auto-Suggest evaluation.
//!
//! ```text
//! repro [--fast] [--seed N] [--timing] [--trace PATH] [--cache-stats]
//!       [--gbdt-hist]
//!       [--corpus-scale N] [--store-dir PATH] [--shard-size K]
//!       all | table2 | table3 | table4 | table5 | table6 | table7 |
//!       table8 | table9 | table10 | table11 | ablation-ampt |
//!       ablation-cmut | ablation-join
//! ```
//!
//! `--corpus-scale N` is a standalone mode: instead of training, it
//! generates and replays an N-notebook corpus (default archetype mix)
//! through the disk-backed streamed pipeline — shard by shard into a
//! `SampleStore` under `--store-dir` (default: a seed/scale-keyed
//! directory under the system temp dir) — then streams the store back to
//! print deterministic per-scenario replay stats on stdout (byte-identical
//! at any `AUTOSUGGEST_THREADS`). Memory stays bounded by `--shard-size`
//! notebooks, not by N. A killed run resumes from the store's shard
//! manifest (`AUTOSUGGEST_SCALE_ABORT=K` stops after K new shards, to
//! exercise exactly that). With `--timing`, BENCH_repro.json gets a
//! `"corpus_scale"` section including the peak-RSS gauge.
//!
//! `--fast` uses the small test-scale corpus (seconds instead of minutes);
//! the default corpus is the full ~1:40-scale generation DESIGN.md
//! describes. Output prints each reproduced table next to the paper's
//! reported numbers.
//!
//! `--timing` additionally writes `BENCH_repro.json` to the current
//! directory with per-stage pipeline timings, per-table wall-clock,
//! per-stage histograms from the obs layer, the thread count used
//! (see `AUTOSUGGEST_THREADS`), and a `"training"` breakdown (RNN and
//! GBDT trainer wall-clock plus deterministic work counters: batches,
//! examples, nodes split, histogram bins built). It also gains a
//! `"retrain"` section: a smaller base snapshot is trained, incrementally
//! retrained up to the full corpus via the core `RetrainPlanner`, and
//! compared against the full training run — wall-clock side by side, and
//! an asserted bit-identical served-suggestion check over held-out probe
//! requests.
//!
//! `--trace PATH` writes the full observability trace: the span tree
//! (generate/replay/train/evaluate, down to per-notebook replay), every
//! counter and gauge, and timing histograms. The `"deterministic"`
//! section is byte-identical at any `AUTOSUGGEST_THREADS`; only the
//! `"timing"` section varies run to run.
//!
//! `--cache-stats` prints the content-addressed cache's cumulative
//! per-tier counters after the run — column artifacts, key-tuple sets,
//! pair overlaps, and the optional disk shard store
//! (`AUTOSUGGEST_CACHE=0` disables the in-memory tiers;
//! `AUTOSUGGEST_CACHE_DIR` attaches the disk tier). With `--timing`,
//! BENCH_repro.json additionally gains a `"cache"` section with per-tier
//! counters and an off/cold/warm/disk-warm featurisation sweep over the
//! held-out tables (a throwaway shard directory is attached for the
//! sweep when none is configured).
//!
//! `--gbdt-hist` trains every GBDT with the histogram split kernel (≤256
//! bins, sibling subtraction) instead of the exact presorted scan. Tables
//! then agree with exact mode to statistical precision but are not
//! byte-identical — don't diff them against exact-mode goldens.
//!
//! Tables are evaluated concurrently on the shared work-stealing pool —
//! each evaluator is a pure function of the trained context, so results
//! are printed in canonical table order regardless of completion order.

use autosuggest_bench::tables::{self, ReproContext};
use autosuggest_core::{wire, AutoSuggest, AutoSuggestConfig, RetrainPlanner, SuggestRequest};
use autosuggest_corpus::CorpusConfig;
use autosuggest_obs as obs;
use serde_json::{json, Value};
use std::time::Instant;

type TableFn = fn(&ReproContext) -> String;

/// Canonical (name, evaluator) registry, in print order.
const TABLES: &[(&str, TableFn)] = &[
    ("table2", tables::table2::run),
    ("table3", tables::table3::run),
    ("table4", tables::table4::run),
    ("table5", tables::table5::run),
    ("table6", tables::table6::run),
    ("table7", tables::table6::run_importance),
    ("table8", tables::table8::run),
    ("table9", tables::table9::run),
    ("table10", tables::table10::run),
    ("table11", tables::table11::run),
    ("ablation-ampt", tables::ablations::ampt),
    ("ablation-cmut", tables::ablations::cmut),
    ("ablation-join", tables::ablations::join_knockout),
];

/// The featurisation workload for the cache sweep: enumerate join
/// candidates for every held-out join case, extract join features for the
/// full candidate pool (exercising the pair/tuple tiers), and score every
/// held-out groupby table. Returns a work count so the sweep phases can
/// assert they did identical work.
fn featurise_workload(ctx: &ReproContext) -> usize {
    let params = &ctx.system.config.candidates;
    let mut work = 0usize;
    for inv in &ctx.system.test.join {
        if inv.inputs.len() >= 2 {
            let cands = autosuggest_features::enumerate_join_candidates(
                &inv.inputs[0],
                &inv.inputs[1],
                params,
            );
            work +=
                autosuggest_features::join_features_batch(&inv.inputs[0], &inv.inputs[1], &cands)
                    .len();
        }
    }
    if let Some(gb) = &ctx.system.models.groupby {
        for inv in &ctx.system.test.groupby {
            if !inv.inputs.is_empty() {
                work += gb.scores(&inv.inputs[0]).len();
            }
        }
    }
    work
}

/// The `--corpus-scale N` mode: streamed generate + replay of an
/// N-notebook corpus at bounded RSS, resumable via the store's shard
/// manifest. Stdout carries only the deterministic per-scenario stats
/// (CI byte-diffs it across thread counts and resume boundaries);
/// wall-clock and RSS go to stderr and, with `--timing`, into the
/// `"corpus_scale"` section of BENCH_repro.json.
fn run_corpus_scale(
    scale: usize,
    seed: u64,
    shard_size: usize,
    store_dir: Option<String>,
    timing: bool,
) {
    let threads = autosuggest_parallel::current_threads();
    let cfg = CorpusConfig::scaled_to(seed, scale);
    let faults = autosuggest_corpus::FaultSpec::from_env();
    let root = store_dir.map(std::path::PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("autosuggest-scale-{seed}-{scale}"))
    });
    let abort_after = std::env::var("AUTOSUGGEST_SCALE_ABORT")
        .ok()
        .and_then(|s| s.parse::<usize>().ok());
    let opts = autosuggest_corpus::StreamConfig { shard_size, abort_after_shards: abort_after };
    eprintln!(
        "[repro] corpus-scale: {scale} notebooks, shard size {shard_size}, store {}, threads {threads}",
        root.display()
    );

    let t0 = Instant::now();
    let (store, summary) =
        match autosuggest_corpus::replay_corpus_streamed(&cfg, faults, &root, &opts) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("[repro] corpus-scale replay failed: {e}");
                std::process::exit(1);
            }
        };
    let replay_seconds = t0.elapsed().as_secs_f64();
    let peak_rss = obs::peak_rss_bytes().unwrap_or(0);
    obs::gauge_set("stream.peak_rss_bytes_live", peak_rss as f64);
    eprintln!(
        "[repro] corpus-scale: {} shards ({} replayed now, {} resumed from manifest{}), {} notebooks, {} invocations in {replay_seconds:.1}s, peak RSS {:.1} MiB",
        summary.total_shards,
        summary.shards_replayed,
        summary.shards_resumed,
        if summary.aborted { ", aborted early" } else { "" },
        summary.notebooks,
        summary.invocations,
        peak_rss as f64 / (1024.0 * 1024.0),
    );

    // Deterministic stdout: per-scenario replay slices streamed back out
    // of the store, one shard in memory at a time.
    match autosuggest_corpus::scan_scenario_stats(&store) {
        Ok(stats) => print!("{}", autosuggest_corpus::stream::render_scenario_stats(&stats)),
        Err(e) => {
            eprintln!("[repro] corpus-scale stats scan failed: {e}");
            std::process::exit(1);
        }
    }
    let total_seconds = t0.elapsed().as_secs_f64();

    if timing {
        let report = json!({
            "threads": threads,
            "seed": seed,
            "corpus_scale": {
                "requested_notebooks": scale,
                "notebooks": summary.notebooks,
                "invocations": summary.invocations,
                "shard_size": shard_size,
                "total_shards": summary.total_shards,
                "shards_replayed": summary.shards_replayed,
                "shards_resumed": summary.shards_resumed,
                "aborted": summary.aborted,
                "replay_seconds": replay_seconds,
                "total_seconds": total_seconds,
                "peak_rss_bytes": peak_rss,
            },
        });
        let path = "BENCH_repro.json";
        match std::fs::write(path, report.to_string()) {
            Ok(()) => eprintln!("[repro] wrote {path} ({total_seconds:.1}s total)"),
            Err(e) => eprintln!("[repro] failed to write {path}: {e}"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut timing = false;
    let mut cache_stats = false;
    let mut gbdt_hist = false;
    let mut seed = 42u64;
    let mut trace_path: Option<String> = None;
    let mut corpus_scale: Option<usize> = None;
    let mut store_dir: Option<String> = None;
    let mut shard_size = 256usize;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fast" => fast = true,
            "--timing" => timing = true,
            "--cache-stats" => cache_stats = true,
            "--gbdt-hist" => gbdt_hist = true,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--trace" => {
                trace_path = Some(it.next().expect("--trace takes a file path"));
            }
            "--corpus-scale" => {
                corpus_scale = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--corpus-scale takes a notebook count"),
                );
            }
            "--store-dir" => {
                store_dir = Some(it.next().expect("--store-dir takes a directory path"));
            }
            "--shard-size" => {
                shard_size = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--shard-size takes an integer");
            }
            other => targets.push(other.to_string()),
        }
    }
    if let Some(scale) = corpus_scale {
        run_corpus_scale(scale, seed, shard_size, store_dir, timing);
        return;
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    let all = targets.iter().any(|t| t == "all");
    for t in &targets {
        if t != "all" && !TABLES.iter().any(|(name, _)| name == t) {
            eprintln!("[repro] unknown target {t:?}");
            std::process::exit(2);
        }
    }

    let mut config = if fast {
        AutoSuggestConfig::fast(seed)
    } else {
        AutoSuggestConfig::default()
    };
    config.corpus = if fast { CorpusConfig::small(seed) } else { CorpusConfig { seed, ..CorpusConfig::default() } };
    config.gbdt.histogram = gbdt_hist;

    let threads = autosuggest_parallel::current_threads();
    eprintln!(
        "[repro] generating corpus, replaying notebooks, training models (fast={fast}, seed={seed}, threads={threads})..."
    );
    let repro_span = obs::span("repro");
    let t0 = Instant::now();
    let (ctx, stage_timings) = ReproContext::build_timed(config);
    let train_seconds = t0.elapsed().as_secs_f64();
    let rb = &ctx.system.robustness;
    if let Some(spec) = &rb.fault_spec {
        eprintln!(
            "[repro] fault injection active ({spec}): {} faults injected, {}/{} notebooks failed first pass, {} recovered on retry, {} quarantined, {} cell retries",
            rb.total_injected(),
            rb.failed_first_pass,
            rb.notebooks,
            rb.recovered_notebooks,
            rb.quarantined_notebooks,
            rb.cell_retries,
        );
    }
    eprintln!(
        "[repro] pipeline trained in {train_seconds:.1}s: {} join / {} groupby / {} pivot / {} melt test cases, {} next-op queries",
        ctx.system.test.join.len(),
        ctx.system.test.groupby.len(),
        ctx.system.test.pivot.len(),
        ctx.system.test.melt.len(),
        ctx.system.test.nextop.len(),
    );

    // Evaluate the selected tables across the pool; each task returns its
    // rendered output plus its own wall-clock so concurrency doesn't blur
    // per-table attribution.
    let selected: Vec<&(&str, TableFn)> = TABLES
        .iter()
        .filter(|(name, _)| all || targets.iter().any(|t| t == name))
        .collect();
    let eval_span = obs::span("evaluate");
    let results: Vec<(String, f64)> = autosuggest_parallel::par_map(&selected, |(name, f)| {
        let _table_span = obs::span(&format!("table:{name}"));
        let start = Instant::now();
        let out = f(&ctx);
        let secs = start.elapsed().as_secs_f64();
        obs::observe("evaluate.table_seconds", secs);
        (out, secs)
    });
    drop(eval_span);
    for (out, _) in &results {
        println!("{out}");
    }
    let total_seconds = t0.elapsed().as_secs_f64();
    drop(repro_span);
    let snapshot = obs::snapshot();

    // Cache counters accumulated by the run so far (training + table
    // evaluation). Snapshotted before the timing sweep below so the sweep's
    // own lookups don't pollute the run's numbers.
    let cache = autosuggest_cache::ColumnCache::global();
    let pair_cache = autosuggest_cache::PairCache::global();
    let run_tiers = autosuggest_cache::tier_stats();
    let run_stats = run_tiers.column;
    if cache_stats {
        let fmt = |s: autosuggest_cache::CacheStats| {
            format!(
                "{} hits / {} misses / {} evictions (hit rate {:.1}%)",
                s.hits,
                s.misses,
                s.evictions,
                s.hit_rate() * 100.0
            )
        };
        eprintln!(
            "[repro] cache column: enabled={} {}, {} interned columns",
            cache.enabled(),
            fmt(run_tiers.column),
            cache.len(),
        );
        let (tuple_len, pair_len) = pair_cache.len();
        eprintln!(
            "[repro] cache tuple:  enabled={} {}, {tuple_len} interned tuple sets",
            pair_cache.enabled(),
            fmt(run_tiers.tuple),
        );
        eprintln!(
            "[repro] cache pair:   {}, {pair_len} memoized overlaps",
            fmt(run_tiers.pair)
        );
        let d = run_tiers.disk;
        // "effective hit rate" counts corrupt reads as failed lookups
        // (hits / (hits + misses + corrupt)) — see DiskStats::hit_rate.
        eprintln!(
            "[repro] cache disk:   attached={} {} hits / {} misses / {} corrupt / {} writes / {} evictions (effective hit rate {:.1}%)",
            cache.disk().is_some(),
            d.hits,
            d.misses,
            d.corrupt,
            d.writes,
            d.evictions,
            d.hit_rate() * 100.0,
        );
    }

    if let Some(path) = &trace_path {
        let meta = json!({"threads": threads, "fast": fast, "seed": seed});
        match obs::TraceSink::write(std::path::Path::new(path), &snapshot, meta) {
            Ok(()) => eprintln!("[repro] wrote trace to {path}"),
            Err(e) => eprintln!("[repro] failed to write trace {path}: {e}"),
        }
    }

    if timing {
        let stages: Vec<Value> = stage_timings
            .iter()
            .map(|t| json!({"stage": t.stage, "seconds": t.seconds}))
            .collect();
        let table_times: Vec<Value> = selected
            .iter()
            .zip(&results)
            .map(|((name, _), (_, secs))| json!({"name": *name, "seconds": *secs}))
            .collect();
        let per_kind: Vec<Value> = autosuggest_corpus::ReplayErrorKind::ALL
            .iter()
            .map(|&k| {
                let c = rb.kind(k);
                json!({
                    "kind": k.as_str(),
                    "injected": c.injected,
                    "failures": c.failures,
                    "retries": c.retries,
                    "recovered": c.recovered,
                    "quarantined": c.quarantined,
                })
            })
            .collect();
        let robustness = json!({
            "fault_spec": rb.fault_spec.clone().map(Value::String).unwrap_or(Value::Null),
            "notebooks": rb.notebooks,
            "failed_first_pass": rb.failed_first_pass,
            "retried_notebooks": rb.retried_notebooks,
            "recovered_notebooks": rb.recovered_notebooks,
            "quarantined_notebooks": rb.quarantined_notebooks,
            "cell_retries": rb.cell_retries,
            "total_injected": rb.total_injected(),
            "kinds": Value::Array(per_kind),
        });
        // Per-stage histograms (pipeline.*_seconds, replay.notebook_seconds,
        // gbdt.split_scan_seconds, evaluate.table_seconds) from the obs
        // layer's timing view.
        let histograms = snapshot
            .timing_value()
            .get("histograms")
            .cloned()
            .unwrap_or(Value::Object(serde_json::Map::new()));
        // Training-kernel breakdown: trainer wall-clock comes from the
        // timing histograms the trainers record; the work counters
        // (batches, nodes, bins) come from the deterministic section, so
        // they are bit-identical at any thread count.
        let hist = |name: &str| snapshot.histograms.get(name);
        let hist_sum = |name: &str| hist(name).map(|h| h.sum).unwrap_or(0.0);
        let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
        let training = json!({
            "histogram_mode": ctx.system.config.gbdt.histogram,
            "rnn": {
                "train_seconds": hist_sum("nextop.rnn_train_seconds"),
                "batches": counter("nn.rnn.batches"),
                "examples_trained": counter("nn.rnn.examples_trained"),
            },
            "gbdt": {
                "fit_seconds": hist_sum("gbdt.fit_seconds"),
                "split_scan_seconds": hist_sum("gbdt.split_scan_seconds"),
                "fits": hist("gbdt.fit_seconds").map(|h| h.count).unwrap_or(0),
                "nodes_split": counter("gbdt.nodes_split"),
                "bins_built": counter("gbdt.bins_built"),
            },
        });
        // Cache timing comparison: the same featurisation workload (join
        // candidate enumeration + groupby scoring over the held-out tables)
        // is run four times — cache disabled, enabled-but-cold,
        // enabled-and-warm, and disk-warm (memory cleared, shards kept).
        // Runs after the obs snapshot so the deterministic trace section is
        // unaffected. When no AUTOSUGGEST_CACHE_DIR is configured, a
        // throwaway directory is attached for the sweep so the disk-warm
        // phase is always measured, then detached and removed.
        let was_enabled = cache.enabled();
        let pair_was_enabled = pair_cache.enabled();
        let had_disk = cache.disk().is_some();
        let tmp_disk_dir = if had_disk {
            None
        } else {
            let dir = std::env::temp_dir()
                .join(format!("autosuggest-sweep-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            match autosuggest_cache::DiskCache::open(
                &dir,
                autosuggest_cache::DEFAULT_DISK_BUDGET,
            ) {
                Ok(d) => {
                    autosuggest_cache::attach_disk(Some(d));
                    Some(dir)
                }
                Err(e) => {
                    eprintln!("[repro] sweep disk tier unavailable ({e}); skipping disk-warm");
                    None
                }
            }
        };
        autosuggest_cache::set_all_enabled(false);
        let t = Instant::now();
        let work_off = featurise_workload(&ctx);
        let off_seconds = t.elapsed().as_secs_f64();
        autosuggest_cache::set_all_enabled(true);
        autosuggest_cache::clear_memory();
        let before_cold = autosuggest_cache::tier_stats();
        let t = Instant::now();
        let work_cold = featurise_workload(&ctx);
        let cold_seconds = t.elapsed().as_secs_f64();
        let cold_tiers = autosuggest_cache::tier_stats();
        let t = Instant::now();
        let work_warm = featurise_workload(&ctx);
        let warm_seconds = t.elapsed().as_secs_f64();
        let warm_tiers = autosuggest_cache::tier_stats().since(&cold_tiers);
        // Disk-warm: drop every in-memory entry; shards written during the
        // cold phase satisfy the misses without recomputation.
        autosuggest_cache::clear_memory();
        let before_disk_warm = autosuggest_cache::tier_stats();
        let t = Instant::now();
        let work_disk = featurise_workload(&ctx);
        let disk_warm_seconds = t.elapsed().as_secs_f64();
        let disk_tiers = autosuggest_cache::tier_stats().since(&before_disk_warm);
        cache.set_enabled(was_enabled);
        pair_cache.set_enabled(pair_was_enabled);
        if let Some(dir) = &tmp_disk_dir {
            autosuggest_cache::attach_disk(autosuggest_cache::default_disk());
            let _ = std::fs::remove_dir_all(dir);
        }
        assert_eq!(work_off, work_cold);
        assert_eq!(work_off, work_warm);
        assert_eq!(work_off, work_disk);
        let tier_json = |s: autosuggest_cache::CacheStats| {
            json!({"hits": s.hits, "misses": s.misses, "evictions": s.evictions,
                   "hit_rate": s.hit_rate()})
        };
        let disk_json = |d: autosuggest_cache::DiskStats| {
            json!({"hits": d.hits, "misses": d.misses, "evictions": d.evictions,
                   "corrupt": d.corrupt, "writes": d.writes, "hit_rate": d.hit_rate()})
        };
        let cache_report = json!({
            "enabled_during_run": was_enabled,
            "run": {
                "hits": run_stats.hits,
                "misses": run_stats.misses,
                "evictions": run_stats.evictions,
                "hit_rate": run_stats.hit_rate(),
            },
            "tiers": {
                "column": tier_json(run_tiers.column),
                "tuple": tier_json(run_tiers.tuple),
                "pair": tier_json(run_tiers.pair),
                "disk": disk_json(run_tiers.disk),
            },
            "sweep": {
                "workload_units": work_off as u64,
                "off_seconds": off_seconds,
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "disk_warm_seconds": disk_warm_seconds,
                "warm_speedup_vs_off": if warm_seconds > 0.0 { off_seconds / warm_seconds } else { 0.0 },
                "disk_warm_speedup_vs_cold": if disk_warm_seconds > 0.0 { cold_seconds / disk_warm_seconds } else { 0.0 },
                "warm_hit_rate": warm_tiers.column.hit_rate(),
                "cold": {
                    "column": tier_json(cold_tiers.column.since(&before_cold.column)),
                    "tuple": tier_json(cold_tiers.tuple.since(&before_cold.tuple)),
                    "pair": tier_json(cold_tiers.pair.since(&before_cold.pair)),
                    "disk": disk_json(cold_tiers.disk.since(&before_cold.disk)),
                },
                "warm": {
                    "column": tier_json(warm_tiers.column),
                    "tuple": tier_json(warm_tiers.tuple),
                    "pair": tier_json(warm_tiers.pair),
                    "disk": disk_json(warm_tiers.disk),
                },
                "disk_warm": {
                    "column": tier_json(disk_tiers.column),
                    "tuple": tier_json(disk_tiers.tuple),
                    "pair": tier_json(disk_tiers.pair),
                    "disk": disk_json(disk_tiers.disk),
                },
            },
        });
        eprintln!(
            "[repro] cache sweep: off {off_seconds:.3}s, cold {cold_seconds:.3}s, warm {warm_seconds:.3}s, disk-warm {disk_warm_seconds:.3}s (warm hit rate {:.1}%, disk-warm disk hit rate {:.1}%)",
            warm_tiers.column.hit_rate() * 100.0,
            disk_tiers.disk.hit_rate() * 100.0,
        );

        // Incremental-retrain comparison: train a smaller "previous"
        // snapshot (the union corpus minus half its json notebooks), fold
        // the union back in through the RetrainPlanner, and compare
        // against the full union training above — wall-clock plus
        // served-suggestion equivalence over held-out probe requests.
        // Runs after the obs snapshot so the extra training does not
        // perturb the trace sections.
        let union_config = ctx.system.config.clone();
        let mut base_config = union_config.clone();
        base_config.corpus.json_notebooks -= base_config.corpus.json_notebooks / 2;
        eprintln!(
            "[repro] retrain benchmark: training base snapshot ({} of {} json notebooks)...",
            base_config.corpus.json_notebooks, union_config.corpus.json_notebooks,
        );
        let base_json_notebooks = base_config.corpus.json_notebooks;
        let t = Instant::now();
        let prev = AutoSuggest::train(base_config);
        let base_seconds = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let (inc, retrain) = RetrainPlanner::new().retrain(&prev, union_config);
        let incremental_seconds = t.elapsed().as_secs_f64();

        // Probe battery from the held-out test cases: the incrementally
        // retrained system must answer every request bit-identically to
        // the fully trained one.
        let dims = [0usize];
        let mut probes: Vec<SuggestRequest> = Vec::new();
        for inv in ctx.system.test.join.iter().take(3) {
            if inv.inputs.len() >= 2 {
                probes.push(SuggestRequest::Join {
                    left: &inv.inputs[0],
                    right: &inv.inputs[1],
                    top_k: 3,
                });
            }
        }
        for inv in ctx.system.test.groupby.iter().take(3) {
            if let Some(table) = inv.inputs.first() {
                probes.push(SuggestRequest::GroupBy { table });
            }
        }
        for inv in ctx.system.test.pivot.iter().take(3) {
            if let Some(table) = inv.inputs.first() {
                probes.push(SuggestRequest::Pivot { table, dims: &dims });
            }
        }
        for inv in ctx.system.test.melt.iter().take(3) {
            if let Some(table) = inv.inputs.first() {
                probes.push(SuggestRequest::Unpivot { table });
            }
        }
        let served_identical = probes.iter().all(|req| {
            wire::encode_response(&ctx.system.suggest(req)).to_string()
                == wire::encode_response(&inc.suggest(req)).to_string()
        });
        assert!(
            served_identical,
            "incremental retrain diverged from full training on served suggestions"
        );
        eprintln!(
            "[repro] retrain: full {train_seconds:.1}s, base {base_seconds:.1}s, incremental {incremental_seconds:.1}s ({} replayed / {} reused, carried {:?}, rebuilt {:?}, {} probes identical)",
            retrain.delta.replayed_notebooks,
            retrain.delta.reused_reports,
            retrain.carried,
            retrain.rebuilt,
            probes.len(),
        );
        let retrain_report = json!({
            "base_json_notebooks": base_json_notebooks,
            "union_notebooks": retrain.delta.union_notebooks,
            "full_seconds": train_seconds,
            "base_seconds": base_seconds,
            "incremental_seconds": incremental_seconds,
            "speedup_vs_full": if incremental_seconds > 0.0 {
                train_seconds / incremental_seconds
            } else {
                0.0
            },
            "notebooks_replayed": retrain.delta.replayed_notebooks,
            "reports_reused": retrain.delta.reused_reports,
            "carried": retrain.carried,
            "rebuilt": retrain.rebuilt,
            "full_replay_fallback": retrain.full_replay_fallback,
            "probes": probes.len(),
            "served_identical": served_identical,
        });

        let report = json!({
            "threads": threads,
            "fast": fast,
            "seed": seed,
            "train_seconds": train_seconds,
            "total_seconds": total_seconds,
            "stages": Value::Array(stages),
            "tables": Value::Array(table_times),
            "histograms": histograms,
            "training": training,
            "robustness": robustness,
            "cache": cache_report,
            "retrain": retrain_report,
        });
        let path = "BENCH_repro.json";
        match std::fs::write(path, report.to_string()) {
            Ok(()) => eprintln!("[repro] wrote {path} ({total_seconds:.1}s total, {threads} threads)"),
            Err(e) => eprintln!("[repro] failed to write {path}: {e}"),
        }
    }
}
