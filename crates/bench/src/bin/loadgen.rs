//! Closed-loop load generator for `autosuggestd`.
//!
//! Drives a fixed, deterministic request multiset at the daemon from `K`
//! client threads (each waits for its response before sending the next —
//! closed loop, so in-flight requests never exceed `K` and a queue
//! capacity ≥ `K` yields zero busy-rejections). Validates every response,
//! reports client-side latency percentiles, and can merge a `"server"`
//! section into `BENCH_repro.json`.
//!
//! ```text
//! loadgen --inproc [--seed N] [--clients K] [--requests M]
//! loadgen --addr 127.0.0.1:7878 [--clients K] [--requests M] [--shutdown]
//!         [--stats-out PATH] [--merge-bench]
//! ```
//!
//! `--inproc` trains a fast-profile model and serves it from this
//! process (no external daemon needed); `--addr` attaches to a running
//! one. `--stats-out` writes the daemon's curated deterministic stats
//! section to a file — CI runs the same burst at different
//! `AUTOSUGGEST_THREADS` and diffs these files byte-for-byte. With
//! `AUTOSUGGEST_FAULTS` set (on the *daemon*), `500`s from injected
//! faults are expected and counted rather than fatal; pass
//! `--expect-faults` so the generator tolerates them when attaching.

use autosuggest_core::wire::{self, OwnedSuggestRequest};
use autosuggest_dataframe::{DataFrame, Value as Cell};
use autosuggest_server::http;
use serde_json::{json, Value};
use std::io::BufReader;
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

const MAX_RESPONSE_BYTES: usize = 16 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Deterministic workload
// ---------------------------------------------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn int_col(rng: &mut u64, rows: usize, modulo: u64) -> Vec<Cell> {
    (0..rows).map(|_| Cell::Int((splitmix(rng) % modulo) as i64)).collect()
}

fn float_col(rng: &mut u64, rows: usize) -> Vec<Cell> {
    (0..rows)
        .map(|_| Cell::Float((splitmix(rng) % 10_000) as f64 / 100.0))
        .collect()
}

fn str_col(rng: &mut u64, rows: usize, pool: &[&str]) -> Vec<Cell> {
    (0..rows)
        .map(|_| Cell::Str(pool[(splitmix(rng) as usize) % pool.len()].to_string()))
        .collect()
}

fn frame(cols: Vec<(&str, Vec<Cell>)>) -> DataFrame {
    match DataFrame::from_columns(cols) {
        Ok(df) => df,
        Err(e) => unreachable!("workload tables are rectangular by construction: {e}"),
    }
}

/// Build the request-template pool: a mix of all four operators over
/// small synthetic tables, a pure function of `seed`.
fn make_bodies(seed: u64, templates: usize) -> Vec<String> {
    let regions = ["north", "south", "east", "west"];
    let products = ["widget", "gadget", "gizmo"];
    let mut bodies = Vec::with_capacity(templates);
    for t in 0..templates as u64 {
        let mut rng = seed.wrapping_mul(0x51ed_270b).wrapping_add(t);
        let rows = 24 + (splitmix(&mut rng) % 40) as usize;
        let request = match t % 4 {
            0 => {
                let keys = int_col(&mut rng, rows, 20);
                let left = frame(vec![
                    ("order_id", keys.clone()),
                    ("region", str_col(&mut rng, rows, &regions)),
                    ("amount", float_col(&mut rng, rows)),
                ]);
                let right = frame(vec![
                    ("order_id", keys),
                    ("discount", float_col(&mut rng, rows)),
                ]);
                OwnedSuggestRequest::Join { left, right, top_k: 3 }
            }
            1 => OwnedSuggestRequest::GroupBy {
                table: frame(vec![
                    ("region", str_col(&mut rng, rows, &regions)),
                    ("product", str_col(&mut rng, rows, &products)),
                    ("sales", float_col(&mut rng, rows)),
                    ("quantity", int_col(&mut rng, rows, 50)),
                ]),
            },
            2 => OwnedSuggestRequest::Pivot {
                table: frame(vec![
                    ("year", int_col(&mut rng, rows, 4)),
                    ("product", str_col(&mut rng, rows, &products)),
                    ("amount", float_col(&mut rng, rows)),
                ]),
                dims: vec![0, 1],
            },
            _ => OwnedSuggestRequest::Unpivot {
                table: frame(vec![
                    ("id", int_col(&mut rng, rows, 1_000_000)),
                    ("q1", float_col(&mut rng, rows)),
                    ("q2", float_col(&mut rng, rows)),
                    ("q3", float_col(&mut rng, rows)),
                    ("q4", float_col(&mut rng, rows)),
                ]),
            },
        };
        bodies.push(wire::encode_request(&request.as_request()).to_string());
    }
    bodies
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

struct ClientReport {
    latencies_ns: Vec<u64>,
    ok: u64,
    faulted: u64,
    errors: Vec<String>,
}

fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(
        stream.try_clone().map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut writer = stream;
    http::write_request(&mut writer, method, path, body).map_err(|e| format!("send: {e}"))?;
    http::read_response(&mut reader, MAX_RESPONSE_BYTES).map_err(|e| format!("recv: {e}"))
}

fn run_client(
    addr: &str,
    bodies: &[String],
    indices: std::ops::Range<usize>,
    expect_faults: bool,
) -> ClientReport {
    let mut report = ClientReport {
        latencies_ns: Vec::with_capacity(indices.len()),
        ok: 0,
        faulted: 0,
        errors: Vec::new(),
    };
    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            report.errors.push(format!("connect {addr}: {e}"));
            return report;
        }
    };
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(e) => {
            report.errors.push(format!("clone stream: {e}"));
            return report;
        }
    };
    let mut writer = stream;

    for i in indices {
        let body = &bodies[i % bodies.len()];
        let started = Instant::now();
        let result = http::write_request(&mut writer, "POST", "/suggest", body)
            .map_err(|e| format!("send: {e}"))
            .and_then(|()| {
                http::read_response(&mut reader, MAX_RESPONSE_BYTES)
                    .map_err(|e| format!("recv: {e}"))
            });
        let elapsed = started.elapsed().as_nanos() as u64;
        match result {
            Ok((200, text)) => match serde_json::from_str(&text) {
                Ok(v) if v.get("response").is_some() && v.get("trace_id").is_some() => {
                    report.latencies_ns.push(elapsed);
                    report.ok += 1;
                }
                _ => report.errors.push(format!("request {i}: malformed 200 body {text:?}")),
            },
            Ok((500, text)) if expect_faults => {
                let well_formed = serde_json::from_str(&text)
                    .ok()
                    .is_some_and(|v| v.get("error").is_some());
                if well_formed {
                    report.latencies_ns.push(elapsed);
                    report.faulted += 1;
                } else {
                    report.errors.push(format!("request {i}: malformed 500 body {text:?}"));
                }
            }
            Ok((status, text)) => {
                report.errors.push(format!("request {i}: unexpected {status}: {text:?}"));
            }
            Err(e) => report.errors.push(format!("request {i}: {e}")),
        }
    }
    report
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[rank] as f64 / 1e6
}

// ---------------------------------------------------------------------------
// Main
// ---------------------------------------------------------------------------

struct Args {
    addr: Option<String>,
    inproc: bool,
    seed: u64,
    clients: usize,
    requests_per_client: usize,
    templates: usize,
    expect_faults: bool,
    shutdown: bool,
    stats_out: Option<String>,
    merge_bench: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        inproc: false,
        seed: 42,
        clients: 4,
        requests_per_client: 25,
        templates: 12,
        expect_faults: std::env::var("AUTOSUGGEST_FAULTS").is_ok(),
        shutdown: false,
        stats_out: None,
        merge_bench: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--inproc" => args.inproc = true,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--clients" => {
                args.clients =
                    value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?;
            }
            "--requests" => {
                args.requests_per_client =
                    value("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?;
            }
            "--templates" => {
                args.templates =
                    value("--templates")?.parse().map_err(|e| format!("--templates: {e}"))?;
            }
            "--expect-faults" => args.expect_faults = true,
            "--shutdown" => args.shutdown = true,
            "--stats-out" => args.stats_out = Some(value("--stats-out")?),
            "--merge-bench" => args.merge_bench = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.inproc == args.addr.is_some() {
        return Err("pass exactly one of --inproc or --addr HOST:PORT".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("[loadgen] {msg}");
            return ExitCode::FAILURE;
        }
    };

    // In-process daemon when asked: fast model, ephemeral port.
    let inproc_server = if args.inproc {
        use autosuggest_core::model_slot::ModelSlot;
        use autosuggest_core::{AutoSuggest, AutoSuggestConfig};
        eprintln!("[loadgen] training in-process model (seed {})...", args.seed);
        let system = AutoSuggest::train(AutoSuggestConfig::fast(args.seed));
        let slot = Arc::new(ModelSlot::new(system));
        match autosuggest_server::serve(slot, Default::default()) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("[loadgen] failed to start in-process server: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = match (&inproc_server, &args.addr) {
        (Some(s), _) => s.addr().to_string(),
        (None, Some(a)) => a.clone(),
        (None, None) => unreachable!("parse_args enforces one of --inproc/--addr"),
    };

    let bodies = Arc::new(make_bodies(args.seed, args.templates));
    let total = args.clients * args.requests_per_client;
    eprintln!(
        "[loadgen] {} clients x {} requests against {addr} ({} templates)",
        args.clients, args.requests_per_client, bodies.len()
    );

    let started = Instant::now();
    let reports: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let bodies = Arc::clone(&bodies);
                let addr = addr.clone();
                let range = c * args.requests_per_client..(c + 1) * args.requests_per_client;
                scope.spawn(move || run_client(&addr, &bodies, range, args.expect_faults))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => ClientReport {
                    latencies_ns: Vec::new(),
                    ok: 0,
                    faulted: 0,
                    errors: vec!["client thread panicked".to_string()],
                },
            })
            .collect()
    });
    let wall = started.elapsed();

    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let mut ok = 0u64;
    let mut faulted = 0u64;
    let mut failures = Vec::new();
    for r in reports {
        latencies.extend(r.latencies_ns);
        ok += r.ok;
        faulted += r.faulted;
        failures.extend(r.errors);
    }
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    eprintln!(
        "[loadgen] {ok} ok, {faulted} faulted, {} failed of {total} in {:.2}s (p50 {p50:.2} ms, p99 {p99:.2} ms)",
        failures.len(),
        wall.as_secs_f64(),
    );
    for f in failures.iter().take(10) {
        eprintln!("[loadgen]   {f}");
    }

    // Pull /stats before any shutdown.
    let stats = match request(&addr, "GET", "/stats", "") {
        Ok((200, text)) => serde_json::from_str(&text).ok(),
        _ => None,
    };
    let stats = match stats {
        Some(s) => s,
        None => {
            eprintln!("[loadgen] failed to fetch /stats");
            return ExitCode::FAILURE;
        }
    };
    let deterministic = stats.get("deterministic").cloned().unwrap_or(Value::Null);
    println!("[loadgen] deterministic: {deterministic}");
    if let Some(path) = &args.stats_out {
        if let Err(e) = std::fs::write(path, format!("{deterministic}\n")) {
            eprintln!("[loadgen] failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if args.merge_bench {
        merge_bench_section(&stats, total as u64, ok, faulted, p50, p99, wall);
    }

    if args.shutdown || args.inproc {
        match request(&addr, "POST", "/admin/shutdown", "{}") {
            Ok((200, _)) => {}
            other => eprintln!("[loadgen] shutdown request failed: {other:?}"),
        }
    }
    if let Some(server) = inproc_server {
        if let Err(e) = server.wait() {
            eprintln!("[loadgen] in-process server: {e}");
            return ExitCode::FAILURE;
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("[loadgen] FAILED: {} bad responses", failures.len());
        ExitCode::FAILURE
    }
}

/// Merge a `"server"` section into `BENCH_repro.json` (creating the file
/// if the repro harness has not run yet).
fn merge_bench_section(
    stats: &Value,
    total: u64,
    ok: u64,
    faulted: u64,
    p50_ms: f64,
    p99_ms: f64,
    wall: Duration,
) {
    let path = "BENCH_repro.json";
    let mut root = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .unwrap_or_else(|| json!({}));
    let section = json!({
        "requests": total,
        "ok": ok,
        "faulted": faulted,
        "latency_p50_ms": p50_ms,
        "latency_p99_ms": p99_ms,
        "wall_seconds": wall.as_secs_f64(),
        "throughput_rps": if wall.as_secs_f64() > 0.0 {
            total as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        "stats": stats.clone(),
    });
    if let Value::Object(map) = &mut root {
        map.insert("server".to_string(), section);
    }
    match std::fs::write(path, root.to_string()) {
        Ok(()) => eprintln!("[loadgen] merged server section into {path}"),
        Err(e) => eprintln!("[loadgen] failed to write {path}: {e}"),
    }
}
