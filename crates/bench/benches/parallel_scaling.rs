//! Scaling curves for the deterministic pool itself: the same workload at
//! 1/2/4/8 threads. Two shapes — a coarse CPU-bound map (best case for
//! stealing) and GBDT training, whose per-round split scan is the finest
//! parallel grain in the system.

use autosuggest_gbdt::{Dataset, Gbdt, GbdtParams};
use autosuggest_parallel::set_thread_override;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A deliberately skewed workload: item cost grows with index, so static
/// chunking alone would leave the early workers idle — stealing has to
/// rebalance.
fn busy(seed: u64, rounds: usize) -> u64 {
    let mut x = seed | 1;
    for _ in 0..rounds {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    }
    x
}

fn bench_par_map(c: &mut Criterion) {
    let items: Vec<u64> = (0..512).collect();
    let mut group = c.benchmark_group("parallel_scaling/par_map");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                set_thread_override(Some(threads));
                b.iter(|| {
                    black_box(autosuggest_parallel::par_map(&items, |&i| {
                        busy(i, 2_000 + 40 * i as usize)
                    }))
                });
                set_thread_override(None);
            },
        );
    }
    group.finish();
}

fn synthetic(n: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..features).map(|_| rng.random_range(-1.0..1.0)).collect())
        .collect();
    let labels: Vec<f64> = rows
        .iter()
        .map(|r| if r[0] + 0.5 * r[1] > 0.0 { 1.0 } else { 0.0 })
        .collect();
    let names = (0..features).map(|i| format!("f{i}")).collect();
    Dataset::new(names, rows, labels).expect("rectangular")
}

fn bench_gbdt_fit(c: &mut Criterion) {
    let data = synthetic(4_000, 18, 5);
    let params = GbdtParams { n_trees: 20, ..Default::default() };
    let mut group = c.benchmark_group("parallel_scaling/gbdt_fit");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                set_thread_override(Some(threads));
                b.iter(|| black_box(Gbdt::fit(&data, &params)));
                set_thread_override(None);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_par_map, bench_gbdt_fit);
criterion_main!(benches);
