//! Replay throughput: notebooks replayed per sweep, sequential vs the
//! work-stealing pool. The corpus is generated once; each iteration
//! replays every notebook (the dominant cost of pipeline training).

use autosuggest_corpus::{CorpusConfig, CorpusGenerator, ReplayEngine};
use autosuggest_parallel::set_thread_override;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_replay(c: &mut Criterion) {
    let corpus = CorpusGenerator::new(CorpusConfig::small(11)).generate();
    let engine = ReplayEngine::new(corpus.repository.clone());
    let mut group = c.benchmark_group("replay_throughput");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                set_thread_override(Some(threads));
                b.iter(|| {
                    black_box(autosuggest_parallel::par_map(&corpus.notebooks, |nb| {
                        engine.replay(nb).invocations.len()
                    }))
                });
                set_thread_override(None);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_replay);
criterion_main!(benches);
