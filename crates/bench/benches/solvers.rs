//! AMPT and CMUT solver benchmarks (ablation 1–2 of DESIGN.md §4):
//! exact enumeration vs. Stoer–Wagner for AMPT, greedy vs. exhaustive for
//! CMUT, across graph sizes.

use autosuggest_graph::{ampt_exact, ampt_min_cut, cmut_exhaustive, cmut_greedy, AffinityGraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_graph(n: usize, seed: u64) -> AffinityGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut g = AffinityGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.set(u, v, rng.random_range(-1.0..1.0));
        }
    }
    g
}

fn bench_ampt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ampt");
    for n in [6, 10, 14] {
        let g = random_graph(n, n as u64);
        group.bench_with_input(BenchmarkId::new("exact", n), &g, |b, g| {
            b.iter(|| black_box(ampt_exact(g)))
        });
        group.bench_with_input(BenchmarkId::new("min_cut", n), &g, |b, g| {
            b.iter(|| black_box(ampt_min_cut(g)))
        });
    }
    group.finish();
}

fn bench_cmut(c: &mut Criterion) {
    let mut group = c.benchmark_group("cmut");
    for n in [8, 12, 16] {
        let g = random_graph(n, 100 + n as u64);
        group.bench_with_input(BenchmarkId::new("greedy", n), &g, |b, g| {
            b.iter(|| black_box(cmut_greedy(g)))
        });
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &g, |b, g| {
            b.iter(|| black_box(cmut_exhaustive(g)))
        });
    }
    // The greedy scales far past what exhaustive can touch.
    for n in [64, 128] {
        let g = random_graph(n, 200 + n as u64);
        group.bench_with_input(BenchmarkId::new("greedy", n), &g, |b, g| {
            b.iter(|| black_box(cmut_greedy(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ampt, bench_cmut);
criterion_main!(benches);
