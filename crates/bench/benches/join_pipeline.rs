//! Join recommendation pipeline benchmarks: candidate enumeration (with
//! and without sketch pruning — ablation 5 of DESIGN.md §4) and feature
//! extraction.

use autosuggest_corpus::TableGenerator;
use autosuggest_features::{
    enumerate_join_candidates, join_features, join_features_batch, CandidateParams,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_enumeration(c: &mut Criterion) {
    let mut generator = TableGenerator::with_seed(5);
    let case = generator.join_pair();
    let (left, right) = (&case.left.df, &case.right.df);

    let mut group = c.benchmark_group("join_candidates");
    let pruned = CandidateParams::default();
    group.bench_function("enumerate_pruned", |b| {
        b.iter(|| black_box(enumerate_join_candidates(left, right, &pruned)))
    });
    let unpruned = CandidateParams { min_containment: 0.0, ..CandidateParams::default() };
    group.bench_function("enumerate_unpruned", |b| {
        b.iter(|| black_box(enumerate_join_candidates(left, right, &unpruned)))
    });
    group.finish();
}

fn bench_features(c: &mut Criterion) {
    let mut generator = TableGenerator::with_seed(6);
    let case = generator.join_pair();
    let (left, right) = (&case.left.df, &case.right.df);
    let cands = enumerate_join_candidates(left, right, &CandidateParams::default());
    assert!(!cands.is_empty());

    c.bench_function("join_features_per_candidate", |b| {
        let mut i = 0;
        b.iter(|| {
            let cand = &cands[i % cands.len()];
            i += 1;
            black_box(join_features(left, right, cand))
        })
    });

    // The whole candidate pool per iteration: the batch path fetches each
    // distinct key-column tuple once per side, so this measures the
    // pair-cache hoist against cands.len() sequential calls.
    let mut group = c.benchmark_group("join_features_pool");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            for cand in &cands {
                black_box(join_features(left, right, cand));
            }
        })
    });
    group.bench_function("batch", |b| {
        b.iter(|| black_box(join_features_batch(left, right, &cands)))
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration, bench_features);
criterion_main!(benches);
