//! GBDT training and scoring benchmarks.

use autosuggest_gbdt::{Dataset, Gbdt, GbdtParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn synthetic(n: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..features).map(|_| rng.random_range(-1.0..1.0)).collect())
        .collect();
    let labels: Vec<f64> = rows
        .iter()
        .map(|r| if r[0] + 0.5 * r[1] > 0.0 { 1.0 } else { 0.0 })
        .collect();
    let names = (0..features).map(|i| format!("f{i}")).collect();
    Dataset::new(names, rows, labels).expect("rectangular")
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("gbdt_fit");
    group.sample_size(10);
    for n in [500, 2000] {
        let data = synthetic(n, 18, 3);
        let params = GbdtParams { n_trees: 50, ..Default::default() };
        group.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, data| {
            b.iter(|| black_box(Gbdt::fit(data, &params)))
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let data = synthetic(2000, 18, 4);
    let model = Gbdt::fit(&data, &GbdtParams::default());
    let x: Vec<f64> = (0..18).map(|i| i as f64 / 18.0).collect();
    c.bench_function("gbdt_predict", |b| b.iter(|| black_box(model.predict(&x))));
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
