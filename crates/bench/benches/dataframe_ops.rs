//! DataFrame operator benchmarks — the replay engine's hot path.

use autosuggest_corpus::TableGenerator;
use autosuggest_dataframe::ops::{self, Agg, JoinType};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ops(c: &mut Criterion) {
    let mut generator = TableGenerator::with_seed(9);
    let entities = generator.entities(40);
    let fact = generator.fact_table(&entities).df;
    let dim = generator.dimension_table(&entities, "entity_id").df;
    let wide = generator.wide_pivot_table(12);
    let key = fact.column_names()[1].to_string();

    c.bench_function("merge_inner", |b| {
        b.iter(|| {
            black_box(
                ops::merge(&fact, &dim, &[&key], &["entity_id"], JoinType::Inner).unwrap(),
            )
        })
    });
    let dims: Vec<&str> = fact.column_names().into_iter().take(2).collect();
    let measure = fact.column_names().last().unwrap().to_string();
    c.bench_function("groupby_sum", |b| {
        b.iter(|| black_box(ops::groupby(&fact, &dims, &[(&measure, Agg::Sum)]).unwrap()))
    });
    c.bench_function("pivot_table", |b| {
        b.iter(|| {
            black_box(
                ops::pivot_table(&fact, &dims[..1], &["year"], &measure, Agg::Sum).unwrap(),
            )
        })
    });
    let id_vars: Vec<&str> = wide.meta.dim_cols.iter().map(String::as_str).collect();
    let value_vars: Vec<&str> = wide.meta.collapse_cols.iter().map(String::as_str).collect();
    c.bench_function("melt_wide", |b| {
        b.iter(|| {
            black_box(ops::melt(&wide.df, &id_vars, &value_vars, "year", "value").unwrap())
        })
    });
    c.bench_function("content_hash", |b| b.iter(|| black_box(fact.content_hash())));
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
