//! Training hot-path benchmarks: batched RNN epochs and the three GBDT
//! split-search kernels (per-node re-sort, presort-once, histogram).

use autosuggest_gbdt::{BinnedDataset, Dataset, Presorted, RegressionTree, TreeParams};
use autosuggest_nn::{RnnClassifier, RnnConfig, SequenceExample};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn synthetic(n: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..features).map(|_| rng.random_range(-1.0..1.0)).collect())
        .collect();
    let labels: Vec<f64> = rows
        .iter()
        .map(|r| if r[0] + 0.5 * r[1] > 0.0 { 1.0 } else { 0.0 })
        .collect();
    let names = (0..features).map(|i| format!("f{i}")).collect();
    Dataset::new(names, rows, labels).expect("rectangular")
}

fn sequences(n: usize, vocab: usize, seed: u64) -> Vec<SequenceExample> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.random_range(1..8usize);
            let prefix: Vec<usize> = (0..len).map(|_| rng.random_range(0..vocab)).collect();
            let label = (prefix[len - 1] + 1) % vocab;
            SequenceExample { prefix, extra: vec![rng.random_range(0.0..1.0)], label }
        })
        .collect()
}

/// One epoch of RNN training at batch size 1 (the bit-stable default) vs 16
/// (the batched macro-chunk path).
fn bench_rnn_epoch(c: &mut Criterion) {
    let vocab = 12;
    let examples = sequences(512, vocab, 7);
    let mut group = c.benchmark_group("rnn_epoch");
    group.sample_size(10);
    for bs in [1usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(bs), &bs, |b, &bs| {
            b.iter(|| {
                let cfg = RnnConfig {
                    vocab,
                    classes: vocab,
                    extra_dim: 1,
                    epochs: 1,
                    batch_size: bs,
                    seed: 11,
                    ..Default::default()
                };
                let mut model = RnnClassifier::new(cfg);
                black_box(model.train(&examples))
            })
        });
    }
    group.finish();
}

/// A full tree fit per kernel, at three node sizes. `resort` is the
/// historical per-node per-feature re-sort, `presorted` sorts once per tree
/// and partitions the feature lists down, `hist` bins once and scans ≤256
/// bins per node.
fn bench_split_search(c: &mut Criterion) {
    let params = TreeParams::default();
    let mut group = c.benchmark_group("split_search");
    group.sample_size(10);
    for n in [500usize, 2000, 8000] {
        let data = synthetic(n, 18, 3);
        let targets: Vec<f64> = (0..n).map(|i| data.label(i)).collect();
        let idx: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::new("resort", n), &n, |b, _| {
            b.iter(|| black_box(RegressionTree::fit_resort(&data, &targets, &idx, &params)))
        });
        group.bench_with_input(BenchmarkId::new("presorted", n), &n, |b, _| {
            b.iter(|| black_box(RegressionTree::fit(&data, &targets, &idx, &params)))
        });
        let binned = BinnedDataset::build(&data, 256);
        group.bench_with_input(BenchmarkId::new("hist", n), &n, |b, _| {
            b.iter(|| {
                black_box(RegressionTree::fit_hist(&data, &targets, &binned, &idx, &params))
            })
        });
        group.bench_with_input(BenchmarkId::new("presort_build", n), &n, |b, _| {
            b.iter(|| black_box(Presorted::build(&data, &idx)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rnn_epoch, bench_split_search);
criterion_main!(benches);
