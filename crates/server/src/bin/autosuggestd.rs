//! The `autosuggestd` binary: train a model, bind, serve until shutdown.
//!
//! ```text
//! autosuggestd [--addr HOST:PORT] [--seed N] [--queue-capacity N]
//!              [--max-batch N] [--batch-window-ms N]
//! ```
//!
//! Environment: `AUTOSUGGEST_THREADS` sizes the suggest pool,
//! `AUTOSUGGEST_CACHE` / `AUTOSUGGEST_CACHE_DIR` control the column
//! cache, `AUTOSUGGEST_FAULTS` enables per-request fault injection
//! (testing only). Stop with `POST /admin/shutdown`.

use autosuggest_core::model_slot::ModelSlot;
use autosuggest_core::pipeline::{AutoSuggest, AutoSuggestConfig};
use autosuggest_server::ServerConfig;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    seed: u64,
    queue_capacity: usize,
    max_batch: usize,
    batch_window_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        seed: 42,
        queue_capacity: 256,
        max_batch: 32,
        batch_window_ms: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--queue-capacity" => {
                args.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?;
            }
            "--max-batch" => {
                args.max_batch = value("--max-batch")?
                    .parse()
                    .map_err(|e| format!("--max-batch: {e}"))?;
            }
            "--batch-window-ms" => {
                args.batch_window_ms = value("--batch-window-ms")?
                    .parse()
                    .map_err(|e| format!("--batch-window-ms: {e}"))?;
            }
            "--help" | "-h" => {
                return Err("usage: autosuggestd [--addr HOST:PORT] [--seed N] \
                            [--queue-capacity N] [--max-batch N] [--batch-window-ms N]"
                    .to_string());
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    eprintln!("autosuggestd: training model (seed {}, fast profile)...", args.seed);
    let started = Instant::now();
    let system = AutoSuggest::train(AutoSuggestConfig::fast(args.seed));
    eprintln!(
        "autosuggestd: model trained in {:.1}s",
        started.elapsed().as_secs_f64()
    );

    let slot = Arc::new(ModelSlot::new(system));
    let config = ServerConfig {
        addr: args.addr,
        queue_capacity: args.queue_capacity,
        max_batch: args.max_batch,
        batch_window: Duration::from_millis(args.batch_window_ms),
        ..Default::default()
    };
    let server = match autosuggest_server::serve(slot, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("autosuggestd: failed to bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The listening line goes to stdout so scripts can scrape the port.
    println!("autosuggestd listening on {} (model version 1)", server.addr());
    match server.wait() {
        Ok(()) => {
            eprintln!("autosuggestd: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("autosuggestd: {e}");
            ExitCode::FAILURE
        }
    }
}
