//! A deliberately tiny HTTP/1.1 implementation — just enough protocol for
//! `autosuggestd` and its loopback clients, std-only.
//!
//! Supported: request line + headers + `Content-Length` bodies, persistent
//! connections (the daemon serves requests in a loop until EOF or
//! `Connection: close`). Not supported, by design: chunked transfer
//! encoding, HTTP/2, TLS, multipart — clients that need those belong
//! behind a real proxy.
//!
//! Memory is bounded at every step: header lines, header count, and body
//! size all have hard caps, so a malicious or confused peer cannot make
//! the daemon buffer unbounded input.

use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE_BYTES: usize = 16 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;

/// A parsed request: method, path, and the raw body bytes.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
    /// Whether the peer asked to close the connection after this exchange.
    pub close: bool,
}

/// Protocol-level failure while reading a request. `BodyTooLarge` and
/// `LengthRequired` are separated so callers can answer 413 / 411 instead
/// of dropping the connection.
#[derive(Debug)]
pub enum HttpError {
    Io(io::Error),
    Malformed(String),
    BodyTooLarge { limit: usize },
    /// A body-bearing method (POST/PUT/PATCH) arrived without a
    /// `Content-Length` header. Guessing a length of zero would leave any
    /// actual body bytes on the wire to be misparsed as the next request,
    /// so the request is refused outright (RFC 9112 §6.2 → 411).
    LengthRequired,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "http: {e}"),
            HttpError::Malformed(m) => write!(f, "http: malformed request: {m}"),
            HttpError::BodyTooLarge { limit } => {
                write!(f, "http: body exceeds {limit} byte limit")
            }
            HttpError::LengthRequired => {
                write!(f, "http: body-bearing request without content-length")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Read one CRLF- (or LF-) terminated line, capped at [`MAX_LINE_BYTES`].
/// Returns `None` on clean EOF before any byte.
fn read_line(reader: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("EOF mid-line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()));
                }
                if line.len() >= MAX_LINE_BYTES {
                    return Err(HttpError::Malformed("header line too long".into()));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Read and parse one request. `Ok(None)` means the peer closed the
/// connection cleanly between requests (normal keep-alive termination).
pub fn read_request(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<Option<Request>, HttpError> {
    let request_line = match read_line(reader)? {
        None => return Ok(None),
        Some(l) => l,
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line missing path".into()))?
        .to_string();

    let mut content_length: Option<usize> = None;
    let mut close = false;
    for _ in 0..MAX_HEADERS {
        let line = read_line(reader)?
            .ok_or_else(|| HttpError::Malformed("EOF inside headers".into()))?;
        if line.is_empty() {
            let content_length = match content_length {
                Some(n) => n,
                // Body-less methods may omit the header; for body-bearing
                // ones, assuming 0 would desync the keep-alive stream.
                None if body_expected(&method) => return Err(HttpError::LengthRequired),
                None => 0,
            };
            let body = read_body(reader, content_length, max_body_bytes)?;
            return Ok(Some(Request { method, path, body, close }));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header without colon: {line:?}")))?;
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(
                value
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?,
            );
        } else if name.eq_ignore_ascii_case("connection")
            && value.eq_ignore_ascii_case("close")
        {
            close = true;
        }
    }
    Err(HttpError::Malformed("too many headers".into()))
}

/// Methods whose semantics carry a request body and therefore must declare
/// its framing explicitly.
fn body_expected(method: &str) -> bool {
    method.eq_ignore_ascii_case("POST")
        || method.eq_ignore_ascii_case("PUT")
        || method.eq_ignore_ascii_case("PATCH")
}

fn read_body(
    reader: &mut impl BufRead,
    content_length: usize,
    max_body_bytes: usize,
) -> Result<Vec<u8>, HttpError> {
    if content_length > max_body_bytes {
        return Err(HttpError::BodyTooLarge { limit: max_body_bytes });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Standard reason phrase for the handful of status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response with a JSON body and optional extra headers.
pub fn write_response(
    writer: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        status,
        reason(status),
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "\r\n{body}")?;
    writer.flush()
}

// ---------------------------------------------------------------------------
// Client side — used by the load generator and the integration tests.
// ---------------------------------------------------------------------------

/// Write a request with a body (pass `""` for body-less GETs).
pub fn write_request(
    writer: &mut impl Write,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

/// Read a response: `(status, body)`. Companion to [`write_request`];
/// expects `Content-Length` framing (which [`write_response`] always
/// produces).
pub fn read_response(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<(u16, String), HttpError> {
    let status_line = read_line(reader)?
        .ok_or_else(|| HttpError::Malformed("EOF before status line".into()))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {status_line:?}")))?;
    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let line = read_line(reader)?
            .ok_or_else(|| HttpError::Malformed("EOF inside headers".into()))?;
        if line.is_empty() {
            let body = read_body(reader, content_length, max_body_bytes)?;
            let body = String::from_utf8(body)
                .map_err(|_| HttpError::Malformed("non-UTF-8 response body".into()))?;
            return Ok((status, body));
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    HttpError::Malformed(format!("bad content-length {value:?}"))
                })?;
            }
        }
    }
    Err(HttpError::Malformed("too many headers".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /suggest HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/suggest");
        assert_eq!(req.body, b"abcd");
        assert!(!req.close);
    }

    #[test]
    fn parses_get_without_body_and_connection_close() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.close);
    }

    #[test]
    fn clean_eof_is_none_not_error() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn oversized_body_is_rejected_with_limit() {
        let err = parse("POST /suggest HTTP/1.1\r\nContent-Length: 4096\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BodyTooLarge { limit: 1024 }));
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse("NONSENSE\r\n\r\n").is_err());
        assert!(parse("GET /x HTTP/1.1\r\nbadheader\r\n\r\n").is_err());
        assert!(parse("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
    }

    #[test]
    fn post_without_content_length_is_length_required_not_a_stall() {
        // The body bytes must never be misread as a follow-up request.
        let err = parse("POST /suggest HTTP/1.1\r\n\r\n{\"k\":1}").unwrap_err();
        assert!(matches!(err, HttpError::LengthRequired), "got {err:?}");
        assert_eq!(reason(411), "Length Required");
    }

    #[test]
    fn non_numeric_content_length_is_malformed() {
        let err = parse("POST /suggest HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "got {err:?}");
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let req = parse("POST /suggest HTTP/1.1\r\ncontent-length: 2\r\nCONNECTION: close\r\n\r\nok")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"ok");
        assert!(req.close);
    }

    #[test]
    fn get_without_content_length_still_parses() {
        let req = parse("GET /stats HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn responses_roundtrip_through_the_parser_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 429, &[("X-Trace-Id", "7")], "{\"error\":\"queue full\"}")
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("X-Trace-Id: 7\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }
}
