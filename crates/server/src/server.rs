//! The `autosuggestd` daemon core: accept loop, micro-batcher, routes.
//!
//! ## Architecture
//!
//! ```text
//! clients ──► acceptor ──► handler threads ──► BatchQueue (bounded)
//!                                                   │ drain (≤ max_batch, ≤ window)
//!                                                   ▼
//!                                              batcher thread
//!                                  warm_tables + par_try_map over the pool
//!                                                   │ per-job reply channel
//!                                                   ▼
//!                                          handler writes HTTP response
//! ```
//!
//! Admission control is the queue bound: a full queue answers `429`
//! immediately, so daemon memory is capped regardless of offered load.
//! The batcher drains cross-request micro-batches and answers them via
//! the same warm-then-map machinery as [`AutoSuggest::suggest_batch`],
//! so concurrent clients share column-sketch work.
//!
//! ## Determinism contract
//!
//! The obs counters recorded under `server.` with plain names
//! (`server.requests`, `server.responses_ok`, `server.responses_error`,
//! `server.faults_injected`, and the `server.retrain.*` reload family)
//! are *per-request facts*: commutative sums of
//! values that depend only on each request's content, never on how
//! requests were partitioned into batches. They are bit-identical across
//! thread counts and batch timings for a fixed request set, and they are
//! what `/stats` exposes as the `"deterministic"` section. Everything
//! scheduling-dependent — queue depth, batch count, batch sizes,
//! busy rejections — uses the `_live` suffix so it lands in the obs
//! timing view, and appears under `"live"` in `/stats`. (Counters
//! recorded *below* the batch executor by other crates, e.g. cache
//! warm-phase hits, are batching-dependent in a concurrent server; they
//! are visible via the full obs snapshot, not the curated section.)
//!
//! ## Model reloads
//!
//! `POST /admin/reload` swaps the served model without downtime. The
//! default mode (`?mode=full`, or no query) trains a replacement from
//! scratch via [`ServerConfig::trainer`]; `?mode=incremental` instead
//! hands the *currently served* system to
//! [`ServerConfig::incremental_trainer`], which by default runs the
//! core [`RetrainPlanner`] so unchanged replay reports and model
//! families are carried over rather than recomputed. Either way the new
//! system is built entirely off-thread from serving: in-flight batches
//! finish on the snapshot they loaded, and the swap is one atomic slot
//! store. Exactly one reload runs at a time — a second request while one
//! is in flight answers `409 Conflict` with a JSON body instead of
//! queueing up redundant training behind a lock.
//!
//! ## Fault injection
//!
//! With `AUTOSUGGEST_FAULTS` set, each `/suggest` request rolls for an
//! injected featurisation fault keyed on a hash of its body — a pure
//! function of request content, so fault counts are deterministic too.
//! `panic`-kind faults actually `panic!` inside the per-request closure
//! and are contained by the pool's `catch_unwind`; every other kind
//! surfaces as an error return. Either way the faulted request answers
//! `500` while the rest of its batch completes normally.

use crate::http::{self, HttpError, Request};
use crate::queue::{BatchQueue, PushError};
use autosuggest_core::model_slot::ModelSlot;
use autosuggest_core::pipeline::{AutoSuggest, AutoSuggestConfig, SuggestResponse};
use autosuggest_core::retrain::{RetrainPlanner, RetrainReport};
use autosuggest_core::wire;
use autosuggest_corpus::faults::{FaultKind, FaultSpec};
use autosuggest_obs as obs;
use autosuggest_parallel::TaskPanic;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Obs counter names for the curated deterministic section of `/stats`.
pub const REQUESTS_COUNTER: &str = "server.requests";
pub const RESPONSES_OK_COUNTER: &str = "server.responses_ok";
pub const RESPONSES_ERROR_COUNTER: &str = "server.responses_error";
pub const FAULTS_INJECTED_COUNTER: &str = "server.faults_injected";
pub const RETRAIN_RELOADS_COUNTER: &str = "server.retrain.reloads";
pub const RETRAIN_CARRIED_COUNTER: &str = "server.retrain.models_carried";
pub const RETRAIN_REBUILT_COUNTER: &str = "server.retrain.models_rebuilt";
pub const RETRAIN_REPLAYED_COUNTER: &str = "server.retrain.notebooks_replayed";

/// Closure that produces the replacement system for an incremental
/// reload: `(reload seed, currently served system) → (new system,
/// planner accounting)`.
pub type IncrementalTrainer =
    Box<dyn Fn(u64, &AutoSuggest) -> (AutoSuggest, RetrainReport) + Send + Sync>;

/// Tuning knobs for one daemon instance.
pub struct ServerConfig {
    /// Bind address; use port 0 for an OS-assigned port.
    pub addr: String,
    /// Admission bound: jobs queued beyond this answer `429`.
    pub queue_capacity: usize,
    /// Micro-batch size cap.
    pub max_batch: usize,
    /// Micro-batch window past the first queued job.
    pub batch_window: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Trains the replacement model for `POST /admin/reload` (full mode).
    pub trainer: Box<dyn Fn(u64) -> AutoSuggest + Send + Sync>,
    /// Produces the replacement for `POST /admin/reload?mode=incremental`:
    /// given the reload seed and the currently served system, returns the
    /// new system plus the planner's accounting. The default runs
    /// [`RetrainPlanner`] against the served system's own config — an
    /// empty-delta retrain that re-proves every model carriable and swaps
    /// in an equivalent system cheaply.
    pub incremental_trainer: IncrementalTrainer,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 256,
            max_batch: 32,
            batch_window: Duration::from_millis(2),
            max_body_bytes: 16 * 1024 * 1024,
            trainer: Box::new(|seed| AutoSuggest::train(AutoSuggestConfig::fast(seed))),
            incremental_trainer: Box::new(|_seed, prev| {
                RetrainPlanner::new().retrain(prev, prev.config.clone())
            }),
        }
    }
}

/// One queued `/suggest` job. The handler thread blocks on `reply`.
struct Job {
    body_hash: u64,
    request: wire::OwnedSuggestRequest,
    reply: mpsc::Sender<JobOutcome>,
}

struct JobOutcome {
    model_version: u64,
    result: Result<SuggestResponse, String>,
}

/// Per-request failure inside the batch executor; `From<TaskPanic>` lets
/// the pool demote a panicking request to this without aborting siblings.
struct JobError(String);

impl From<TaskPanic> for JobError {
    fn from(p: TaskPanic) -> JobError {
        JobError(format!("request panicked: {}", p.message))
    }
}

struct Shared {
    addr: SocketAddr,
    slot: Arc<ModelSlot>,
    queue: BatchQueue<Job>,
    faults: Option<FaultSpec>,
    ambient: obs::Ambient,
    trace_ids: AtomicU64,
    shutdown: AtomicBool,
    started: Instant,
    max_body_bytes: usize,
    max_batch: usize,
    batch_window: Duration,
    trainer: Box<dyn Fn(u64) -> AutoSuggest + Send + Sync>,
    incremental_trainer: IncrementalTrainer,
    /// Exact batch-size → count histogram, maintained by the (single)
    /// batcher thread; scheduling-dependent, reported under `live`.
    batch_sizes: Mutex<BTreeMap<usize, u64>>,
    rejected_busy: AtomicU64,
    reload_lock: Mutex<()>,
}

/// A running daemon. Dropping the handle does *not* stop it; call
/// [`Server::shutdown`] (or hit `POST /admin/shutdown`) then
/// [`Server::wait`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    batcher: JoinHandle<()>,
}

/// Bind, spawn the acceptor and batcher, and return the running handle.
///
/// Observability flows into whatever obs registry is ambient on the
/// *calling* thread (the process-global one in the daemon; a local one in
/// tests), captured once here and installed in every server thread.
pub fn serve(slot: Arc<ModelSlot>, config: ServerConfig) -> io::Result<Server> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        addr,
        slot,
        queue: BatchQueue::new(config.queue_capacity),
        faults: FaultSpec::from_env(),
        ambient: obs::ambient(),
        trace_ids: AtomicU64::new(1),
        shutdown: AtomicBool::new(false),
        started: Instant::now(),
        max_body_bytes: config.max_body_bytes,
        max_batch: config.max_batch,
        batch_window: config.batch_window,
        trainer: config.trainer,
        incremental_trainer: config.incremental_trainer,
        batch_sizes: Mutex::new(BTreeMap::new()),
        rejected_busy: AtomicU64::new(0),
        reload_lock: Mutex::new(()),
    });

    let batcher = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            let ambient = shared.ambient.clone();
            obs::with_ambient(&ambient, || run_batcher(&shared));
        })
    };
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || run_acceptor(listener, &shared))
    };

    Ok(Server { addr, shared, acceptor, batcher })
}

impl Server {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Programmatic equivalent of `POST /admin/shutdown`.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Block until the acceptor and batcher have exited (i.e. after a
    /// shutdown was requested and in-flight work drained).
    pub fn wait(self) -> io::Result<()> {
        let join = |h: JoinHandle<()>, what: &str| {
            h.join().map_err(|p| {
                io::Error::other(format!(
                    "{what} thread panicked: {}",
                    autosuggest_parallel::panic_message(p.as_ref())
                ))
            })
        };
        join(self.acceptor, "acceptor")?;
        join(self.batcher, "batcher")
    }
}

fn begin_shutdown(shared: &Arc<Shared>) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    shared.queue.close();
    // Unblock the acceptor's blocking `accept` with a throwaway connection.
    let _ = TcpStream::connect(shared.addr);
}

// ---------------------------------------------------------------------------
// Acceptor + per-connection handler
// ---------------------------------------------------------------------------

fn run_acceptor(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Responses are single small writes; Nagle only adds latency here.
        let _ = stream.set_nodelay(true);
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let ambient = shared.ambient.clone();
            obs::with_ambient(&ambient, || handle_connection(stream, &shared));
        });
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match http::read_request(&mut reader, shared.max_body_bytes) {
            Ok(None) => return, // clean keep-alive EOF
            Ok(Some(req)) => {
                let close = req.close;
                if handle_request(&mut writer, req, shared).is_err() {
                    return; // peer went away mid-response
                }
                if close {
                    return;
                }
            }
            Err(HttpError::BodyTooLarge { limit }) => {
                let body = json!({"error": format!("body exceeds {limit} byte limit")});
                let _ = http::write_response(&mut writer, 413, &[], &body.to_string());
                return;
            }
            Err(HttpError::Malformed(m)) => {
                let body = json!({"error": format!("malformed request: {m}")});
                let _ = http::write_response(&mut writer, 400, &[], &body.to_string());
                return;
            }
            Err(HttpError::LengthRequired) => {
                // Without a declared length, any body bytes still on the
                // wire would desync the keep-alive stream — answer and
                // close rather than guess.
                let body = json!({"error": "content-length required for body-bearing requests"});
                let _ = http::write_response(&mut writer, 411, &[], &body.to_string());
                return;
            }
            Err(HttpError::Io(_)) => return,
        }
    }
}

fn handle_request(writer: &mut impl Write, req: Request, shared: &Arc<Shared>) -> io::Result<()> {
    // `Request::path` carries the query string verbatim; split it off so
    // routing matches the bare path and handlers that care get the query.
    let (path, query) = match req.path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (req.path.as_str(), ""),
    };
    match (req.method.as_str(), path) {
        ("POST", "/suggest") => handle_suggest(writer, &req.body, shared),
        ("GET", "/healthz") => {
            let body = json!({
                "status": "ok",
                "model_version": shared.slot.version(),
            });
            http::write_response(writer, 200, &[], &body.to_string())
        }
        ("GET", "/stats") => {
            http::write_response(writer, 200, &[], &stats_value(shared).to_string())
        }
        ("POST", "/admin/reload") => handle_reload(writer, query, &req.body, shared),
        ("POST", "/admin/shutdown") => {
            let body = json!({"status": "shutting down"});
            http::write_response(writer, 200, &[], &body.to_string())?;
            // Respond first so the client sees the acknowledgement even
            // though the acceptor is about to stop taking connections.
            begin_shutdown(shared);
            Ok(())
        }
        ("POST" | "GET", _) => {
            let body = json!({"error": format!("no such endpoint: {}", req.path)});
            http::write_response(writer, 404, &[], &body.to_string())
        }
        (method, _) => {
            let body = json!({"error": format!("method {method} not supported")});
            http::write_response(writer, 405, &[], &body.to_string())
        }
    }
}

fn handle_suggest(writer: &mut impl Write, body: &[u8], shared: &Arc<Shared>) -> io::Result<()> {
    let trace_id = shared.trace_ids.fetch_add(1, Ordering::Relaxed);
    let trace_header = trace_id.to_string();
    let headers = [("X-Trace-Id", trace_header.as_str())];
    let _span = obs::span("server.request");
    // Per-trace child spans make every request individually visible in
    // the obs tree, at unbounded span-path cardinality — debugging only.
    let _trace_span = trace_requests_enabled().then(|| obs::span(&format!("t{trace_id}")));
    obs::counter_add(REQUESTS_COUNTER, 1);

    let parsed = std::str::from_utf8(body)
        .map_err(|_| "body is not UTF-8".to_string())
        .and_then(|text| serde_json::from_str(text).map_err(|e| format!("bad JSON: {e}")))
        .and_then(|v: Value| wire::decode_request(&v).map_err(|e| e.to_string()));
    let request = match parsed {
        Ok(r) => r,
        Err(msg) => {
            obs::counter_add(RESPONSES_ERROR_COUNTER, 1);
            let body = json!({"trace_id": trace_id, "error": msg});
            return http::write_response(writer, 400, &headers, &body.to_string());
        }
    };

    let (tx, rx) = mpsc::channel();
    let job = Job { body_hash: fnv1a64(body), request, reply: tx };
    match shared.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full) => {
            shared.rejected_busy.fetch_add(1, Ordering::Relaxed);
            obs::counter_add("server.rejected_busy_live", 1);
            let body = json!({"trace_id": trace_id, "error": "queue full, retry later"});
            return http::write_response(writer, 429, &headers, &body.to_string());
        }
        Err(PushError::Closed) => {
            let body = json!({"trace_id": trace_id, "error": "server shutting down"});
            return http::write_response(writer, 503, &headers, &body.to_string());
        }
    }

    match rx.recv() {
        Ok(JobOutcome { model_version, result: Ok(response) }) => {
            obs::counter_add(RESPONSES_OK_COUNTER, 1);
            let body = json!({
                "trace_id": trace_id,
                "model_version": model_version,
                "response": wire::encode_response(&response),
            });
            http::write_response(writer, 200, &headers, &body.to_string())
        }
        Ok(JobOutcome { result: Err(msg), .. }) => {
            obs::counter_add(RESPONSES_ERROR_COUNTER, 1);
            let body = json!({"trace_id": trace_id, "error": msg});
            http::write_response(writer, 500, &headers, &body.to_string())
        }
        Err(_) => {
            // Batcher dropped the reply channel without answering — only
            // possible if it is shutting down mid-flight.
            obs::counter_add(RESPONSES_ERROR_COUNTER, 1);
            let body = json!({"trace_id": trace_id, "error": "server shutting down"});
            http::write_response(writer, 503, &headers, &body.to_string())
        }
    }
}

/// Value of `name` in a `k=v&k2=v2` query string, if present.
fn query_param<'a>(query: &'a str, name: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        (key == name).then_some(value)
    })
}

fn handle_reload(
    writer: &mut impl Write,
    query: &str,
    body: &[u8],
    shared: &Arc<Shared>,
) -> io::Result<()> {
    let _span = obs::span("server.reload");
    let incremental = match query_param(query, "mode").unwrap_or("full") {
        "full" => false,
        "incremental" => true,
        other => {
            let body = json!({
                "error": format!("unknown reload mode {other:?} (expected \"full\" or \"incremental\")"),
            });
            return http::write_response(writer, 400, &[], &body.to_string());
        }
    };
    let seed = std::str::from_utf8(body)
        .ok()
        .and_then(|text| serde_json::from_str(text).ok())
        .and_then(|v: Value| v.get("seed").and_then(Value::as_i64))
        .and_then(|s| u64::try_from(s).ok());
    let Some(seed) = seed else {
        let body = json!({"error": "reload body must be {\"seed\": <u64>}"});
        return http::write_response(writer, 400, &[], &body.to_string());
    };
    // One reload at a time. `try_lock` rather than `lock`: a second
    // request while one is training answers 409 immediately instead of
    // queueing up a redundant retrain behind the in-flight one. A
    // poisoned lock just means a previous reload panicked after
    // answering; the slot itself is always consistent, so proceed.
    let guard = match shared.reload_lock.try_lock() {
        Ok(guard) => guard,
        Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => {
            let body = json!({"error": "a reload is already in flight, retry later"});
            return http::write_response(writer, 409, &[], &body.to_string());
        }
    };
    let response = if incremental {
        let started = Instant::now();
        // Snapshot the served system; serving continues against it (and
        // any concurrently swapped successor) while the planner works.
        let current = shared.slot.load();
        let (replacement, report) = (shared.incremental_trainer)(seed, &current.system);
        let version = shared.slot.swap(replacement);
        obs::counter_add("server.model_swaps", 1);
        obs::counter_add(RETRAIN_RELOADS_COUNTER, 1);
        obs::counter_add(RETRAIN_CARRIED_COUNTER, report.carried.len() as u64);
        obs::counter_add(RETRAIN_REBUILT_COUNTER, report.rebuilt.len() as u64);
        obs::counter_add(RETRAIN_REPLAYED_COUNTER, report.delta.replayed_notebooks as u64);
        obs::observe("server.retrain.reload_seconds", started.elapsed().as_secs_f64());
        json!({
            "status": "reloaded",
            "mode": "incremental",
            "model_version": version,
            "seed": seed,
            "carried": report.carried,
            "rebuilt": report.rebuilt,
            "notebooks_replayed": report.delta.replayed_notebooks,
            "reports_reused": report.delta.reused_reports,
            "full_replay_fallback": report.full_replay_fallback,
        })
    } else {
        let replacement = (shared.trainer)(seed);
        let version = shared.slot.swap(replacement);
        obs::counter_add("server.model_swaps", 1);
        json!({"status": "reloaded", "mode": "full", "model_version": version, "seed": seed})
    };
    // Release before answering: a client that reads this 200 and fires
    // the next reload straight away must not race the guard drop into a
    // spurious 409.
    drop(guard);
    http::write_response(writer, 200, &[], &response.to_string())
}

// ---------------------------------------------------------------------------
// Batcher
// ---------------------------------------------------------------------------

fn run_batcher(shared: &Arc<Shared>) {
    while let Some(jobs) = shared.queue.drain_batch(shared.max_batch, shared.batch_window) {
        if jobs.is_empty() {
            continue;
        }
        execute_batch(&jobs, shared);
    }
}

fn execute_batch(jobs: &[Job], shared: &Arc<Shared>) {
    obs::counter_add("server.batches_live", 1);
    obs::observe("server.batch_size_live", jobs.len() as f64);
    obs::gauge_set("server.queue_depth_live", shared.queue.len() as f64);
    if let Ok(mut sizes) = shared.batch_sizes.lock() {
        *sizes.entry(jobs.len()).or_insert(0) += 1;
    }

    let model = shared.slot.load();
    let requests: Vec<_> = jobs.iter().map(|j| j.request.as_request()).collect();
    // Warm shared column sketches across the whole batch. Guarded: a
    // panic during warming must degrade to per-request computation, not
    // kill the batcher.
    let ambient = obs::ambient();
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        obs::with_ambient(&ambient, || model.system.warm_tables(&requests))
    }));

    let results: Vec<Result<SuggestResponse, JobError>> =
        autosuggest_parallel::par_try_map(jobs, |job| {
            if let Some(kind) = injected_fault(shared, job.body_hash) {
                obs::counter_add(FAULTS_INJECTED_COUNTER, 1);
                if kind == FaultKind::Panic {
                    // A genuine panic, contained by the pool's catch_unwind:
                    // proves one poisoned request cannot take down the batch.
                    panic!("injected {} fault", kind.as_str());
                }
                return Err(JobError(format!(
                    "injected {} fault during featurisation",
                    kind.as_str()
                )));
            }
            Ok(model.system.suggest(&job.request.as_request()))
        });

    for (job, result) in jobs.iter().zip(results) {
        let outcome = JobOutcome {
            model_version: model.version,
            result: result.map_err(|JobError(msg)| msg),
        };
        // A send error means the handler gave up (connection died); the
        // computed answer is simply dropped.
        let _ = job.reply.send(outcome);
    }
}

/// Roll the fault table for a request, keyed purely on its body hash so
/// injection is a deterministic property of request *content*, not of
/// arrival order or batch placement.
fn injected_fault(shared: &Arc<Shared>, body_hash: u64) -> Option<FaultKind> {
    let spec = shared.faults.as_ref()?;
    spec.fault_for(&format!("req:{body_hash:016x}"), 0, 0, 0)
}

fn trace_requests_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("AUTOSUGGEST_TRACE_REQUESTS").is_ok_and(|v| v == "1")
    })
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Build the `/stats` document. The `"deterministic"` section is the
/// curated, thread- and timing-invariant slice (see module docs); CI
/// diffs its rendering byte-for-byte across thread counts.
fn stats_value(shared: &Arc<Shared>) -> Value {
    let snapshot = obs::snapshot();
    let mut deterministic = serde_json::Map::new();
    for (name, value) in &snapshot.counters {
        if name.starts_with("server.") && !obs::is_timing_name(name) {
            deterministic.insert(name.clone(), Value::from(*value));
        }
    }

    let sizes = shared
        .batch_sizes
        .lock()
        .map(|m| {
            let mut hist = serde_json::Map::new();
            for (size, count) in m.iter() {
                hist.insert(size.to_string(), Value::from(*count));
            }
            Value::Object(hist)
        })
        .unwrap_or(Value::Null);

    json!({
        "deterministic": Value::Object(deterministic),
        "live": {
            "queue_depth": shared.queue.len(),
            "queue_capacity": shared.queue.capacity(),
            "rejected_busy": shared.rejected_busy.load(Ordering::Relaxed),
            "batch_sizes": sizes,
            "uptime_seconds": shared.started.elapsed().as_secs_f64(),
        },
        "model": {
            "version": shared.slot.version(),
        },
    })
}
