//! Bounded admission queue with micro-batch draining.
//!
//! This is the daemon's only buffer between the network and the model, so
//! its capacity *is* the admission-control policy: `try_push` never
//! blocks and never allocates past the cap — a full queue is an immediate
//! [`PushError::Full`], which the HTTP layer turns into `429`. Memory is
//! therefore bounded by `capacity × sizeof(job)` no matter how hard
//! clients push.
//!
//! The consumer side implements the micro-batch window: [`drain_batch`]
//! blocks until at least one job is queued, then keeps collecting until
//! either `max_batch` jobs are in hand or `window` has elapsed since the
//! first one was seen. Under light load that costs at most one window of
//! added latency; under heavy load batches fill instantly and the window
//! never matters.
//!
//! [`drain_batch`]: BatchQueue::drain_batch

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed load now rather than buffer.
    Full,
    /// The queue has been closed for shutdown.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPSC queue whose consumer drains in micro-batches.
pub struct BatchQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    arrived: Condvar,
}

fn lock_recover<'a, T>(m: &'a Mutex<State<T>>) -> MutexGuard<'a, State<T>> {
    // Queue state is a plain VecDeque + flag; no invariant can be broken
    // mid-panic, so a poisoned lock is safe to adopt.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<T> BatchQueue<T> {
    pub fn new(capacity: usize) -> BatchQueue<T> {
        BatchQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            arrived: Condvar::new(),
        }
    }

    /// The admission cap this queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting (racy by nature; for stats only).
    pub fn len(&self) -> usize {
        lock_recover(&self.state).items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue without blocking. Full or closed queues refuse immediately.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = lock_recover(&self.state);
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.arrived.notify_all();
        Ok(())
    }

    /// Close the queue: future pushes fail, and `drain_batch` returns
    /// whatever is left, then `None`.
    pub fn close(&self) {
        lock_recover(&self.state).closed = true;
        self.arrived.notify_all();
    }

    /// Block until at least one job arrives, then collect up to
    /// `max_batch` jobs for at most `window` past the first arrival.
    /// Returns `None` once the queue is closed *and* drained — the
    /// consumer's shutdown signal.
    pub fn drain_batch(&self, max_batch: usize, window: Duration) -> Option<Vec<T>> {
        let max_batch = max_batch.max(1);
        let mut state = lock_recover(&self.state);
        loop {
            if !state.items.is_empty() {
                break;
            }
            if state.closed {
                return None;
            }
            state = self
                .arrived
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        let deadline = Instant::now() + window;
        while state.items.len() < max_batch && !state.closed {
            let now = Instant::now();
            let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
            else {
                break;
            };
            let (guard, timeout) = self
                .arrived
                .wait_timeout(state, remaining)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let n = state.items.len().min(max_batch);
        Some(state.items.drain(..n).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn full_queue_sheds_instead_of_buffering() {
        let q = BatchQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drain_respects_max_batch_and_leaves_the_rest() {
        let q = BatchQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let batch = q.drain_batch(3, Duration::from_millis(0)).unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_remaining_then_signals_shutdown() {
        let q = BatchQueue::new(4);
        q.try_push("job").unwrap();
        q.close();
        assert_eq!(q.try_push("late"), Err(PushError::Closed));
        assert_eq!(q.drain_batch(10, Duration::from_millis(0)), Some(vec!["job"]));
        assert_eq!(q.drain_batch(10, Duration::from_millis(0)), None);
    }

    #[test]
    fn consumer_wakes_on_push_from_another_thread() {
        let q = Arc::new(BatchQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.drain_batch(4, Duration::from_millis(1)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42u32).unwrap();
        let batch = consumer.join().expect("consumer panicked").unwrap();
        assert_eq!(batch, vec![42]);
    }

    #[test]
    fn window_collects_stragglers_into_one_batch() {
        let q = Arc::new(BatchQueue::new(16));
        q.try_push(0).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                q.try_push(1).unwrap();
            })
        };
        // A generous window should pick up the straggler in the same batch.
        let batch = q.drain_batch(16, Duration::from_millis(500)).unwrap();
        producer.join().expect("producer panicked");
        // The straggler lands in this batch (common) or the next (legal);
        // either way nothing is lost.
        let mut seen = batch;
        if seen.len() < 2 {
            seen.extend(q.drain_batch(16, Duration::from_millis(0)).unwrap());
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1]);
    }
}
