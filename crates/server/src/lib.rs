//! `autosuggestd` — a long-running HTTP suggestion daemon over trained
//! Auto-Suggest models.
//!
//! The library pipeline ([`autosuggest_core::pipeline::AutoSuggest`])
//! answers one borrowed request at a time; this crate wraps it in a
//! std-only HTTP/1.1 front end so notebook clients can query a warm,
//! already-trained model over loopback instead of retraining per process:
//!
//! - **Wire format**: JSON requests/responses via
//!   [`autosuggest_core::wire`], parsed with the vendored `serde_json`
//!   shim — no external dependencies anywhere in the stack.
//! - **Admission control**: a bounded [`queue::BatchQueue`]; when it is
//!   full the daemon answers `429` immediately rather than buffering
//!   unbounded memory.
//! - **Micro-batching**: a single batcher thread drains the queue every
//!   few milliseconds (or every `max_batch` requests, whichever first)
//!   and answers the batch through the same warm-then-parallel-map path
//!   as `suggest_batch`, so concurrent clients share column-sketch work.
//! - **Hot reload**: `POST /admin/reload` trains a replacement model and
//!   installs it with an atomic `Arc` swap
//!   ([`autosuggest_core::model_slot::ModelSlot`]); in-flight batches
//!   finish on the version they started with.
//! - **Graceful degradation**: with `AUTOSUGGEST_FAULTS` set, injected
//!   per-request featurisation faults (including real panics) error only
//!   the affected request; the rest of the batch and the daemon survive.
//!
//! See `DESIGN.md` §12 for the protocol and determinism conventions, and
//! the README quickstart for running the daemon.
//!
//! ```no_run
//! use autosuggest_core::pipeline::{AutoSuggest, AutoSuggestConfig};
//! use autosuggest_core::model_slot::ModelSlot;
//! use std::sync::Arc;
//!
//! let system = AutoSuggest::train(AutoSuggestConfig::fast(42));
//! let slot = Arc::new(ModelSlot::new(system));
//! let server = autosuggest_server::serve(slot, Default::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.wait().unwrap();
//! ```

// The daemon must never die on a bad request — panicking escape hatches
// are confined to tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod http;
pub mod queue;
mod server;

pub use server::{
    serve, Server, ServerConfig, FAULTS_INJECTED_COUNTER, REQUESTS_COUNTER,
    RESPONSES_ERROR_COUNTER, RESPONSES_OK_COUNTER,
};
