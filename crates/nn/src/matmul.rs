//! Small blocked-GEMM kernels for the training hot path.
//!
//! The next-operator model is tiny (a few thousand parameters), so the
//! historical per-example code spent most of its time allocating
//! intermediate `Vec`s rather than multiplying. These kernels operate on
//! caller-owned row-major batch buffers and allocate nothing.
//!
//! ## Determinism contract
//!
//! Every kernel accumulates each output element in a fixed order
//! (ascending over the contraction dimension, ascending over batch rows
//! for gradient accumulation), identical to the per-example loops in
//! [`crate::layers`]. Batching therefore changes *when* flops happen, not
//! *what* is summed in which order: a batch of one is bit-identical to
//! the per-example path, and larger batches are bit-identical to
//! accumulating the same examples sequentially.
//!
//! Row-blocking (`ROW_BLOCK` rows of `a` share one sweep over `w`) only
//! regroups independent output rows; per-element arithmetic order is
//! untouched.

/// Rows of `a` processed per sweep over `w`. Each sweep streams the whole
/// weight matrix once, so a block of rows amortises that traffic.
const ROW_BLOCK: usize = 4;

/// `out[r] = bias (+ a[r]·w)` for each of `batch` rows.
///
/// `a` is `batch × k` row-major, `w` is `k × n` row-major, `out` is
/// `batch × n`. Zero entries of `a` are skipped — exactly like
/// [`crate::layers::Dense::forward`] — which both preserves the historical
/// bit pattern and exploits ReLU sparsity in hidden states.
pub fn gemm_bias(a: &[f64], batch: usize, k: usize, w: &[f64], bias: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), batch * k);
    debug_assert_eq!(w.len(), k * n);
    debug_assert_eq!(bias.len(), n);
    debug_assert!(out.len() >= batch * n);
    for r in 0..batch {
        out[r * n..(r + 1) * n].copy_from_slice(bias);
    }
    gemm_acc(a, batch, k, w, n, out);
}

/// `out[r] += a[r]·w` for each of `batch` rows (`a`: `batch × k`, `w`:
/// `k × n`, `out`: `batch × n`), skipping zero activations.
pub fn gemm_acc(a: &[f64], batch: usize, k: usize, w: &[f64], n: usize, out: &mut [f64]) {
    debug_assert_eq!(a.len(), batch * k);
    debug_assert_eq!(w.len(), k * n);
    debug_assert!(out.len() >= batch * n);
    let mut r = 0;
    while r < batch {
        let rows = ROW_BLOCK.min(batch - r);
        for i in 0..k {
            let wrow = &w[i * n..(i + 1) * n];
            for br in 0..rows {
                let xi = a[(r + br) * k + i];
                if xi == 0.0 {
                    continue;
                }
                let orow = &mut out[(r + br) * n..(r + br) * n + n];
                for (o, &wj) in orow.iter_mut().zip(wrow) {
                    *o += xi * wj;
                }
            }
        }
        r += rows;
    }
}

/// Backward through `y = x·w`: `dx[r] = dy[r]·wᵀ` and `dw += xᵀ·dy`,
/// `db += Σ_r dy[r]`.
///
/// Gradient accumulation order per element is ascending batch row — the
/// same order per-example training would produce — so batch gradients are
/// bit-identical to sequentially accumulated per-example gradients.
#[allow(clippy::too_many_arguments)]
pub fn gemm_backward(
    x: &[f64],
    dy: &[f64],
    batch: usize,
    k: usize,
    n: usize,
    w: &[f64],
    dw: &mut [f64],
    db: &mut [f64],
    dx: &mut [f64],
) {
    debug_assert_eq!(x.len(), batch * k);
    debug_assert!(dy.len() >= batch * n);
    debug_assert_eq!(w.len(), k * n);
    debug_assert_eq!(dw.len(), k * n);
    debug_assert_eq!(db.len(), n);
    debug_assert!(dx.len() >= batch * k);
    for r in 0..batch {
        let dyr = &dy[r * n..(r + 1) * n];
        for i in 0..k {
            let wrow = &w[i * n..(i + 1) * n];
            let drow = &mut dw[i * n..(i + 1) * n];
            let xi = x[r * k + i];
            let mut acc = 0.0;
            for j in 0..n {
                acc += wrow[j] * dyr[j];
                drow[j] += xi * dyr[j];
            }
            dx[r * k + i] = acc;
        }
        for (dbj, dyj) in db.iter_mut().zip(dyr) {
            *dbj += dyj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_forward(a: &[f64], batch: usize, k: usize, w: &[f64], bias: &[f64], n: usize) -> Vec<f64> {
        let mut out = vec![0.0; batch * n];
        for r in 0..batch {
            for j in 0..n {
                out[r * n + j] = bias[j];
            }
            for i in 0..k {
                for j in 0..n {
                    out[r * n + j] += a[r * k + i] * w[i * n + j];
                }
            }
        }
        out
    }

    #[test]
    fn gemm_bias_matches_naive() {
        let (batch, k, n) = (5, 3, 4);
        let a: Vec<f64> = (0..batch * k).map(|i| (i as f64 * 0.37).sin()).collect();
        let w: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.11).cos()).collect();
        let bias: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        let mut out = vec![0.0; batch * n];
        gemm_bias(&a, batch, k, &w, &bias, n, &mut out);
        let want = naive_forward(&a, batch, k, &w, &bias, n);
        for (g, e) in out.iter().zip(&want) {
            assert!((g - e).abs() < 1e-12, "{g} vs {e}");
        }
    }

    #[test]
    fn row_blocking_is_bit_identical_to_single_rows() {
        // A batch run must equal running each row alone (shared per-element
        // accumulation order) — the foundation of batch==sequential.
        let (batch, k, n) = (9, 7, 6);
        let a: Vec<f64> = (0..batch * k)
            .map(|i| if i % 5 == 0 { 0.0 } else { (i as f64 * 1.3).sin() })
            .collect();
        let w: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.7).cos()).collect();
        let bias: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
        let mut batched = vec![0.0; batch * n];
        gemm_bias(&a, batch, k, &w, &bias, n, &mut batched);
        for r in 0..batch {
            let mut single = vec![0.0; n];
            gemm_bias(&a[r * k..(r + 1) * k], 1, k, &w, &bias, n, &mut single);
            assert_eq!(&batched[r * n..(r + 1) * n], &single[..]);
        }
    }

    #[test]
    fn backward_accumulates_in_batch_row_order() {
        // dw from one batched call == dw from per-row calls in order.
        let (batch, k, n) = (6, 4, 3);
        let x: Vec<f64> = (0..batch * k).map(|i| (i as f64 * 0.9).sin()).collect();
        let dy: Vec<f64> = (0..batch * n).map(|i| (i as f64 * 0.4).cos()).collect();
        let w: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.2).sin()).collect();

        let mut dw_a = vec![0.0; k * n];
        let mut db_a = vec![0.0; n];
        let mut dx_a = vec![0.0; batch * k];
        gemm_backward(&x, &dy, batch, k, n, &w, &mut dw_a, &mut db_a, &mut dx_a);

        let mut dw_b = vec![0.0; k * n];
        let mut db_b = vec![0.0; n];
        let mut dx_b = vec![0.0; batch * k];
        for r in 0..batch {
            gemm_backward(
                &x[r * k..(r + 1) * k],
                &dy[r * n..(r + 1) * n],
                1,
                k,
                n,
                &w,
                &mut dw_b,
                &mut db_b,
                &mut dx_b[r * k..(r + 1) * k],
            );
        }
        assert_eq!(dw_a, dw_b);
        assert_eq!(db_a, db_b);
        assert_eq!(dx_a, dx_b);
    }

    #[test]
    fn dx_matches_finite_difference() {
        let (k, n) = (3, 2);
        let x = [0.3, -0.7, 1.1];
        let dy = [1.0, -2.0];
        let w: Vec<f64> = (0..k * n).map(|i| (i as f64 * 0.31).sin()).collect();
        let mut dw = vec![0.0; k * n];
        let mut db = vec![0.0; n];
        let mut dx = vec![0.0; k];
        gemm_backward(&x, &dy, 1, k, n, &w, &mut dw, &mut db, &mut dx);
        let loss = |x: &[f64]| -> f64 {
            let mut y = vec![0.0; n];
            gemm_bias(x, 1, k, &w, &[0.0; 2], n, &mut y);
            y[0] * dy[0] + y[1] * dy[1]
        };
        let eps = 1e-6;
        for i in 0..k {
            let mut xp = x;
            xp[i] += eps;
            let num = (loss(&xp) - loss(&x)) / eps;
            assert!((num - dx[i]).abs() < 1e-5, "dx[{i}]: {num} vs {}", dx[i]);
        }
    }
}
