//! Seeded reservoir sampling for bounded training-example buffers.
//!
//! A long-running daemon that keeps folding freshly replayed invocations
//! into its models cannot let the training set grow without bound.
//! [`ExampleBuffer`] caps it with the classic Algorithm R reservoir: after
//! `t` items have been offered, every one of them is retained with
//! probability `capacity / t` — but with *stateless* per-item randomness.
//!
//! Instead of drawing from a sequential RNG (whose stream position would
//! depend on how pushes were chunked), the replacement index for the
//! `t`-th offered item is a pure function of `(seed, t)`:
//!
//! ```text
//! j = splitmix64(seed ^ mix(t)) mod (t + 1)      // keep if j < capacity
//! ```
//!
//! The only mutable state is the count of items seen, so the retained set
//! after `n` offers is byte-identical no matter how the offers were
//! batched — one `extend(..)` of `n` items, `n` single `push(..)` calls,
//! or any interleaving across restarts — and trivially invariant to
//! `AUTOSUGGEST_THREADS` (the buffer itself is single-writer; callers fan
//! in *in a fixed order*, which the planner guarantees by offering
//! examples in canonical corpus order).
//!
//! When `capacity >= total offers`, nothing is ever evicted and the buffer
//! is exactly the input sequence in insertion order — the planner relies
//! on this to make "reservoir keeps everything" retrains bit-identical to
//! training on the union.

/// A bounded, seeded reservoir of training examples (Algorithm R with
/// per-index stateless randomness; see module docs).
#[derive(Debug, Clone)]
pub struct ExampleBuffer<T> {
    capacity: usize,
    seed: u64,
    seen: u64,
    items: Vec<T>,
}

/// SplitMix64 finalizer: a high-quality 64-bit mix, used here to turn
/// `(seed, index)` into an independent uniform draw per offered item.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<T> ExampleBuffer<T> {
    /// An empty reservoir holding at most `capacity` items. A capacity of
    /// zero is a valid degenerate reservoir that counts offers but retains
    /// nothing — callers sizing buffers from config arithmetic must not
    /// have to special-case it.
    pub fn new(capacity: usize, seed: u64) -> Self {
        ExampleBuffer { capacity, seed, seen: 0, items: Vec::new() }
    }

    /// Offer one item. Until the reservoir is full this always retains it
    /// (in insertion order); afterwards the item replaces a uniformly
    /// chosen resident with probability `capacity / seen`.
    pub fn push(&mut self, item: T) {
        let t = self.seen;
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            return;
        }
        // Uniform draw over [0, t]: t ≥ capacity here (so t + 1 ≥ 1 and
        // the modulo is well-defined even at capacity 0), and the modulo
        // bias over a 64-bit mix is negligible for any realistic t.
        let j = splitmix64(self.seed ^ splitmix64(t)) % (t + 1);
        if (j as usize) < self.capacity {
            self.items[j as usize] = item;
        }
    }

    /// Offer every item of an iterator, in order.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }

    /// The retained items. Positions `< capacity` fill in insertion order;
    /// once eviction starts, slot contents are seed-determined.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consume the buffer, yielding the retained items.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// Number of items currently retained (`min(seen, capacity)`).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no item has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total number of items ever offered.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retention bound this reservoir was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_capacity_keeps_everything_in_order() {
        let mut buf = ExampleBuffer::new(16, 7);
        buf.extend(0..10);
        assert_eq!(buf.items(), (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.seen(), 10);
    }

    #[test]
    fn at_exact_capacity_is_the_identity() {
        let mut buf = ExampleBuffer::new(10, 99);
        buf.extend(0..10);
        assert_eq!(buf.items(), (0..10).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn chunking_does_not_change_the_retained_set() {
        let total: Vec<u32> = (0..500).collect();
        let mut whole = ExampleBuffer::new(20, 42);
        whole.extend(total.iter().copied());
        for chunk_size in [1usize, 3, 7, 50, 499] {
            let mut chunked = ExampleBuffer::new(20, 42);
            for chunk in total.chunks(chunk_size) {
                chunked.extend(chunk.iter().copied());
            }
            assert_eq!(chunked.items(), whole.items(), "chunk size {chunk_size}");
            assert_eq!(chunked.seen(), whole.seen());
        }
    }

    #[test]
    fn different_seeds_retain_different_sets() {
        let mut a = ExampleBuffer::new(10, 1);
        let mut b = ExampleBuffer::new(10, 2);
        a.extend(0..1000);
        b.extend(0..1000);
        assert_ne!(a.items(), b.items());
    }

    #[test]
    fn zero_capacity_counts_offers_but_retains_nothing() {
        let mut buf = ExampleBuffer::<u8>::new(0, 0);
        buf.extend([1, 2, 3]);
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
        assert_eq!(buf.seen(), 3);
    }
}
