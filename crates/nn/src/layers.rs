//! Small dense layers and activations.
//!
//! Everything here is deliberately plain `Vec<f64>` math: the next-operator
//! model has a 7-symbol vocabulary and a few thousand parameters, so clarity
//! beats BLAS.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense affine layer `y = x·W + b` with accumulated gradients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    pub in_dim: usize,
    pub out_dim: usize,
    /// Row-major `in_dim × out_dim`.
    pub w: Vec<f64>,
    pub b: Vec<f64>,
    pub dw: Vec<f64>,
    pub db: Vec<f64>,
}

impl Dense {
    /// Xavier-uniform initialisation.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let scale = (6.0 / (in_dim + out_dim) as f64).sqrt();
        Dense {
            in_dim,
            out_dim,
            w: (0..in_dim * out_dim)
                .map(|_| rng.random_range(-scale..scale))
                .collect(),
            b: vec![0.0; out_dim],
            dw: vec![0.0; in_dim * out_dim],
            db: vec![0.0; out_dim],
        }
    }

    /// Forward pass for a single example.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.in_dim);
        let mut y = self.b.clone();
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = &self.w[i * self.out_dim..(i + 1) * self.out_dim];
            for (yj, wj) in y.iter_mut().zip(row) {
                *yj += xi * wj;
            }
        }
        y
    }

    /// Backward pass: accumulate `dW`, `db` and return `dx`.
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        debug_assert_eq!(dy.len(), self.out_dim);
        let mut dx = vec![0.0; self.in_dim];
        for i in 0..self.in_dim {
            let row = &self.w[i * self.out_dim..(i + 1) * self.out_dim];
            let drow = &mut self.dw[i * self.out_dim..(i + 1) * self.out_dim];
            let xi = x[i];
            let mut acc = 0.0;
            for j in 0..self.out_dim {
                acc += row[j] * dy[j];
                drow[j] += xi * dy[j];
            }
            dx[i] = acc;
        }
        for (dbj, dyj) in self.db.iter_mut().zip(dy) {
            *dbj += dyj;
        }
        dx
    }

    /// Zero accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dw.iter_mut().for_each(|g| *g = 0.0);
        self.db.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// An embedding table mapping symbol ids to dense vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    pub vocab: usize,
    pub dim: usize,
    /// Row-major `vocab × dim`.
    pub table: Vec<f64>,
    pub grad: Vec<f64>,
}

impl Embedding {
    pub fn new<R: Rng>(vocab: usize, dim: usize, rng: &mut R) -> Self {
        let scale = (1.0 / dim as f64).sqrt();
        Embedding {
            vocab,
            dim,
            table: (0..vocab * dim)
                .map(|_| rng.random_range(-scale..scale))
                .collect(),
            grad: vec![0.0; vocab * dim],
        }
    }

    /// The embedding vector for symbol `id`.
    pub fn lookup(&self, id: usize) -> &[f64] {
        assert!(id < self.vocab, "symbol id {id} out of vocabulary");
        &self.table[id * self.dim..(id + 1) * self.dim]
    }

    /// Accumulate gradient for symbol `id`.
    pub fn backward(&mut self, id: usize, d: &[f64]) {
        let row = &mut self.grad[id * self.dim..(id + 1) * self.dim];
        for (g, dj) in row.iter_mut().zip(d) {
            *g += dj;
        }
    }

    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// Numerically-stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&z| (z - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// ReLU applied element-wise, returning the activated vector.
pub fn relu(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// Gradient of ReLU: passes `dy` where the forward activation was positive.
pub fn relu_backward(activated: &[f64], dy: &[f64]) -> Vec<f64> {
    activated
        .iter()
        .zip(dy)
        .map(|(&a, &d)| if a > 0.0 { d } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0)
    }

    #[test]
    fn dense_forward_identity_weights() {
        let mut d = Dense::new(2, 2, &mut rng());
        d.w = vec![1.0, 0.0, 0.0, 1.0];
        d.b = vec![0.5, -0.5];
        assert_eq!(d.forward(&[2.0, 3.0]), vec![2.5, 2.5]);
    }

    #[test]
    fn dense_backward_gradients_match_finite_difference() {
        let mut d = Dense::new(3, 2, &mut rng());
        let x = [0.3, -0.7, 1.1];
        let dy = [1.0, -2.0];
        let dx = d.backward(&x, &dy);
        // Finite-difference check on one weight and the input gradient.
        let eps = 1e-6;
        let loss = |d: &Dense, x: &[f64]| -> f64 {
            let y = d.forward(x);
            y[0] * dy[0] + y[1] * dy[1]
        };
        let mut d2 = d.clone();
        d2.w[2] += eps; // weight (0, cols=2 → row 0, col 0? index 2 = row1,col0)
        let num = (loss(&d2, &x) - loss(&d, &x)) / eps;
        assert!((num - d.dw[2]).abs() < 1e-4, "num {num} vs analytic {}", d.dw[2]);
        let mut xp = x;
        xp[1] += eps;
        let numx = (loss(&d, &xp) - loss(&d, &x)) / eps;
        assert!((numx - dx[1]).abs() < 1e-4);
    }

    #[test]
    fn embedding_lookup_and_grad() {
        let mut e = Embedding::new(4, 3, &mut rng());
        let v = e.lookup(2).to_vec();
        assert_eq!(v.len(), 3);
        e.backward(2, &[1.0, 1.0, 1.0]);
        e.backward(2, &[1.0, 0.0, 0.0]);
        assert_eq!(e.grad[2 * 3], 2.0);
        assert_eq!(e.grad[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn embedding_oov_panics() {
        Embedding::new(2, 2, &mut rng()).lookup(5);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 999.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[2]);
        assert!(p.iter().all(|&x| x.is_finite()));
    }

    #[test]
    fn relu_and_its_gradient() {
        let a = relu(&[-1.0, 0.0, 2.0]);
        assert_eq!(a, vec![0.0, 0.0, 2.0]);
        let g = relu_backward(&a, &[5.0, 5.0, 5.0]);
        assert_eq!(g, vec![0.0, 0.0, 5.0]);
    }
}
