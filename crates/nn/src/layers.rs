//! Small dense layers and activations.
//!
//! The next-operator model has a 7-symbol vocabulary and a few thousand
//! parameters, so the kernels in [`crate::matmul`] favour allocation-free
//! batch buffers over BLAS. Each layer offers the historical per-example
//! API (allocating, used by tests and small callers) plus `*_batch`
//! variants that write into caller-owned scratch — both lower to the same
//! kernels, so a batch of one is bit-identical to the per-example path.

use crate::matmul::{gemm_backward, gemm_bias};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense affine layer `y = x·W + b` with accumulated gradients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    pub in_dim: usize,
    pub out_dim: usize,
    /// Row-major `in_dim × out_dim`.
    pub w: Vec<f64>,
    pub b: Vec<f64>,
    pub dw: Vec<f64>,
    pub db: Vec<f64>,
}

impl Dense {
    /// Xavier-uniform initialisation.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let scale = (6.0 / (in_dim + out_dim) as f64).sqrt();
        Dense {
            in_dim,
            out_dim,
            w: (0..in_dim * out_dim)
                .map(|_| rng.random_range(-scale..scale))
                .collect(),
            b: vec![0.0; out_dim],
            dw: vec![0.0; in_dim * out_dim],
            db: vec![0.0; out_dim],
        }
    }

    /// Forward pass for a single example.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.out_dim];
        self.forward_batch(x, 1, &mut y);
        y
    }

    /// Forward pass for a row-major batch: `out[r] = x[r]·W + b`.
    /// `out` must hold at least `batch × out_dim` elements.
    pub fn forward_batch(&self, x: &[f64], batch: usize, out: &mut [f64]) {
        debug_assert_eq!(x.len(), batch * self.in_dim);
        gemm_bias(x, batch, self.in_dim, &self.w, &self.b, self.out_dim, out);
    }

    /// Backward pass: accumulate `dW`, `db` and return `dx`.
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        let mut dx = vec![0.0; self.in_dim];
        self.backward_batch(x, dy, 1, &mut dx);
        dx
    }

    /// Batched backward: accumulate `dW += xᵀ·dy`, `db += Σ dy[r]` and
    /// write `dx[r] = dy[r]·Wᵀ` into the scratch slice. Accumulation is in
    /// ascending batch-row order, bit-identical to per-example calls.
    pub fn backward_batch(&mut self, x: &[f64], dy: &[f64], batch: usize, dx: &mut [f64]) {
        debug_assert_eq!(x.len(), batch * self.in_dim);
        gemm_backward(
            x,
            dy,
            batch,
            self.in_dim,
            self.out_dim,
            &self.w,
            &mut self.dw,
            &mut self.db,
            dx,
        );
    }

    /// Zero accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.dw.iter_mut().for_each(|g| *g = 0.0);
        self.db.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// An embedding table mapping symbol ids to dense vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    pub vocab: usize,
    pub dim: usize,
    /// Row-major `vocab × dim`.
    pub table: Vec<f64>,
    pub grad: Vec<f64>,
}

impl Embedding {
    pub fn new<R: Rng>(vocab: usize, dim: usize, rng: &mut R) -> Self {
        let scale = (1.0 / dim as f64).sqrt();
        Embedding {
            vocab,
            dim,
            table: (0..vocab * dim)
                .map(|_| rng.random_range(-scale..scale))
                .collect(),
            grad: vec![0.0; vocab * dim],
        }
    }

    /// The embedding vector for symbol `id`.
    pub fn lookup(&self, id: usize) -> &[f64] {
        assert!(id < self.vocab, "symbol id {id} out of vocabulary");
        &self.table[id * self.dim..(id + 1) * self.dim]
    }

    /// Gather the embedding rows for `ids` into a row-major batch buffer.
    pub fn lookup_batch(&self, ids: &[usize], out: &mut [f64]) {
        debug_assert!(out.len() >= ids.len() * self.dim);
        for (r, &id) in ids.iter().enumerate() {
            out[r * self.dim..(r + 1) * self.dim].copy_from_slice(self.lookup(id));
        }
    }

    /// Accumulate gradient for symbol `id`.
    pub fn backward(&mut self, id: usize, d: &[f64]) {
        let row = &mut self.grad[id * self.dim..(id + 1) * self.dim];
        for (g, dj) in row.iter_mut().zip(d) {
            *g += dj;
        }
    }

    /// Scatter-add a batch of gradient rows (`d` is `ids.len() × dim`,
    /// accumulated in ascending row order — deterministic even when ids
    /// repeat within the batch).
    pub fn backward_batch(&mut self, ids: &[usize], d: &[f64]) {
        debug_assert!(d.len() >= ids.len() * self.dim);
        for (r, &id) in ids.iter().enumerate() {
            self.backward(id, &d[r * self.dim..(r + 1) * self.dim]);
        }
    }

    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// Numerically-stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let mut out = logits.to_vec();
    softmax_rows(&mut out, logits.len());
    out
}

/// In-place numerically-stable softmax over each row of a `rows × n`
/// buffer (row count inferred from the slice length).
pub fn softmax_rows(buf: &mut [f64], n: usize) {
    if n == 0 {
        return;
    }
    for row in buf.chunks_mut(n) {
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// ReLU applied element-wise, returning the activated vector.
pub fn relu(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// ReLU applied in place.
pub fn relu_in_place(x: &mut [f64]) {
    for v in x.iter_mut() {
        *v = v.max(0.0);
    }
}

/// Gradient of ReLU: passes `dy` where the forward activation was positive.
pub fn relu_backward(activated: &[f64], dy: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; dy.len()];
    relu_backward_into(activated, dy, &mut out);
    out
}

/// [`relu_backward`] into a caller-owned buffer.
pub fn relu_backward_into(activated: &[f64], dy: &[f64], out: &mut [f64]) {
    for ((o, &a), &d) in out.iter_mut().zip(activated).zip(dy) {
        *o = if a > 0.0 { d } else { 0.0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0)
    }

    #[test]
    fn dense_forward_identity_weights() {
        let mut d = Dense::new(2, 2, &mut rng());
        d.w = vec![1.0, 0.0, 0.0, 1.0];
        d.b = vec![0.5, -0.5];
        assert_eq!(d.forward(&[2.0, 3.0]), vec![2.5, 2.5]);
    }

    #[test]
    fn dense_backward_gradients_match_finite_difference() {
        let mut d = Dense::new(3, 2, &mut rng());
        let x = [0.3, -0.7, 1.1];
        let dy = [1.0, -2.0];
        let dx = d.backward(&x, &dy);
        // Finite-difference check on one weight and the input gradient.
        let eps = 1e-6;
        let loss = |d: &Dense, x: &[f64]| -> f64 {
            let y = d.forward(x);
            y[0] * dy[0] + y[1] * dy[1]
        };
        let mut d2 = d.clone();
        d2.w[2] += eps; // weight (0, cols=2 → row 0, col 0? index 2 = row1,col0)
        let num = (loss(&d2, &x) - loss(&d, &x)) / eps;
        assert!((num - d.dw[2]).abs() < 1e-4, "num {num} vs analytic {}", d.dw[2]);
        let mut xp = x;
        xp[1] += eps;
        let numx = (loss(&d, &xp) - loss(&d, &x)) / eps;
        assert!((numx - dx[1]).abs() < 1e-4);
    }

    #[test]
    fn dense_batch_forward_equals_per_example() {
        let d = Dense::new(5, 3, &mut rng());
        let xs: Vec<f64> = (0..4 * 5).map(|i| (i as f64 * 0.73).sin()).collect();
        let mut batched = vec![0.0; 4 * 3];
        d.forward_batch(&xs, 4, &mut batched);
        for r in 0..4 {
            assert_eq!(&batched[r * 3..(r + 1) * 3], &d.forward(&xs[r * 5..(r + 1) * 5])[..]);
        }
    }

    #[test]
    fn dense_batch_backward_equals_sequential_accumulation() {
        let mut a = Dense::new(4, 3, &mut rng());
        let mut b = a.clone();
        let xs: Vec<f64> = (0..3 * 4).map(|i| (i as f64 * 0.37).cos()).collect();
        let dys: Vec<f64> = (0..3 * 3).map(|i| (i as f64 * 0.53).sin()).collect();
        let mut dx_a = vec![0.0; 3 * 4];
        a.backward_batch(&xs, &dys, 3, &mut dx_a);
        let mut dx_b = Vec::new();
        for r in 0..3 {
            dx_b.extend(b.backward(&xs[r * 4..(r + 1) * 4], &dys[r * 3..(r + 1) * 3]));
        }
        assert_eq!(a.dw, b.dw);
        assert_eq!(a.db, b.db);
        assert_eq!(dx_a, dx_b);
    }

    #[test]
    fn embedding_lookup_and_grad() {
        let mut e = Embedding::new(4, 3, &mut rng());
        let v = e.lookup(2).to_vec();
        assert_eq!(v.len(), 3);
        e.backward(2, &[1.0, 1.0, 1.0]);
        e.backward(2, &[1.0, 0.0, 0.0]);
        assert_eq!(e.grad[2 * 3], 2.0);
        assert_eq!(e.grad[0], 0.0);
    }

    #[test]
    fn embedding_batch_ops_match_per_symbol() {
        let mut e = Embedding::new(5, 2, &mut rng());
        let ids = [3usize, 1, 3];
        let mut gathered = vec![0.0; 3 * 2];
        e.lookup_batch(&ids, &mut gathered);
        for (r, &id) in ids.iter().enumerate() {
            assert_eq!(&gathered[r * 2..(r + 1) * 2], e.lookup(id));
        }
        let mut e2 = e.clone();
        let d: Vec<f64> = (0..3 * 2).map(|i| i as f64).collect();
        e.backward_batch(&ids, &d);
        for (r, &id) in ids.iter().enumerate() {
            e2.backward(id, &d[r * 2..(r + 1) * 2]);
        }
        assert_eq!(e.grad, e2.grad);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn embedding_oov_panics() {
        Embedding::new(2, 2, &mut rng()).lookup(5);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 999.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[2]);
        assert!(p.iter().all(|&x| x.is_finite()));
    }

    #[test]
    fn softmax_rows_matches_single_row_softmax() {
        let rows = [1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        let mut buf = rows.to_vec();
        softmax_rows(&mut buf, 3);
        assert_eq!(&buf[..3], &softmax(&rows[..3])[..]);
        assert_eq!(&buf[3..], &softmax(&rows[3..])[..]);
    }

    #[test]
    fn relu_and_its_gradient() {
        let a = relu(&[-1.0, 0.0, 2.0]);
        assert_eq!(a, vec![0.0, 0.0, 2.0]);
        let g = relu_backward(&a, &[5.0, 5.0, 5.0]);
        assert_eq!(g, vec![0.0, 0.0, 5.0]);
    }
}
