//! The next-operator network of Fig. 13: embedding → ReLU RNN → concat
//! single-operator scores → MLP → softmax.
//!
//! ## Training kernels
//!
//! Training runs through the allocation-free batch kernels of
//! [`crate::matmul`] with one reusable [`Scratch`] workspace per call.
//! Two modes share those kernels:
//!
//! - **Per-example** (`batch_size == 1`, the default): one Adam step per
//!   example, bit-identical to the historical implementation.
//! - **Mini-batched** (`batch_size > 1`): the epoch order is shuffled
//!   exactly as in per-example mode, then carved into contiguous chunks
//!   of `batch_size` examples. Each chunk takes one Adam step on the
//!   gradient *summed* over its examples in chunk order; within a chunk,
//!   examples are grouped by prefix length (first-appearance order) so
//!   BPTT runs on rectangular batches. With `batch_size == 1` every chunk
//!   is a singleton and the schedule degrades to exactly the per-example
//!   path — the equivalence tests pin this bit-for-bit.
//!
//! Training is single-threaded by design (an Adam step is a sequential
//! dependence); determinism needs no thread-count argument.

use crate::adam::Adam;
use crate::layers::{relu_backward_into, relu_in_place, softmax_rows, Dense, Embedding};
use autosuggest_obs as obs;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the [`RnnClassifier`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RnnConfig {
    /// Input vocabulary size (operator symbols, including the BOS marker).
    pub vocab: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// RNN hidden state dimension.
    pub hidden_dim: usize,
    /// Length of the auxiliary feature vector concatenated to the final
    /// hidden state (the single-operator prediction scores; 0 recovers the
    /// sequence-only RNN baseline of Table 11).
    pub extra_dim: usize,
    /// Hidden width of the output MLP.
    pub mlp_hidden: usize,
    /// Number of output classes (operators to predict).
    pub classes: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs over the full example set.
    pub epochs: usize,
    /// Examples per Adam step. `1` (the default) reproduces the historical
    /// per-example schedule bit-for-bit; larger values take one step per
    /// gradient summed over the batch.
    pub batch_size: usize,
    /// RNG seed for initialisation and shuffling (full determinism).
    pub seed: u64,
}

impl Default for RnnConfig {
    fn default() -> Self {
        RnnConfig {
            vocab: 8,
            embed_dim: 16,
            hidden_dim: 32,
            extra_dim: 0,
            mlp_hidden: 32,
            classes: 7,
            lr: 5e-3,
            epochs: 30,
            batch_size: 1,
            seed: 0,
        }
    }
}

/// One training example: an operator-id prefix, auxiliary features for the
/// current table, and the id of the operator that actually came next.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequenceExample {
    pub prefix: Vec<usize>,
    pub extra: Vec<f64>,
    pub label: usize,
}

/// Reusable row-major batch buffers for forward/backward passes. One
/// instance serves a whole training run or batch-prediction call; nothing
/// inside the step loop allocates.
#[derive(Default)]
struct Scratch {
    /// Hidden states, `(len+1) × batch × hidden` level-major.
    hs: Vec<f64>,
    /// Gathered embedding rows, `batch × embed`.
    xb: Vec<f64>,
    /// Symbol ids of the current timestep.
    ids: Vec<usize>,
    pre: Vec<f64>,
    rec: Vec<f64>,
    /// `batch × (hidden + extra)`.
    joint: Vec<f64>,
    a1: Vec<f64>,
    /// Logits, then probabilities (softmax in place), then dlogits.
    logits: Vec<f64>,
    da1: Vec<f64>,
    djoint: Vec<f64>,
    dh: Vec<f64>,
    dpre: Vec<f64>,
    dx: Vec<f64>,
}

impl Scratch {
    /// Grow every buffer to fit a `batch × len` workload.
    fn ensure(&mut self, cfg: &RnnConfig, batch: usize, len: usize) {
        let grow = |v: &mut Vec<f64>, n: usize| {
            if v.len() < n {
                v.resize(n, 0.0);
            }
        };
        grow(&mut self.hs, (len + 1) * batch * cfg.hidden_dim);
        grow(&mut self.xb, batch * cfg.embed_dim);
        grow(&mut self.pre, batch * cfg.hidden_dim);
        grow(&mut self.rec, batch * cfg.hidden_dim);
        grow(&mut self.joint, batch * (cfg.hidden_dim + cfg.extra_dim));
        grow(&mut self.a1, batch * cfg.mlp_hidden);
        grow(&mut self.logits, batch * cfg.classes);
        grow(&mut self.da1, batch * cfg.mlp_hidden);
        grow(&mut self.djoint, batch * (cfg.hidden_dim + cfg.extra_dim));
        grow(&mut self.dh, batch * cfg.hidden_dim);
        grow(&mut self.dpre, batch * cfg.hidden_dim);
        grow(&mut self.dx, batch * cfg.embed_dim);
        if self.ids.len() < batch {
            self.ids.resize(batch, 0);
        }
    }
}

/// Resumable training state: the Adam optimiser (step count plus first and
/// second moments for every parameter tensor) and the epoch-shuffle RNG.
/// Produced by [`RnnClassifier::train_state`], advanced in place by
/// [`RnnClassifier::train_continue`]. Deliberately opaque — the only
/// supported operations are resuming training with it and inspecting the
/// optimiser step count.
#[derive(Debug, Clone)]
pub struct TrainState {
    opt: Adam,
    rng: rand::rngs::StdRng,
}

impl TrainState {
    /// Number of Adam steps taken so far through this state.
    pub fn steps(&self) -> u64 {
        self.opt.steps()
    }
}

/// An Elman RNN classifier with ReLU activations, trained by full BPTT with
/// Adam and gradient clipping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RnnClassifier {
    cfg: RnnConfig,
    emb: Embedding,
    x2h: Dense,
    h2h: Dense,
    l1: Dense,
    l2: Dense,
}

impl RnnClassifier {
    pub fn new(cfg: RnnConfig) -> Self {
        assert!(cfg.vocab > 0 && cfg.classes > 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        RnnClassifier {
            emb: Embedding::new(cfg.vocab, cfg.embed_dim, &mut rng),
            x2h: Dense::new(cfg.embed_dim, cfg.hidden_dim, &mut rng),
            h2h: Dense::new(cfg.hidden_dim, cfg.hidden_dim, &mut rng),
            l1: Dense::new(cfg.hidden_dim + cfg.extra_dim, cfg.mlp_hidden, &mut rng),
            l2: Dense::new(cfg.mlp_hidden, cfg.classes, &mut rng),
            cfg,
        }
    }

    pub fn config(&self) -> &RnnConfig {
        &self.cfg
    }

    /// Batched forward pass over `group` (example indices sharing one
    /// prefix length `len`): fills `scratch.hs` levels, `joint`, `a1`, and
    /// leaves class probabilities in `scratch.logits` (softmax applied).
    ///
    /// Per batch row, the arithmetic is element-for-element the sequence
    /// the per-example forward performs, so a batch of one — and each row
    /// of a larger batch — is bit-identical to scoring that example alone.
    fn forward_group(&self, examples: &[SequenceExample], group: &[usize], len: usize, scratch: &mut Scratch) {
        let b = group.len();
        let hd = self.cfg.hidden_dim;
        let jd = hd + self.cfg.extra_dim;
        scratch.ensure(&self.cfg, b, len);
        scratch.hs[..b * hd].iter_mut().for_each(|v| *v = 0.0);
        for t in 0..len {
            for (r, &gi) in group.iter().enumerate() {
                scratch.ids[r] = examples[gi].prefix[t];
            }
            self.emb.lookup_batch(&scratch.ids[..b], &mut scratch.xb);
            self.x2h.forward_batch(&scratch.xb[..b * self.cfg.embed_dim], b, &mut scratch.pre);
            let (h_prev, h_next) = {
                let (lo, hi) = scratch.hs.split_at_mut((t + 1) * b * hd);
                (&lo[t * b * hd..], &mut hi[..b * hd])
            };
            self.h2h.forward_batch(&h_prev[..b * hd], b, &mut scratch.rec);
            for ((p, &r), out) in scratch.pre[..b * hd].iter().zip(&scratch.rec[..b * hd]).zip(h_next.iter_mut()) {
                *out = p + r;
            }
            relu_in_place(h_next);
        }
        for (r, &gi) in group.iter().enumerate() {
            let h_final = &scratch.hs[len * b * hd + r * hd..len * b * hd + (r + 1) * hd];
            scratch.joint[r * jd..r * jd + hd].copy_from_slice(h_final);
            scratch.joint[r * jd + hd..(r + 1) * jd].copy_from_slice(&examples[gi].extra);
        }
        self.l1.forward_batch(&scratch.joint[..b * jd], b, &mut scratch.a1);
        relu_in_place(&mut scratch.a1[..b * self.cfg.mlp_hidden]);
        self.l2.forward_batch(&scratch.a1[..b * self.cfg.mlp_hidden], b, &mut scratch.logits);
        softmax_rows(&mut scratch.logits[..b * self.cfg.classes], self.cfg.classes);
    }

    /// Backward pass for the group most recently run through
    /// [`Self::forward_group`]. Expects `scratch.logits` to already hold
    /// `dlogits` (probabilities with the label subtracted) and accumulates
    /// into the layer gradient buffers in ascending batch-row order.
    fn backward_group(&mut self, examples: &[SequenceExample], group: &[usize], len: usize, scratch: &mut Scratch) {
        let b = group.len();
        let hd = self.cfg.hidden_dim;
        let jd = hd + self.cfg.extra_dim;
        let md = self.cfg.mlp_hidden;
        self.l2.backward_batch(&scratch.a1[..b * md], &scratch.logits[..b * self.cfg.classes], b, &mut scratch.da1);
        // ReLU gradient in place: dz1 overwrites da1.
        for (d, &a) in scratch.da1[..b * md].iter_mut().zip(&scratch.a1[..b * md]) {
            if a <= 0.0 {
                *d = 0.0;
            }
        }
        self.l1.backward_batch(&scratch.joint[..b * jd], &scratch.da1[..b * md], b, &mut scratch.djoint);
        // dh = djoint[:, :hidden] (gradients w.r.t. `extra` are discarded —
        // those features come from the frozen single-operator models).
        for r in 0..b {
            scratch.dh[r * hd..(r + 1) * hd].copy_from_slice(&scratch.djoint[r * jd..r * jd + hd]);
        }
        for t in (0..len).rev() {
            let h_t = &scratch.hs[(t + 1) * b * hd..(t + 2) * b * hd];
            relu_backward_into(h_t, &scratch.dh[..b * hd], &mut scratch.dpre[..b * hd]);
            for (r, &gi) in group.iter().enumerate() {
                scratch.ids[r] = examples[gi].prefix[t];
            }
            self.emb.lookup_batch(&scratch.ids[..b], &mut scratch.xb);
            self.x2h.backward_batch(&scratch.xb[..b * self.cfg.embed_dim], &scratch.dpre[..b * hd], b, &mut scratch.dx);
            let h_prev = &scratch.hs[t * b * hd..(t + 1) * b * hd];
            // dh is consumed by dpre above; safe to overwrite with dh_prev.
            let (h_prev_copy, dh) = (h_prev, &mut scratch.dh);
            self.h2h.backward_batch(h_prev_copy, &scratch.dpre[..b * hd], b, dh);
            self.emb.backward_batch(&scratch.ids[..b], &scratch.dx[..b * self.cfg.embed_dim]);
        }
    }

    /// Class probabilities for a prefix + auxiliary features.
    ///
    /// An empty prefix is valid (prediction for the first step): the MLP
    /// sees the zero initial state.
    pub fn predict_proba(&self, prefix: &[usize], extra: &[f64]) -> Vec<f64> {
        assert_eq!(extra.len(), self.cfg.extra_dim, "extra feature arity");
        let ex = SequenceExample { prefix: prefix.to_vec(), extra: extra.to_vec(), label: 0 };
        let mut scratch = Scratch::default();
        self.forward_group(std::slice::from_ref(&ex), &[0], prefix.len(), &mut scratch);
        scratch.logits[..self.cfg.classes].to_vec()
    }

    /// Class probabilities for a batch of `(prefix, extra)` queries,
    /// bucketed by prefix length so the RNN runs on rectangular batches.
    /// Row `i` of the result is bit-identical to
    /// `predict_proba(queries[i].0, queries[i].1)`; the scratch workspace
    /// is allocated once and reused across buckets.
    pub fn predict_proba_batch(&self, queries: &[(&[usize], &[f64])]) -> Vec<Vec<f64>> {
        for (_, extra) in queries {
            assert_eq!(extra.len(), self.cfg.extra_dim, "extra feature arity");
        }
        let examples: Vec<SequenceExample> = queries
            .iter()
            .map(|(p, e)| SequenceExample { prefix: p.to_vec(), extra: e.to_vec(), label: 0 })
            .collect();
        let mut out = vec![Vec::new(); queries.len()];
        let mut scratch = Scratch::default();
        let all: Vec<usize> = (0..examples.len()).collect();
        for (len, group) in group_by_len(&examples, &all) {
            self.forward_group(&examples, &group, len, &mut scratch);
            for (r, &qi) in group.iter().enumerate() {
                out[qi] = scratch.logits[r * self.cfg.classes..(r + 1) * self.cfg.classes].to_vec();
            }
        }
        out
    }

    /// Classes sorted by descending probability.
    pub fn predict_ranked(&self, prefix: &[usize], extra: &[f64]) -> Vec<usize> {
        let p = self.predict_proba(prefix, extra);
        rank_desc(&p)
    }

    /// [`Self::predict_ranked`] over a batch of queries (one scratch
    /// workspace, one reused sort buffer).
    pub fn predict_ranked_batch(&self, queries: &[(&[usize], &[f64])]) -> Vec<Vec<usize>> {
        self.predict_proba_batch(queries).iter().map(|p| rank_desc(p)).collect()
    }

    /// Train with the schedule selected by `cfg.batch_size`; returns the
    /// mean cross-entropy of the final epoch.
    pub fn train(&mut self, examples: &[SequenceExample]) -> f64 {
        self.train_with_batch_size(examples, self.cfg.batch_size)
    }

    /// Train with an explicit examples-per-Adam-step batch size (the
    /// batched code path is exercised even at `batch_size == 1`, which the
    /// equivalence tests compare bit-for-bit against the default
    /// schedule). Returns the mean cross-entropy of the final epoch.
    pub fn train_with_batch_size(&mut self, examples: &[SequenceExample], batch_size: usize) -> f64 {
        assert!(!examples.is_empty(), "no training examples");
        let mut state = self.train_state();
        self.train_continue_with_batch_size(examples, batch_size, &mut state)
    }

    /// Fresh resumable training state for this classifier: a zeroed Adam
    /// optimiser sized to the parameter tensors plus the seeded epoch
    /// shuffler. Feeding this to [`Self::train_continue`] reproduces
    /// [`Self::train`] bit-for-bit; holding on to it afterwards lets later
    /// calls resume the optimiser (step count, first/second moments) and
    /// the shuffle stream instead of reinitialising.
    pub fn train_state(&self) -> TrainState {
        let sizes = [
            self.emb.table.len(),
            self.x2h.w.len(),
            self.x2h.b.len(),
            self.h2h.w.len(),
            self.h2h.b.len(),
            self.l1.w.len(),
            self.l1.b.len(),
            self.l2.w.len(),
            self.l2.b.len(),
        ];
        TrainState {
            opt: Adam::new(self.cfg.lr, &sizes),
            rng: rand::rngs::StdRng::seed_from_u64(self.cfg.seed ^ 0x5eed),
        }
    }

    /// Continue training over `examples` for `cfg.epochs` more epochs,
    /// resuming the Adam moments/step count and shuffle stream in `state`.
    /// An empty `examples` slice is a guaranteed bitwise no-op: weights,
    /// optimiser state, and the shuffle stream are all left untouched and
    /// the returned loss is `0.0`.
    pub fn train_continue(&mut self, examples: &[SequenceExample], state: &mut TrainState) -> f64 {
        self.train_continue_with_batch_size(examples, self.cfg.batch_size, state)
    }

    /// [`Self::train_continue`] with an explicit batch size.
    pub fn train_continue_with_batch_size(
        &mut self,
        examples: &[SequenceExample],
        batch_size: usize,
        state: &mut TrainState,
    ) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        for ex in examples {
            assert!(ex.label < self.cfg.classes);
            assert_eq!(ex.extra.len(), self.cfg.extra_dim);
            assert!(ex.prefix.iter().all(|&s| s < self.cfg.vocab));
        }
        let batch_size = batch_size.max(1);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut scratch = Scratch::default();
        let mut last_epoch_loss = f64::INFINITY;
        for _ in 0..self.cfg.epochs {
            let _epoch_span = obs::span("rnn_epoch");
            order.shuffle(&mut state.rng);
            let mut loss_sum = 0.0;
            for chunk_start in (0..order.len()).step_by(batch_size) {
                let chunk = &order[chunk_start..(chunk_start + batch_size).min(order.len())];
                loss_sum += self.step_chunk(examples, chunk, &mut state.opt, &mut scratch);
            }
            last_epoch_loss = loss_sum / examples.len() as f64;
        }
        obs::counter_add("nn.rnn.examples_trained", (examples.len() * self.cfg.epochs) as u64);
        last_epoch_loss
    }

    /// One optimizer step over a chunk of examples: zero gradients, run
    /// batched forward/backward per length group (accumulating gradients
    /// in group order), clip the summed gradient, apply one Adam update.
    /// Returns the summed cross-entropy of the chunk.
    fn step_chunk(&mut self, examples: &[SequenceExample], chunk: &[usize], opt: &mut Adam, scratch: &mut Scratch) -> f64 {
        obs::counter_add("nn.rnn.batches", 1);
        self.emb.zero_grad();
        self.x2h.zero_grad();
        self.h2h.zero_grad();
        self.l1.zero_grad();
        self.l2.zero_grad();

        let mut loss_sum = 0.0;
        for (len, group) in group_by_len(examples, chunk) {
            let b = group.len();
            self.forward_group(examples, &group, len, scratch);
            // Loss and dlogits (softmax cross-entropy) in place.
            for (r, &gi) in group.iter().enumerate() {
                let row = &mut scratch.logits[r * self.cfg.classes..(r + 1) * self.cfg.classes];
                loss_sum += -row[examples[gi].label].max(1e-12).ln();
                row[examples[gi].label] -= 1.0;
            }
            debug_assert!(b <= chunk.len());
            self.backward_group(examples, &group, len, scratch);
        }

        // Clip the global norm of the chunk-summed gradient.
        clip_grads(
            &mut [
                &mut self.emb.grad,
                &mut self.x2h.dw,
                &mut self.x2h.db,
                &mut self.h2h.dw,
                &mut self.h2h.db,
                &mut self.l1.dw,
                &mut self.l1.db,
                &mut self.l2.dw,
                &mut self.l2.db,
            ],
            5.0,
        );

        opt.begin_step();
        opt.update(0, &mut self.emb.table, &self.emb.grad);
        opt.update(1, &mut self.x2h.w, &self.x2h.dw);
        opt.update(2, &mut self.x2h.b, &self.x2h.db);
        opt.update(3, &mut self.h2h.w, &self.h2h.dw);
        opt.update(4, &mut self.h2h.b, &self.h2h.db);
        opt.update(5, &mut self.l1.w, &self.l1.dw);
        opt.update(6, &mut self.l1.b, &self.l1.db);
        opt.update(7, &mut self.l2.w, &self.l2.dw);
        opt.update(8, &mut self.l2.b, &self.l2.db);
        loss_sum
    }
}

/// Group `chunk` (indices into `examples`) by prefix length, preserving
/// first-appearance order of lengths and chunk order within each group —
/// deterministic, and the identity schedule for singleton chunks.
fn group_by_len(examples: &[SequenceExample], chunk: &[usize]) -> Vec<(usize, Vec<usize>)> {
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for &i in chunk {
        let len = examples[i].prefix.len();
        match groups.iter_mut().find(|(l, _)| *l == len) {
            Some((_, g)) => g.push(i),
            None => groups.push((len, vec![i])),
        }
    }
    groups
}

/// Indices of `p` sorted by descending value (ties broken by index).
fn rank_desc(p: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..p.len()).collect();
    order.sort_by(|&a, &b| p[b].total_cmp(&p[a]).then(a.cmp(&b)));
    order
}

/// Scale all gradients so their joint L2 norm is at most `max_norm`.
fn clip_grads(grads: &mut [&mut Vec<f64>], max_norm: f64) {
    let norm: f64 = grads
        .iter()
        .flat_map(|g| g.iter())
        .map(|&v| v * v)
        .sum::<f64>()
        .sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for v in g.iter_mut() {
                *v *= scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(extra_dim: usize) -> RnnConfig {
        RnnConfig {
            vocab: 4,
            embed_dim: 8,
            hidden_dim: 12,
            extra_dim,
            mlp_hidden: 12,
            classes: 4,
            lr: 1e-2,
            epochs: 60,
            batch_size: 1,
            seed: 3,
        }
    }

    #[test]
    fn learns_identity_transition() {
        // Next symbol = last symbol. The RNN must carry the last input.
        let mut examples = Vec::new();
        for a in 0..4usize {
            for b in 0..4usize {
                examples.push(SequenceExample { prefix: vec![a, b], extra: vec![], label: b });
            }
        }
        let mut model = RnnClassifier::new(small_cfg(0));
        let loss = model.train(&examples);
        assert!(loss < 0.3, "final loss {loss}");
        for ex in &examples {
            assert_eq!(model.predict_ranked(&ex.prefix, &[])[0], ex.label);
        }
    }

    #[test]
    fn mini_batches_learn_identity_transition_too() {
        let mut examples = Vec::new();
        for a in 0..4usize {
            for b in 0..4usize {
                examples.push(SequenceExample { prefix: vec![a, b], extra: vec![], label: b });
            }
        }
        let cfg = RnnConfig { batch_size: 8, epochs: 220, ..small_cfg(0) };
        let mut model = RnnClassifier::new(cfg);
        let loss = model.train(&examples);
        assert!(loss < 0.5, "final loss {loss}");
        for ex in &examples {
            assert_eq!(model.predict_ranked(&ex.prefix, &[])[0], ex.label);
        }
    }

    #[test]
    fn uses_extra_features_when_sequence_is_uninformative() {
        // Sequence is constant; the label is encoded only in `extra`.
        let mut examples = Vec::new();
        for label in 0..4usize {
            for _ in 0..8 {
                let mut extra = vec![0.0; 4];
                extra[label] = 1.0;
                examples.push(SequenceExample { prefix: vec![0], extra, label });
            }
        }
        let mut model = RnnClassifier::new(small_cfg(4));
        model.train(&examples);
        let mut extra = vec![0.0; 4];
        extra[2] = 1.0;
        assert_eq!(model.predict_ranked(&[0], &extra)[0], 2);
    }

    #[test]
    fn empty_prefix_is_valid() {
        let model = RnnClassifier::new(small_cfg(0));
        let p = model.predict_proba(&[], &[]);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let examples = vec![
            SequenceExample { prefix: vec![0, 1], extra: vec![], label: 2 },
            SequenceExample { prefix: vec![2], extra: vec![], label: 0 },
        ];
        let mut a = RnnClassifier::new(small_cfg(0));
        let mut b = RnnClassifier::new(small_cfg(0));
        let la = a.train(&examples);
        let lb = b.train(&examples);
        assert_eq!(la, lb);
        assert_eq!(a.predict_proba(&[0], &[]), b.predict_proba(&[0], &[]));
    }

    #[test]
    fn batched_training_at_batch_size_one_is_bit_identical() {
        // The explicit batched entry point with singleton chunks must
        // reproduce the default schedule exactly.
        let mut examples = Vec::new();
        for i in 0..17usize {
            examples.push(SequenceExample {
                prefix: (0..(i % 4)).map(|s| s % 4).collect(),
                extra: vec![],
                label: i % 4,
            });
        }
        let mut a = RnnClassifier::new(small_cfg(0));
        let mut b = RnnClassifier::new(small_cfg(0));
        let la = a.train(&examples);
        let lb = b.train_with_batch_size(&examples, 1);
        assert_eq!(la.to_bits(), lb.to_bits());
        for ex in &examples {
            let pa = a.predict_proba(&ex.prefix, &[]);
            let pb = b.predict_proba(&ex.prefix, &[]);
            for (x, y) in pa.iter().zip(&pb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn batch_prediction_matches_per_example_prediction() {
        let mut examples = Vec::new();
        for a in 0..4usize {
            for b in 0..4usize {
                examples.push(SequenceExample { prefix: vec![a, b], extra: vec![], label: b });
            }
        }
        let mut model = RnnClassifier::new(small_cfg(0));
        model.train(&examples);
        let queries: Vec<(Vec<usize>, Vec<f64>)> = vec![
            (vec![], vec![]),
            (vec![1], vec![]),
            (vec![2, 3], vec![]),
            (vec![0], vec![]),
            (vec![3, 1], vec![]),
        ];
        let refs: Vec<(&[usize], &[f64])> =
            queries.iter().map(|(p, e)| (p.as_slice(), e.as_slice())).collect();
        let batched = model.predict_proba_batch(&refs);
        let ranked = model.predict_ranked_batch(&refs);
        for (i, (p, e)) in refs.iter().enumerate() {
            let single = model.predict_proba(p, e);
            for (x, y) in batched[i].iter().zip(&single) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(ranked[i], model.predict_ranked(p, e));
        }
    }

    #[test]
    fn ranked_output_is_a_permutation() {
        let model = RnnClassifier::new(small_cfg(0));
        let mut r = model.predict_ranked(&[1, 2, 3], &[]);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2, 3]);
    }

    #[test]
    fn group_by_len_preserves_first_appearance_order() {
        let examples: Vec<SequenceExample> = [2usize, 0, 2, 1, 0]
            .iter()
            .map(|&l| SequenceExample { prefix: vec![0; l], extra: vec![], label: 0 })
            .collect();
        let groups = group_by_len(&examples, &[0, 1, 2, 3, 4]);
        assert_eq!(groups, vec![(2, vec![0, 2]), (0, vec![1, 4]), (1, vec![3])]);
    }

    #[test]
    fn clip_scales_down_large_gradients() {
        let mut g1 = vec![3.0, 4.0];
        let mut g2 = vec![0.0];
        clip_grads(&mut [&mut g1, &mut g2], 1.0);
        let norm = (g1[0] * g1[0] + g1[1] * g1[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "extra feature arity")]
    fn wrong_extra_arity_panics() {
        let model = RnnClassifier::new(small_cfg(2));
        model.predict_proba(&[0], &[]);
    }
}
