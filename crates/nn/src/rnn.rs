//! The next-operator network of Fig. 13: embedding → ReLU RNN → concat
//! single-operator scores → MLP → softmax.

use crate::adam::Adam;
use crate::layers::{relu, relu_backward, softmax, Dense, Embedding};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the [`RnnClassifier`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RnnConfig {
    /// Input vocabulary size (operator symbols, including the BOS marker).
    pub vocab: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// RNN hidden state dimension.
    pub hidden_dim: usize,
    /// Length of the auxiliary feature vector concatenated to the final
    /// hidden state (the single-operator prediction scores; 0 recovers the
    /// sequence-only RNN baseline of Table 11).
    pub extra_dim: usize,
    /// Hidden width of the output MLP.
    pub mlp_hidden: usize,
    /// Number of output classes (operators to predict).
    pub classes: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs over the full example set.
    pub epochs: usize,
    /// RNG seed for initialisation and shuffling (full determinism).
    pub seed: u64,
}

impl Default for RnnConfig {
    fn default() -> Self {
        RnnConfig {
            vocab: 8,
            embed_dim: 16,
            hidden_dim: 32,
            extra_dim: 0,
            mlp_hidden: 32,
            classes: 7,
            lr: 5e-3,
            epochs: 30,
            seed: 0,
        }
    }
}

/// One training example: an operator-id prefix, auxiliary features for the
/// current table, and the id of the operator that actually came next.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequenceExample {
    pub prefix: Vec<usize>,
    pub extra: Vec<f64>,
    pub label: usize,
}

/// An Elman RNN classifier with ReLU activations, trained by full BPTT with
/// Adam and gradient clipping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RnnClassifier {
    cfg: RnnConfig,
    emb: Embedding,
    x2h: Dense,
    h2h: Dense,
    l1: Dense,
    l2: Dense,
}

impl RnnClassifier {
    pub fn new(cfg: RnnConfig) -> Self {
        assert!(cfg.vocab > 0 && cfg.classes > 0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
        RnnClassifier {
            emb: Embedding::new(cfg.vocab, cfg.embed_dim, &mut rng),
            x2h: Dense::new(cfg.embed_dim, cfg.hidden_dim, &mut rng),
            h2h: Dense::new(cfg.hidden_dim, cfg.hidden_dim, &mut rng),
            l1: Dense::new(cfg.hidden_dim + cfg.extra_dim, cfg.mlp_hidden, &mut rng),
            l2: Dense::new(cfg.mlp_hidden, cfg.classes, &mut rng),
            cfg,
        }
    }

    pub fn config(&self) -> &RnnConfig {
        &self.cfg
    }

    /// Run the RNN over `prefix` and return all hidden states (index 0 is
    /// the initial zero state, so `hs.len() == prefix.len() + 1`).
    fn run_rnn(&self, prefix: &[usize]) -> Vec<Vec<f64>> {
        let mut hs = vec![vec![0.0; self.cfg.hidden_dim]];
        for &sym in prefix {
            let x = self.emb.lookup(sym);
            let mut pre = self.x2h.forward(x);
            let rec = self.h2h.forward(hs.last().expect("state"));
            for (p, r) in pre.iter_mut().zip(&rec) {
                *p += r;
            }
            hs.push(relu(&pre));
        }
        hs
    }

    /// Class probabilities for a prefix + auxiliary features.
    ///
    /// An empty prefix is valid (prediction for the first step): the MLP
    /// sees the zero initial state.
    pub fn predict_proba(&self, prefix: &[usize], extra: &[f64]) -> Vec<f64> {
        assert_eq!(extra.len(), self.cfg.extra_dim, "extra feature arity");
        let hs = self.run_rnn(prefix);
        let h_final = hs.last().expect("state");
        let mut joint = h_final.clone();
        joint.extend_from_slice(extra);
        let a1 = relu(&self.l1.forward(&joint));
        softmax(&self.l2.forward(&a1))
    }

    /// Classes sorted by descending probability.
    pub fn predict_ranked(&self, prefix: &[usize], extra: &[f64]) -> Vec<usize> {
        let p = self.predict_proba(prefix, extra);
        let mut order: Vec<usize> = (0..p.len()).collect();
        order.sort_by(|&a, &b| p[b].total_cmp(&p[a]).then(a.cmp(&b)));
        order
    }

    /// Train with per-example Adam steps; returns the mean cross-entropy of
    /// the final epoch.
    pub fn train(&mut self, examples: &[SequenceExample]) -> f64 {
        assert!(!examples.is_empty(), "no training examples");
        for ex in examples {
            assert!(ex.label < self.cfg.classes);
            assert_eq!(ex.extra.len(), self.cfg.extra_dim);
            assert!(ex.prefix.iter().all(|&s| s < self.cfg.vocab));
        }
        let sizes = [
            self.emb.table.len(),
            self.x2h.w.len(),
            self.x2h.b.len(),
            self.h2h.w.len(),
            self.h2h.b.len(),
            self.l1.w.len(),
            self.l1.b.len(),
            self.l2.w.len(),
            self.l2.b.len(),
        ];
        let mut opt = Adam::new(self.cfg.lr, &sizes);
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.cfg.seed ^ 0x5eed);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut last_epoch_loss = f64::INFINITY;
        for _ in 0..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0;
            for &i in &order {
                loss_sum += self.step(&examples[i], &mut opt);
            }
            last_epoch_loss = loss_sum / examples.len() as f64;
        }
        last_epoch_loss
    }

    /// One forward/backward/update pass; returns the example loss.
    fn step(&mut self, ex: &SequenceExample, opt: &mut Adam) -> f64 {
        self.emb.zero_grad();
        self.x2h.zero_grad();
        self.h2h.zero_grad();
        self.l1.zero_grad();
        self.l2.zero_grad();

        // Forward.
        let hs = self.run_rnn(&ex.prefix);
        let h_final = hs.last().expect("state").clone();
        let mut joint = h_final.clone();
        joint.extend_from_slice(&ex.extra);
        let a1 = relu(&self.l1.forward(&joint));
        let logits = self.l2.forward(&a1);
        let probs = softmax(&logits);
        let loss = -probs[ex.label].max(1e-12).ln();

        // Backward: softmax CE.
        let mut dlogits = probs;
        dlogits[ex.label] -= 1.0;
        let da1 = self.l2.backward(&a1, &dlogits);
        let dz1 = relu_backward(&a1, &da1);
        let djoint = self.l1.backward(&joint, &dz1);
        let mut dh = djoint[..self.cfg.hidden_dim].to_vec();
        // (gradients w.r.t. `extra` are discarded — those features come from
        // the frozen single-operator models)

        // BPTT.
        for t in (0..ex.prefix.len()).rev() {
            let h_t = &hs[t + 1];
            let dpre = relu_backward(h_t, &dh);
            let x = self.emb.lookup(ex.prefix[t]).to_vec();
            let dx = self.x2h.backward(&x, &dpre);
            let dh_prev = self.h2h.backward(&hs[t], &dpre);
            self.emb.backward(ex.prefix[t], &dx);
            dh = dh_prev;
        }

        // Clip the global gradient norm.
        clip_grads(
            &mut [
                &mut self.emb.grad,
                &mut self.x2h.dw,
                &mut self.x2h.db,
                &mut self.h2h.dw,
                &mut self.h2h.db,
                &mut self.l1.dw,
                &mut self.l1.db,
                &mut self.l2.dw,
                &mut self.l2.db,
            ],
            5.0,
        );

        opt.begin_step();
        opt.update(0, &mut self.emb.table, &self.emb.grad);
        opt.update(1, &mut self.x2h.w, &self.x2h.dw);
        opt.update(2, &mut self.x2h.b, &self.x2h.db);
        opt.update(3, &mut self.h2h.w, &self.h2h.dw);
        opt.update(4, &mut self.h2h.b, &self.h2h.db);
        opt.update(5, &mut self.l1.w, &self.l1.dw);
        opt.update(6, &mut self.l1.b, &self.l1.db);
        opt.update(7, &mut self.l2.w, &self.l2.dw);
        opt.update(8, &mut self.l2.b, &self.l2.db);
        loss
    }
}

/// Scale all gradients so their joint L2 norm is at most `max_norm`.
fn clip_grads(grads: &mut [&mut Vec<f64>], max_norm: f64) {
    let norm: f64 = grads
        .iter()
        .flat_map(|g| g.iter())
        .map(|&v| v * v)
        .sum::<f64>()
        .sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for v in g.iter_mut() {
                *v *= scale;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(extra_dim: usize) -> RnnConfig {
        RnnConfig {
            vocab: 4,
            embed_dim: 8,
            hidden_dim: 12,
            extra_dim,
            mlp_hidden: 12,
            classes: 4,
            lr: 1e-2,
            epochs: 60,
            seed: 3,
        }
    }

    #[test]
    fn learns_identity_transition() {
        // Next symbol = last symbol. The RNN must carry the last input.
        let mut examples = Vec::new();
        for a in 0..4usize {
            for b in 0..4usize {
                examples.push(SequenceExample { prefix: vec![a, b], extra: vec![], label: b });
            }
        }
        let mut model = RnnClassifier::new(small_cfg(0));
        let loss = model.train(&examples);
        assert!(loss < 0.3, "final loss {loss}");
        for ex in &examples {
            assert_eq!(model.predict_ranked(&ex.prefix, &[])[0], ex.label);
        }
    }

    #[test]
    fn uses_extra_features_when_sequence_is_uninformative() {
        // Sequence is constant; the label is encoded only in `extra`.
        let mut examples = Vec::new();
        for label in 0..4usize {
            for _ in 0..8 {
                let mut extra = vec![0.0; 4];
                extra[label] = 1.0;
                examples.push(SequenceExample { prefix: vec![0], extra, label });
            }
        }
        let mut model = RnnClassifier::new(small_cfg(4));
        model.train(&examples);
        let mut extra = vec![0.0; 4];
        extra[2] = 1.0;
        assert_eq!(model.predict_ranked(&[0], &extra)[0], 2);
    }

    #[test]
    fn empty_prefix_is_valid() {
        let model = RnnClassifier::new(small_cfg(0));
        let p = model.predict_proba(&[], &[]);
        assert_eq!(p.len(), 4);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let examples = vec![
            SequenceExample { prefix: vec![0, 1], extra: vec![], label: 2 },
            SequenceExample { prefix: vec![2], extra: vec![], label: 0 },
        ];
        let mut a = RnnClassifier::new(small_cfg(0));
        let mut b = RnnClassifier::new(small_cfg(0));
        let la = a.train(&examples);
        let lb = b.train(&examples);
        assert_eq!(la, lb);
        assert_eq!(a.predict_proba(&[0], &[]), b.predict_proba(&[0], &[]));
    }

    #[test]
    fn ranked_output_is_a_permutation() {
        let model = RnnClassifier::new(small_cfg(0));
        let mut r = model.predict_ranked(&[1, 2, 3], &[]);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2, 3]);
    }

    #[test]
    fn clip_scales_down_large_gradients() {
        let mut g1 = vec![3.0, 4.0];
        let mut g2 = vec![0.0];
        clip_grads(&mut [&mut g1, &mut g2], 1.0);
        let norm = (g1[0] * g1[0] + g1[1] * g1[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "extra feature arity")]
    fn wrong_extra_arity_panics() {
        let model = RnnClassifier::new(small_cfg(2));
        model.predict_proba(&[0], &[]);
    }
}
