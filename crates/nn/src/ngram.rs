//! N-gram language model with MLE estimates and backoff.
//!
//! The Table 11 baseline: "N-gram [66] is another popular language modeling
//! approach … implemented with trigrams and MLE". Contexts unseen at
//! training time back off to shorter n-grams, ending at the unigram
//! distribution (uniform if even that is empty).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An order-`n` MLE language model over symbol ids `0..vocab`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NgramModel {
    order: usize,
    vocab: usize,
    /// Context (up to `order-1` symbols) → next-symbol counts.
    counts: HashMap<Vec<usize>, Vec<u64>>,
}

impl NgramModel {
    /// `order` = 3 gives the paper's trigram model.
    pub fn new(order: usize, vocab: usize) -> Self {
        assert!(order >= 1, "order must be at least 1");
        assert!(vocab > 0);
        NgramModel { order, vocab, counts: HashMap::new() }
    }

    pub fn order(&self) -> usize {
        self.order
    }

    /// Accumulate counts from operator sequences. Every context length from
    /// 0 to `order-1` is counted so backoff has mass at each level.
    pub fn train(&mut self, sequences: &[Vec<usize>]) {
        for seq in sequences {
            for (i, &next) in seq.iter().enumerate() {
                assert!(next < self.vocab, "symbol out of vocabulary");
                let max_ctx = (self.order - 1).min(i);
                for ctx_len in 0..=max_ctx {
                    let ctx = seq[i - ctx_len..i].to_vec();
                    let slot = self
                        .counts
                        .entry(ctx)
                        .or_insert_with(|| vec![0; self.vocab]);
                    slot[next] += 1;
                }
            }
        }
    }

    /// Next-symbol distribution after `prefix`, backing off from the longest
    /// usable context to the unigram, then uniform.
    pub fn predict_dist(&self, prefix: &[usize]) -> Vec<f64> {
        let max_ctx = (self.order - 1).min(prefix.len());
        for ctx_len in (0..=max_ctx).rev() {
            let ctx = &prefix[prefix.len() - ctx_len..];
            if let Some(slot) = self.counts.get(ctx) {
                let total: u64 = slot.iter().sum();
                if total > 0 {
                    return slot.iter().map(|&c| c as f64 / total as f64).collect();
                }
            }
        }
        vec![1.0 / self.vocab as f64; self.vocab]
    }

    /// Symbols ranked by descending probability after `prefix`.
    pub fn predict_ranked(&self, prefix: &[usize]) -> Vec<usize> {
        let p = self.predict_dist(prefix);
        let mut order: Vec<usize> = (0..self.vocab).collect();
        order.sort_by(|&a, &b| p[b].total_cmp(&p[a]).then(a.cmp(&b)));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigram_memorises_deterministic_pattern() {
        let mut m = NgramModel::new(3, 4);
        // Pattern: 0 1 2 0 1 2 ...
        m.train(&[vec![0, 1, 2, 0, 1, 2, 0, 1, 2]]);
        assert_eq!(m.predict_ranked(&[0, 1])[0], 2);
        assert_eq!(m.predict_ranked(&[1, 2])[0], 0);
    }

    #[test]
    fn backs_off_to_bigram_then_unigram() {
        let mut m = NgramModel::new(3, 3);
        m.train(&[vec![0, 1, 0, 1, 0, 1]]);
        // Unseen trigram context (2, 0) backs off to bigram (0,) → 1.
        assert_eq!(m.predict_ranked(&[2, 0])[0], 1);
        // Entirely unseen context backs off to the unigram distribution,
        // where 0 and 1 tie (3 each) and symbol order breaks the tie.
        let dist = m.predict_dist(&[2, 2]);
        assert!((dist[0] - 0.5).abs() < 1e-12);
        assert_eq!(dist[2], 0.0);
    }

    #[test]
    fn untrained_model_is_uniform() {
        let m = NgramModel::new(3, 5);
        let d = m.predict_dist(&[1, 2]);
        assert!(d.iter().all(|&p| (p - 0.2).abs() < 1e-12));
    }

    #[test]
    fn empty_prefix_uses_unigram() {
        let mut m = NgramModel::new(2, 3);
        m.train(&[vec![2, 2, 2, 0]]);
        assert_eq!(m.predict_ranked(&[])[0], 2);
    }

    #[test]
    fn distribution_sums_to_one() {
        let mut m = NgramModel::new(3, 6);
        m.train(&[vec![0, 3, 5, 1], vec![3, 3, 2]]);
        for prefix in [vec![], vec![3], vec![0, 3], vec![5, 5]] {
            let d = m.predict_dist(&prefix);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_symbol_panics() {
        NgramModel::new(2, 2).train(&[vec![5]]);
    }

    #[test]
    fn unigram_model_ignores_context() {
        let mut m = NgramModel::new(1, 3);
        m.train(&[vec![1, 1, 0]]);
        assert_eq!(m.predict_dist(&[0]), m.predict_dist(&[2]));
        assert_eq!(m.predict_ranked(&[0])[0], 1);
    }
}
