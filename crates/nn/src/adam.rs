//! The Adam optimiser (Kingma & Ba, 2015).

use serde::{Deserialize, Serialize};

/// Adam state over a fixed set of parameter tensors, addressed by slot.
///
/// Usage per step: call [`Adam::begin_step`] once, then [`Adam::update`]
/// for each (parameter, gradient) pair using a stable slot id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// `sizes[i]` is the element count of the tensor registered at slot `i`.
    pub fn new(lr: f64, sizes: &[usize]) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: sizes.iter().map(|&s| vec![0.0; s]).collect(),
            v: sizes.iter().map(|&s| vec![0.0; s]).collect(),
        }
    }

    /// Advance the global step (bias-correction counter).
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Apply one Adam update to the tensor registered at `slot`.
    pub fn update(&mut self, slot: usize, param: &mut [f64], grad: &[f64]) {
        assert!(self.t > 0, "call begin_step before update");
        assert_eq!(param.len(), grad.len());
        let m = &mut self.m[slot];
        let v = &mut self.v[slot];
        assert_eq!(m.len(), param.len(), "slot {slot} size mismatch");
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..param.len() {
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
            let mhat = m[i] / b1t;
            let vhat = v[i] / b2t;
            param[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_a_quadratic() {
        // f(x) = (x - 3)^2, df/dx = 2(x - 3).
        let mut x = vec![0.0];
        let mut opt = Adam::new(0.1, &[1]);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.begin_step();
            opt.update(0, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "converged to {}", x[0]);
    }

    #[test]
    fn multiple_slots_are_independent() {
        let mut a = vec![0.0];
        let mut b = vec![10.0];
        let mut opt = Adam::new(0.05, &[1, 1]);
        for _ in 0..800 {
            opt.begin_step();
            let ga = vec![2.0 * (a[0] - 1.0)];
            opt.update(0, &mut a, &ga);
            let gb = vec![2.0 * (b[0] + 2.0)];
            opt.update(1, &mut b, &gb);
        }
        assert!((a[0] - 1.0).abs() < 1e-2);
        assert!((b[0] + 2.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn update_before_step_panics() {
        let mut opt = Adam::new(0.1, &[1]);
        let mut p = vec![0.0];
        opt.update(0, &mut p, &[1.0]);
    }
}
