//! The Adam optimiser (Kingma & Ba, 2015).
//!
//! The element update is division/sqrt-bound, and at `batch_size = 1` the
//! RNN takes one full-parameter Adam step per example — profiling showed
//! the scalar loop dominating next-op training. [`Adam::update`] therefore
//! dispatches to an explicitly vectorised x86-64 kernel (4-wide AVX when
//! the CPU has it, guaranteed-baseline 2-wide SSE2 otherwise). IEEE-754
//! requires `div` and `sqrt` to be exactly rounded, and the vector kernels
//! evaluate every expression with the same association order as the scalar
//! loop, so the result is **bit-identical** lane-for-lane — goldens and
//! determinism tests see no difference, the wall clock does.
//!
//! SIMD alone is not enough, though: the dominant cost of per-example
//! training turned out to be *subnormal* arithmetic, not throughput. Most
//! parameters see an exactly-zero gradient on any given step (inactive
//! embedding rows; empty-prefix examples contribute nothing to the
//! recurrent weights), so their first moments decay `×beta1` per step into
//! the subnormal range — and stay there forever, because `fl(0.9·m)` has
//! fixed points at the smallest denormals. Each such element then triggers
//! several ~hundred-cycle microcode assists per step for the rest of
//! training. The [`FastGate`] lane below proves, per element, that the
//! update leaves the parameter bit-unchanged and computes the moment decay
//! exactly in integer arithmetic, issuing no denormal FP ops at all.

use serde::{Deserialize, Serialize};

/// Adam state over a fixed set of parameter tensors, addressed by slot.
///
/// Usage per step: call [`Adam::begin_step`] once, then [`Adam::update`]
/// for each (parameter, gradient) pair using a stable slot id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// `sizes[i]` is the element count of the tensor registered at slot `i`.
    pub fn new(lr: f64, sizes: &[usize]) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: sizes.iter().map(|&s| vec![0.0; s]).collect(),
            v: sizes.iter().map(|&s| vec![0.0; s]).collect(),
        }
    }

    /// Advance the global step (bias-correction counter).
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Number of steps taken so far (the bias-correction counter `t`).
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one Adam update to the tensor registered at `slot`.
    pub fn update(&mut self, slot: usize, param: &mut [f64], grad: &[f64]) {
        assert!(self.t > 0, "call begin_step before update");
        assert_eq!(param.len(), grad.len());
        let m = &mut self.m[slot];
        let v = &mut self.v[slot];
        assert_eq!(m.len(), param.len(), "slot {slot} size mismatch");
        let k = Kernel {
            beta1: self.beta1,
            beta2: self.beta2,
            lr: self.lr,
            eps: self.eps,
            b1t: 1.0 - self.beta1.powi(self.t as i32),
            b2t: 1.0 - self.beta2.powi(self.t as i32),
        };
        update_elements(&k, param, grad, m, v);
    }
}

/// Per-step constants of the element update.
#[derive(Clone, Copy)]
struct Kernel {
    beta1: f64,
    beta2: f64,
    lr: f64,
    eps: f64,
    /// `1 - beta1^t` (first-moment bias correction).
    b1t: f64,
    /// `1 - beta2^t` (second-moment bias correction).
    b2t: f64,
}

/// The reference element loop. Every vector kernel below reproduces this
/// expression tree exactly: `(1-b2)*g*g` associates left-to-right, `lr *
/// mhat / (sqrt + eps)` multiplies before dividing.
fn update_scalar(k: &Kernel, param: &mut [f64], grad: &[f64], m: &mut [f64], v: &mut [f64]) {
    for i in 0..param.len() {
        m[i] = k.beta1 * m[i] + (1.0 - k.beta1) * grad[i];
        v[i] = k.beta2 * v[i] + (1.0 - k.beta2) * grad[i] * grad[i];
        let mhat = m[i] / k.b1t;
        let vhat = v[i] / k.b2t;
        param[i] -= k.lr * mhat / (vhat.sqrt() + k.eps);
    }
}

const SIGN_BIT: u64 = 1 << 63;
const MANT_MASK: u64 = (1 << 52) - 1;

/// IEEE-754 binary64 exponent field (11 bits; 0 = subnormal/zero).
#[inline(always)]
fn exp_field(bits: u64) -> u64 {
    (bits >> 52) & 0x7ff
}

/// How one element is processed. `Slow` is the reference arithmetic
/// (scalar or SIMD); `Skip` and `Decay` are provably bit-identical
/// shortcuts that avoid denormal microcode assists.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Lane {
    /// Full reference update.
    Slow,
    /// `g = +0, m = +0, v = +0`: the whole update is a no-op. Every
    /// intermediate is `+0`, and `p - (+0)` preserves `p` (including `-0`).
    Skip,
    /// `g = +0`, `m` subnormal or `±0`, `v` zero or comfortably normal,
    /// `|p| ≥ 2^-300`: the step magnitude is below `2^-706`, far under half
    /// an ulp of `p`, so `p` is bit-unchanged; `m` decays via exact integer
    /// arithmetic and `v` via one cheap normal multiply.
    Decay,
}

/// Per-call constants for the zero-gradient fast lane, present only when
/// the hyper-parameters satisfy the bounds the bit-exactness proof needs:
/// `beta1, beta2` normal in `(0,1)`, `0 ≤ lr ≤ 64`, `eps ≥ 1e-15`, and both
/// bias corrections in `[2^-8, 1]`. (The defaults pass from `t = 1`.)
struct FastGate {
    /// 53-bit significand of `beta1`: `beta1 = mb · 2^(eb-52)`.
    mb: u64,
    /// `52 - eb`; ≥ 53 because `beta1 < 1`.
    shift: u32,
}

impl FastGate {
    fn admissible(k: &Kernel) -> Option<FastGate> {
        let unit = |x: f64| x > 0.0 && x < 1.0 && exp_field(x.to_bits()) != 0;
        let corr = |x: f64| (1.0 / 256.0..=1.0).contains(&x);
        if !unit(k.beta1) || !unit(k.beta2) {
            return None;
        }
        if !((0.0..=64.0).contains(&k.lr) && k.eps >= 1e-15 && k.eps.is_finite()) {
            return None;
        }
        if !corr(k.b1t) || !corr(k.b2t) {
            return None;
        }
        let bits = k.beta1.to_bits();
        let eb = (exp_field(bits) as i64) - 1023;
        Some(FastGate {
            mb: (bits & MANT_MASK) | (1 << 52),
            shift: (52 - eb) as u32,
        })
    }
}

/// Classify one element from raw bit patterns. Only exactly-`+0` gradients
/// are eligible — everything else takes the reference arithmetic.
#[inline(always)]
fn classify(g: u64, m: u64, v: u64, p: u64) -> Lane {
    if g != 0 {
        return Lane::Slow;
    }
    let pe = exp_field(p);
    if m == 0 && v == 0 {
        // Keep NaN/Inf params on the reference path out of caution.
        return if pe == 0x7ff { Lane::Slow } else { Lane::Skip };
    }
    if exp_field(m) != 0 {
        // A normal `m` decays through cheap normal arithmetic; no assist.
        return Lane::Slow;
    }
    // `v` must be `+0` or positive normal in `[2^-600, +inf)` so that
    // `sqrt(vhat) ≥ 2^-301` bounds the step, and `beta2·v` stays normal.
    let ve = exp_field(v);
    if !(v == 0 || (v & SIGN_BIT == 0 && (423..0x7ff).contains(&ve))) {
        return Lane::Slow;
    }
    // `|p| ≥ 2^-300` makes half an ulp of `p` at least `2^-354 ≫ 2^-706`.
    if (723..0x7ff).contains(&pe) {
        Lane::Decay
    } else {
        Lane::Slow
    }
}

/// Exact `fl(beta1 · m) + 0.0` for subnormal or zero `m`, in integer
/// arithmetic. Subnormals are `±k · 2^-1074` with `k < 2^52`, so the
/// correctly-rounded (half-even) product is `round(mb·k / 2^shift)` on the
/// same grid; the result stays subnormal because `beta1 < 1`. Adding the
/// `+0` term only normalises a `-0` product to `+0`.
#[inline(always)]
fn decay_bits(m: u64, fg: &FastGate) -> u64 {
    let k = m & MANT_MASK;
    if k == 0 || fg.shift >= 128 {
        // `beta1·(±0) + 0.0 = +0`; a shift ≥ 128 means the product is far
        // below half the smallest denormal and rounds to zero.
        return 0;
    }
    let prod = (fg.mb as u128) * (k as u128);
    let q = (prod >> fg.shift) as u64;
    let rem = prod & ((1u128 << fg.shift) - 1);
    let half = 1u128 << (fg.shift - 1);
    let kq = if rem > half || (rem == half && q & 1 == 1) { q + 1 } else { q };
    if kq == 0 {
        0
    } else {
        (m & SIGN_BIT) | kq
    }
}

/// One element through the classified lanes. Bit-identical to
/// [`update_scalar`] on the same element — the fast lanes only fire where
/// the shortcut is provably exact.
#[inline(always)]
fn apply_one(k: &Kernel, fg: &FastGate, p: &mut f64, g: f64, m: &mut f64, v: &mut f64) {
    match classify(g.to_bits(), m.to_bits(), v.to_bits(), p.to_bits()) {
        Lane::Skip => {}
        Lane::Decay => {
            *m = f64::from_bits(decay_bits(m.to_bits(), fg));
            if v.to_bits() != 0 {
                // `beta2·v + ((1-beta2)·0)·0` = `beta2·v` exactly: the
                // product is positive normal and `x + 0.0 = x` there.
                *v *= k.beta2;
            }
        }
        Lane::Slow => {
            let mn = k.beta1 * *m + (1.0 - k.beta1) * g;
            let vn = k.beta2 * *v + (1.0 - k.beta2) * g * g;
            *m = mn;
            *v = vn;
            let mhat = mn / k.b1t;
            let vhat = vn / k.b2t;
            *p -= k.lr * mhat / (vhat.sqrt() + k.eps);
        }
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn update_elements(k: &Kernel, param: &mut [f64], grad: &[f64], m: &mut [f64], v: &mut [f64]) {
    match FastGate::admissible(k) {
        Some(fg) => {
            for i in 0..param.len() {
                apply_one(k, &fg, &mut param[i], grad[i], &mut m[i], &mut v[i]);
            }
        }
        None => update_scalar(k, param, grad, m, v),
    }
}

#[cfg(target_arch = "x86_64")]
fn update_elements(k: &Kernel, param: &mut [f64], grad: &[f64], m: &mut [f64], v: &mut [f64]) {
    let fg = FastGate::admissible(k);
    if std::arch::is_x86_feature_detected!("avx") {
        // SAFETY: AVX support was just verified at runtime.
        unsafe { update_avx(k, fg.as_ref(), param, grad, m, v) }
    } else {
        // SSE2 is part of the x86-64 baseline — no detection needed.
        unsafe { update_sse2(k, fg.as_ref(), param, grad, m, v) }
    }
}

/// 4-wide AVX element update. `vdivpd`/`vsqrtpd` are exactly rounded per
/// IEEE-754, and the operation order per lane matches [`update_scalar`],
/// so output bits are identical to the scalar loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn update_avx(
    k: &Kernel,
    fg: Option<&FastGate>,
    param: &mut [f64],
    grad: &[f64],
    m: &mut [f64],
    v: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = param.len();
    let head = n - n % 4;
    let b1 = _mm256_set1_pd(k.beta1);
    let c1 = _mm256_set1_pd(1.0 - k.beta1);
    let b2 = _mm256_set1_pd(k.beta2);
    let c2 = _mm256_set1_pd(1.0 - k.beta2);
    let b1t = _mm256_set1_pd(k.b1t);
    let b2t = _mm256_set1_pd(k.b2t);
    let lr = _mm256_set1_pd(k.lr);
    let eps = _mm256_set1_pd(k.eps);
    let mut i = 0;
    while i < head {
        // Any lane eligible for a fast shortcut demotes the block to the
        // per-element path; a SIMD pass over a denormal lane would stall
        // on assists, which is exactly what the shortcut exists to avoid.
        if let Some(fg) = fg {
            let fast = (0..4).any(|l| {
                classify(
                    grad[i + l].to_bits(),
                    m[i + l].to_bits(),
                    v[i + l].to_bits(),
                    param[i + l].to_bits(),
                ) != Lane::Slow
            });
            if fast {
                for l in 0..4 {
                    apply_one(k, fg, &mut param[i + l], grad[i + l], &mut m[i + l], &mut v[i + l]);
                }
                i += 4;
                continue;
            }
        }
        let g = _mm256_loadu_pd(grad.as_ptr().add(i));
        let mi = _mm256_loadu_pd(m.as_ptr().add(i));
        let vi = _mm256_loadu_pd(v.as_ptr().add(i));
        // m = b1*m + (1-b1)*g
        let mn = _mm256_add_pd(_mm256_mul_pd(b1, mi), _mm256_mul_pd(c1, g));
        // v = b2*v + ((1-b2)*g)*g  — left-to-right, as the scalar loop.
        let vn = _mm256_add_pd(_mm256_mul_pd(b2, vi), _mm256_mul_pd(_mm256_mul_pd(c2, g), g));
        _mm256_storeu_pd(m.as_mut_ptr().add(i), mn);
        _mm256_storeu_pd(v.as_mut_ptr().add(i), vn);
        let mhat = _mm256_div_pd(mn, b1t);
        let vhat = _mm256_div_pd(vn, b2t);
        let denom = _mm256_add_pd(_mm256_sqrt_pd(vhat), eps);
        let step = _mm256_div_pd(_mm256_mul_pd(lr, mhat), denom);
        let p = _mm256_loadu_pd(param.as_ptr().add(i));
        _mm256_storeu_pd(param.as_mut_ptr().add(i), _mm256_sub_pd(p, step));
        i += 4;
    }
    finish_tail(k, fg, param, grad, m, v, head);
}

/// 2-wide SSE2 element update (always available on x86-64); same exact
/// rounding and operation order as [`update_scalar`].
#[cfg(target_arch = "x86_64")]
unsafe fn update_sse2(
    k: &Kernel,
    fg: Option<&FastGate>,
    param: &mut [f64],
    grad: &[f64],
    m: &mut [f64],
    v: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = param.len();
    let head = n - n % 2;
    let b1 = _mm_set1_pd(k.beta1);
    let c1 = _mm_set1_pd(1.0 - k.beta1);
    let b2 = _mm_set1_pd(k.beta2);
    let c2 = _mm_set1_pd(1.0 - k.beta2);
    let b1t = _mm_set1_pd(k.b1t);
    let b2t = _mm_set1_pd(k.b2t);
    let lr = _mm_set1_pd(k.lr);
    let eps = _mm_set1_pd(k.eps);
    let mut i = 0;
    while i < head {
        if let Some(fg) = fg {
            let fast = (0..2).any(|l| {
                classify(
                    grad[i + l].to_bits(),
                    m[i + l].to_bits(),
                    v[i + l].to_bits(),
                    param[i + l].to_bits(),
                ) != Lane::Slow
            });
            if fast {
                for l in 0..2 {
                    apply_one(k, fg, &mut param[i + l], grad[i + l], &mut m[i + l], &mut v[i + l]);
                }
                i += 2;
                continue;
            }
        }
        let g = _mm_loadu_pd(grad.as_ptr().add(i));
        let mi = _mm_loadu_pd(m.as_ptr().add(i));
        let vi = _mm_loadu_pd(v.as_ptr().add(i));
        let mn = _mm_add_pd(_mm_mul_pd(b1, mi), _mm_mul_pd(c1, g));
        let vn = _mm_add_pd(_mm_mul_pd(b2, vi), _mm_mul_pd(_mm_mul_pd(c2, g), g));
        _mm_storeu_pd(m.as_mut_ptr().add(i), mn);
        _mm_storeu_pd(v.as_mut_ptr().add(i), vn);
        let mhat = _mm_div_pd(mn, b1t);
        let vhat = _mm_div_pd(vn, b2t);
        let denom = _mm_add_pd(_mm_sqrt_pd(vhat), eps);
        let step = _mm_div_pd(_mm_mul_pd(lr, mhat), denom);
        let p = _mm_loadu_pd(param.as_ptr().add(i));
        _mm_storeu_pd(param.as_mut_ptr().add(i), _mm_sub_pd(p, step));
        i += 2;
    }
    finish_tail(k, fg, param, grad, m, v, head);
}

/// Remainder elements after the vector head, through the classified lanes
/// when the gate is open so denormal tails stay assist-free too.
#[cfg(target_arch = "x86_64")]
fn finish_tail(
    k: &Kernel,
    fg: Option<&FastGate>,
    param: &mut [f64],
    grad: &[f64],
    m: &mut [f64],
    v: &mut [f64],
    head: usize,
) {
    match fg {
        Some(fg) => {
            for i in head..param.len() {
                apply_one(k, fg, &mut param[i], grad[i], &mut m[i], &mut v[i]);
            }
        }
        None => update_scalar(k, &mut param[head..], &grad[head..], &mut m[head..], &mut v[head..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_a_quadratic() {
        // f(x) = (x - 3)^2, df/dx = 2(x - 3).
        let mut x = vec![0.0];
        let mut opt = Adam::new(0.1, &[1]);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.begin_step();
            opt.update(0, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "converged to {}", x[0]);
    }

    #[test]
    fn multiple_slots_are_independent() {
        let mut a = vec![0.0];
        let mut b = vec![10.0];
        let mut opt = Adam::new(0.05, &[1, 1]);
        for _ in 0..800 {
            opt.begin_step();
            let ga = vec![2.0 * (a[0] - 1.0)];
            opt.update(0, &mut a, &ga);
            let gb = vec![2.0 * (b[0] + 2.0)];
            opt.update(1, &mut b, &gb);
        }
        assert!((a[0] - 1.0).abs() < 1e-2);
        assert!((b[0] + 2.0).abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn update_before_step_panics() {
        let mut opt = Adam::new(0.1, &[1]);
        let mut p = vec![0.0];
        opt.update(0, &mut p, &[1.0]);
    }

    /// The dispatched (possibly SIMD) kernel must be bit-identical to the
    /// scalar reference, including the non-multiple-of-lane-width tail.
    #[test]
    fn vector_kernel_matches_scalar_bit_for_bit() {
        for n in [1usize, 2, 3, 4, 7, 8, 33, 250] {
            let k = Kernel { beta1: 0.9, beta2: 0.999, lr: 3e-3, eps: 1e-8, b1t: 0.271, b2t: 0.0435 };
            // Deterministic, sign-varied inputs with nonzero moments.
            let grad: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37 - 1.1).sin()).collect();
            let mut p1: Vec<f64> = (0..n).map(|i| (i as f64) * 0.011 - 0.5).collect();
            let mut m1: Vec<f64> = (0..n).map(|i| (i as f64) * 0.003 - 0.1).collect();
            let mut v1: Vec<f64> = (0..n).map(|i| (i as f64) * 0.002 + 0.01).collect();
            let (mut p2, mut m2, mut v2) = (p1.clone(), m1.clone(), v1.clone());
            update_elements(&k, &mut p1, &grad, &mut m1, &mut v1);
            update_scalar(&k, &mut p2, &grad, &mut m2, &mut v2);
            for i in 0..n {
                assert_eq!(p1[i].to_bits(), p2[i].to_bits(), "param[{i}] of {n}");
                assert_eq!(m1[i].to_bits(), m2[i].to_bits(), "m[{i}] of {n}");
                assert_eq!(v1[i].to_bits(), v2[i].to_bits(), "v[{i}] of {n}");
            }
        }
    }

    /// The zero-gradient fast lane (`Skip`/`Decay`) must be bit-identical
    /// to the scalar reference on adversarial inputs: subnormal moments at
    /// every rounding boundary (including half-even ties), signed zeros,
    /// tiny/huge `v`, sub-threshold params, and mixed fast/slow blocks.
    #[test]
    fn zero_grad_fast_lane_matches_scalar_bit_for_bit() {
        // beta1 = 0.5 makes every odd subnormal mantissa a rounding tie,
        // exercising ties-to-even; 0.9 is the production decay.
        for beta1 in [0.9f64, 0.5, 0.875, 0.9999] {
            let min_sub = f64::from_bits(1);
            let m_seed: Vec<f64> = vec![
                min_sub,
                -min_sub,
                f64::from_bits(2),
                f64::from_bits(3),
                f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal
                -f64::from_bits(0x0000_0000_0000_0101),
                0.0,
                -0.0,
                f64::from_bits(0x0010_0000_0000_0000), // smallest normal
                2.0e-308,                              // decays into subnormal range
                1.0e-3,
                0.0,
            ];
            let n = m_seed.len();
            // Lane-varied companions: v spans zero, subnormal (slow lane),
            // tiny-normal below the 2^-600 gate, and plain values; p spans
            // normal, sub-threshold tiny, zero, and negative zero.
            let v_seed: Vec<f64> = (0..n)
                .map(|i| match i % 4 {
                    0 => 0.0,
                    1 => f64::from_bits(5),
                    2 => 1.0e-200,
                    _ => 3.7e-5,
                })
                .collect();
            let p_seed: Vec<f64> = (0..n)
                .map(|i| match i % 5 {
                    0 => 0.25,
                    1 => -1.5e-3,
                    2 => 1.0e-250,
                    3 => 0.0,
                    _ => -0.0,
                })
                .collect();
            // Gradient schedule: mostly exact zero, with periodic nonzero
            // bursts so lanes migrate between fast and slow over time.
            let mut p1 = p_seed.clone();
            let mut m1 = m_seed.clone();
            let mut v1 = v_seed.clone();
            let (mut p2, mut m2, mut v2) = (p1.clone(), m1.clone(), v1.clone());
            for t in 1..=200u64 {
                let grad: Vec<f64> = (0..n)
                    .map(|i| if t % 37 == 0 && i % 3 == 0 { 1.0e-3 } else { 0.0 })
                    .collect();
                let k = Kernel {
                    beta1,
                    beta2: 0.999,
                    lr: 5e-3,
                    eps: 1e-8,
                    b1t: 1.0 - beta1.powi(t as i32),
                    b2t: 1.0 - 0.999f64.powi(t as i32),
                };
                update_elements(&k, &mut p1, &grad, &mut m1, &mut v1);
                update_scalar(&k, &mut p2, &grad, &mut m2, &mut v2);
                for i in 0..n {
                    assert_eq!(
                        p1[i].to_bits(),
                        p2[i].to_bits(),
                        "param[{i}] diverged at t={t}, beta1={beta1}"
                    );
                    assert_eq!(
                        m1[i].to_bits(),
                        m2[i].to_bits(),
                        "m[{i}] diverged at t={t}, beta1={beta1}"
                    );
                    assert_eq!(
                        v1[i].to_bits(),
                        v2[i].to_bits(),
                        "v[{i}] diverged at t={t}, beta1={beta1}"
                    );
                }
            }
        }
    }

    /// Long pure-decay runs: every subnormal first moment must follow the
    /// hardware rounding trajectory exactly (including the min-denormal
    /// fixed point of `×0.9`) while gradients stay zero.
    #[test]
    fn subnormal_decay_trajectory_is_exact() {
        let n = 64;
        let mut m1: Vec<f64> = (0..n)
            .map(|i| {
                let bits = 1u64 + (i as u64) * 0x0000_1357_9bdf_0135 % 0x000f_ffff_ffff_ffff;
                if i % 2 == 0 { f64::from_bits(bits) } else { -f64::from_bits(bits) }
            })
            .collect();
        let mut p1 = vec![0.1f64; n];
        let mut v1 = vec![1.0e-12f64; n];
        let (mut p2, mut m2, mut v2) = (p1.clone(), m1.clone(), v1.clone());
        let grad = vec![0.0f64; n];
        for t in 1..=500u64 {
            let k = Kernel {
                beta1: 0.9,
                beta2: 0.999,
                lr: 5e-3,
                eps: 1e-8,
                b1t: 1.0 - 0.9f64.powi(t as i32),
                b2t: 1.0 - 0.999f64.powi(t as i32),
            };
            update_elements(&k, &mut p1, &grad, &mut m1, &mut v1);
            update_scalar(&k, &mut p2, &grad, &mut m2, &mut v2);
        }
        for i in 0..n {
            assert_eq!(m1[i].to_bits(), m2[i].to_bits(), "m[{i}]");
            assert_eq!(v1[i].to_bits(), v2[i].to_bits(), "v[{i}]");
            assert_eq!(p1[i].to_bits(), p2[i].to_bits(), "param[{i}]");
        }
        // The production decay really does pin the smallest denormals.
        assert_eq!(m1[0], f64::from_bits(1), "min-denormal fixed point");
    }
}
