//! Minimal neural-network substrate for next-operator prediction.
//!
//! Fig. 13 of the paper predicts the next operator with an **embedding
//! layer → ReLU RNN → concat(single-operator scores) → MLP → softmax**
//! architecture implemented in Keras. This crate rebuilds exactly those
//! pieces from scratch — dense layers, a simple (Elman) RNN with ReLU
//! activation, softmax cross-entropy, and Adam — sized for the task's tiny
//! vocabulary (7 operators) and short sequences. It also hosts the N-gram
//! language model used as a baseline in Table 11.

pub mod adam;
pub mod buffer;
pub mod layers;
pub mod matmul;
pub mod ngram;
pub mod rnn;

pub use adam::Adam;
pub use buffer::ExampleBuffer;
pub use layers::{softmax, Dense, Embedding};
pub use ngram::NgramModel;
pub use rnn::{RnnClassifier, RnnConfig, SequenceExample, TrainState};
