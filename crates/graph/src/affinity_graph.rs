//! A small dense weighted graph over the columns of one table.

use serde::{Deserialize, Serialize};

/// A complete undirected weighted graph on `n` vertices (columns), stored as
/// a dense symmetric matrix. Weights are affinity/compatibility scores in
/// roughly `[-1, 1]`, produced by the affinity regression model (§4.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffinityGraph {
    n: usize,
    weights: Vec<f64>,
}

impl AffinityGraph {
    /// A graph on `n` vertices with all edge weights zero.
    pub fn new(n: usize) -> Self {
        AffinityGraph { n, weights: vec![0.0; n * n] }
    }

    /// Build from an explicit edge list; unspecified edges stay 0.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut g = AffinityGraph::new(n);
        for &(u, v, w) in edges {
            g.set(u, v, w);
        }
        g
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Edge weight between `u` and `v` (0 on the diagonal).
    pub fn weight(&self, u: usize, v: usize) -> f64 {
        debug_assert!(u < self.n && v < self.n);
        self.weights[u * self.n + v]
    }

    /// Set the (symmetric) edge weight.
    pub fn set(&mut self, u: usize, v: usize, w: f64) {
        assert!(u < self.n && v < self.n, "vertex out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        self.weights[u * self.n + v] = w;
        self.weights[v * self.n + u] = w;
    }

    /// Sum of weights over all unordered pairs.
    pub fn total_weight(&self) -> f64 {
        let mut s = 0.0;
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                s += self.weight(u, v);
            }
        }
        s
    }

    /// Sum of weights across the cut defined by `in_first[v]`.
    pub fn cut_weight(&self, in_first: &[bool]) -> f64 {
        assert_eq!(in_first.len(), self.n);
        let mut s = 0.0;
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                if in_first[u] != in_first[v] {
                    s += self.weight(u, v);
                }
            }
        }
        s
    }

    /// Sum of weights inside the vertex set `members`.
    pub fn intra_weight(&self, members: &[usize]) -> f64 {
        let mut s = 0.0;
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                s += self.weight(u, v);
            }
        }
        s
    }

    /// The minimum edge weight (useful for shifting to non-negative).
    pub fn min_weight(&self) -> f64 {
        let mut m = f64::INFINITY;
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                m = m.min(self.weight(u, v));
            }
        }
        if m.is_finite() {
            m
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_is_symmetric() {
        let mut g = AffinityGraph::new(3);
        g.set(0, 2, 0.5);
        assert_eq!(g.weight(2, 0), 0.5);
        assert_eq!(g.weight(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        AffinityGraph::new(2).set(1, 1, 1.0);
    }

    #[test]
    fn cut_and_intra_weights() {
        // Paper Fig. 10: Sector(0), Ticker(1), Company(2), Year(3).
        let g = AffinityGraph::from_edges(
            4,
            &[
                (0, 1, 0.6),
                (0, 2, 0.6),
                (1, 2, 0.9),
                (0, 3, 0.1),
                (1, 3, -0.1),
                (2, 3, -0.1),
            ],
        );
        // Cut {Year} vs rest.
        let in_first = [true, true, true, false];
        assert!((g.cut_weight(&in_first) - (0.1 - 0.1 - 0.1)).abs() < 1e-12);
        assert!((g.intra_weight(&[0, 1, 2]) - 2.1).abs() < 1e-12);
        assert!((g.total_weight() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_weight_of_empty_graph_is_zero() {
        assert_eq!(AffinityGraph::new(1).min_weight(), 0.0);
        assert_eq!(AffinityGraph::new(0).min_weight(), 0.0);
    }
}
