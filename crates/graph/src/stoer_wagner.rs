//! Stoer–Wagner global minimum cut.
//!
//! The classic O(V³) algorithm from Stoer & Wagner, *A simple min-cut
//! algorithm* (JACM 1997) — the solver Lemma 1 of the paper invokes for
//! AMPT. Operates on non-negative edge weights; the AMPT wrapper shifts
//! affinity scores into the non-negative range before calling in here.

use crate::affinity_graph::AffinityGraph;

/// Result of a global min-cut: the vertices on one side and the cut weight.
#[derive(Debug, Clone, PartialEq)]
pub struct MinCut {
    /// Vertices on one (the lighter-to-describe) side of the cut, sorted.
    pub partition: Vec<usize>,
    /// Total weight of edges crossing the cut.
    pub weight: f64,
}

/// Compute the global minimum cut of `g` (all weights must be ≥ 0).
///
/// Returns `None` for graphs with fewer than 2 vertices, which have no cut.
pub fn min_cut(g: &AffinityGraph) -> Option<MinCut> {
    let n = g.len();
    if n < 2 {
        return None;
    }
    // Working copy of the weight matrix; vertices get merged in place.
    let mut w: Vec<Vec<f64>> = (0..n)
        .map(|u| (0..n).map(|v| g.weight(u, v)).collect())
        .collect();
    for (u, row) in w.iter().enumerate() {
        for (v, &weight) in row.iter().enumerate() {
            debug_assert!(
                u == v || weight >= 0.0,
                "Stoer–Wagner requires non-negative weights"
            );
        }
    }
    // `groups[v]` = original vertices merged into the super-vertex v.
    let mut groups: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best: Option<MinCut> = None;

    while active.len() > 1 {
        // Minimum cut phase: maximum-adjacency ordering.
        let mut in_a = vec![false; n];
        let mut key = vec![0.0f64; n];
        let start = active[0];
        in_a[start] = true;
        for &v in &active {
            key[v] = w[start][v];
        }
        let mut prev = start;
        let mut last = start;
        for _ in 1..active.len() {
            // Most tightly connected unvisited vertex.
            let next = active
                .iter()
                .copied()
                .filter(|&v| !in_a[v])
                .max_by(|&a, &b| key[a].total_cmp(&key[b]))
                .expect("unvisited vertex exists");
            in_a[next] = true;
            prev = last;
            last = next;
            for &v in &active {
                if !in_a[v] {
                    key[v] += w[next][v];
                }
            }
        }
        // Cut-of-the-phase: `last` alone against the rest.
        let phase_weight = key[last];
        let candidate = MinCut { partition: { let mut p = groups[last].clone(); p.sort_unstable(); p }, weight: phase_weight };
        if best.as_ref().is_none_or(|b| candidate.weight < b.weight) {
            best = Some(candidate);
        }
        // Merge `last` into `prev`.
        for &v in &active {
            if v != prev && v != last {
                let sum = w[prev][v] + w[last][v];
                w[prev][v] = sum;
                w[v][prev] = sum;
            }
        }
        let moved = std::mem::take(&mut groups[last]);
        groups[prev].extend(moved);
        active.retain(|&v| v != last);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_vertices() {
        let g = AffinityGraph::from_edges(2, &[(0, 1, 3.0)]);
        let cut = min_cut(&g).unwrap();
        assert_eq!(cut.weight, 3.0);
        assert_eq!(cut.partition.len(), 1);
    }

    #[test]
    fn wikipedia_example() {
        // The 8-vertex example from the Stoer–Wagner paper; min cut = 4.
        let edges = [
            (0, 1, 2.0),
            (0, 4, 3.0),
            (1, 2, 3.0),
            (1, 4, 2.0),
            (1, 5, 2.0),
            (2, 3, 4.0),
            (2, 6, 2.0),
            (3, 6, 2.0),
            (3, 7, 2.0),
            (4, 5, 3.0),
            (5, 6, 1.0),
            (6, 7, 3.0),
        ];
        let g = AffinityGraph::from_edges(8, &edges);
        let cut = min_cut(&g).unwrap();
        assert_eq!(cut.weight, 4.0);
        // The known optimal cut separates {2,3,6,7} from {0,1,4,5}.
        let mut side = cut.partition.clone();
        if !side.contains(&2) {
            side = (0..8).filter(|v| !side.contains(v)).collect();
        }
        assert_eq!(side, vec![2, 3, 6, 7]);
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let g = AffinityGraph::from_edges(4, &[(0, 1, 5.0), (2, 3, 5.0)]);
        let cut = min_cut(&g).unwrap();
        assert_eq!(cut.weight, 0.0);
    }

    #[test]
    fn star_graph_cuts_a_leaf() {
        let g = AffinityGraph::from_edges(5, &[(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0), (0, 4, 4.0)]);
        let cut = min_cut(&g).unwrap();
        assert_eq!(cut.weight, 1.0);
        assert_eq!(cut.partition, vec![1]);
    }

    #[test]
    fn tiny_graphs_return_none() {
        assert!(min_cut(&AffinityGraph::new(0)).is_none());
        assert!(min_cut(&AffinityGraph::new(1)).is_none());
    }

    #[test]
    fn matches_exhaustive_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let n = 3 + (trial % 5);
            let mut g = AffinityGraph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    g.set(u, v, rng.random_range(0.0..5.0));
                }
            }
            let sw = min_cut(&g).unwrap().weight;
            // Exhaustive minimum over all non-trivial bipartitions.
            let mut best = f64::INFINITY;
            for mask in 1..(1u32 << n) - 1 {
                let in_first: Vec<bool> = (0..n).map(|v| mask >> v & 1 == 1).collect();
                best = best.min(g.cut_weight(&in_first));
            }
            assert!(
                (sw - best).abs() < 1e-9,
                "trial {trial}: stoer-wagner {sw} vs exhaustive {best}"
            );
        }
    }
}
