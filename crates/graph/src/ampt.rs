//! AMPT: Affinity-Maximizing Pivot-Table (Eq. 1–4 of the paper).
//!
//! Given dimension columns with pairwise affinity scores, split them into
//! index vs. header so that
//! `intra(C) + intra(C̄) − inter(C, C̄)` is maximised, with both sides
//! non-empty. Since `intra(C) + intra(C̄) = total − inter`, the objective
//! equals `total − 2·inter`, so maximising it is exactly minimising the cut
//! — Lemma 1's reduction to two-way graph cut.

use crate::affinity_graph::AffinityGraph;
use crate::stoer_wagner::min_cut;

/// A bisection of the dimension columns into index and header.
#[derive(Debug, Clone, PartialEq)]
pub struct AmptSolution {
    /// Vertices assigned to the first side (by convention the index side),
    /// sorted ascending. Always non-empty and a strict subset.
    pub index: Vec<usize>,
    /// Vertices on the other side (the header side), sorted ascending.
    pub header: Vec<usize>,
    /// The AMPT objective value (Eq. 1) of this split.
    pub objective: f64,
}

impl AmptSolution {
    fn from_mask(g: &AffinityGraph, in_first: &[bool]) -> AmptSolution {
        let index: Vec<usize> = (0..g.len()).filter(|&v| in_first[v]).collect();
        let header: Vec<usize> = (0..g.len()).filter(|&v| !in_first[v]).collect();
        AmptSolution {
            objective: ampt_objective(g, in_first),
            index,
            header,
        }
    }

    /// Membership mask (`true` = index side).
    pub fn mask(&self, n: usize) -> Vec<bool> {
        let mut m = vec![false; n];
        for &v in &self.index {
            m[v] = true;
        }
        m
    }
}

/// Evaluate the AMPT objective (Eq. 1) for a given split.
pub fn ampt_objective(g: &AffinityGraph, in_first: &[bool]) -> f64 {
    g.total_weight() - 2.0 * g.cut_weight(in_first)
}

/// Solve AMPT exactly by enumerating all `2^(n-1) − 1` bisections.
///
/// Handles arbitrary (including negative) affinities; practical because
/// pivot tables rarely have more than a dozen dimension columns. Returns
/// `None` when `n < 2` (no non-trivial bisection exists). Ties are broken
/// toward the lexicographically smallest first side containing vertex 0,
/// making results deterministic.
pub fn ampt_exact(g: &AffinityGraph) -> Option<AmptSolution> {
    let n = g.len();
    if n < 2 {
        return None;
    }
    assert!(n <= 26, "exact AMPT enumerates 2^(n-1) splits; use ampt_min_cut for n > 26");
    let mut best: Option<AmptSolution> = None;
    // Fix vertex 0 on the first side to halve the space (sides are symmetric).
    for mask in 0..(1u64 << (n - 1)) {
        let in_first: Vec<bool> = (0..n)
            .map(|v| v == 0 || (mask >> (v - 1)) & 1 == 1)
            .collect();
        if in_first.iter().all(|&b| b) {
            continue; // header side must be non-empty
        }
        let cand = AmptSolution::from_mask(g, &in_first);
        if best.as_ref().is_none_or(|b| cand.objective > b.objective) {
            best = Some(cand);
        }
    }
    best
}

/// Solve AMPT via global min-cut (Lemma 1).
///
/// Affinities may be negative (the regression labels are ±1), while
/// Stoer–Wagner needs non-negative weights, so weights are shifted by the
/// graph minimum first. The shift perturbs the objective by an amount that
/// depends on the partition sizes, so this is the fast *approximation* the
/// paper's reduction yields in the presence of negative scores; it is exact
/// whenever all affinities are non-negative. The ablation bench
/// (`repro ablation-ampt`) quantifies the gap against [`ampt_exact`].
pub fn ampt_min_cut(g: &AffinityGraph) -> Option<AmptSolution> {
    let n = g.len();
    if n < 2 {
        return None;
    }
    let shift = (-g.min_weight()).max(0.0);
    let mut shifted = AffinityGraph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            shifted.set(u, v, g.weight(u, v) + shift);
        }
    }
    let cut = min_cut(&shifted)?;
    let mut in_first = vec![false; n];
    for &v in &cut.partition {
        in_first[v] = true;
    }
    // Canonical orientation: vertex 0 on the first side.
    if !in_first[0] {
        for b in in_first.iter_mut() {
            *b = !*b;
        }
    }
    Some(AmptSolution::from_mask(g, &in_first))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 10 of the paper: Sector(0), Ticker(1), Company(2), Year(3).
    fn fig10() -> AffinityGraph {
        AffinityGraph::from_edges(
            4,
            &[
                (0, 1, 0.6),
                (0, 2, 0.6),
                (1, 2, 0.9),
                (0, 3, 0.1),
                (1, 3, -0.1),
                (2, 3, -0.1),
            ],
        )
    }

    #[test]
    fn paper_example_5_cuts_year_alone() {
        let sol = ampt_exact(&fig10()).unwrap();
        // Example 5: best split = {Sector, Ticker, Company} | {Year},
        // objective 2.2.
        assert_eq!(sol.index, vec![0, 1, 2]);
        assert_eq!(sol.header, vec![3]);
        assert!((sol.objective - 2.2).abs() < 1e-9);
    }

    #[test]
    fn objective_identity_total_minus_twice_cut() {
        let g = fig10();
        let in_first = [true, false, true, false];
        let direct = g.intra_weight(&[0, 2]) + g.intra_weight(&[1, 3])
            - g.cut_weight(&in_first);
        assert!((ampt_objective(&g, &in_first) - direct).abs() < 1e-12);
    }

    #[test]
    fn min_cut_matches_exact_on_nonnegative_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..25 {
            let n = 3 + (trial % 6);
            let mut g = AffinityGraph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    g.set(u, v, rng.random_range(0.0..1.0));
                }
            }
            let exact = ampt_exact(&g).unwrap();
            let fast = ampt_min_cut(&g).unwrap();
            assert!(
                (exact.objective - fast.objective).abs() < 1e-9,
                "trial {trial}: exact {} vs min-cut {}",
                exact.objective,
                fast.objective
            );
        }
    }

    #[test]
    fn min_cut_on_fig10_still_finds_paper_split() {
        let sol = ampt_min_cut(&fig10()).unwrap();
        assert_eq!(sol.index, vec![0, 1, 2]);
        assert_eq!(sol.header, vec![3]);
    }

    #[test]
    fn two_vertices_split_one_each() {
        let g = AffinityGraph::from_edges(2, &[(0, 1, -0.5)]);
        let sol = ampt_exact(&g).unwrap();
        assert_eq!(sol.index.len(), 1);
        assert_eq!(sol.header.len(), 1);
        assert!((sol.objective - 0.5).abs() < 1e-12);
    }

    #[test]
    fn singleton_graph_has_no_solution() {
        assert!(ampt_exact(&AffinityGraph::new(1)).is_none());
        assert!(ampt_min_cut(&AffinityGraph::new(1)).is_none());
    }

    #[test]
    fn solution_sides_partition_vertices() {
        let g = fig10();
        let sol = ampt_exact(&g).unwrap();
        let mut all: Vec<usize> = sol.index.iter().chain(&sol.header).copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert!(!sol.index.is_empty() && !sol.header.is_empty());
    }
}
