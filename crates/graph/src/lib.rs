//! Graph machinery behind Auto-Suggest's Pivot and Unpivot predictors.
//!
//! §4.3 of the paper formulates index/header placement as **AMPT**
//! (Affinity-Maximizing Pivot-Table): bisect the dimension columns so that
//! intra-partition affinity is maximised and inter-partition affinity
//! minimised, solved via two-way graph cut (Stoer–Wagner). §4.4 formulates
//! Unpivot as **CMUT** (Compatibility-Maximizing Unpivot-Table), which is
//! NP-complete (reduction from Densest Subgraph) and solved greedily.
//!
//! This crate provides the weighted [`AffinityGraph`], the
//! [Stoer–Wagner](stoer_wagner) global min-cut, exact and min-cut-based
//! [AMPT solvers](ampt), the [CMUT greedy](cmut) with an exhaustive
//! reference, and the [Rand index](rand_index) used to score predicted
//! splits (Table 8).

mod affinity_graph;
pub mod ampt;
pub mod cmut;
pub mod rand_index;
pub mod stoer_wagner;

pub use affinity_graph::AffinityGraph;
pub use ampt::{ampt_exact, ampt_min_cut, ampt_objective, AmptSolution};
pub use cmut::{cmut_exhaustive, cmut_greedy, cmut_objective, CmutSolution};
pub use rand_index::rand_index;
pub use stoer_wagner::min_cut;
