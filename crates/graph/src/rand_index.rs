//! Rand index for scoring predicted splits against ground truth (Table 8).

/// Rand index between two assignments of the same items to clusters.
///
/// `RI = #correct-pairs / #total-pairs`, where a pair is *correct* when the
/// two items are co-clustered in both assignments or separated in both
/// (Rand 1971, the metric §6.5.4 of the paper uses to give partial credit
/// to near-miss pivot splits). Returns 1.0 for fewer than 2 items, where
/// every (vacuous) pair agrees.
pub fn rand_index(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "assignments must cover the same items"
    );
    let n = predicted.len();
    if n < 2 {
        return 1.0;
    }
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_pred = predicted[i] == predicted[j];
            let same_truth = truth[i] == truth[j];
            if same_pred == same_truth {
                correct += 1;
            }
            total += 1;
        }
    }
    correct as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_assignments_score_one() {
        assert_eq!(rand_index(&[0, 0, 1, 1], &[0, 0, 1, 1]), 1.0);
        // Label names are irrelevant; only co-membership matters.
        assert_eq!(rand_index(&[5, 5, 9, 9], &[0, 0, 1, 1]), 1.0);
    }

    #[test]
    fn completely_swapped_pairs() {
        // Prediction groups {0,1}{2,3}; truth groups {0,2}{1,3}.
        // Pairs: (0,1) pred-same/truth-diff ✗, (0,2) diff/same ✗,
        // (0,3) diff/diff ✓, (1,2) diff/diff ✓, (1,3) diff/same ✗,
        // (2,3) same/diff ✗ → 2/6.
        let ri = rand_index(&[0, 0, 1, 1], &[0, 1, 0, 1]);
        assert!((ri - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn single_item_is_perfect() {
        assert_eq!(rand_index(&[0], &[1]), 1.0);
        assert_eq!(rand_index(&[], &[]), 1.0);
    }

    #[test]
    fn one_misplaced_item() {
        // 5 items, prediction moves item 4 across.
        let ri = rand_index(&[0, 0, 0, 1, 1], &[0, 0, 0, 1, 0]);
        // Disagreeing pairs: (0,4),(1,4),(2,4) same-truth/diff-pred... ✗ and
        // (3,4) same-pred/diff-truth ✗ → 4 wrong of 10.
        assert!((ri - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn mismatched_lengths_panic() {
        rand_index(&[0, 1], &[0]);
    }
}
