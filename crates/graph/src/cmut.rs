//! CMUT: Compatibility-Maximizing Unpivot-Table (Eq. 5–7 of the paper).
//!
//! Select the subset of columns to collapse in an Unpivot so that the
//! *average* intra-subset compatibility is maximised while the *average*
//! compatibility between selected and unselected columns is minimised.
//! Theorem 2 shows the problem NP-complete (from Densest Subgraph), so the
//! paper solves it with the greedy below; [`cmut_exhaustive`] provides the
//! exact reference used by the ablation bench on small instances.

use crate::affinity_graph::AffinityGraph;

/// A selected subset of columns to collapse.
#[derive(Debug, Clone, PartialEq)]
pub struct CmutSolution {
    /// Selected vertex ids, sorted ascending. Always `2 ≤ |selected| < n`.
    pub selected: Vec<usize>,
    /// The CMUT objective value (Eq. 5).
    pub objective: f64,
}

/// Evaluate the CMUT objective (Eq. 5): mean pairwise compatibility inside
/// `selected` minus mean compatibility across the cut. The cross term is 0
/// when no unselected vertices remain.
pub fn cmut_objective(g: &AffinityGraph, selected: &[usize]) -> f64 {
    let k = selected.len();
    assert!(k >= 2, "CMUT requires at least two selected columns");
    let intra = g.intra_weight(selected);
    let intra_pairs = (k * (k - 1) / 2) as f64;
    let in_sel = {
        let mut m = vec![false; g.len()];
        for &v in selected {
            m[v] = true;
        }
        m
    };
    let rest: Vec<usize> = (0..g.len()).filter(|&v| !in_sel[v]).collect();
    let cross_pairs = (k * rest.len()) as f64;
    let mut cross = 0.0;
    for &u in selected {
        for &v in &rest {
            cross += g.weight(u, v);
        }
    }
    let avg_intra = intra / intra_pairs;
    let avg_cross = if cross_pairs > 0.0 { cross / cross_pairs } else { 0.0 };
    avg_intra - avg_cross
}

/// The paper's greedy (§4.4, Example 7): seed with the maximum-compatibility
/// pair, repeatedly merge the vertex most compatible with the current set,
/// evaluate the objective at every step, and return the best prefix.
///
/// Only strict subsets are considered (Eq. 6 requires `C ⊂ C`); with fewer
/// than 3 vertices there is no valid selection and `None` is returned.
pub fn cmut_greedy(g: &AffinityGraph) -> Option<CmutSolution> {
    let n = g.len();
    if n < 3 {
        return None;
    }
    // Seed: max-weight pair (ties broken lexicographically for determinism).
    let mut seed = (0, 1);
    let mut best_w = f64::NEG_INFINITY;
    for u in 0..n {
        for v in (u + 1)..n {
            if g.weight(u, v) > best_w {
                best_w = g.weight(u, v);
                seed = (u, v);
            }
        }
    }
    let mut selected = vec![seed.0, seed.1];
    let mut in_sel = vec![false; n];
    in_sel[seed.0] = true;
    in_sel[seed.1] = true;

    let mut best: CmutSolution = CmutSolution {
        selected: { let mut s = selected.clone(); s.sort_unstable(); s },
        objective: cmut_objective(g, &selected),
    };

    while selected.len() + 1 < n {
        // Vertex with maximum total compatibility to the current set.
        let next = (0..n)
            .filter(|&v| !in_sel[v])
            .max_by(|&a, &b| {
                let sa: f64 = selected.iter().map(|&u| g.weight(u, a)).sum();
                let sb: f64 = selected.iter().map(|&u| g.weight(u, b)).sum();
                sa.total_cmp(&sb).then(b.cmp(&a))
            })
            .expect("unselected vertex exists");
        selected.push(next);
        in_sel[next] = true;
        let obj = cmut_objective(g, &selected);
        if obj > best.objective {
            best = CmutSolution {
                selected: { let mut s = selected.clone(); s.sort_unstable(); s },
                objective: obj,
            };
        }
    }
    Some(best)
}

/// Exact CMUT by enumerating every subset with `2 ≤ |C| < n`.
/// Exponential — only for small graphs (n ≤ 20), used to validate the
/// greedy in tests and the ablation bench.
pub fn cmut_exhaustive(g: &AffinityGraph) -> Option<CmutSolution> {
    let n = g.len();
    if n < 3 {
        return None;
    }
    assert!(n <= 20, "exhaustive CMUT enumerates 2^n subsets; n too large");
    let mut best: Option<CmutSolution> = None;
    for mask in 0..(1u32 << n) {
        let selected: Vec<usize> = (0..n).filter(|&v| mask >> v & 1 == 1).collect();
        if selected.len() < 2 || selected.len() == n {
            continue;
        }
        let obj = cmut_objective(g, &selected);
        if best.as_ref().is_none_or(|b| obj > b.objective) {
            best = Some(CmutSolution { selected, objective: obj });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig. 12 of the paper: Sector(0), Ticker(1), Company(2) and the year
    /// columns 2006(3), 2007(4), 2008(5). Year columns are mutually highly
    /// compatible (0.9); all other edges are weak (0.1).
    fn fig12() -> AffinityGraph {
        let mut g = AffinityGraph::new(6);
        for u in 0..6 {
            for v in (u + 1)..6 {
                g.set(u, v, 0.1);
            }
        }
        g.set(3, 4, 0.9);
        g.set(3, 5, 0.9);
        g.set(4, 5, 0.9);
        g
    }

    #[test]
    fn paper_example_7_selects_year_columns() {
        let sol = cmut_greedy(&fig12()).unwrap();
        assert_eq!(sol.selected, vec![3, 4, 5]);
        // avg intra = 0.9; avg cross = 0.1 → objective 0.8 (Example 7).
        assert!((sol.objective - 0.8).abs() < 1e-9);
    }

    #[test]
    fn objective_matches_example_7_intermediate_step() {
        // After the first greedy step ({2007, 2008} = {4, 5}):
        // avg intra = 0.9; cross = (0.1*6 + 0.9*2)/8 = 0.3 → 0.6.
        let g = fig12();
        assert!((cmut_objective(&g, &[4, 5]) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn greedy_matches_exhaustive_on_fig12() {
        let g = fig12();
        let greedy = cmut_greedy(&g).unwrap();
        let exact = cmut_exhaustive(&g).unwrap();
        assert_eq!(greedy.selected, exact.selected);
        assert!((greedy.objective - exact.objective).abs() < 1e-9);
    }

    #[test]
    fn greedy_is_near_exact_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut worst_gap: f64 = 0.0;
        for _ in 0..40 {
            let n = 4 + (rng.random_range(0..5));
            let mut g = AffinityGraph::new(n);
            for u in 0..n {
                for v in (u + 1)..n {
                    g.set(u, v, rng.random_range(-1.0..1.0));
                }
            }
            let greedy = cmut_greedy(&g).unwrap();
            let exact = cmut_exhaustive(&g).unwrap();
            assert!(greedy.objective <= exact.objective + 1e-9);
            worst_gap = worst_gap.max(exact.objective - greedy.objective);
        }
        // The greedy is a heuristic; on small random instances it should
        // stay within a modest factor of optimal on average.
        assert!(worst_gap < 2.0, "greedy collapsed: worst gap {worst_gap}");
    }

    #[test]
    fn cross_term_penalises_leaving_similar_columns_out() {
        // Three near-identical columns; selecting only two of them leaves a
        // highly-compatible column across the cut, lowering the objective.
        let mut g = AffinityGraph::new(4);
        g.set(0, 1, 0.9);
        g.set(0, 2, 0.9);
        g.set(1, 2, 0.9);
        // Vertex 3 is unrelated.
        let all3 = cmut_objective(&g, &[0, 1, 2]);
        let only2 = cmut_objective(&g, &[0, 1]);
        assert!(all3 > only2);
    }

    #[test]
    fn too_small_graphs_return_none() {
        assert!(cmut_greedy(&AffinityGraph::new(2)).is_none());
        assert!(cmut_exhaustive(&AffinityGraph::new(2)).is_none());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn objective_requires_two_columns() {
        cmut_objective(&AffinityGraph::new(3), &[0]);
    }
}
