//! Feature-importance utilities (Tables 4 and 7 report *feature groups*).

use std::collections::BTreeMap;

/// Normalise a vector in place to sum to 1; leaves an all-zero vector
/// untouched.
pub fn normalize(v: &mut [f64]) {
    let total: f64 = v.iter().sum();
    if total > 0.0 {
        for x in v.iter_mut() {
            *x /= total;
        }
    }
}

/// Aggregate per-feature importances into named groups.
///
/// `groups` maps each feature index to a group label (e.g. all four
/// value-overlap features map to `"val-overlap"`). Output is sorted by
/// descending importance, matching the presentation of Tables 4 and 7.
pub fn aggregate_importance(
    importance: &[f64],
    groups: &[(usize, &str)],
) -> Vec<(String, f64)> {
    let mut agg: BTreeMap<&str, f64> = BTreeMap::new();
    for &(idx, name) in groups {
        *agg.entry(name).or_insert(0.0) += importance.get(idx).copied().unwrap_or(0.0);
    }
    let mut out: Vec<(String, f64)> = agg
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_sums_to_one() {
        let mut v = vec![1.0, 3.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.25, 0.75]);
        let mut zero = vec![0.0, 0.0];
        normalize(&mut zero);
        assert_eq!(zero, vec![0.0, 0.0]);
    }

    #[test]
    fn aggregation_groups_and_sorts() {
        let imp = vec![0.1, 0.2, 0.7];
        let groups = [(0, "a"), (1, "a"), (2, "b")];
        let out = aggregate_importance(&imp, &groups);
        assert_eq!(out[0], ("b".to_string(), 0.7));
        assert!((out[1].1 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn missing_indices_contribute_zero() {
        let out = aggregate_importance(&[0.5], &[(0, "x"), (9, "y")]);
        assert_eq!(out[0].0, "x");
        assert_eq!(out[1], ("y".to_string(), 0.0));
    }
}
