//! Training data container.

use serde::{Deserialize, Serialize};

/// A dense row-major training set: one `Vec<f64>` of feature values per
/// example, plus a regression label per example.
///
/// Ranking candidates (join-column pairs, GroupBy columns, …) are featurised
/// upstream into this representation; labels are 1.0 for the choice the
/// notebook author made and 0.0 otherwise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    labels: Vec<f64>,
}

impl Dataset {
    /// Build a dataset, validating that every row has one value per feature
    /// and labels align with rows.
    pub fn new(
        feature_names: Vec<String>,
        rows: Vec<Vec<f64>>,
        labels: Vec<f64>,
    ) -> Result<Self, String> {
        if rows.len() != labels.len() {
            return Err(format!(
                "{} rows but {} labels",
                rows.len(),
                labels.len()
            ));
        }
        for (i, r) in rows.iter().enumerate() {
            if r.len() != feature_names.len() {
                return Err(format!(
                    "row {i} has {} features, expected {}",
                    r.len(),
                    feature_names.len()
                ));
            }
            if r.iter().any(|v| v.is_nan()) {
                return Err(format!("row {i} contains NaN"));
            }
        }
        Ok(Dataset { feature_names, rows, labels })
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    pub fn label(&self, i: usize) -> f64 {
        self.labels[i]
    }

    pub fn labels(&self) -> &[f64] {
        &self.labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_shapes() {
        assert!(Dataset::new(vec!["a".into()], vec![vec![1.0]], vec![0.0]).is_ok());
        assert!(Dataset::new(vec!["a".into()], vec![vec![1.0, 2.0]], vec![0.0]).is_err());
        assert!(Dataset::new(vec!["a".into()], vec![vec![1.0]], vec![]).is_err());
        assert!(Dataset::new(vec!["a".into()], vec![vec![f64::NAN]], vec![0.0]).is_err());
    }
}
