//! Training data container.

use serde::{Deserialize, Serialize};

/// A dense row-major training set: one `Vec<f64>` of feature values per
/// example, plus a regression label per example.
///
/// Ranking candidates (join-column pairs, GroupBy columns, …) are featurised
/// upstream into this representation; labels are 1.0 for the choice the
/// notebook author made and 0.0 otherwise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    labels: Vec<f64>,
}

impl Dataset {
    /// Build a dataset, validating that every row has one value per feature
    /// and labels align with rows.
    pub fn new(
        feature_names: Vec<String>,
        rows: Vec<Vec<f64>>,
        labels: Vec<f64>,
    ) -> Result<Self, String> {
        if rows.len() != labels.len() {
            return Err(format!(
                "{} rows but {} labels",
                rows.len(),
                labels.len()
            ));
        }
        for (i, r) in rows.iter().enumerate() {
            if r.len() != feature_names.len() {
                return Err(format!(
                    "row {i} has {} features, expected {}",
                    r.len(),
                    feature_names.len()
                ));
            }
            if r.iter().any(|v| v.is_nan()) {
                return Err(format!("row {i} contains NaN"));
            }
        }
        Ok(Dataset { feature_names, rows, labels })
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    pub fn label(&self, i: usize) -> f64 {
        self.labels[i]
    }

    pub fn labels(&self) -> &[f64] {
        &self.labels
    }
}

/// Per-feature bin codes for histogram-mode split finding, computed once
/// per ensemble and shared by every tree.
///
/// Each feature gets a strictly-increasing list of `cuts`; bin `b` holds the
/// values in `(cuts[b-1], cuts[b]]`-style ranges, i.e. `code(v)` = number of
/// cuts strictly below `v`, so `code(v) <= b  ⟺  v <= cuts[b]` — the split
/// predicate on codes is exactly the tree's raw-value predicate.
///
/// When a feature has at most `max_bins` distinct values, bins are exact:
/// one per distinct value, with the same midpoint-with-fallback thresholds
/// the exact kernels use — histogram splits on such features are identical
/// to exact splits. Otherwise cuts sit at rank quantiles of the observed
/// (duplicated) column, so every bin holds roughly `rows / max_bins`
/// values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinnedDataset {
    /// Per feature: strictly increasing thresholds between adjacent bins.
    cuts: Vec<Vec<f64>>,
    /// Per feature: one bin code per row.
    codes: Vec<Vec<u8>>,
    num_rows: usize,
}

/// The hard ceiling on bins per feature (codes are `u8`).
pub const MAX_HIST_BINS: usize = 256;

impl BinnedDataset {
    /// Bin every feature of `data` into at most `max_bins` bins
    /// (`2..=256`).
    pub fn build(data: &Dataset, max_bins: usize) -> Self {
        assert!(
            (2..=MAX_HIST_BINS).contains(&max_bins),
            "max_bins must be in 2..=256, got {max_bins}"
        );
        let n = data.len();
        let mut cuts = Vec::with_capacity(data.num_features());
        let mut codes = Vec::with_capacity(data.num_features());
        let mut bins_built = 0u64;
        for f in 0..data.num_features() {
            let mut sorted: Vec<f64> = (0..n).map(|i| data.row(i)[f]).collect();
            sorted.sort_by(f64::total_cmp);
            let mut distinct = sorted.clone();
            distinct.dedup();
            let fcuts: Vec<f64> = if distinct.len() <= max_bins {
                // Exact bins: midpoint thresholds between adjacent distinct
                // values, with the same round-up fallback as the exact
                // kernels (a midpoint that rounds to the upper value would
                // send every row left).
                distinct
                    .windows(2)
                    .map(|w| {
                        let mid = (w[0] + w[1]) / 2.0;
                        if mid > w[0] && mid < w[1] {
                            mid
                        } else {
                            w[0]
                        }
                    })
                    .collect()
            } else {
                // Rank-quantile cuts over the raw (duplicated) column, so
                // dense value ranges get more bins. Cuts are data values;
                // `v <= cut` splits below/above, and deduplication keeps
                // them strictly increasing. A cut at the maximum would
                // create an empty top bin; drop it.
                let max_val = sorted[n - 1];
                let mut qs: Vec<f64> = (1..max_bins).map(|b| sorted[b * n / max_bins]).collect();
                qs.dedup();
                qs.retain(|&c| c < max_val);
                qs
            };
            let fcodes: Vec<u8> = (0..n)
                .map(|i| {
                    let v = data.row(i)[f];
                    fcuts.partition_point(|&c| c < v) as u8
                })
                .collect();
            bins_built += (fcuts.len() + 1) as u64;
            cuts.push(fcuts);
            codes.push(fcodes);
        }
        autosuggest_obs::counter_add("gbdt.bins_built", bins_built);
        BinnedDataset { cuts, codes, num_rows: n }
    }

    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    pub fn num_features(&self) -> usize {
        self.cuts.len()
    }

    /// Number of bins for feature `f` (≥1; 1 means the feature is
    /// constant and can never split).
    pub fn num_bins(&self, f: usize) -> usize {
        self.cuts[f].len() + 1
    }

    /// Bin code of `row` for feature `f`.
    pub fn code(&self, f: usize, row: usize) -> usize {
        self.codes[f][row] as usize
    }

    /// The raw-value threshold separating bins `b` and `b + 1` of feature
    /// `f`: rows with `value <= cut` are exactly the rows with
    /// `code <= b`.
    pub fn cut(&self, f: usize, b: usize) -> f64 {
        self.cuts[f][b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_shapes() {
        assert!(Dataset::new(vec!["a".into()], vec![vec![1.0]], vec![0.0]).is_ok());
        assert!(Dataset::new(vec!["a".into()], vec![vec![1.0, 2.0]], vec![0.0]).is_err());
        assert!(Dataset::new(vec!["a".into()], vec![vec![1.0]], vec![]).is_err());
        assert!(Dataset::new(vec!["a".into()], vec![vec![f64::NAN]], vec![0.0]).is_err());
    }

    fn dataset_1f(col: Vec<f64>) -> Dataset {
        let labels = vec![0.0; col.len()];
        let rows = col.into_iter().map(|v| vec![v]).collect();
        Dataset::new(vec!["f0".into()], rows, labels).unwrap()
    }

    #[test]
    fn exact_bins_assign_one_code_per_distinct_value() {
        let data = dataset_1f(vec![3.0, 1.0, 2.0, 1.0, 3.0, 2.0]);
        let b = BinnedDataset::build(&data, 8);
        assert_eq!(b.num_bins(0), 3);
        // Codes follow value rank: 1.0 → 0, 2.0 → 1, 3.0 → 2.
        let codes: Vec<usize> = (0..data.len()).map(|i| b.code(0, i)).collect();
        assert_eq!(codes, vec![2, 0, 1, 0, 2, 1]);
        // code <= b ⟺ value <= cut(b).
        for i in 0..data.len() {
            for bd in 0..b.num_bins(0) - 1 {
                assert_eq!(b.code(0, i) <= bd, data.row(i)[0] <= b.cut(0, bd));
            }
        }
    }

    #[test]
    fn quantile_bins_respect_the_cap_and_predicate() {
        let data = dataset_1f((0..500).map(|i| (i as f64 * 0.731).sin()).collect());
        let b = BinnedDataset::build(&data, 16);
        assert!(b.num_bins(0) <= 16);
        assert!(b.num_bins(0) >= 8, "got {}", b.num_bins(0));
        for i in 0..data.len() {
            for bd in 0..b.num_bins(0) - 1 {
                assert_eq!(b.code(0, i) <= bd, data.row(i)[0] <= b.cut(0, bd));
            }
        }
        // Cuts strictly increasing.
        for w in (0..b.num_bins(0) - 1).collect::<Vec<_>>().windows(2) {
            assert!(b.cut(0, w[0]) < b.cut(0, w[1]));
        }
    }

    #[test]
    fn constant_feature_gets_a_single_bin() {
        let data = dataset_1f(vec![4.2; 10]);
        let b = BinnedDataset::build(&data, 256);
        assert_eq!(b.num_bins(0), 1);
        assert!((0..10).all(|i| b.code(0, i) == 0));
    }
}
