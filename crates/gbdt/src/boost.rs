//! Gradient boosting over regression trees (squared loss).

use crate::data::{BinnedDataset, Dataset};
use crate::tree::{Presorted, RegressionTree, TreeParams};
use autosuggest_obs as obs;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for the boosted ensemble.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtParams {
    /// Number of boosting rounds (trees).
    pub n_trees: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Per-tree parameters.
    pub tree: TreeParams,
    /// Fraction of rows sampled (without replacement, deterministically
    /// strided) per round; 1.0 disables subsampling.
    pub subsample: f64,
    /// Use LightGBM-style histogram split finding instead of exact scans:
    /// features are binned once per fit (≤ `max_bins` bins) and split
    /// thresholds land on bin boundaries. Off by default — the exact
    /// kernel keeps the committed goldens byte-stable.
    pub histogram: bool,
    /// Bins per feature in histogram mode (`2..=256`); ignored otherwise.
    pub max_bins: usize,
}

impl Default for GbdtParams {
    fn default() -> Self {
        GbdtParams {
            n_trees: 100,
            learning_rate: 0.1,
            tree: TreeParams::default(),
            subsample: 1.0,
            histogram: false,
            max_bins: 256,
        }
    }
}

/// Row count below which batch prediction stays on the caller thread
/// (a handful of tree walks is cheaper than a thread spawn).
const PAR_PREDICT_MIN_ROWS: usize = 512;

/// A fitted gradient-boosted ensemble.
///
/// Under squared loss the negative gradient is the residual, so each round
/// fits a [`RegressionTree`] to the current residuals and adds it with
/// shrinkage — the classic least-squares boosting the paper's point-wise
/// rankers use.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gbdt {
    base: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
    feature_names: Vec<String>,
}

impl Gbdt {
    /// Train on `data` with the given parameters.
    ///
    /// Panics if `data` is empty — the corpus filter guarantees non-empty
    /// training sets, and silently producing a constant model would mask
    /// upstream bugs.
    pub fn fit(data: &Dataset, params: &GbdtParams) -> Self {
        assert!(!data.is_empty(), "cannot fit GBDT on an empty dataset");
        assert!(params.subsample > 0.0 && params.subsample <= 1.0);
        let _fit_span = obs::span("gbdt_fit");
        let fit_started = std::time::Instant::now();
        obs::counter_add("gbdt.fits", 1);
        obs::counter_add("gbdt.rounds", params.n_trees as u64);
        let n = data.len();
        let base = data.labels().iter().sum::<f64>() / n as f64;
        let mut preds = vec![base; n];
        let mut trees = Vec::with_capacity(params.n_trees);
        let mut residuals = vec![0.0; n];
        // Target-independent per-fit structures, built once and reused by
        // every round: bin codes in histogram mode, presorted feature
        // lists in exact mode (only when all rounds train on all rows —
        // subsampling changes the row set per round).
        let binned = params.histogram.then(|| BinnedDataset::build(data, params.max_bins));
        let presorted = (!params.histogram && params.subsample >= 1.0)
            .then(|| Presorted::build(data, &(0..n).collect::<Vec<_>>()));
        for round in 0..params.n_trees {
            let _tree_span = obs::span("gbdt_tree");
            for (i, (r, p)) in residuals.iter_mut().zip(&preds).enumerate() {
                *r = data.label(i) - p;
            }
            let idx = subsample_indices(n, params.subsample, round);
            let scan_started = std::time::Instant::now();
            let tree = match (&binned, &presorted) {
                (Some(b), _) => RegressionTree::fit_hist(data, &residuals, b, &idx, &params.tree),
                (None, Some(pre)) => {
                    RegressionTree::fit_with_presorted(data, &residuals, &idx, &params.tree, pre)
                }
                (None, None) => RegressionTree::fit(data, &residuals, &idx, &params.tree),
            };
            obs::observe_since("gbdt.split_scan_seconds", scan_started);
            // Row predictions are independent; the pool returns them in row
            // order and each update touches only its own slot, so the new
            // prediction vector matches the sequential loop bit for bit.
            let deltas = autosuggest_parallel::Pool::global()
                .with_min_items(PAR_PREDICT_MIN_ROWS)
                .par_map_indexed(n, |i| tree.predict(data.row(i)));
            for (p, d) in preds.iter_mut().zip(deltas) {
                *p += params.learning_rate * d;
            }
            trees.push(tree);
        }
        obs::observe_since("gbdt.fit_seconds", fit_started);
        Gbdt {
            base,
            learning_rate: params.learning_rate,
            trees,
            feature_names: data.feature_names().to_vec(),
        }
    }

    /// Continue boosting from a previously fitted ensemble: carry `prev`'s
    /// base prediction and trees, rebuild the running prediction vector by
    /// replaying the carried trees, then train `params.n_trees`
    /// **additional** rounds with round numbering continuing where `prev`
    /// stopped.
    ///
    /// When `data` is exactly the dataset `prev` was fitted on, the result
    /// is bit-for-bit identical to [`Gbdt::fit`] run for
    /// `prev.num_trees() + params.n_trees` rounds: the replay uses the same
    /// per-tree parallel delta pass and the same `p += lr · d`
    /// accumulation order as the fit loop, the carried base equals the
    /// label mean `fit` would compute, and `subsample_indices` sees the
    /// same round numbers (so the strided row sample per round is
    /// unchanged). On a grown dataset the carried trees act as a warm
    /// start: residuals are recomputed against the carried ensemble over
    /// the new rows too, and only the new rounds fit them.
    ///
    /// Panics if the learning rate or feature space differs from `prev`'s —
    /// warm-starting across either would silently change what the carried
    /// trees mean.
    pub fn fit_incremental(prev: &Gbdt, data: &Dataset, params: &GbdtParams) -> Self {
        assert!(!data.is_empty(), "cannot fit GBDT on an empty dataset");
        assert!(params.subsample > 0.0 && params.subsample <= 1.0);
        assert!(
            params.learning_rate.to_bits() == prev.learning_rate.to_bits(),
            "warm start requires the carried ensemble's learning rate"
        );
        assert_eq!(
            data.feature_names(),
            prev.feature_names.as_slice(),
            "warm start requires the carried ensemble's feature space"
        );
        let _fit_span = obs::span("gbdt_fit");
        let fit_started = std::time::Instant::now();
        obs::counter_add("gbdt.fits", 1);
        obs::counter_add("gbdt.incremental_fits", 1);
        obs::counter_add("gbdt.rounds", params.n_trees as u64);
        obs::counter_add("gbdt.trees_carried", prev.trees.len() as u64);
        let n = data.len();
        let base = prev.base;
        let mut preds = vec![base; n];
        for tree in &prev.trees {
            let deltas = autosuggest_parallel::Pool::global()
                .with_min_items(PAR_PREDICT_MIN_ROWS)
                .par_map_indexed(n, |i| tree.predict(data.row(i)));
            for (p, d) in preds.iter_mut().zip(deltas) {
                *p += params.learning_rate * d;
            }
        }
        let mut trees = prev.trees.clone();
        trees.reserve(params.n_trees);
        let mut residuals = vec![0.0; n];
        let binned = params.histogram.then(|| BinnedDataset::build(data, params.max_bins));
        let presorted = (!params.histogram && params.subsample >= 1.0)
            .then(|| Presorted::build(data, &(0..n).collect::<Vec<_>>()));
        let first_round = prev.trees.len();
        for round in first_round..first_round + params.n_trees {
            let _tree_span = obs::span("gbdt_tree");
            for (i, (r, p)) in residuals.iter_mut().zip(&preds).enumerate() {
                *r = data.label(i) - p;
            }
            let idx = subsample_indices(n, params.subsample, round);
            let scan_started = std::time::Instant::now();
            let tree = match (&binned, &presorted) {
                (Some(b), _) => RegressionTree::fit_hist(data, &residuals, b, &idx, &params.tree),
                (None, Some(pre)) => {
                    RegressionTree::fit_with_presorted(data, &residuals, &idx, &params.tree, pre)
                }
                (None, None) => RegressionTree::fit(data, &residuals, &idx, &params.tree),
            };
            obs::observe_since("gbdt.split_scan_seconds", scan_started);
            let deltas = autosuggest_parallel::Pool::global()
                .with_min_items(PAR_PREDICT_MIN_ROWS)
                .par_map_indexed(n, |i| tree.predict(data.row(i)));
            for (p, d) in preds.iter_mut().zip(deltas) {
                *p += params.learning_rate * d;
            }
            trees.push(tree);
        }
        obs::observe_since("gbdt.fit_seconds", fit_started);
        Gbdt {
            base,
            learning_rate: params.learning_rate,
            trees,
            feature_names: data.feature_names().to_vec(),
        }
    }

    /// Predict the regression score for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base
            + self.learning_rate
                * self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Predict scores for a batch of candidates (fans out across the
    /// thread pool; results stay in input order).
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        autosuggest_parallel::Pool::global()
            .with_min_items(PAR_PREDICT_MIN_ROWS)
            .par_map(xs, |x| self.predict(x))
    }

    /// Gain-based feature importance, normalised to sum to 1 (all-zero when
    /// no split was ever made). Index order matches `feature_names`.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.feature_names.len()];
        for t in &self.trees {
            t.accumulate_importance(&mut imp);
        }
        crate::importance::normalize(&mut imp);
        imp
    }

    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

/// Deterministic strided subsample: stable across runs without an RNG
/// dependency, varying by round so different trees see different rows.
fn subsample_indices(n: usize, frac: f64, round: usize) -> Vec<usize> {
    if frac >= 1.0 {
        return (0..n).collect();
    }
    let take = ((n as f64 * frac).ceil() as usize).max(1);
    (0..take)
        .map(|i| (i * n / take + round * 7919) % n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(rows: Vec<Vec<f64>>, labels: Vec<f64>) -> Dataset {
        let names = (0..rows[0].len()).map(|i| format!("f{i}")).collect();
        Dataset::new(names, rows, labels).unwrap()
    }

    #[test]
    fn learns_a_linear_function() {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let labels: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 1.0).collect();
        let data = dataset(rows, labels);
        let model = Gbdt::fit(&data, &GbdtParams::default());
        for &x in &[0.1, 0.5, 0.9] {
            let want = 3.0 * x - 1.0;
            assert!((model.predict(&[x]) - want).abs() < 0.15, "at x={x}");
        }
    }

    #[test]
    fn learns_xor_interaction() {
        // XOR needs depth ≥ 2 trees — a sanity check that splits compose.
        // Cell counts are deliberately unequal: on perfectly balanced XOR no
        // single split has positive gain, so a greedy tree (correctly)
        // refuses to split at all.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for a in 0..2usize {
            for b in 0..2usize {
                for _ in 0..(8 + 3 * a + 5 * b) {
                    rows.push(vec![a as f64, b as f64]);
                    labels.push(((a + b) % 2) as f64);
                }
            }
        }
        let data = dataset(rows, labels);
        let model = Gbdt::fit(&data, &GbdtParams::default());
        assert!(model.predict(&[0.0, 1.0]) > 0.8);
        assert!(model.predict(&[1.0, 1.0]) < 0.2);
    }

    #[test]
    fn binary_labels_rank_positives_above_negatives() {
        // The actual usage pattern: point-wise ranking with 0/1 labels.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            let good = i % 4 == 0;
            rows.push(vec![
                if good { 0.9 } else { 0.2 } + (i % 7) as f64 * 0.01,
                (i % 13) as f64, // noise feature
            ]);
            labels.push(if good { 1.0 } else { 0.0 });
        }
        let data = dataset(rows, labels);
        let model = Gbdt::fit(&data, &GbdtParams::default());
        assert!(model.predict(&[0.92, 5.0]) > model.predict(&[0.22, 5.0]));
    }

    #[test]
    fn importance_concentrates_on_signal_feature() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            let signal = (i % 2) as f64;
            rows.push(vec![(i % 11) as f64, signal, (i % 5) as f64]);
            labels.push(signal * 10.0);
        }
        let data = dataset(rows, labels);
        let model = Gbdt::fit(&data, &GbdtParams::default());
        let imp = model.feature_importance();
        assert!(imp[1] > 0.9, "importance {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn subsampling_still_learns() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 1.0 }).collect();
        let data = dataset(rows, labels);
        let params = GbdtParams { subsample: 0.5, ..Default::default() };
        let model = Gbdt::fit(&data, &params);
        assert!(model.predict(&[10.0]) < 0.3);
        assert!(model.predict(&[90.0]) > 0.7);
    }

    #[test]
    fn deterministic_across_fits() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i * i % 17) as f64]).collect();
        let labels: Vec<f64> = (0..50).map(|i| (i % 3) as f64).collect();
        let data = dataset(rows, labels);
        let a = Gbdt::fit(&data, &GbdtParams::default());
        let b = Gbdt::fit(&data, &GbdtParams::default());
        for i in 0..50 {
            assert_eq!(a.predict(data.row(i)), b.predict(data.row(i)));
        }
    }

    fn warm_start_dataset() -> Dataset {
        let rows: Vec<Vec<f64>> =
            (0..160).map(|i| vec![(i as f64 * 0.618).fract(), (i % 13) as f64]).collect();
        let labels: Vec<f64> =
            rows.iter().map(|r| r[0] * 3.0 + if r[1] > 6.0 { 1.0 } else { 0.0 }).collect();
        dataset(rows, labels)
    }

    fn assert_bitwise_equal(a: &Gbdt, b: &Gbdt, data: &Dataset) {
        assert_eq!(a.num_trees(), b.num_trees());
        assert_eq!(a.base.to_bits(), b.base.to_bits());
        for i in 0..data.len() {
            assert_eq!(
                a.predict(data.row(i)).to_bits(),
                b.predict(data.row(i)).to_bits(),
                "row {i} diverged"
            );
        }
    }

    #[test]
    fn incremental_on_unchanged_data_is_bitwise_equal_to_full_fit() {
        let data = warm_start_dataset();
        for params in [
            GbdtParams::default(),
            GbdtParams { histogram: true, max_bins: 32, ..Default::default() },
            GbdtParams { subsample: 0.7, ..Default::default() },
        ] {
            let full = Gbdt::fit(&data, &GbdtParams { n_trees: 12, ..params.clone() });
            let base = Gbdt::fit(&data, &GbdtParams { n_trees: 8, ..params.clone() });
            let warm =
                Gbdt::fit_incremental(&base, &data, &GbdtParams { n_trees: 4, ..params.clone() });
            assert_bitwise_equal(&warm, &full, &data);
        }
    }

    #[test]
    fn incremental_with_zero_new_trees_is_identity() {
        let data = warm_start_dataset();
        let base = Gbdt::fit(&data, &GbdtParams { n_trees: 6, ..Default::default() });
        let same =
            Gbdt::fit_incremental(&base, &data, &GbdtParams { n_trees: 0, ..Default::default() });
        assert_bitwise_equal(&same, &base, &data);
    }

    #[test]
    fn incremental_on_grown_data_improves_fit_on_new_rows() {
        // Warm-start on a grown dataset: the carried trees only ever saw
        // the first half, the new rounds must pick up the new regime.
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..200).map(|i| if i < 150 { 0.0 } else { 1.0 }).collect();
        let old = dataset(rows[..100].to_vec(), labels[..100].to_vec());
        let all = dataset(rows, labels);
        let base = Gbdt::fit(&old, &GbdtParams { n_trees: 10, ..Default::default() });
        let before = base.predict(&[190.0]);
        let warm =
            Gbdt::fit_incremental(&base, &all, &GbdtParams { n_trees: 20, ..Default::default() });
        assert!(before < 0.3, "carried ensemble never saw the new regime: {before}");
        assert!(warm.predict(&[190.0]) > 0.7);
        assert!(warm.predict(&[10.0]) < 0.3);
        assert_eq!(warm.num_trees(), 30);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn incremental_rejects_mismatched_learning_rate() {
        let data = warm_start_dataset();
        let base = Gbdt::fit(&data, &GbdtParams { n_trees: 2, ..Default::default() });
        let other = GbdtParams { learning_rate: 0.05, n_trees: 2, ..Default::default() };
        let _ = Gbdt::fit_incremental(&base, &data, &other);
    }

    #[test]
    #[should_panic(expected = "feature space")]
    fn incremental_rejects_mismatched_feature_space() {
        let data = warm_start_dataset();
        let base = Gbdt::fit(&data, &GbdtParams { n_trees: 2, ..Default::default() });
        let narrow = dataset(vec![vec![0.0], vec![1.0]], vec![0.0, 1.0]);
        let _ = Gbdt::fit_incremental(&base, &narrow, &GbdtParams::default());
    }

    #[test]
    fn histogram_mode_learns_and_is_deterministic() {
        let rows: Vec<Vec<f64>> = (0..300).map(|i| vec![i as f64 / 300.0, (i % 7) as f64]).collect();
        let labels: Vec<f64> = rows.iter().map(|r| if r[0] < 0.4 { 0.0 } else { 1.0 }).collect();
        let data = dataset(rows, labels);
        let params = GbdtParams { histogram: true, max_bins: 32, ..Default::default() };
        let a = Gbdt::fit(&data, &params);
        let b = Gbdt::fit(&data, &params);
        assert!(a.predict(&[0.1, 3.0]) < 0.2);
        assert!(a.predict(&[0.9, 3.0]) > 0.8);
        for i in 0..data.len() {
            assert_eq!(a.predict(data.row(i)).to_bits(), b.predict(data.row(i)).to_bits());
        }
    }

    #[test]
    fn histogram_mode_tracks_exact_mode_closely() {
        let rows: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![(i as f64 * 0.618).fract(), (i as f64 * 0.323).fract()])
            .collect();
        let labels: Vec<f64> =
            rows.iter().map(|r| r[0] * 2.0 + if r[1] > 0.5 { 1.0 } else { 0.0 }).collect();
        let data = dataset(rows, labels);
        let exact = Gbdt::fit(&data, &GbdtParams::default());
        let hist = Gbdt::fit(
            &data,
            &GbdtParams { histogram: true, max_bins: 64, ..Default::default() },
        );
        let mse = |m: &Gbdt| {
            (0..data.len())
                .map(|i| (m.predict(data.row(i)) - data.label(i)).powi(2))
                .sum::<f64>()
                / data.len() as f64
        };
        assert!(mse(&hist) < mse(&exact) + 0.01, "hist {} exact {}", mse(&hist), mse(&exact));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let data = Dataset::new(vec!["a".into()], vec![], vec![]).unwrap();
        Gbdt::fit(&data, &GbdtParams::default());
    }

    #[test]
    fn subsample_indices_cover_range() {
        let idx = subsample_indices(100, 0.3, 2);
        assert_eq!(idx.len(), 30);
        assert!(idx.iter().all(|&i| i < 100));
        assert_eq!(subsample_indices(10, 1.0, 0), (0..10).collect::<Vec<_>>());
    }
}
