//! Gradient boosted regression trees, from scratch.
//!
//! Auto-Suggest trains point-wise ranking models with binary 0/1 labels and
//! "uses gradient boosted decision trees to directly optimize regression
//! loss" (§4.1). This crate implements exactly that model family: CART-style
//! regression trees fit to residuals under squared loss, with shrinkage,
//! optional row subsampling, and gain-based feature importances (the numbers
//! behind Tables 4 and 7).
//!
//! ```
//! use autosuggest_gbdt::{Dataset, Gbdt, GbdtParams};
//!
//! // y = 2·x0, noise-free
//! let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
//! let labels: Vec<f64> = rows.iter().map(|r| 2.0 * r[0]).collect();
//! let data = Dataset::new(vec!["x0".into()], rows, labels).unwrap();
//! let model = Gbdt::fit(&data, &GbdtParams::default());
//! let pred = model.predict(&[0.5]);
//! assert!((pred - 1.0).abs() < 0.1);
//! ```

mod boost;
mod data;
mod importance;
mod tree;

pub use boost::{Gbdt, GbdtParams};
pub use data::{BinnedDataset, Dataset, MAX_HIST_BINS};
pub use importance::{aggregate_importance, normalize};
pub use tree::{Presorted, RegressionTree, TreeParams};
