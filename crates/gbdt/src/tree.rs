//! A CART-style regression tree with exact greedy splits.

use crate::data::Dataset;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for a single regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Minimum variance-reduction gain required to split.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 4, min_samples_leaf: 2, min_gain: 1e-9 }
    }
}

/// Tree nodes stored in a flat arena (indices instead of boxes).
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Variance-reduction gain of this split, weighted by sample count —
        /// the quantity summed into feature importances.
        gain: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree. Prediction routes `x[feature] <= threshold`
/// left, otherwise right.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl RegressionTree {
    /// Fit a tree to `targets` (residuals, in boosting) over the rows of
    /// `data` restricted to `row_idx`.
    pub fn fit(data: &Dataset, targets: &[f64], row_idx: &[usize], params: &TreeParams) -> Self {
        assert_eq!(data.len(), targets.len());
        assert!(!row_idx.is_empty(), "cannot fit a tree on zero rows");
        let mut tree = RegressionTree { nodes: Vec::new(), num_features: data.num_features() };
        let mut idx = row_idx.to_vec();
        tree.build(data, targets, &mut idx, 0, params);
        tree
    }

    fn build(
        &mut self,
        data: &Dataset,
        targets: &[f64],
        idx: &mut [usize],
        depth: usize,
        params: &TreeParams,
    ) -> usize {
        let mean = idx.iter().map(|&i| targets[i]).sum::<f64>() / idx.len() as f64;
        if depth >= params.max_depth || idx.len() < 2 * params.min_samples_leaf {
            return self.push(Node::Leaf { value: mean });
        }
        match best_split(data, targets, idx, params) {
            None => self.push(Node::Leaf { value: mean }),
            Some(split) => {
                // Partition rows in place around the threshold.
                let mid = partition(idx, |i| data.row(i)[split.feature] <= split.threshold);
                let (left_idx, right_idx) = idx.split_at_mut(mid);
                debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
                let node = self.push(Node::Leaf { value: mean }); // placeholder
                let left = {
                    let mut l = left_idx.to_vec();
                    self.build(data, targets, &mut l, depth + 1, params)
                };
                let right = {
                    let mut r = right_idx.to_vec();
                    self.build(data, targets, &mut r, depth + 1, params)
                };
                self.nodes[node] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    gain: split.gain,
                    left,
                    right,
                };
                node
            }
        }
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Predict the target for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_features, "feature arity mismatch");
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right, .. } => {
                    at = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (diagnostics / tests).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Accumulate this tree's split gains per feature into `out`.
    pub fn accumulate_importance(&self, out: &mut [f64]) {
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                out[*feature] += gain.max(0.0);
            }
        }
    }
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
    gain: f64,
}

/// Row-count × feature-count product above which the per-feature scans of
/// [`best_split`] fan out across the thread pool. Below it, the sort
/// dominates so little that spawn overhead loses.
const PAR_SPLIT_WORK: usize = 16 * 1024;

/// Exact greedy split search: for every feature, sort rows by value and scan
/// boundary positions, maximising the variance-reduction gain
/// `SSE(parent) − SSE(left) − SSE(right)` computed incrementally from
/// running sums.
///
/// Features are independent, so the per-feature scans run on the thread
/// pool for large nodes. Each feature's gains are computed with exactly the
/// sequential arithmetic (no cross-feature accumulation), and the reduce
/// folds candidates in ascending feature order with a strictly-greater
/// comparison — the earliest feature wins ties, exactly as in the
/// sequential loop, so the chosen split is bit-identical at any thread
/// count.
fn best_split(
    data: &Dataset,
    targets: &[f64],
    idx: &[usize],
    params: &TreeParams,
) -> Option<SplitChoice> {
    let n = idx.len() as f64;
    let total_sum: f64 = idx.iter().map(|&i| targets[i]).sum();
    let total_sq: f64 = idx.iter().map(|&i| targets[i] * targets[i]).sum();
    let parent_sse = total_sq - total_sum * total_sum / n;

    let scan_feature = |order: &mut [usize], f: usize| -> Option<SplitChoice> {
        order.sort_by(|&a, &b| data.row(a)[f].total_cmp(&data.row(b)[f]));
        let mut best: Option<SplitChoice> = None;
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for pos in 0..order.len() - 1 {
            let t = targets[order[pos]];
            left_sum += t;
            left_sq += t * t;
            let v = data.row(order[pos])[f];
            let v_next = data.row(order[pos + 1])[f];
            if v == v_next {
                continue; // can't split between equal values
            }
            let nl = (pos + 1) as f64;
            let nr = n - nl;
            if (nl as usize) < params.min_samples_leaf || (nr as usize) < params.min_samples_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / nl)
                + (right_sq - right_sum * right_sum / nr);
            let gain = parent_sse - sse;
            if gain > params.min_gain
                && best.as_ref().is_none_or(|b| gain > b.gain)
            {
                // The midpoint of two adjacent floats can round up to
                // `v_next`, which would send every row left; fall back to
                // `v` (rows ≤ v go left) whenever that happens.
                let mut threshold = (v + v_next) / 2.0;
                if !(threshold > v && threshold < v_next) {
                    threshold = v;
                }
                best = Some(SplitChoice { feature: f, threshold, gain });
            }
        }
        best
    };

    let num_features = data.num_features();
    let candidates: Vec<Option<SplitChoice>> =
        if idx.len() * num_features >= PAR_SPLIT_WORK && autosuggest_parallel::current_threads() > 1
        {
            autosuggest_parallel::par_map_indexed(num_features, |f| {
                let mut order = idx.to_vec();
                scan_feature(&mut order, f)
            })
        } else {
            // Sequential path reuses one sort buffer across features.
            let mut order = idx.to_vec();
            (0..num_features).map(|f| scan_feature(&mut order, f)).collect()
        };

    let mut best: Option<SplitChoice> = None;
    for cand in candidates.into_iter().flatten() {
        if best.as_ref().is_none_or(|b| cand.gain > b.gain) {
            best = Some(cand);
        }
    }
    best
}

/// Stable-ish partition: move rows satisfying `pred` to the front, returning
/// the boundary.
fn partition<F: Fn(usize) -> bool>(idx: &mut [usize], pred: F) -> usize {
    let mut front = 0;
    for i in 0..idx.len() {
        if pred(idx[i]) {
            idx.swap(front, i);
            front += 1;
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(rows: Vec<Vec<f64>>, labels: Vec<f64>) -> Dataset {
        let names = (0..rows[0].len()).map(|i| format!("f{i}")).collect();
        Dataset::new(names, rows, labels).unwrap()
    }

    #[test]
    fn fits_a_step_function_exactly() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
        let data = dataset(rows, labels);
        let idx: Vec<usize> = (0..20).collect();
        let tree = RegressionTree::fit(&data, data.labels(), &idx, &TreeParams::default());
        assert_eq!(tree.predict(&[3.0]), 0.0);
        assert_eq!(tree.predict(&[15.0]), 1.0);
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let data = dataset(rows, labels);
        let idx: Vec<usize> = (0..64).collect();
        let params = TreeParams { max_depth: 2, ..Default::default() };
        let tree = RegressionTree::fit(&data, data.labels(), &idx, &params);
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn constant_targets_make_a_single_leaf() {
        let data = dataset(vec![vec![1.0], vec![2.0], vec![3.0]], vec![5.0, 5.0, 5.0]);
        let idx = vec![0, 1, 2];
        let tree = RegressionTree::fit(&data, data.labels(), &idx, &TreeParams::default());
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict(&[99.0]), 5.0);
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 1 is pure noise-free signal; feature 0 is constant.
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![7.0, if i % 2 == 0 { -1.0 } else { 1.0 }])
            .collect();
        let labels: Vec<f64> = (0..30).map(|i| if i % 2 == 0 { 0.0 } else { 10.0 }).collect();
        let data = dataset(rows, labels);
        let idx: Vec<usize> = (0..30).collect();
        let tree = RegressionTree::fit(&data, data.labels(), &idx, &TreeParams::default());
        let mut imp = vec![0.0; 2];
        tree.accumulate_importance(&mut imp);
        assert_eq!(imp[0], 0.0);
        assert!(imp[1] > 0.0);
    }

    #[test]
    fn min_samples_leaf_blocks_tiny_leaves() {
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let labels = vec![0.0, 0.0, 0.0, 0.0, 0.0, 100.0];
        let data = dataset(rows, labels);
        let idx: Vec<usize> = (0..6).collect();
        let params = TreeParams { min_samples_leaf: 3, ..Default::default() };
        let tree = RegressionTree::fit(&data, data.labels(), &idx, &params);
        // The only useful split would isolate the last row; forbidden, so the
        // tree can only split at the 3/3 boundary.
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn partition_moves_matching_rows_front() {
        let mut idx = vec![5, 2, 8, 1, 9];
        let mid = partition(&mut idx, |v| v < 5);
        assert_eq!(mid, 2);
        let mut front: Vec<usize> = idx[..mid].to_vec();
        front.sort_unstable();
        assert_eq!(front, vec![1, 2]);
    }
}
