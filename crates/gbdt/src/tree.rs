//! A CART-style regression tree with exact greedy splits.
//!
//! ## Split-search kernels
//!
//! Three interchangeable kernels find splits:
//!
//! - **Presorted** (the default, used by [`RegressionTree::fit`]): every
//!   feature is stable-sorted **once per tree**; the sorted `(row, value)`
//!   lists are then partitioned down the tree, so a node's scan is `O(n)`
//!   instead of `O(n log n)`. A counting-sort realignment pass (see
//!   [`scan_feature_presorted`]) reproduces the historical per-node sort
//!   order bit for bit, so the chosen splits — and the committed goldens —
//!   are identical to the re-sort kernel.
//! - **Re-sort** ([`RegressionTree::fit_resort`]): the historical kernel
//!   that re-sorts rows per node per feature. Kept as the executable
//!   reference the equivalence tests compare against.
//! - **Histogram** ([`RegressionTree::fit_hist`]): LightGBM-style binned
//!   split finding over a [`BinnedDataset`] (≤256 bins per feature,
//!   computed once per ensemble) with the sibling-subtraction trick: only
//!   the smaller child's histogram is accumulated fresh; the larger child
//!   is the parent minus the smaller. Split thresholds can only land on
//!   bin boundaries, so chosen splits are within one bin of the exact
//!   kernel's (and identical when every feature has ≤ `max_bins` distinct
//!   values).
//!
//! All three are deterministic at any thread count: per-feature scans are
//! independent, and candidates are reduced in ascending feature order with
//! a strictly-greater comparison (earliest feature wins ties).

use crate::data::{BinnedDataset, Dataset};
use autosuggest_obs as obs;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for a single regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Minimum variance-reduction gain required to split.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 4, min_samples_leaf: 2, min_gain: 1e-9 }
    }
}

/// Tree nodes stored in a flat arena (indices instead of boxes).
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Variance-reduction gain of this split, weighted by sample count —
        /// the quantity summed into feature importances.
        gain: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree. Prediction routes `x[feature] <= threshold`
/// left, otherwise right.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

/// Per-feature row list sorted ascending by feature value (`total_cmp`).
/// Partitioning a node's lists by its split predicate yields the children's
/// lists without re-sorting.
#[derive(Debug, Clone)]
struct FeatureList {
    rows: Vec<u32>,
    vals: Vec<f64>,
}

/// Per-feature presorted row lists for a fixed `(data, row_idx)` pair —
/// independent of targets, so boosting builds this **once per ensemble**
/// (when every round trains on the same rows) and reuses it for every tree.
#[derive(Debug, Clone)]
pub struct Presorted {
    lists: Vec<FeatureList>,
    num_rows: usize,
}

impl Presorted {
    /// Stable-sort every feature over `row_idx` (ties keep `row_idx`
    /// order — exactly the order the historical per-node sort produced at
    /// the root).
    pub fn build(data: &Dataset, row_idx: &[usize]) -> Self {
        let num_features = data.num_features();
        let work = row_idx.len() * num_features;
        let make = |f: usize| -> FeatureList {
            let mut rows: Vec<u32> = row_idx.iter().map(|&i| i as u32).collect();
            rows.sort_by(|&a, &b| {
                data.row(a as usize)[f].total_cmp(&data.row(b as usize)[f])
            });
            let vals: Vec<f64> = rows.iter().map(|&r| data.row(r as usize)[f]).collect();
            FeatureList { rows, vals }
        };
        let lists = if work >= PAR_SPLIT_WORK && autosuggest_parallel::current_threads() > 1 {
            autosuggest_parallel::par_map_indexed(num_features, make)
        } else {
            (0..num_features).map(make).collect()
        };
        Presorted { lists, num_rows: row_idx.len() }
    }
}

/// Reusable per-scan workspace for the presorted kernel. `run_of_row` is
/// indexed by global row id (entries for rows outside the current node are
/// stale and never read).
struct ScanScratch {
    run_of_row: Vec<u32>,
    run_start: Vec<u32>,
    fill: Vec<u32>,
    scan_order: Vec<u32>,
}

impl ScanScratch {
    fn new(num_rows_total: usize) -> Self {
        ScanScratch {
            run_of_row: vec![0; num_rows_total],
            run_start: Vec::new(),
            fill: Vec::new(),
            scan_order: Vec::new(),
        }
    }
}

impl RegressionTree {
    /// Fit a tree to `targets` (residuals, in boosting) over the rows of
    /// `data` restricted to `row_idx`, using the presorted split kernel.
    pub fn fit(data: &Dataset, targets: &[f64], row_idx: &[usize], params: &TreeParams) -> Self {
        let pre = Presorted::build(data, row_idx);
        Self::fit_with_presorted(data, targets, row_idx, params, &pre)
    }

    /// [`Self::fit`] with a caller-provided [`Presorted`] (which must have
    /// been built over the same `data` and `row_idx`). Produces exactly the
    /// tree [`Self::fit`] would.
    pub fn fit_with_presorted(
        data: &Dataset,
        targets: &[f64],
        row_idx: &[usize],
        params: &TreeParams,
        pre: &Presorted,
    ) -> Self {
        assert_eq!(data.len(), targets.len());
        assert!(!row_idx.is_empty(), "cannot fit a tree on zero rows");
        assert_eq!(pre.num_rows, row_idx.len(), "presorted index arity");
        let mut tree = RegressionTree { nodes: Vec::new(), num_features: data.num_features() };
        let mut idx = row_idx.to_vec();
        let mut scratch = ScanScratch::new(data.len());
        tree.build_presorted(data, targets, &mut idx, 0, params, &pre.lists, &mut scratch);
        tree
    }

    /// Historical split kernel: re-sorts rows per node per feature. Kept as
    /// the executable reference for the presorted kernel's equivalence
    /// tests (and A/B benchmarks); produces bit-identical trees.
    pub fn fit_resort(
        data: &Dataset,
        targets: &[f64],
        row_idx: &[usize],
        params: &TreeParams,
    ) -> Self {
        assert_eq!(data.len(), targets.len());
        assert!(!row_idx.is_empty(), "cannot fit a tree on zero rows");
        let mut tree = RegressionTree { nodes: Vec::new(), num_features: data.num_features() };
        let mut idx = row_idx.to_vec();
        tree.build_resort(data, targets, &mut idx, 0, params);
        tree
    }

    /// Histogram split kernel over pre-binned features: split thresholds
    /// land on bin boundaries of `binned`, within one bin of the exact
    /// kernels (identical when every feature has ≤ `max_bins` distinct
    /// values). Leaf values are still exact row means.
    pub fn fit_hist(
        data: &Dataset,
        targets: &[f64],
        binned: &BinnedDataset,
        row_idx: &[usize],
        params: &TreeParams,
    ) -> Self {
        assert_eq!(data.len(), targets.len());
        assert_eq!(binned.num_rows(), data.len(), "binned dataset arity");
        assert!(!row_idx.is_empty(), "cannot fit a tree on zero rows");
        let mut tree = RegressionTree { nodes: Vec::new(), num_features: data.num_features() };
        let mut idx = row_idx.to_vec();
        let hists = compute_hists(binned, targets, &idx);
        tree.build_hist(data, targets, binned, &mut idx, 0, params, hists);
        tree
    }

    #[allow(clippy::too_many_arguments)]
    fn build_presorted(
        &mut self,
        data: &Dataset,
        targets: &[f64],
        idx: &mut [usize],
        depth: usize,
        params: &TreeParams,
        lists: &[FeatureList],
        scratch: &mut ScanScratch,
    ) -> usize {
        let mean = idx.iter().map(|&i| targets[i]).sum::<f64>() / idx.len() as f64;
        if depth >= params.max_depth || idx.len() < 2 * params.min_samples_leaf {
            return self.push(Node::Leaf { value: mean });
        }
        match best_split_presorted(data, targets, idx, params, lists, scratch) {
            None => self.push(Node::Leaf { value: mean }),
            Some(split) => {
                // Partition rows in place around the threshold (same swap
                // partition as always — child `idx` order, and therefore
                // every downstream accumulation, matches the historical
                // kernel exactly).
                let mid = partition(idx, |i| data.row(i)[split.feature] <= split.threshold);
                // Children at max depth never scan, so skip their lists.
                let (left_lists, right_lists) = if depth + 1 < params.max_depth {
                    partition_lists(data, lists, split.feature, split.threshold, mid)
                } else {
                    (Vec::new(), Vec::new())
                };
                let (left_idx, right_idx) = idx.split_at_mut(mid);
                debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
                obs::counter_add("gbdt.nodes_split", 1);
                let node = self.push(Node::Leaf { value: mean }); // placeholder
                let left = {
                    let mut l = left_idx.to_vec();
                    self.build_presorted(data, targets, &mut l, depth + 1, params, &left_lists, scratch)
                };
                let right = {
                    let mut r = right_idx.to_vec();
                    self.build_presorted(data, targets, &mut r, depth + 1, params, &right_lists, scratch)
                };
                self.nodes[node] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    gain: split.gain,
                    left,
                    right,
                };
                node
            }
        }
    }

    fn build_resort(
        &mut self,
        data: &Dataset,
        targets: &[f64],
        idx: &mut [usize],
        depth: usize,
        params: &TreeParams,
    ) -> usize {
        let mean = idx.iter().map(|&i| targets[i]).sum::<f64>() / idx.len() as f64;
        if depth >= params.max_depth || idx.len() < 2 * params.min_samples_leaf {
            return self.push(Node::Leaf { value: mean });
        }
        match best_split_resort(data, targets, idx, params) {
            None => self.push(Node::Leaf { value: mean }),
            Some(split) => {
                let mid = partition(idx, |i| data.row(i)[split.feature] <= split.threshold);
                let (left_idx, right_idx) = idx.split_at_mut(mid);
                debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
                obs::counter_add("gbdt.nodes_split", 1);
                let node = self.push(Node::Leaf { value: mean }); // placeholder
                let left = {
                    let mut l = left_idx.to_vec();
                    self.build_resort(data, targets, &mut l, depth + 1, params)
                };
                let right = {
                    let mut r = right_idx.to_vec();
                    self.build_resort(data, targets, &mut r, depth + 1, params)
                };
                self.nodes[node] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    gain: split.gain,
                    left,
                    right,
                };
                node
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_hist(
        &mut self,
        data: &Dataset,
        targets: &[f64],
        binned: &BinnedDataset,
        idx: &mut [usize],
        depth: usize,
        params: &TreeParams,
        hists: Vec<Vec<BinStat>>,
    ) -> usize {
        let mean = idx.iter().map(|&i| targets[i]).sum::<f64>() / idx.len() as f64;
        if depth >= params.max_depth || idx.len() < 2 * params.min_samples_leaf {
            return self.push(Node::Leaf { value: mean });
        }
        match best_split_hist(targets, idx, params, binned, &hists) {
            None => self.push(Node::Leaf { value: mean }),
            Some(split) => {
                let mid = partition(idx, |i| data.row(i)[split.feature] <= split.threshold);
                let (left_idx, right_idx) = idx.split_at_mut(mid);
                debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
                // Sibling subtraction: accumulate only the smaller child
                // fresh; the larger child's histogram is parent − smaller.
                let left_smaller = left_idx.len() <= right_idx.len();
                let small_h =
                    compute_hists(binned, targets, if left_smaller { left_idx } else { right_idx });
                let big_h = subtract_hists(hists, &small_h);
                let (left_h, right_h) =
                    if left_smaller { (small_h, big_h) } else { (big_h, small_h) };
                obs::counter_add("gbdt.nodes_split", 1);
                let node = self.push(Node::Leaf { value: mean }); // placeholder
                let left = {
                    let mut l = left_idx.to_vec();
                    self.build_hist(data, targets, binned, &mut l, depth + 1, params, left_h)
                };
                let right = {
                    let mut r = right_idx.to_vec();
                    self.build_hist(data, targets, binned, &mut r, depth + 1, params, right_h)
                };
                self.nodes[node] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    gain: split.gain,
                    left,
                    right,
                };
                node
            }
        }
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Predict the target for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_features, "feature arity mismatch");
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split { feature, threshold, left, right, .. } => {
                    at = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (diagnostics / tests).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], at: usize) -> usize {
            match &nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + rec(nodes, *left).max(rec(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// The root's `(feature, threshold)` if the root is a split
    /// (diagnostics / equivalence tests).
    pub fn root_split(&self) -> Option<(usize, f64)> {
        match self.nodes.first() {
            Some(Node::Split { feature, threshold, .. }) => Some((*feature, *threshold)),
            _ => None,
        }
    }

    /// Accumulate this tree's split gains per feature into `out`.
    pub fn accumulate_importance(&self, out: &mut [f64]) {
        for node in &self.nodes {
            if let Node::Split { feature, gain, .. } = node {
                out[*feature] += gain.max(0.0);
            }
        }
    }
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
    gain: f64,
}

/// Row-count × feature-count product above which the per-feature scans of
/// the split kernels fan out across the thread pool. Below it, the scan
/// costs so little that spawn overhead loses.
const PAR_SPLIT_WORK: usize = 16 * 1024;

/// Fold per-feature candidates in ascending feature order with a
/// strictly-greater comparison: the earliest feature wins ties, exactly as
/// a sequential loop over features would, at any thread count.
fn reduce_candidates(candidates: Vec<Option<SplitChoice>>) -> Option<SplitChoice> {
    let mut best: Option<SplitChoice> = None;
    for cand in candidates.into_iter().flatten() {
        if best.as_ref().is_none_or(|b| cand.gain > b.gain) {
            best = Some(cand);
        }
    }
    best
}

/// Sums over the node's rows **in `idx` order** — the same accumulation
/// order every kernel (and the historical code) uses, so `parent_sse` bits
/// are identical across kernels.
fn parent_stats(targets: &[f64], idx: &[usize]) -> (f64, f64, f64) {
    let n = idx.len() as f64;
    let total_sum: f64 = idx.iter().map(|&i| targets[i]).sum();
    let total_sq: f64 = idx.iter().map(|&i| targets[i] * targets[i]).sum();
    let parent_sse = total_sq - total_sum * total_sum / n;
    (total_sum, total_sq, parent_sse)
}

/// The boundary-scan shared by the presorted and re-sort kernels: walk
/// positions in value order, accumulating left sums, and evaluate a
/// candidate at every boundary between distinct adjacent values.
///
/// `value_at(pos)` and `target_at(pos)` abstract where the sorted order
/// lives; both kernels feed positions in the identical sequence, so the
/// arithmetic — and every candidate — is bit-for-bit the same.
#[allow(clippy::too_many_arguments)]
fn scan_boundaries(
    m: usize,
    f: usize,
    value_at: impl Fn(usize) -> f64,
    target_at: impl Fn(usize) -> f64,
    params: &TreeParams,
    total_sum: f64,
    total_sq: f64,
    parent_sse: f64,
) -> Option<SplitChoice> {
    let n = m as f64;
    let mut best: Option<SplitChoice> = None;
    let mut left_sum = 0.0;
    let mut left_sq = 0.0;
    if m == 0 {
        return None;
    }
    let mut v = value_at(0);
    for pos in 0..m - 1 {
        let t = target_at(pos);
        left_sum += t;
        left_sq += t * t;
        let v_next = value_at(pos + 1);
        if v == v_next {
            continue; // can't split between equal values
        }
        let nl = (pos + 1) as f64;
        let nr = n - nl;
        if (nl as usize) < params.min_samples_leaf || (nr as usize) < params.min_samples_leaf {
            v = v_next;
            continue;
        }
        let right_sum = total_sum - left_sum;
        let right_sq = total_sq - left_sq;
        let sse =
            (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
        let gain = parent_sse - sse;
        if gain > params.min_gain && best.as_ref().is_none_or(|b| gain > b.gain) {
            // The midpoint of two adjacent floats can round up to
            // `v_next`, which would send every row left; fall back to
            // `v` (rows ≤ v go left) whenever that happens.
            let mut threshold = (v + v_next) / 2.0;
            if !(threshold > v && threshold < v_next) {
                threshold = v;
            }
            best = Some(SplitChoice { feature: f, threshold, gain });
        }
        v = v_next;
    }
    best
}

/// Presorted split search: each feature's sorted list is realigned to the
/// node's `idx` order within ties and scanned once — `O(n)` per feature.
///
/// ### Why the realignment pass
///
/// The historical kernel stable-sorted a row buffer by value, so rows with
/// *equal* values were scanned in the buffer's pre-sort order. Floating-
/// point sums are order-sensitive, so to keep every gain bit-identical we
/// must add tied rows in that same order. The sorted list gives value
/// order; a counting sort by tie-run id, filling each run in `fill_order`
/// (the buffer's pre-sort order), rebuilds exactly the sequence
/// `sort_by(total_cmp)` produced — without any comparison sort. Runs are
/// delimited by *bit* inequality (matching `total_cmp`'s notion of
/// equality, e.g. `-0.0` sorts before `0.0`), while the boundary skip
/// below still uses `==` (which treats `-0.0 == 0.0`), both exactly as
/// before.
///
/// `fill_order` mirrors the historical buffer's state: the sequential
/// kernel reused one buffer across features (so feature `f` sees the
/// order left behind by sorting feature `f-1`), while the parallel kernel
/// copied `idx` fresh per feature. [`best_split_presorted`] reproduces
/// both regimes.
#[allow(clippy::too_many_arguments)]
fn scan_feature_presorted(
    targets: &[f64],
    fill_order: &[u32],
    list: &FeatureList,
    params: &TreeParams,
    f: usize,
    total_sum: f64,
    total_sq: f64,
    parent_sse: f64,
    scratch: &mut ScanScratch,
) -> Option<SplitChoice> {
    let m = list.rows.len();
    debug_assert_eq!(m, fill_order.len());
    // Pass 1: tie runs (maximal groups of bit-equal adjacent values).
    scratch.run_start.clear();
    scratch.run_start.push(0);
    scratch.run_of_row[list.rows[0] as usize] = 0;
    let mut prev_bits = list.vals[0].to_bits();
    for k in 1..m {
        let bits = list.vals[k].to_bits();
        if bits != prev_bits {
            scratch.run_start.push(k as u32);
            prev_bits = bits;
        }
        scratch.run_of_row[list.rows[k] as usize] = (scratch.run_start.len() - 1) as u32;
    }
    // Pass 2: counting sort — within each run, rows in `fill_order`.
    scratch.fill.clear();
    scratch.fill.resize(scratch.run_start.len(), 0);
    if scratch.scan_order.len() < m {
        scratch.scan_order.resize(m, 0);
    }
    for &row in fill_order {
        let rid = scratch.run_of_row[row as usize] as usize;
        let slot = (scratch.run_start[rid] + scratch.fill[rid]) as usize;
        scratch.scan_order[slot] = row;
        scratch.fill[rid] += 1;
    }
    // Pass 3: the boundary scan. Values come straight from the contiguous
    // sorted array (the within-run permutation can't change them).
    let scan_order = &scratch.scan_order;
    scan_boundaries(
        m,
        f,
        |pos| list.vals[pos],
        |pos| targets[scan_order[pos] as usize],
        params,
        total_sum,
        total_sq,
        parent_sse,
    )
}

fn best_split_presorted(
    data: &Dataset,
    targets: &[f64],
    idx: &[usize],
    params: &TreeParams,
    lists: &[FeatureList],
    scratch: &mut ScanScratch,
) -> Option<SplitChoice> {
    let (total_sum, total_sq, parent_sse) = parent_stats(targets, idx);
    let num_features = data.num_features();
    let candidates: Vec<Option<SplitChoice>> =
        if idx.len() * num_features >= PAR_SPLIT_WORK && autosuggest_parallel::current_threads() > 1
        {
            // Parallel regime: the historical kernel copied `idx` fresh per
            // feature, so ties fill in `idx` order.
            let fill: Vec<u32> = idx.iter().map(|&i| i as u32).collect();
            autosuggest_parallel::par_map_indexed(num_features, |f| {
                let mut local = ScanScratch::new(data.len());
                scan_feature_presorted(
                    targets, &fill, &lists[f], params, f, total_sum, total_sq, parent_sse,
                    &mut local,
                )
            })
        } else {
            // Sequential regime: the historical kernel reused one sort
            // buffer across features, so feature `f`'s ties fill in the
            // order the buffer held after sorting feature `f-1`. Carrying
            // each scan's output order forward reproduces that chain.
            let mut carried: Vec<u32> = idx.iter().map(|&i| i as u32).collect();
            (0..num_features)
                .map(|f| {
                    let cand = scan_feature_presorted(
                        targets, &carried, &lists[f], params, f, total_sum, total_sq, parent_sse,
                        scratch,
                    );
                    carried.copy_from_slice(&scratch.scan_order[..idx.len()]);
                    cand
                })
                .collect()
        };
    reduce_candidates(candidates)
}

/// Partition every feature's sorted list into the two children of a split.
/// Filtering preserves sorted order, so no re-sort is ever needed.
fn partition_lists(
    data: &Dataset,
    lists: &[FeatureList],
    feature: usize,
    threshold: f64,
    left_len: usize,
) -> (Vec<FeatureList>, Vec<FeatureList>) {
    let mut left = Vec::with_capacity(lists.len());
    let mut right = Vec::with_capacity(lists.len());
    for list in lists {
        let right_len = list.rows.len() - left_len;
        let mut l = FeatureList {
            rows: Vec::with_capacity(left_len),
            vals: Vec::with_capacity(left_len),
        };
        let mut r = FeatureList {
            rows: Vec::with_capacity(right_len),
            vals: Vec::with_capacity(right_len),
        };
        for (&row, &val) in list.rows.iter().zip(&list.vals) {
            if data.row(row as usize)[feature] <= threshold {
                l.rows.push(row);
                l.vals.push(val);
            } else {
                r.rows.push(row);
                r.vals.push(val);
            }
        }
        debug_assert_eq!(l.rows.len(), left_len);
        left.push(l);
        right.push(r);
    }
    (left, right)
}

/// Historical exact split search: per feature, sort the node's rows by
/// value and scan boundary positions, maximising variance-reduction gain.
fn best_split_resort(
    data: &Dataset,
    targets: &[f64],
    idx: &[usize],
    params: &TreeParams,
) -> Option<SplitChoice> {
    let (total_sum, total_sq, parent_sse) = parent_stats(targets, idx);

    let scan_feature = |order: &mut [usize], f: usize| -> Option<SplitChoice> {
        order.sort_by(|&a, &b| data.row(a)[f].total_cmp(&data.row(b)[f]));
        // The column is gathered once so the scan reads contiguous memory
        // instead of chasing `data.row(...)` twice per position.
        let vals: Vec<f64> = order.iter().map(|&i| data.row(i)[f]).collect();
        scan_boundaries(
            order.len(),
            f,
            |pos| vals[pos],
            |pos| targets[order[pos]],
            params,
            total_sum,
            total_sq,
            parent_sse,
        )
    };

    let num_features = data.num_features();
    let candidates: Vec<Option<SplitChoice>> =
        if idx.len() * num_features >= PAR_SPLIT_WORK && autosuggest_parallel::current_threads() > 1
        {
            autosuggest_parallel::par_map_indexed(num_features, |f| {
                let mut order = idx.to_vec();
                scan_feature(&mut order, f)
            })
        } else {
            // Sequential path reuses one sort buffer across features.
            let mut order = idx.to_vec();
            (0..num_features).map(|f| scan_feature(&mut order, f)).collect()
        };
    reduce_candidates(candidates)
}

/// Per-bin target statistics for the histogram kernel.
#[derive(Debug, Clone, Copy, Default)]
struct BinStat {
    count: u32,
    sum: f64,
    sumsq: f64,
}

/// Accumulate per-feature histograms over the node's rows (in `idx`
/// order). Features are independent, so large nodes fan out across the
/// pool; each feature's bins are accumulated with identical sequential
/// arithmetic, so the result is the same at any thread count.
fn compute_hists(binned: &BinnedDataset, targets: &[f64], idx: &[usize]) -> Vec<Vec<BinStat>> {
    let num_features = binned.num_features();
    let accumulate = |f: usize| -> Vec<BinStat> {
        let mut bins = vec![BinStat::default(); binned.num_bins(f)];
        for &row in idx {
            let b = &mut bins[binned.code(f, row)];
            let t = targets[row];
            b.count += 1;
            b.sum += t;
            b.sumsq += t * t;
        }
        bins
    };
    if idx.len() * num_features >= PAR_SPLIT_WORK && autosuggest_parallel::current_threads() > 1 {
        autosuggest_parallel::par_map_indexed(num_features, accumulate)
    } else {
        (0..num_features).map(accumulate).collect()
    }
}

/// `parent − small` per feature per bin: the sibling-subtraction trick.
/// Consumes the parent histograms (they are never needed again).
fn subtract_hists(mut parent: Vec<Vec<BinStat>>, small: &[Vec<BinStat>]) -> Vec<Vec<BinStat>> {
    for (pf, sf) in parent.iter_mut().zip(small) {
        for (pb, sb) in pf.iter_mut().zip(sf) {
            pb.count -= sb.count;
            pb.sum -= sb.sum;
            pb.sumsq -= sb.sumsq;
        }
    }
    parent
}

/// Histogram split search: scan bin boundaries left-to-right per feature,
/// computing gains from cumulative bin statistics. Thresholds are the bin
/// cuts of `binned`, so a chosen split is within one bin of the exact
/// kernel's choice.
fn best_split_hist(
    targets: &[f64],
    idx: &[usize],
    params: &TreeParams,
    binned: &BinnedDataset,
    hists: &[Vec<BinStat>],
) -> Option<SplitChoice> {
    let (total_sum, total_sq, parent_sse) = parent_stats(targets, idx);
    let n = idx.len() as f64;
    let mut candidates: Vec<Option<SplitChoice>> = Vec::with_capacity(hists.len());
    for (f, bins) in hists.iter().enumerate() {
        let mut best: Option<SplitChoice> = None;
        let mut left_count = 0u32;
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        // Boundary b splits bins 0..=b from b+1.. (threshold = cut b).
        for (b, bin) in bins.iter().enumerate().take(bins.len().saturating_sub(1)) {
            left_count += bin.count;
            left_sum += bin.sum;
            left_sq += bin.sumsq;
            if bin.count == 0 {
                continue; // same partition as the previous boundary
            }
            let nl = left_count as usize;
            let nr = idx.len() - nl;
            if nl < params.min_samples_leaf || nr < params.min_samples_leaf {
                continue;
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse = (left_sq - left_sum * left_sum / nl as f64)
                + (right_sq - right_sum * right_sum / (n - nl as f64));
            let gain = parent_sse - sse;
            if gain > params.min_gain && best.as_ref().is_none_or(|x| gain > x.gain) {
                best = Some(SplitChoice { feature: f, threshold: binned.cut(f, b), gain });
            }
        }
        candidates.push(best);
    }
    reduce_candidates(candidates)
}

/// Stable-ish partition: move rows satisfying `pred` to the front, returning
/// the boundary.
fn partition<F: Fn(usize) -> bool>(idx: &mut [usize], pred: F) -> usize {
    let mut front = 0;
    for i in 0..idx.len() {
        if pred(idx[i]) {
            idx.swap(front, i);
            front += 1;
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(rows: Vec<Vec<f64>>, labels: Vec<f64>) -> Dataset {
        let names = (0..rows[0].len()).map(|i| format!("f{i}")).collect();
        Dataset::new(names, rows, labels).unwrap()
    }

    /// Tiny deterministic LCG so tests don't depend on the rand shim.
    fn lcg(state: &mut u64) -> f64 {
        *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    /// Random dataset with deliberate ties (values snapped to a coarse
    /// grid) — ties are where the presorted kernel's realignment matters.
    fn random_tied_dataset(n: usize, features: usize, seed: u64) -> Dataset {
        let mut s = seed;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..features)
                    .map(|_| (lcg(&mut s) * 8.0).floor() / 8.0)
                    .collect()
            })
            .collect();
        let labels: Vec<f64> = (0..n).map(|_| lcg(&mut s) * 2.0 - 1.0).collect();
        dataset(rows, labels)
    }

    #[test]
    fn fits_a_step_function_exactly() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
        let data = dataset(rows, labels);
        let idx: Vec<usize> = (0..20).collect();
        let tree = RegressionTree::fit(&data, data.labels(), &idx, &TreeParams::default());
        assert_eq!(tree.predict(&[3.0]), 0.0);
        assert_eq!(tree.predict(&[15.0]), 1.0);
    }

    #[test]
    fn respects_max_depth() {
        let rows: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let labels: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let data = dataset(rows, labels);
        let idx: Vec<usize> = (0..64).collect();
        let params = TreeParams { max_depth: 2, ..Default::default() };
        let tree = RegressionTree::fit(&data, data.labels(), &idx, &params);
        assert!(tree.depth() <= 2);
    }

    #[test]
    fn constant_targets_make_a_single_leaf() {
        let data = dataset(vec![vec![1.0], vec![2.0], vec![3.0]], vec![5.0, 5.0, 5.0]);
        let idx = vec![0, 1, 2];
        let tree = RegressionTree::fit(&data, data.labels(), &idx, &TreeParams::default());
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.predict(&[99.0]), 5.0);
    }

    #[test]
    fn picks_the_informative_feature() {
        // Feature 1 is pure noise-free signal; feature 0 is constant.
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![7.0, if i % 2 == 0 { -1.0 } else { 1.0 }])
            .collect();
        let labels: Vec<f64> = (0..30).map(|i| if i % 2 == 0 { 0.0 } else { 10.0 }).collect();
        let data = dataset(rows, labels);
        let idx: Vec<usize> = (0..30).collect();
        let tree = RegressionTree::fit(&data, data.labels(), &idx, &TreeParams::default());
        let mut imp = vec![0.0; 2];
        tree.accumulate_importance(&mut imp);
        assert_eq!(imp[0], 0.0);
        assert!(imp[1] > 0.0);
    }

    #[test]
    fn min_samples_leaf_blocks_tiny_leaves() {
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let labels = vec![0.0, 0.0, 0.0, 0.0, 0.0, 100.0];
        let data = dataset(rows, labels);
        let idx: Vec<usize> = (0..6).collect();
        let params = TreeParams { min_samples_leaf: 3, ..Default::default() };
        let tree = RegressionTree::fit(&data, data.labels(), &idx, &params);
        // The only useful split would isolate the last row; forbidden, so the
        // tree can only split at the 3/3 boundary.
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn partition_moves_matching_rows_front() {
        let mut idx = vec![5, 2, 8, 1, 9];
        let mid = partition(&mut idx, |v| v < 5);
        assert_eq!(mid, 2);
        let mut front: Vec<usize> = idx[..mid].to_vec();
        front.sort_unstable();
        assert_eq!(front, vec![1, 2]);
    }

    /// Bit-level identity of two fitted trees: same structure, same
    /// predictions on every training row, same importances.
    fn assert_trees_identical(a: &RegressionTree, b: &RegressionTree, data: &Dataset) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.depth(), b.depth());
        assert_eq!(a.root_split().map(|(f, t)| (f, t.to_bits())),
                   b.root_split().map(|(f, t)| (f, t.to_bits())));
        for i in 0..data.len() {
            assert_eq!(
                a.predict(data.row(i)).to_bits(),
                b.predict(data.row(i)).to_bits(),
                "row {i}"
            );
        }
        let mut ia = vec![0.0; data.num_features()];
        let mut ib = vec![0.0; data.num_features()];
        a.accumulate_importance(&mut ia);
        b.accumulate_importance(&mut ib);
        for (x, y) in ia.iter().zip(&ib) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn presorted_matches_resort_on_tied_random_data() {
        for seed in 0..5u64 {
            let data = random_tied_dataset(200, 4, 0x9e3779b97f4a7c15 ^ seed);
            let idx: Vec<usize> = (0..data.len()).collect();
            let params = TreeParams::default();
            let fast = RegressionTree::fit(&data, data.labels(), &idx, &params);
            let reference = RegressionTree::fit_resort(&data, data.labels(), &idx, &params);
            assert_trees_identical(&fast, &reference, &data);
        }
    }

    #[test]
    fn presorted_matches_resort_on_scrambled_row_subset() {
        // Non-ascending row_idx (the subsampling case): tie order inside
        // the node scans comes from the idx array, not from row ids.
        let data = random_tied_dataset(150, 3, 42);
        let idx: Vec<usize> = (0..data.len()).filter(|i| i % 3 != 1).rev().collect();
        let params = TreeParams { max_depth: 5, ..Default::default() };
        let fast = RegressionTree::fit(&data, data.labels(), &idx, &params);
        let reference = RegressionTree::fit_resort(&data, data.labels(), &idx, &params);
        assert_trees_identical(&fast, &reference, &data);
    }

    #[test]
    fn presorted_reuses_ensemble_presort() {
        let data = random_tied_dataset(120, 3, 7);
        let idx: Vec<usize> = (0..data.len()).collect();
        let pre = Presorted::build(&data, &idx);
        let params = TreeParams::default();
        let a = RegressionTree::fit_with_presorted(&data, data.labels(), &idx, &params, &pre);
        let b = RegressionTree::fit(&data, data.labels(), &idx, &params);
        assert_trees_identical(&a, &b, &data);
    }

    #[test]
    fn histogram_is_exact_when_bins_cover_all_distinct_values() {
        // ≤ max_bins distinct values per feature ⇒ one bin per value with
        // the same midpoint thresholds ⇒ identical split choices.
        let data = random_tied_dataset(200, 3, 99); // values on a 9-point grid
        let idx: Vec<usize> = (0..data.len()).collect();
        let params = TreeParams::default();
        let binned = BinnedDataset::build(&data, 16);
        let hist = RegressionTree::fit_hist(&data, data.labels(), &binned, &idx, &params);
        let exact = RegressionTree::fit(&data, data.labels(), &idx, &params);
        assert_eq!(hist.root_split().map(|(f, t)| (f, t.to_bits())),
                   exact.root_split().map(|(f, t)| (f, t.to_bits())));
        assert_eq!(hist.num_nodes(), exact.num_nodes());
        for i in 0..data.len() {
            // Leaf membership identical ⇒ leaf means identical up to
            // summation order (idx partitions are the same rows).
            assert!((hist.predict(data.row(i)) - exact.predict(data.row(i))).abs() < 1e-12);
        }
    }

    #[test]
    fn histogram_split_is_within_one_bin_of_exact() {
        // Continuous values, more distinct values than bins: the chosen
        // root threshold must land within one bin width of the exact one.
        let n = 512;
        let mut s = 5u64;
        let rows: Vec<Vec<f64>> = (0..n).map(|_| vec![lcg(&mut s)]).collect();
        let labels: Vec<f64> = rows.iter().map(|r| if r[0] < 0.37 { 0.0 } else { 1.0 }).collect();
        let data = dataset(rows, labels);
        let idx: Vec<usize> = (0..n).collect();
        let params = TreeParams { max_depth: 1, ..Default::default() };
        let max_bins = 32;
        let binned = BinnedDataset::build(&data, max_bins);
        let exact = RegressionTree::fit(&data, data.labels(), &idx, &params);
        let hist = RegressionTree::fit_hist(&data, data.labels(), &binned, &idx, &params);
        let (ef, et) = exact.root_split().unwrap();
        let (hf, ht) = hist.root_split().unwrap();
        assert_eq!(ef, hf);
        // Uniform data ⇒ bin width ≈ 1/max_bins; allow one full bin.
        assert!((et - ht).abs() <= 1.5 / max_bins as f64, "exact {et} vs hist {ht}");
    }

    #[test]
    fn histogram_respects_min_samples_leaf() {
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let labels = vec![0.0, 0.0, 0.0, 0.0, 0.0, 100.0];
        let data = dataset(rows, labels);
        let idx: Vec<usize> = (0..6).collect();
        let params = TreeParams { min_samples_leaf: 3, ..Default::default() };
        let binned = BinnedDataset::build(&data, 256);
        let tree = RegressionTree::fit_hist(&data, data.labels(), &binned, &idx, &params);
        assert!(tree.depth() <= 1);
    }
}
