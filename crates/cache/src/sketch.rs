//! Bottom-k MinHash sketches for cheap containment pre-checks.
//!
//! Footnote 2 of the paper prunes join candidates with "sketch-based
//! containment-checks" before featurising. A bottom-k sketch keeps the `k`
//! smallest 64-bit hashes of a value set; the Jaccard similarity of two sets
//! is estimated from the overlap of their merged bottom-k, and containment
//! follows from Jaccard plus the (known) set sizes.
//!
//! Sketches built at different `k` remain comparable: [`MinHashSketch::jaccard`]
//! compares on the shared `min(k)` prefix, and [`MinHashSketch::truncated`]
//! produces the *exact* bottom-k' sketch of the same value set for any
//! `k' ≤ k` — which is what lets the column cache store one sketch per
//! column at a base size and serve every smaller request from it.

use serde::{Deserialize, Serialize};

/// A bottom-k sketch of a set of hashed values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinHashSketch {
    k: usize,
    /// The `k` smallest hashes, sorted ascending.
    mins: Vec<u64>,
    /// Exact distinct count of the underlying set.
    cardinality: usize,
}

impl MinHashSketch {
    /// Build from an iterator of value hashes (callers hash [`Value`]s with
    /// their `fingerprint`).
    ///
    /// [`Value`]: autosuggest_dataframe::Value
    pub fn from_hashes<I: IntoIterator<Item = u64>>(hashes: I, k: usize) -> Self {
        assert!(k > 0);
        let mut all: Vec<u64> = hashes.into_iter().collect();
        all.sort_unstable();
        all.dedup();
        let cardinality = all.len();
        all.truncate(k);
        MinHashSketch { k, mins: all, cardinality }
    }

    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// The stored bottom-k hashes, ascending (disk codec access).
    pub(crate) fn mins(&self) -> &[u64] {
        &self.mins
    }

    /// Rebuild a sketch from its stored parts (the disk codec's decode
    /// path). Returns `None` unless the parts satisfy every invariant
    /// [`MinHashSketch::from_hashes`] guarantees — `mins` strictly
    /// ascending (sorted and deduplicated), at most `k` of them, and a
    /// cardinality that can cover them — so a corrupted shard can never
    /// materialise a sketch that `from_hashes` could not have produced.
    pub(crate) fn from_parts(k: usize, mins: Vec<u64>, cardinality: usize) -> Option<Self> {
        if k == 0 || mins.len() > k || cardinality < mins.len() {
            return None;
        }
        // Cardinality beyond the stored mins is only possible when the
        // sketch is full (the original set overflowed k).
        if cardinality > mins.len() && mins.len() < k {
            return None;
        }
        if !mins.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        Some(MinHashSketch { k, mins, cardinality })
    }

    /// The sketch size this was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The exact bottom-`k'` sketch of the same value set, for `k' ≤ k`.
    ///
    /// Because `mins` holds the `k` smallest distinct hashes in ascending
    /// order, its first `k'` entries are exactly what
    /// [`MinHashSketch::from_hashes`] with `k'` would have kept — the result
    /// is bit-identical to building at the smaller size directly. Requests
    /// larger than the built size clamp to `k` (the sketch cannot invent
    /// hashes it never stored).
    pub fn truncated(&self, k: usize) -> MinHashSketch {
        assert!(k > 0);
        let k = k.min(self.k);
        let mut mins = self.mins.clone();
        mins.truncate(k);
        MinHashSketch { k, mins, cardinality: self.cardinality }
    }

    /// Estimate the Jaccard similarity with another sketch (exact when both
    /// sets fit within `k`).
    ///
    /// Sketches of different sizes are compared on the shared
    /// `min(self.k, other.k)` prefix — each side's prefix is itself a valid
    /// bottom-k sketch of its set, so the estimate degrades gracefully to
    /// the smaller size instead of panicking. For equal `k` the result is
    /// identical to the historical same-size implementation.
    pub fn jaccard(&self, other: &MinHashSketch) -> f64 {
        let k = self.k.min(other.k);
        if self.cardinality == 0 && other.cardinality == 0 {
            return 1.0;
        }
        if self.mins.is_empty() || other.mins.is_empty() {
            return 0.0;
        }
        let a = &self.mins[..self.mins.len().min(k)];
        let b = &other.mins[..other.mins.len().min(k)];
        // Merge the two bottom-k lists, keep the k smallest distinct hashes
        // of the union, and count how many appear in both sketches.
        let mut merged: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        merged.sort_unstable();
        merged.dedup();
        merged.truncate(k);
        let both = merged
            .iter()
            .filter(|h| a.binary_search(h).is_ok() && b.binary_search(h).is_ok())
            .count();
        both as f64 / merged.len() as f64
    }

    /// Estimate the containment of `self`'s set within `other`'s set:
    /// `|A ∩ B| / |A|`, derived from the Jaccard estimate and exact
    /// cardinalities.
    pub fn containment_in(&self, other: &MinHashSketch) -> f64 {
        if self.cardinality == 0 {
            return 1.0;
        }
        let j = self.jaccard(other);
        // |A∩B| = J/(1+J) · (|A|+|B|)
        let inter = j / (1.0 + j) * (self.cardinality + other.cardinality) as f64;
        (inter / self.cardinality as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch(vals: std::ops::Range<u64>, k: usize) -> MinHashSketch {
        MinHashSketch::from_hashes(vals.map(mix), k)
    }

    /// A cheap 64-bit mixer so consecutive integers behave like hashes.
    fn mix(x: u64) -> u64 {
        let mut h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^ (h >> 32)
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let a = sketch(0..1000, 64);
        let b = sketch(0..1000, 64);
        assert_eq!(a.jaccard(&b), 1.0);
        assert_eq!(a.containment_in(&b), 1.0);
    }

    #[test]
    fn disjoint_sets_have_jaccard_zero() {
        let a = sketch(0..500, 64);
        let b = sketch(10_000..10_500, 64);
        assert_eq!(a.jaccard(&b), 0.0);
        assert_eq!(a.containment_in(&b), 0.0);
    }

    #[test]
    fn small_sets_are_exact() {
        // Both sets fit inside k, so the estimate is exact: |∩|=5, |∪|=15.
        let a = sketch(0..10, 64);
        let b = sketch(5..15, 64);
        assert!((a.jaccard(&b) - 5.0 / 15.0).abs() < 1e-12);
        assert!((a.containment_in(&b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn large_set_estimate_is_close() {
        // 50% overlap on sets much larger than k.
        let a = sketch(0..20_000, 128);
        let b = sketch(10_000..30_000, 128);
        let true_j = 10_000.0 / 30_000.0;
        assert!((a.jaccard(&b) - true_j).abs() < 0.12, "estimate {}", a.jaccard(&b));
    }

    #[test]
    fn subset_containment_near_one() {
        let a = sketch(0..100, 64);
        let b = sketch(0..10_000, 64);
        assert!(a.containment_in(&b) > 0.6, "got {}", a.containment_in(&b));
    }

    #[test]
    fn empty_set_edge_cases() {
        let e = MinHashSketch::from_hashes(std::iter::empty(), 16);
        let a = sketch(0..10, 16);
        assert_eq!(e.jaccard(&e), 1.0);
        assert_eq!(e.containment_in(&a), 1.0);
        assert_eq!(a.jaccard(&e), 0.0);
    }

    #[test]
    fn mismatched_k_degrades_to_shared_prefix() {
        // Regression: comparing sketches built at different k used to panic.
        // Now the estimate is computed on the min(k) prefix and must equal
        // comparing both sketches truncated to that size.
        let a = sketch(0..5_000, 32);
        let b = sketch(2_500..7_500, 128);
        let j = a.jaccard(&b);
        let j_sym = b.jaccard(&a);
        let j_trunc = a.truncated(32).jaccard(&b.truncated(32));
        assert_eq!(j, j_trunc);
        assert_eq!(j_sym, j_trunc);
        let true_j = 2_500.0 / 7_500.0;
        assert!((j - true_j).abs() < 0.25, "estimate {j} too far from {true_j}");
        // Containment stays within [0, 1] across the mismatch as well.
        let c = a.containment_in(&b);
        assert!((0.0..=1.0).contains(&c));
    }

    #[test]
    fn equal_k_behaviour_is_unchanged_by_the_prefix_rule() {
        // For same-size sketches the min(k) prefix is the whole sketch, so
        // the estimate must match the exact small-set value as before.
        let a = sketch(0..10, 64);
        let b = sketch(5..15, 64);
        assert!((a.jaccard(&b) - 5.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn truncated_is_bit_identical_to_building_small() {
        let hashes: Vec<u64> = (0..3_000).map(mix).collect();
        let big = MinHashSketch::from_hashes(hashes.iter().copied(), 256);
        let small = MinHashSketch::from_hashes(hashes.iter().copied(), 64);
        let t = big.truncated(64);
        assert_eq!(t.k(), small.k());
        assert_eq!(t.cardinality(), small.cardinality());
        assert_eq!(t.mins, small.mins);
        // Truncating beyond the built size clamps instead of inventing data.
        let clamped = small.truncated(512);
        assert_eq!(clamped.k(), 64);
        assert_eq!(clamped.mins, small.mins);
    }
}
