//! Persistent on-disk artifact shards.
//!
//! Content addressing makes cross-process persistence safe: a shard file is
//! named by the 128-bit fingerprint of its content key, is written once,
//! and is never mutated — a warm directory turns the in-memory cache's
//! warm-featurisation speedup into a cold-start-free serving property
//! (every new process starts "disk-warm"). Layout under
//! `AUTOSUGGEST_CACHE_DIR`:
//!
//! ```text
//! $AUTOSUGGEST_CACHE_DIR/
//!   col/<fingerprint:032x>.shard   column artifacts (stats + base sketch)
//!   tup/<fingerprint:032x>.shard   key-tuple sets (sorted distinct hashes)
//! ```
//!
//! # Format and corruption safety
//!
//! Shards use a hand-rolled (vendored, std-only) little-endian codec — no
//! mmap, plain `fs::read` — framed as `magic · version · kind · payload ·
//! fnv64 checksum`. Floats are stored as exact IEEE bit patterns
//! (`f64::to_bits`), so a disk-warm run is byte-identical to a cold one.
//! Every read is length-checked, checksummed, and semantically validated
//! (sorted sketch mins, consistent counts); any failure deletes the bad
//! shard, counts `cache.disk.corrupt`, and falls back to recomputation —
//! a truncated or bit-flipped file can cost at most one recompute.
//!
//! # Eviction and determinism
//!
//! The directory is bounded by a byte budget (`AUTOSUGGEST_CACHE_DISK_BUDGET`,
//! default 256 MiB). Eviction is at file granularity in lexicographic
//! name order over the files that pre-existed this process (names are
//! content hashes, so the order depends only on cache contents — never on
//! `read_dir` iteration order or mtime granularity); files read
//! or written by the current process are pinned and never evicted within
//! it. This keeps the disk counters thread-invariant: lookups happen only
//! on in-memory misses (themselves deterministic via single-flight), each
//! distinct key is probed at most once per process, pinned files cannot
//! disappear mid-run, and the number of evictions is the minimal prefix of
//! the fixed victim order whose removal brings the directory back under
//! budget — a pure function of the key set, not of scheduling.

use crate::pair::KeyTupleSet;
use crate::{artifacts, ColumnArtifacts, ColumnFingerprint, MinHashSketch};
use std::collections::{HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Obs counter names for the disk tier (deterministic section).
pub const DISK_HITS_COUNTER: &str = "cache.disk.hits";
pub const DISK_MISSES_COUNTER: &str = "cache.disk.misses";
pub const DISK_EVICTIONS_COUNTER: &str = "cache.disk.evictions";
pub const DISK_CORRUPT_COUNTER: &str = "cache.disk.corrupt";
pub const DISK_WRITES_COUNTER: &str = "cache.disk.writes";

/// Default directory byte budget when `AUTOSUGGEST_CACHE_DISK_BUDGET` is
/// unset: 256 MiB.
pub const DEFAULT_DISK_BUDGET: u64 = 256 * 1024 * 1024;

const MAGIC: [u8; 4] = *b"ASGC";
const VERSION: u16 = 1;
const KIND_COLUMN: u8 = 1;
const KIND_TUPLES: u8 = 2;

/// Cumulative disk-tier counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub corrupt: u64,
    pub writes: u64,
}

impl DiskStats {
    /// Every probe of the disk tier: served (`hits`), absent (`misses`),
    /// and present-but-unreadable (`corrupt`). A corrupt read is a failed
    /// lookup — the caller recomputed exactly as it would have on a miss —
    /// so it belongs in the lookup count.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.corrupt
    }

    /// Effective hit rate: `hits / (hits + misses + corrupt)`.
    ///
    /// Convention: corrupt reads count against the rate, because the tier
    /// failed to serve those lookups even though a shard file existed.
    /// Every place this rate is printed (`repro --cache-stats`, the
    /// `"cache"` section of BENCH_repro.json) labels it "effective hit
    /// rate" for this reason — it is *not* `hits / (hits + misses)`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter deltas since an earlier snapshot of the same cache.
    pub fn since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            corrupt: self.corrupt.saturating_sub(earlier.corrupt),
            writes: self.writes.saturating_sub(earlier.writes),
        }
    }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

struct Writer(Vec<u8>);

impl Writer {
    fn new(kind: u8) -> Writer {
        let mut w = Writer(Vec::with_capacity(256));
        w.0.extend_from_slice(&MAGIC);
        w.0.extend_from_slice(&VERSION.to_le_bytes());
        w.0.push(kind);
        w
    }

    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn u128(&mut self, v: u128) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn f64_bits(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn finish(mut self) -> Vec<u8> {
        let sum = fnv64(&self.0);
        self.u64(sum);
        self.0
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Validate the frame (magic, version, kind, checksum) and position the
    /// cursor at the payload.
    fn open(buf: &'a [u8], kind: u8) -> Option<Reader<'a>> {
        // Frame floor: magic(4) + version(2) + kind(1) + checksum(8).
        if buf.len() < 15 || buf[..4] != MAGIC {
            return None;
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != VERSION || buf[6] != kind {
            return None;
        }
        let (body, sum_bytes) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().ok()?);
        if fnv64(body) != stored {
            return None;
        }
        Some(Reader { buf: body, pos: 7 })
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().ok()?))
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    fn f64_bits(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// True when the payload was consumed exactly (no trailing garbage).
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialize column artifacts (exact: floats as IEEE bit patterns).
pub fn encode_column(fp: ColumnFingerprint, art: &ColumnArtifacts) -> Vec<u8> {
    let mut w = Writer::new(KIND_COLUMN);
    w.u128(fp.0);
    w.u64(art.len() as u64);
    w.u64(art.null_count() as u64);
    w.u64(art.distinct_count() as u64);
    w.u64(art.peak_frequency() as u64);
    match art.min_max() {
        Some((lo, hi)) => {
            w.u8(1);
            w.f64_bits(lo);
            w.f64_bits(hi);
        }
        None => w.u8(0),
    }
    w.u8(artifacts::dtype_slot(art.dtype()) as u8);
    for &c in art.dtype_counts() {
        w.u64(c);
    }
    let sk = art.sketch();
    w.u64(sk.k() as u64);
    w.u64(sk.cardinality() as u64);
    w.u64(sk.mins().len() as u64);
    for &m in sk.mins() {
        w.u64(m);
    }
    w.finish()
}

/// Decode column artifacts; `None` on any framing, checksum, or semantic
/// violation (including a fingerprint that does not match the requested
/// key — a misplaced file must not satisfy a foreign lookup).
pub fn decode_column(bytes: &[u8], want: ColumnFingerprint) -> Option<ColumnArtifacts> {
    let mut r = Reader::open(bytes, KIND_COLUMN)?;
    if r.u128()? != want.0 {
        return None;
    }
    let len = r.usize()?;
    let null_count = r.usize()?;
    let distinct_count = r.usize()?;
    let peak_frequency = r.usize()?;
    let min_max = match r.u8()? {
        0 => None,
        1 => Some((r.f64_bits()?, r.f64_bits()?)),
        _ => return None,
    };
    let dtype = artifacts::dtype_from_slot(r.u8()? as usize)?;
    let mut dtype_counts = [0u64; 6];
    for c in &mut dtype_counts {
        *c = r.u64()?;
    }
    let k = r.usize()?;
    let cardinality = r.usize()?;
    let n_mins = r.usize()?;
    if n_mins > bytes.len() / 8 {
        return None; // length field larger than the file itself
    }
    let mut mins = Vec::with_capacity(n_mins);
    for _ in 0..n_mins {
        mins.push(r.u64()?);
    }
    if !r.done() {
        return None;
    }
    let sketch = MinHashSketch::from_parts(k, mins, cardinality)?;
    ColumnArtifacts::from_parts(
        len,
        null_count,
        distinct_count,
        min_max,
        dtype,
        dtype_counts,
        peak_frequency,
        sketch,
    )
}

/// Serialize a key-tuple set.
pub fn encode_tuples(set: &KeyTupleSet) -> Vec<u8> {
    let mut w = Writer::new(KIND_TUPLES);
    w.u128(set.fingerprint().0);
    w.u64(set.width() as u64);
    w.u64(set.len() as u64);
    for &h in set.hashes() {
        w.u64(h);
    }
    w.finish()
}

/// Decode a key-tuple set; `None` on any violation.
pub fn decode_tuples(bytes: &[u8], want: ColumnFingerprint) -> Option<KeyTupleSet> {
    let mut r = Reader::open(bytes, KIND_TUPLES)?;
    if r.u128()? != want.0 {
        return None;
    }
    let width = r.usize()?;
    let n = r.usize()?;
    if n > bytes.len() / 8 {
        return None;
    }
    let mut hashes = Vec::with_capacity(n);
    for _ in 0..n {
        hashes.push(r.u64()?);
    }
    if !r.done() {
        return None;
    }
    KeyTupleSet::from_parts(want, width, hashes)
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// Outcome of decoding one shard file.
enum Loaded<T> {
    Hit(T),
    /// Valid shard, but insufficient for the request (undersized sketch).
    TooSmall,
    /// Framing/checksum/semantic failure: delete and recompute.
    Bad,
}

struct DiskState {
    /// Total bytes currently accounted under the root (shards only).
    bytes_total: u64,
    /// Pre-existing files in lexicographic path order — the fixed eviction
    /// queue. Shard names are content hashes, so this order is a pure
    /// function of the cache *contents*, independent of filesystem
    /// `read_dir` iteration order or mtime granularity. Files created by
    /// this process are pinned instead and are never eviction candidates
    /// within it.
    victims: VecDeque<(PathBuf, u64)>,
    /// Files read or written by this process (LRU-touched): never evicted.
    pinned: HashSet<PathBuf>,
    /// Monotonic suffix for unique temp-file names.
    tmp_counter: u64,
}

/// A write-once, content-addressed shard directory shared by the column and
/// tuple-set tiers.
pub struct DiskCache {
    root: PathBuf,
    budget_bytes: u64,
    state: Mutex<DiskState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    corrupt: AtomicU64,
    writes: AtomicU64,
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl DiskCache {
    /// Open (creating if needed) a shard directory with the given byte
    /// budget. Scans existing shards once to seed the size ledger and the
    /// name-ordered eviction queue. Ordering by name (not mtime) keeps the
    /// victim walk deterministic: `read_dir` iteration order is
    /// filesystem-dependent and mtimes collide at filesystem timestamp
    /// granularity, so either would make eviction order (and hence the
    /// post-eviction cache contents) platform-dependent.
    pub fn open(root: &Path, budget_bytes: u64) -> std::io::Result<Arc<DiskCache>> {
        std::fs::create_dir_all(root.join("col"))?;
        std::fs::create_dir_all(root.join("tup"))?;
        let mut existing: Vec<(PathBuf, u64)> = Vec::new();
        for sub in ["col", "tup"] {
            for entry in std::fs::read_dir(root.join(sub))? {
                let entry = entry?;
                let path = entry.path();
                let name = entry.file_name();
                let name = name.to_string_lossy().into_owned();
                let meta = entry.metadata()?;
                if !meta.is_file() {
                    continue;
                }
                if !name.ends_with(".shard") {
                    // Stale temp file from an interrupted writer: reclaim.
                    let _ = std::fs::remove_file(&path);
                    continue;
                }
                existing.push((path, meta.len()));
            }
        }
        existing.sort();
        let bytes_total = existing.iter().map(|e| e.1).sum();
        let victims = existing.into_iter().collect();
        Ok(Arc::new(DiskCache {
            root: root.to_path_buf(),
            budget_bytes: budget_bytes.max(1),
            state: Mutex::new(DiskState {
                bytes_total,
                victims,
                pinned: HashSet::new(),
                tmp_counter: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }))
    }

    /// Build from `AUTOSUGGEST_CACHE_DIR` / `AUTOSUGGEST_CACHE_DISK_BUDGET`;
    /// `None` when the dir is unset, empty, or cannot be opened (the cache
    /// then runs memory-only — persistence is always best-effort).
    pub fn from_env() -> Option<Arc<DiskCache>> {
        let dir = std::env::var("AUTOSUGGEST_CACHE_DIR").ok()?;
        let dir = dir.trim();
        if dir.is_empty() {
            return None;
        }
        let budget = std::env::var("AUTOSUGGEST_CACHE_DISK_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_DISK_BUDGET);
        match DiskCache::open(Path::new(dir), budget) {
            Ok(d) => Some(d),
            Err(e) => {
                eprintln!("[autosuggest-cache] cannot open AUTOSUGGEST_CACHE_DIR {dir:?}: {e}; running memory-only");
                None
            }
        }
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Bytes currently accounted under the root.
    pub fn bytes_total(&self) -> u64 {
        lock_recover(&self.state).bytes_total
    }

    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    fn column_path(&self, fp: ColumnFingerprint) -> PathBuf {
        self.root.join("col").join(format!("{fp}.shard"))
    }

    fn tuples_path(&self, fp: ColumnFingerprint) -> PathBuf {
        self.root.join("tup").join(format!("{fp}.shard"))
    }

    /// Load column artifacts for `fp` whose sketch is at least `min_k`
    /// wide. Counts a hit, miss, or corrupt; corrupt shards are deleted so
    /// the subsequent store can rewrite them.
    pub fn load_column(&self, fp: ColumnFingerprint, min_k: usize) -> Option<ColumnArtifacts> {
        let path = self.column_path(fp);
        self.load_with(&path, |bytes| match decode_column(bytes, fp) {
            // A valid shard whose sketch is narrower than requested is a
            // plain miss (the caller recomputes and overwrites), not
            // corruption.
            Some(art) if art.sketch().k() < min_k => Loaded::TooSmall,
            Some(art) => Loaded::Hit(art),
            None => Loaded::Bad,
        })
    }

    /// Load a key-tuple set for `fp`.
    pub fn load_tuples(&self, fp: ColumnFingerprint) -> Option<KeyTupleSet> {
        let path = self.tuples_path(fp);
        self.load_with(&path, |bytes| match decode_tuples(bytes, fp) {
            Some(set) => Loaded::Hit(set),
            None => Loaded::Bad,
        })
    }

    fn load_with<T>(&self, path: &Path, decode: impl FnOnce(&[u8]) -> Loaded<T>) -> Option<T> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                autosuggest_obs::counter_add(DISK_MISSES_COUNTER, 1);
                return None;
            }
        };
        match decode(&bytes) {
            Loaded::Hit(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                autosuggest_obs::counter_add(DISK_HITS_COUNTER, 1);
                lock_recover(&self.state).pinned.insert(path.to_path_buf());
                Some(v)
            }
            Loaded::TooSmall => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                autosuggest_obs::counter_add(DISK_MISSES_COUNTER, 1);
                None
            }
            Loaded::Bad => {
                // Corrupted, truncated, undersized, or misfiled shard:
                // delete it and fall back to recomputation.
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                autosuggest_obs::counter_add(DISK_CORRUPT_COUNTER, 1);
                let mut st = lock_recover(&self.state);
                if std::fs::remove_file(path).is_ok() {
                    st.bytes_total = st.bytes_total.saturating_sub(bytes.len() as u64);
                    if let Some(idx) = st.victims.iter().position(|(p, _)| p == path) {
                        st.victims.remove(idx);
                    }
                }
                None
            }
        }
    }

    /// Persist column artifacts (write-once unless `overwrite`, used when a
    /// sketch is upgraded to a larger `k`).
    pub fn store_column(&self, fp: ColumnFingerprint, art: &ColumnArtifacts, overwrite: bool) {
        let path = self.column_path(fp);
        self.store_bytes(&path, encode_column(fp, art), overwrite);
    }

    /// Persist a key-tuple set (write-once).
    pub fn store_tuples(&self, set: &KeyTupleSet) {
        let path = self.tuples_path(set.fingerprint());
        self.store_bytes(&path, encode_tuples(set), false);
    }

    fn store_bytes(&self, path: &Path, bytes: Vec<u8>, overwrite: bool) {
        let mut st = lock_recover(&self.state);
        let existing = std::fs::metadata(path).ok().map(|m| m.len());
        if existing.is_some() && !overwrite {
            st.pinned.insert(path.to_path_buf());
            return;
        }
        st.tmp_counter += 1;
        let tmp = path.with_extension(format!("tmp{}-{}", std::process::id(), st.tmp_counter));
        // Write + atomic rename: readers can never observe a torn shard.
        if std::fs::write(&tmp, &bytes).is_err() || std::fs::rename(&tmp, path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        st.bytes_total = st
            .bytes_total
            .saturating_sub(existing.unwrap_or(0))
            .saturating_add(bytes.len() as u64);
        st.pinned.insert(path.to_path_buf());
        if let Some(idx) = st.victims.iter().position(|(p, _)| p == path) {
            st.victims.remove(idx); // replaced a pre-existing file in place
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        autosuggest_obs::counter_add(DISK_WRITES_COUNTER, 1);
        // Enforce the byte budget against pre-existing, unpinned shards in
        // the fixed name order.
        while st.bytes_total > self.budget_bytes {
            let Some((victim, size)) = st.victims.pop_front() else {
                break; // only this process's pinned shards remain
            };
            if st.pinned.contains(&victim) {
                continue;
            }
            if std::fs::remove_file(&victim).is_ok() {
                st.bytes_total = st.bytes_total.saturating_sub(size);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                autosuggest_obs::counter_add(DISK_EVICTIONS_COUNTER, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BASE_SKETCH_K;
    use autosuggest_dataframe::{Column, DataFrame, Value};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "autosuggest-diskcache-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn mixed_column() -> Column {
        let mut vals: Vec<Value> = (0..300).map(Value::Int).collect();
        vals.push(Value::Null);
        vals.push(Value::Float(2.75));
        vals.push(Value::Str("x".into()));
        Column::new("c", vals)
    }

    #[test]
    fn column_roundtrip_is_bit_identical() {
        let col = mixed_column();
        let fp = crate::column_fingerprint(&col);
        let art = ColumnArtifacts::compute(&col, 64);
        let decoded = decode_column(&encode_column(fp, &art), fp).unwrap();
        assert_eq!(decoded.len(), art.len());
        assert_eq!(decoded.null_count(), art.null_count());
        assert_eq!(decoded.distinct_count(), art.distinct_count());
        assert_eq!(
            decoded.min_max().map(|(a, b)| (a.to_bits(), b.to_bits())),
            art.min_max().map(|(a, b)| (a.to_bits(), b.to_bits()))
        );
        assert_eq!(decoded.dtype(), art.dtype());
        assert_eq!(decoded.dtype_counts(), art.dtype_counts());
        assert_eq!(decoded.peak_frequency(), art.peak_frequency());
        assert_eq!(decoded.sketch().k(), art.sketch().k());
        assert_eq!(decoded.sketch().mins(), art.sketch().mins());
        assert_eq!(decoded.sketch().cardinality(), art.sketch().cardinality());
    }

    #[test]
    fn tuples_roundtrip_is_bit_identical() {
        let df = DataFrame::from_columns(vec![
            ("a", (0..100).map(|i| Value::Int(i % 37)).collect()),
            ("b", (0..100).map(|i| Value::Int(i % 11)).collect()),
        ])
        .unwrap();
        let set = KeyTupleSet::compute(&df, &[0, 1]);
        let decoded = decode_tuples(&encode_tuples(&set), set.fingerprint()).unwrap();
        assert_eq!(decoded, set);
    }

    #[test]
    fn truncated_and_corrupted_shards_are_rejected() {
        let col = mixed_column();
        let fp = crate::column_fingerprint(&col);
        let art = ColumnArtifacts::compute(&col, 64);
        let good = encode_column(fp, &art);
        assert!(decode_column(&good, fp).is_some());
        // Every truncation point fails cleanly.
        for cut in [0, 3, 7, 14, 15, good.len() / 2, good.len() - 1] {
            assert!(decode_column(&good[..cut], fp).is_none(), "cut at {cut} accepted");
        }
        // Every single-byte flip is caught by the checksum (or framing).
        for i in (0..good.len()).step_by(13) {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(decode_column(&bad, fp).is_none(), "flip at {i} accepted");
        }
        // A valid shard under the wrong key must not decode.
        assert!(decode_column(&good, ColumnFingerprint(fp.0 ^ 1)).is_none());
        // Same for tuple shards.
        let df = DataFrame::from_columns(vec![("a", (0..50).map(Value::Int).collect())])
            .unwrap();
        let set = KeyTupleSet::compute(&df, &[0]);
        let good_t = encode_tuples(&set);
        assert!(decode_tuples(&good_t[..good_t.len() - 2], set.fingerprint()).is_none());
        let mut bad_t = good_t.clone();
        bad_t[good_t.len() / 2] ^= 0x01;
        assert!(decode_tuples(&bad_t, set.fingerprint()).is_none());
    }

    #[test]
    fn store_load_cycle_counts_and_pins() {
        let dir = tmpdir("cycle");
        let disk = DiskCache::open(&dir, DEFAULT_DISK_BUDGET).unwrap();
        let col = mixed_column();
        let fp = crate::column_fingerprint(&col);
        // Miss before any store.
        assert!(disk.load_column(fp, 1).is_none());
        let art = ColumnArtifacts::compute(&col, BASE_SKETCH_K);
        disk.store_column(fp, &art, false);
        // Second store of the same key is write-once (no second write).
        disk.store_column(fp, &art, false);
        let loaded = disk.load_column(fp, BASE_SKETCH_K).unwrap();
        assert_eq!(loaded.distinct_count(), art.distinct_count());
        // A larger-k requirement than the stored sketch is a miss.
        assert!(disk.load_column(fp, BASE_SKETCH_K + 1).is_none());
        assert_eq!(
            disk.stats(),
            DiskStats { hits: 1, misses: 2, evictions: 0, corrupt: 0, writes: 1 }
        );
        assert!(disk.bytes_total() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_shard_on_disk_falls_back_and_is_deleted() {
        let dir = tmpdir("corrupt");
        let disk = DiskCache::open(&dir, DEFAULT_DISK_BUDGET).unwrap();
        let col = mixed_column();
        let fp = crate::column_fingerprint(&col);
        let art = ColumnArtifacts::compute(&col, BASE_SKETCH_K);
        disk.store_column(fp, &art, false);
        // Flip a byte in the stored shard.
        let path = disk.column_path(fp);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(disk.load_column(fp, 1).is_none());
        assert_eq!(disk.stats().corrupt, 1);
        assert!(!path.exists(), "corrupt shard must be deleted");
        // Recompute-and-store works again afterwards.
        disk.store_column(fp, &art, false);
        assert!(disk.load_column(fp, 1).is_some());
        // Effective-hit-rate convention: the corrupt read is a failed
        // lookup, so hits=1 over lookups = hits+misses+corrupt = 2.
        let stats = disk.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.lookups(), 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hit_rate_counts_corrupt_reads_in_denominator() {
        // The documented convention: hit_rate = hits / (hits+misses+corrupt),
        // not hits / (hits+misses) — a corrupt shard failed to serve its
        // lookup, exactly like a miss.
        let stats = DiskStats { hits: 6, misses: 2, evictions: 0, corrupt: 2, writes: 4 };
        assert_eq!(stats.lookups(), 10);
        assert!((stats.hit_rate() - 0.6).abs() < 1e-12);
        assert_eq!(DiskStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn directory_lru_honors_byte_budget() {
        let dir = tmpdir("budget");
        // Seed a directory with shards from a "previous process".
        let cols: Vec<Column> = (0..12)
            .map(|i| Column::new("c", (i * 100..i * 100 + 60).map(Value::Int).collect::<Vec<_>>()))
            .collect();
        let per_shard = {
            let disk = DiskCache::open(&dir, u64::MAX).unwrap();
            for c in &cols {
                disk.store_column(crate::column_fingerprint(c), &ColumnArtifacts::compute(c, 64), false);
            }
            disk.bytes_total() / cols.len() as u64
        };
        assert!(per_shard > 0);
        // Reopen with a budget that fits ~6 shards, then write 3 new ones:
        // the oldest pre-existing shards are evicted to stay under budget.
        let budget = per_shard * 6;
        let disk = DiskCache::open(&dir, budget).unwrap();
        let before = disk.bytes_total();
        assert!(before > budget, "seeded dir must exceed the budget");
        for i in 100..103 {
            let c = Column::new("n", (i * 100..i * 100 + 60).map(Value::Int).collect::<Vec<_>>());
            disk.store_column(crate::column_fingerprint(&c), &ColumnArtifacts::compute(&c, 64), false);
        }
        assert!(
            disk.bytes_total() <= budget,
            "bytes {} exceed budget {budget}",
            disk.bytes_total()
        );
        let stats = disk.stats();
        assert!(stats.evictions > 0);
        assert_eq!(stats.writes, 3);
        // The 3 new shards survive (pinned); evictions came from the old set.
        for i in 100..103i64 {
            let c = Column::new("n", (i * 100..i * 100 + 60).map(Value::Int).collect::<Vec<_>>());
            assert!(disk.load_column(crate::column_fingerprint(&c), 1).is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_order_is_independent_of_creation_order() {
        // Seed two directories with the same shard set written in opposite
        // creation orders (distinct mtimes), then force evictions in each:
        // the surviving shard files must be identical. Pinned by name-order
        // eviction; (mtime, name) ordering fails this.
        let survivors = |tag: &str, order: &[usize]| {
            let dir = tmpdir(tag);
            let cols: Vec<Column> = (0..8)
                .map(|i| {
                    Column::new(
                        "c",
                        (i * 100..i * 100 + 60).map(Value::Int).collect::<Vec<_>>(),
                    )
                })
                .collect();
            let per_shard = {
                let disk = DiskCache::open(&dir, u64::MAX).unwrap();
                for &i in order {
                    disk.store_column(
                        crate::column_fingerprint(&cols[i]),
                        &ColumnArtifacts::compute(&cols[i], 64),
                        false,
                    );
                    // Space mtimes apart so an mtime-ordered queue would
                    // really follow creation order.
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                disk.bytes_total() / cols.len() as u64
            };
            let disk = DiskCache::open(&dir, per_shard * 5).unwrap();
            let c = Column::new("n", (10_000..10_060).map(Value::Int).collect::<Vec<_>>());
            disk.store_column(
                crate::column_fingerprint(&c),
                &ColumnArtifacts::compute(&c, 64),
                false,
            );
            assert!(disk.stats().evictions > 0, "budget must force evictions");
            let mut names: Vec<String> = std::fs::read_dir(dir.join("col"))
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            names.sort();
            let _ = std::fs::remove_dir_all(&dir);
            names
        };
        let forward: Vec<usize> = (0..8).collect();
        let shuffled = [5usize, 0, 7, 2, 6, 1, 4, 3];
        assert_eq!(
            survivors("evict-fwd", &forward),
            survivors("evict-shuf", &shuffled),
            "eviction outcome must not depend on shard creation order"
        );
    }

    #[test]
    fn stale_tmp_files_are_swept_and_not_counted() {
        // A crash between tmp write and rename leaves `<name>.tmp<pid>-<n>`
        // orphans. They must be reclaimed on open and never counted against
        // the byte budget.
        let dir = tmpdir("tmpsweep");
        {
            let disk = DiskCache::open(&dir, DEFAULT_DISK_BUDGET).unwrap();
            let col = mixed_column();
            disk.store_column(
                crate::column_fingerprint(&col),
                &ColumnArtifacts::compute(&col, 64),
                false,
            );
        }
        let real_bytes = DiskCache::open(&dir, DEFAULT_DISK_BUDGET).unwrap().bytes_total();
        let orphan = dir.join("col").join("00deadbeef.tmp99999-1");
        std::fs::write(&orphan, vec![0u8; 4096]).unwrap();
        let disk = DiskCache::open(&dir, DEFAULT_DISK_BUDGET).unwrap();
        assert!(!orphan.exists(), "stale tmp file must be swept on open");
        assert_eq!(
            disk.bytes_total(),
            real_bytes,
            "tmp orphans must not count against the budget"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_reads_what_a_previous_process_wrote() {
        let dir = tmpdir("reopen");
        let col = mixed_column();
        let fp = crate::column_fingerprint(&col);
        let art = ColumnArtifacts::compute(&col, BASE_SKETCH_K);
        {
            let disk = DiskCache::open(&dir, DEFAULT_DISK_BUDGET).unwrap();
            disk.store_column(fp, &art, false);
            let df = DataFrame::from_columns(vec![("a", (0..40).map(Value::Int).collect())])
                .unwrap();
            disk.store_tuples(&KeyTupleSet::compute(&df, &[0]));
        }
        let disk = DiskCache::open(&dir, DEFAULT_DISK_BUDGET).unwrap();
        assert!(disk.bytes_total() > 0);
        let loaded = disk.load_column(fp, BASE_SKETCH_K).unwrap();
        assert_eq!(loaded.sketch().mins(), art.sketch().mins());
        let df = DataFrame::from_columns(vec![("a", (0..40).map(Value::Int).collect())])
            .unwrap();
        let set = KeyTupleSet::compute(&df, &[0]);
        assert_eq!(disk.load_tuples(set.fingerprint()).unwrap(), set);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
