//! Interned per-column statistics bundles.

use crate::sketch::MinHashSketch;
use autosuggest_dataframe::{Column, DType};

/// Sketch size columns are cached at. Every consumer in the pipeline asks
/// for `k ≤ BASE_SKETCH_K` (the default `CandidateParams::sketch_k` is 64),
/// and [`MinHashSketch::truncated`] derives the exact smaller sketch from
/// the cached one, so one entry serves all requested sizes without
/// recomputation. Requests above the base are served by building the larger
/// sketch directly (uncached) to keep answers exact.
pub const BASE_SKETCH_K: usize = 256;

/// The row-order-invariant statistics of a column, computed once per
/// distinct content fingerprint and shared via `Arc` by every consumer.
///
/// Everything here is derived from the column's *multiset* of values —
/// order-sensitive statistics such as `Column::is_sorted` are deliberately
/// excluded because the cache key (see [`column_fingerprint`]) identifies
/// columns up to row permutation.
///
/// [`column_fingerprint`]: crate::column_fingerprint
#[derive(Debug, Clone)]
pub struct ColumnArtifacts {
    len: usize,
    null_count: usize,
    distinct_count: usize,
    min_max: Option<(f64, f64)>,
    dtype: DType,
    dtype_counts: [u64; 6],
    peak_frequency: usize,
    sketch: MinHashSketch,
}

impl ColumnArtifacts {
    /// Compute the full bundle for a column. Statistics delegate to the
    /// `Column` methods the featurisers previously called directly, so a
    /// cache hit is bit-identical to recomputation.
    pub fn compute(col: &Column, sketch_k: usize) -> ColumnArtifacts {
        let mut dtype_counts = [0u64; 6];
        for v in col.values() {
            dtype_counts[dtype_slot(v.dtype())] += 1;
        }
        ColumnArtifacts {
            len: col.len(),
            null_count: col.null_count(),
            distinct_count: col.distinct_count(),
            min_max: col.numeric_range(),
            dtype: col.dtype(),
            dtype_counts,
            peak_frequency: col.peak_frequency(),
            sketch: MinHashSketch::from_hashes(
                col.non_null().map(|v| v.fingerprint()),
                sketch_k.max(BASE_SKETCH_K),
            ),
        }
    }

    /// Rebuild an artifact bundle from its stored parts (the disk codec's
    /// decode path). Field semantics are validated where cheap; anything the
    /// codec cannot prove consistent is rejected upstream by the checksum.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        len: usize,
        null_count: usize,
        distinct_count: usize,
        min_max: Option<(f64, f64)>,
        dtype: DType,
        dtype_counts: [u64; 6],
        peak_frequency: usize,
        sketch: MinHashSketch,
    ) -> Option<ColumnArtifacts> {
        if null_count > len || distinct_count > len || peak_frequency > len {
            return None;
        }
        if dtype_counts.iter().sum::<u64>() != len as u64 {
            return None;
        }
        Some(ColumnArtifacts {
            len,
            null_count,
            distinct_count,
            min_max,
            dtype,
            dtype_counts,
            peak_frequency,
            sketch,
        })
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn null_count(&self) -> usize {
        self.null_count
    }

    /// Fraction of cells that are null; 0 for an empty column
    /// (matches `Column::emptiness`).
    pub fn null_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.null_count as f64 / self.len as f64
        }
    }

    pub fn distinct_count(&self) -> usize {
        self.distinct_count
    }

    /// Distinct non-null values over row count; 0 for an empty column
    /// (matches `Column::distinct_ratio`).
    pub fn distinct_ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.distinct_count as f64 / self.len as f64
        }
    }

    /// Min/max over numeric views of non-null values
    /// (matches `Column::numeric_range`).
    pub fn min_max(&self) -> Option<(f64, f64)> {
        self.min_max
    }

    /// Unified column dtype (matches `Column::dtype`).
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Per-value dtype histogram, indexed by [`dtype_slot`].
    pub fn dtype_counts(&self) -> &[u64; 6] {
        &self.dtype_counts
    }

    /// Count of the most frequent non-null value
    /// (matches `Column::peak_frequency`).
    pub fn peak_frequency(&self) -> usize {
        self.peak_frequency
    }

    /// The cached sketch at its base size (`max(requested, BASE_SKETCH_K)`).
    pub fn sketch(&self) -> &MinHashSketch {
        &self.sketch
    }

    /// The exact bottom-`k` sketch of this column, derived from the cached
    /// base sketch when `k` fits inside it (the common case).
    pub fn sketch_at(&self, k: usize) -> MinHashSketch {
        self.sketch.truncated(k)
    }
}

/// Inverse of [`dtype_slot`] (the disk codec's decode path).
pub(crate) fn dtype_from_slot(slot: usize) -> Option<DType> {
    Some(match slot {
        0 => DType::Null,
        1 => DType::Bool,
        2 => DType::Int,
        3 => DType::Float,
        4 => DType::Str,
        5 => DType::Date,
        _ => return None,
    })
}

/// Stable histogram slot for a dtype (the enum is `#[non_exhaustive]`-free
/// and fixed at six variants).
pub fn dtype_slot(d: DType) -> usize {
    match d {
        DType::Null => 0,
        DType::Bool => 1,
        DType::Int => 2,
        DType::Float => 3,
        DType::Str => 4,
        DType::Date => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;

    #[test]
    fn artifacts_match_direct_column_statistics() {
        let col = Column::new(
            "c",
            vec![
                Value::Int(3),
                Value::Int(3),
                Value::Float(1.5),
                Value::Null,
                Value::Int(-2),
            ],
        );
        let art = ColumnArtifacts::compute(&col, 64);
        assert_eq!(art.len(), col.len());
        assert_eq!(art.null_count(), col.null_count());
        assert_eq!(art.null_fraction(), col.emptiness());
        assert_eq!(art.distinct_count(), col.distinct_count());
        assert_eq!(art.distinct_ratio(), col.distinct_ratio());
        assert_eq!(art.min_max(), col.numeric_range());
        assert_eq!(art.dtype(), col.dtype());
        assert_eq!(art.peak_frequency(), col.peak_frequency());
        assert_eq!(art.dtype_counts(), &[1, 0, 3, 1, 0, 0]);
    }

    #[test]
    fn sketch_at_matches_direct_build() {
        let col = Column::new("c", (0..500).map(Value::Int).collect::<Vec<_>>());
        let art = ColumnArtifacts::compute(&col, 64);
        assert_eq!(art.sketch().k(), BASE_SKETCH_K);
        let direct = MinHashSketch::from_hashes(col.non_null().map(|v| v.fingerprint()), 64);
        let derived = art.sketch_at(64);
        assert_eq!(derived.k(), direct.k());
        assert_eq!(derived.cardinality(), direct.cardinality());
        assert_eq!(derived.jaccard(&direct), 1.0);
    }

    #[test]
    fn empty_column_artifacts() {
        let art = ColumnArtifacts::compute(&Column::empty("e"), 16);
        assert!(art.is_empty());
        assert_eq!(art.null_fraction(), 0.0);
        assert_eq!(art.distinct_ratio(), 0.0);
        assert_eq!(art.min_max(), None);
        assert_eq!(art.dtype(), DType::Null);
        assert_eq!(art.peak_frequency(), 0);
    }
}
