//! Content-addressed column and table fingerprints.
//!
//! A [`ColumnFingerprint`] is a 128-bit digest of a column's *multiset of
//! cell values* — two columns fingerprint equal iff they hold the same
//! values with the same multiplicities, regardless of row order and of the
//! column's name. That is exactly the equivalence class under which every
//! cached [`ColumnArtifacts`] statistic (sketch, distinct count, null
//! fraction, min/max, dtype histogram, peak frequency) is invariant, so the
//! fingerprint doubles as the cache key and the invalidation rule: editing
//! any cell changes the key, so stale entries are unreachable by
//! construction and never need explicit invalidation.
//!
//! Row-order insensitivity is achieved by folding per-value digests with
//! commutative reductions (wrapping sums over two independently mixed
//! lanes) rather than a sequential hasher. Order-*sensitive* statistics
//! (e.g. `Column::is_sorted`) are deliberately excluded from the cached
//! artifacts for this reason.
//!
//! [`ColumnArtifacts`]: crate::ColumnArtifacts

use autosuggest_dataframe::{Column, DataFrame};
use std::fmt;

/// 128-bit content fingerprint of a column's multiset of values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnFingerprint(pub u128);

impl fmt::Display for ColumnFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// splitmix64 finaliser: a strong 64-bit mixer with distinct odd constants
/// per lane so the two commutative sums are statistically independent.
fn mix(mut x: u64, c1: u64, c2: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(c1);
    x ^= x >> 27;
    x = x.wrapping_mul(c2);
    x ^ (x >> 31)
}

const LANE_A: (u64, u64) = (0xbf58_476d_1ce4_e5b9, 0x94d0_49bb_1331_11eb);
const LANE_B: (u64, u64) = (0xff51_afd7_ed55_8ccd, 0xc4ce_b9fe_1a85_ec53);

/// Fingerprint a column's values. Nulls participate (through
/// `Value::fingerprint`, which gives all nulls one canonical digest), so an
/// all-null column and an empty column fingerprint differently.
pub fn column_fingerprint(col: &Column) -> ColumnFingerprint {
    values_fingerprint(col.values().iter().map(|v| v.fingerprint()), col.len())
}

/// Fold pre-hashed digests into a 128-bit multiset fingerprint under a
/// domain `tag`, so fingerprints of different artifact kinds (column value
/// multisets vs. key-tuple multisets of a given width) can never collide by
/// construction. `tag = 0` reproduces [`values_fingerprint`] exactly.
pub(crate) fn tagged_multiset_fingerprint<I: IntoIterator<Item = u64>>(
    hashes: I,
    len: usize,
    tag: u64,
) -> ColumnFingerprint {
    let mut lane_a = mix(len as u64 ^ 0x9e37_79b9_7f4a_7c15, LANE_A.0, LANE_A.1);
    let mut lane_b = mix(len as u64 ^ 0x2545_f491_4f6c_dd1d, LANE_B.0, LANE_B.1);
    if tag != 0 {
        lane_a ^= mix(tag, LANE_B.0, LANE_B.1);
        lane_b ^= mix(tag, LANE_A.0, LANE_A.1);
    }
    for h in hashes {
        lane_a = lane_a.wrapping_add(mix(h, LANE_A.0, LANE_A.1));
        lane_b = lane_b.wrapping_add(mix(h, LANE_B.0, LANE_B.1));
    }
    ColumnFingerprint(((lane_a as u128) << 64) | lane_b as u128)
}

/// Fold pre-hashed value digests into a 128-bit multiset fingerprint.
fn values_fingerprint<I: IntoIterator<Item = u64>>(hashes: I, len: usize) -> ColumnFingerprint {
    // Commutative fold: each lane sums an independently mixed view of every
    // value digest, so permuting rows cannot change the result, while any
    // single-cell edit shifts both lanes. Seeding with the length separates
    // e.g. `[x]` from `[x, x]` even under the (impossible for mixed sums)
    // event of a lane collision on values alone.
    let mut lane_a = mix(len as u64 ^ 0x9e37_79b9_7f4a_7c15, LANE_A.0, LANE_A.1);
    let mut lane_b = mix(len as u64 ^ 0x2545_f491_4f6c_dd1d, LANE_B.0, LANE_B.1);
    for h in hashes {
        lane_a = lane_a.wrapping_add(mix(h, LANE_A.0, LANE_A.1));
        lane_b = lane_b.wrapping_add(mix(h, LANE_B.0, LANE_B.1));
    }
    ColumnFingerprint(((lane_a as u128) << 64) | lane_b as u128)
}

/// Fingerprint a whole table: column fingerprints combined *in schema order*
/// together with column names. Used by `suggest_batch` to deduplicate
/// identical tables across requests, where a renamed or reordered schema is
/// a different table even if the cell multisets agree.
pub fn table_fingerprint(df: &DataFrame) -> ColumnFingerprint {
    let mut lane_a: u64 = mix(df.num_columns() as u64, LANE_A.0, LANE_A.1);
    let mut lane_b: u64 = mix(df.num_rows() as u64, LANE_B.0, LANE_B.1);
    for (idx, col) in df.columns().iter().enumerate() {
        let cf = column_fingerprint(col);
        let name_h = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            col.name().hash(&mut h);
            h.finish()
        };
        // Sequential (order-sensitive) combine across columns: rotate the
        // accumulator by the position so swapping two columns changes the
        // digest.
        let pos = (idx as u32).wrapping_mul(7) % 63 + 1;
        lane_a = lane_a
            .rotate_left(pos)
            .wrapping_add(mix((cf.0 >> 64) as u64 ^ name_h, LANE_A.0, LANE_A.1));
        lane_b = lane_b
            .rotate_left(pos)
            .wrapping_add(mix(cf.0 as u64 ^ name_h, LANE_B.0, LANE_B.1));
    }
    ColumnFingerprint(((lane_a as u128) << 64) | lane_b as u128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;

    fn col(vals: Vec<Value>) -> Column {
        Column::new("c", vals)
    }

    #[test]
    fn stable_across_row_order() {
        let a = col(vec![Value::Int(1), Value::Str("x".into()), Value::Null, Value::Int(1)]);
        let b = col(vec![Value::Null, Value::Int(1), Value::Int(1), Value::Str("x".into())]);
        assert_eq!(column_fingerprint(&a), column_fingerprint(&b));
    }

    #[test]
    fn sensitive_to_value_edits() {
        let base = col(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let edited = col(vec![Value::Int(1), Value::Int(2), Value::Int(4)]);
        let nulled = col(vec![Value::Int(1), Value::Int(2), Value::Null]);
        let shorter = col(vec![Value::Int(1), Value::Int(2)]);
        let dup = col(vec![Value::Int(1), Value::Int(2), Value::Int(2)]);
        let f = column_fingerprint(&base);
        assert_ne!(f, column_fingerprint(&edited));
        assert_ne!(f, column_fingerprint(&nulled));
        assert_ne!(f, column_fingerprint(&shorter));
        assert_ne!(f, column_fingerprint(&dup));
    }

    #[test]
    fn multiplicity_matters() {
        // A multiset fingerprint must distinguish [x] from [x, x]; a plain
        // XOR fold would not.
        let once = col(vec![Value::Int(7)]);
        let twice = col(vec![Value::Int(7), Value::Int(7)]);
        let thrice = col(vec![Value::Int(7), Value::Int(7), Value::Int(7)]);
        let f1 = column_fingerprint(&once);
        let f2 = column_fingerprint(&twice);
        let f3 = column_fingerprint(&thrice);
        assert_ne!(f1, f2);
        assert_ne!(f2, f3);
        assert_ne!(f1, f3);
    }

    #[test]
    fn name_is_not_part_of_the_column_key() {
        let a = Column::new("alpha", vec![Value::Int(1), Value::Int(2)]);
        let b = Column::new("beta", vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(column_fingerprint(&a), column_fingerprint(&b));
    }

    #[test]
    fn empty_vs_all_null_differ() {
        let empty = Column::empty("e");
        let nulls = col(vec![Value::Null, Value::Null]);
        assert_ne!(column_fingerprint(&empty), column_fingerprint(&nulls));
    }

    #[test]
    fn table_fingerprint_is_schema_sensitive() {
        let t1 = DataFrame::from_columns(vec![
            ("a", vec![Value::Int(1), Value::Int(2)]),
            ("b", vec![Value::Str("x".into()), Value::Str("y".into())]),
        ])
        .unwrap();
        // Same content, same names → same fingerprint.
        let t2 = DataFrame::from_columns(vec![
            ("a", vec![Value::Int(1), Value::Int(2)]),
            ("b", vec![Value::Str("x".into()), Value::Str("y".into())]),
        ])
        .unwrap();
        assert_eq!(table_fingerprint(&t1), table_fingerprint(&t2));
        // Swapped column order → different table.
        let swapped = DataFrame::from_columns(vec![
            ("b", vec![Value::Str("x".into()), Value::Str("y".into())]),
            ("a", vec![Value::Int(1), Value::Int(2)]),
        ])
        .unwrap();
        assert_ne!(table_fingerprint(&t1), table_fingerprint(&swapped));
        // Renamed column → different table.
        let renamed = DataFrame::from_columns(vec![
            ("a2", vec![Value::Int(1), Value::Int(2)]),
            ("b", vec![Value::Str("x".into()), Value::Str("y".into())]),
        ])
        .unwrap();
        assert_ne!(table_fingerprint(&t1), table_fingerprint(&renamed));
    }
}
