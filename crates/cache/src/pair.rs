//! Pair-aware cache tier: key-tuple sets and pair-level overlap results.
//!
//! The §4.1 join featuriser needs, for every candidate `(S, S')`, the set
//! of distinct non-null key-*tuple* hashes on each side and the exact
//! intersection of the two sets (containment, jaccard and distinct-ratio
//! all derive from those three numbers). Before this tier, every candidate
//! pair rebuilt both hash sets and re-ran the intersection even though the
//! same column tuples recur across dozens of candidates per table pair.
//!
//! Two sharded-LRU tiers memoize that work, with the same single-flight +
//! deterministic-counter discipline as the column cache:
//!
//! * **Tuple-set tier** — `tuple fingerprint → Arc<KeyTupleSet>`: the
//!   sorted, deduplicated tuple hashes of one `(table, column tuple)`. The
//!   fingerprint is a [`tagged multiset fingerprint`] of the *tuple hash
//!   stream itself* (tagged with the tuple width), so it keys the exact
//!   row-aligned content: two column tuples share an entry iff they produce
//!   the same multiset of key tuples. (Keying by per-column fingerprints
//!   would be unsound for multi-column tuples — two tables whose columns
//!   are multiset-equal but row-aligned differently have different tuple
//!   sets.) Entries persist to the disk tier when one is attached.
//! * **Pair tier** — `ordered (fingerprint, fingerprint) → intersection
//!   size`: the expensive exact overlap between two tuple sets, computed
//!   once per distinct content pair via a linear merge over the sorted
//!   hashes. Keys are normalised to `(min, max)` so both lookup directions
//!   share one entry (intersection is symmetric; the direction-sensitive
//!   containments are derived by the caller from the two set sizes).
//!
//! # Determinism contract
//!
//! Same as the column cache: computation happens inside the owning shard's
//! lock (single-flight per key), so `misses = distinct keys` and
//! `hits = lookups − misses` at any `AUTOSUGGEST_THREADS`, and eviction
//! counts depend only on the key set per shard. Counters mirror into the
//! deterministic obs section as `cache.tuple.*` and `cache.pair.*`.
//!
//! [`tagged multiset fingerprint`]: crate::fingerprint

use crate::disk::DiskCache;
use crate::fingerprint::tagged_multiset_fingerprint;
use crate::{CacheStats, ColumnFingerprint, DEFAULT_CAPACITY};
use autosuggest_dataframe::DataFrame;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

const SHARDS: usize = 16;

/// Obs counter names for the tuple-set tier (deterministic section).
pub const TUPLE_HITS_COUNTER: &str = "cache.tuple.hits";
pub const TUPLE_MISSES_COUNTER: &str = "cache.tuple.misses";
pub const TUPLE_EVICTIONS_COUNTER: &str = "cache.tuple.evictions";

/// Obs counter names for the pair tier (deterministic section).
pub const PAIR_HITS_COUNTER: &str = "cache.pair.hits";
pub const PAIR_MISSES_COUNTER: &str = "cache.pair.misses";
pub const PAIR_EVICTIONS_COUNTER: &str = "cache.pair.evictions";

/// Domain tag separating tuple-set fingerprints (of a given width) from
/// column-value fingerprints in every keyed namespace (memory and disk).
fn width_tag(width: usize) -> u64 {
    0x7455_504c_4553_4554u64 ^ (width as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Hash one key tuple exactly as `features::candidates` historically did:
/// a `DefaultHasher` fed each cell in column order. `DefaultHasher::new()`
/// uses fixed keys, so the stream is stable across processes of the same
/// build — which is what lets tuple sets persist to disk.
fn tuple_hash(vals: &[&autosuggest_dataframe::Value]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for v in vals {
        v.hash(&mut h);
    }
    h.finish()
}

/// The interned result for one `(table, column tuple)`: the distinct
/// non-null key-tuple hashes, sorted ascending, plus the content
/// fingerprint they are keyed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyTupleSet {
    fingerprint: ColumnFingerprint,
    width: usize,
    /// Distinct tuple hashes, sorted ascending (supports linear-merge
    /// intersection and exact binary-search membership).
    hashes: Vec<u64>,
}

impl KeyTupleSet {
    /// Hash every non-null key tuple of `cols` in row order (rows with any
    /// null key cell are skipped, matching `key_tuple_hashes`), without
    /// deduplicating. This is the unavoidable per-lookup pass: it both
    /// derives the content fingerprint and feeds the (cached) dedup.
    pub fn raw_tuple_hashes(df: &DataFrame, cols: &[usize]) -> Vec<u64> {
        let mut out = Vec::with_capacity(df.num_rows());
        let mut vals = Vec::with_capacity(cols.len());
        'row: for i in 0..df.num_rows() {
            vals.clear();
            for &c in cols {
                let v = df.column_at(c).get(i);
                if v.is_null() {
                    continue 'row;
                }
                vals.push(v);
            }
            out.push(tuple_hash(&vals));
        }
        out
    }

    /// Fingerprint a raw tuple-hash stream: a width-tagged multiset digest,
    /// so equal fingerprints mean equal tuple multisets (up to row order)
    /// and tuples of different widths can never collide.
    pub fn fingerprint_hashes(raw: &[u64], width: usize) -> ColumnFingerprint {
        tagged_multiset_fingerprint(raw.iter().copied(), raw.len(), width_tag(width))
    }

    /// Compute the full set directly (the cache-off path).
    pub fn compute(df: &DataFrame, cols: &[usize]) -> KeyTupleSet {
        let raw = Self::raw_tuple_hashes(df, cols);
        let fingerprint = Self::fingerprint_hashes(&raw, cols.len());
        Self::from_raw(raw, cols.len(), fingerprint)
    }

    fn from_raw(mut raw: Vec<u64>, width: usize, fingerprint: ColumnFingerprint) -> KeyTupleSet {
        raw.sort_unstable();
        raw.dedup();
        KeyTupleSet { fingerprint, width, hashes: raw }
    }

    /// Rebuild from stored parts (the disk codec's decode path). Rejects
    /// parts that violate the sorted-distinct invariant.
    pub(crate) fn from_parts(
        fingerprint: ColumnFingerprint,
        width: usize,
        hashes: Vec<u64>,
    ) -> Option<KeyTupleSet> {
        if width == 0 || !hashes.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        Some(KeyTupleSet { fingerprint, width, hashes })
    }

    pub fn fingerprint(&self) -> ColumnFingerprint {
        self.fingerprint
    }

    /// Tuple width (number of key columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of distinct non-null key tuples.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The distinct tuple hashes, sorted ascending.
    pub fn hashes(&self) -> &[u64] {
        &self.hashes
    }

    /// Exact `|self ∩ other|` via a linear merge over the sorted hashes —
    /// the same count a `HashSet::intersection` of the two sets produces.
    pub fn intersection_size(&self, other: &KeyTupleSet) -> usize {
        let (a, b) = (&self.hashes, &other.hashes);
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }
}

/// The memoized pair-level overlap between two tuple sets. Containment and
/// jaccard derive from this plus the (known) set sizes, so only the
/// symmetric intersection is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairOverlap {
    pub intersection: usize,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    last_used: u64,
}

struct LruShard<K, V> {
    map: HashMap<K, Entry<V>>,
    tick: u64,
}

impl<K, V> Default for LruShard<K, V> {
    fn default() -> Self {
        LruShard { map: HashMap::new(), tick: 0 }
    }
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A sharded LRU with the column cache's determinism discipline: compute
/// inside the shard lock (single-flight), evict the least-recently-used
/// entry with fingerprint tie-break, mirror counters into obs.
struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruShard<K, V>>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    counter_names: [&'static str; 3],
}

impl<K: std::hash::Hash + Eq + Ord + Copy, V: Clone> ShardedLru<K, V> {
    fn new(capacity: usize, counter_names: [&'static str; 3]) -> Self {
        ShardedLru {
            shards: (0..SHARDS).map(|_| Mutex::new(LruShard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            counter_names,
        }
    }

    /// Fetch `key`, computing (and inserting) with `compute` on a miss —
    /// all inside the owning shard's lock, so concurrent first lookups of
    /// one key cannot both count as misses.
    fn get_or_insert_with(&self, key: K, shard_sel: u64, compute: impl FnOnce() -> V) -> V {
        let shard_idx = (shard_sel % SHARDS as u64) as usize;
        let mut evicted = 0u64;
        let (value, hit) = {
            let mut guard = lock_recover(&self.shards[shard_idx]);
            let shard = &mut *guard;
            shard.tick += 1;
            let tick = shard.tick;
            match shard.map.get_mut(&key) {
                Some(entry) => {
                    entry.last_used = tick;
                    (entry.value.clone(), true)
                }
                None => {
                    let value = compute();
                    if shard.map.len() >= self.per_shard_capacity {
                        let victim = shard
                            .map
                            .iter()
                            .min_by_key(|(k, e)| (e.last_used, **k))
                            .map(|(k, _)| *k);
                        if let Some(v) = victim {
                            shard.map.remove(&v);
                            evicted = 1;
                        }
                    }
                    shard.map.insert(key, Entry { value: value.clone(), last_used: tick });
                    (value, false)
                }
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            autosuggest_obs::counter_add(self.counter_names[0], 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            autosuggest_obs::counter_add(self.counter_names[1], 1);
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            autosuggest_obs::counter_add(self.counter_names[2], evicted);
        }
        value
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).map.len()).sum()
    }

    fn clear(&self) {
        for s in &self.shards {
            let mut guard = lock_recover(s);
            guard.map.clear();
            guard.tick = 0;
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

/// Default entry budgets. Tuple sets carry a `Vec<u64>` per table-rows, so
/// their tier is smaller than the (tiny) pair-overlap tier.
pub const DEFAULT_TUPLE_CAPACITY: usize = 8_192;
pub const DEFAULT_PAIR_CAPACITY: usize = DEFAULT_CAPACITY;

/// The pair-aware cache tier: interned [`KeyTupleSet`]s plus memoized
/// pair-level intersections.
pub struct PairCache {
    sets: ShardedLru<ColumnFingerprint, Arc<KeyTupleSet>>,
    pairs: ShardedLru<(ColumnFingerprint, ColumnFingerprint), PairOverlap>,
    enabled: AtomicBool,
    disk: Mutex<Option<Arc<DiskCache>>>,
}

impl PairCache {
    pub fn new(tuple_capacity: usize, pair_capacity: usize) -> Self {
        PairCache {
            sets: ShardedLru::new(
                tuple_capacity,
                [TUPLE_HITS_COUNTER, TUPLE_MISSES_COUNTER, TUPLE_EVICTIONS_COUNTER],
            ),
            pairs: ShardedLru::new(
                pair_capacity,
                [PAIR_HITS_COUNTER, PAIR_MISSES_COUNTER, PAIR_EVICTIONS_COUNTER],
            ),
            enabled: AtomicBool::new(true),
            disk: Mutex::new(None),
        }
    }

    /// The process-wide pair tier used by the join featuriser. Shares the
    /// `AUTOSUGGEST_CACHE` gate and `AUTOSUGGEST_CACHE_DIR` disk tier with
    /// the column cache.
    pub fn global() -> &'static PairCache {
        static GLOBAL: OnceLock<PairCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cache = PairCache::new(DEFAULT_TUPLE_CAPACITY, DEFAULT_PAIR_CAPACITY);
            cache.enabled.store(crate::env_enabled(), Ordering::Relaxed);
            *lock_recover(&cache.disk) = crate::default_disk();
            cache
        })
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Attach (or detach) a persistent disk tier for tuple-set shards.
    pub fn set_disk(&self, disk: Option<Arc<DiskCache>>) {
        *lock_recover(&self.disk) = disk;
    }

    fn disk(&self) -> Option<Arc<DiskCache>> {
        lock_recover(&self.disk).clone()
    }

    /// Fetch (or compute and intern) the distinct key-tuple set for
    /// `(df, cols)`.
    ///
    /// The per-call cost is one hashing pass over the rows (which derives
    /// the content key); the dedup/sort and any disk round-trip happen at
    /// most once per distinct content. Callers batching many candidates
    /// should additionally memoize by column tuple via
    /// `features::join_features_batch`, which skips even the hashing pass
    /// for repeated tuples within a request.
    pub fn key_tuples(&self, df: &DataFrame, cols: &[usize]) -> Arc<KeyTupleSet> {
        if !self.enabled() {
            return Arc::new(KeyTupleSet::compute(df, cols));
        }
        let raw = KeyTupleSet::raw_tuple_hashes(df, cols);
        let fp = KeyTupleSet::fingerprint_hashes(&raw, cols.len());
        let disk = self.disk();
        self.sets.get_or_insert_with(fp, (fp.0 >> 64) as u64, || {
            if let Some(d) = &disk {
                if let Some(set) = d.load_tuples(fp) {
                    return Arc::new(set);
                }
            }
            let set = Arc::new(KeyTupleSet::from_raw(raw, cols.len(), fp));
            if let Some(d) = &disk {
                d.store_tuples(&set);
            }
            set
        })
    }

    /// Exact `|left ∩ right|`, memoized under the normalised (unordered)
    /// fingerprint pair.
    pub fn intersection(&self, left: &KeyTupleSet, right: &KeyTupleSet) -> usize {
        if !self.enabled() {
            return left.intersection_size(right);
        }
        let (a, b) = (left.fingerprint(), right.fingerprint());
        let key = if a <= b { (a, b) } else { (b, a) };
        let shard_sel = (key.0 .0 >> 64) as u64 ^ (key.1 .0 as u64);
        self.pairs
            .get_or_insert_with(key, shard_sel, || PairOverlap {
                intersection: left.intersection_size(right),
            })
            .intersection
    }

    /// Counters for the tuple-set tier.
    pub fn tuple_stats(&self) -> CacheStats {
        self.sets.stats()
    }

    /// Counters for the pair-overlap tier.
    pub fn pair_stats(&self) -> CacheStats {
        self.pairs.stats()
    }

    /// Interned entries (tuple sets, pair overlaps).
    pub fn len(&self) -> (usize, usize) {
        (self.sets.len(), self.pairs.len())
    }

    pub fn is_empty(&self) -> bool {
        self.sets.len() == 0 && self.pairs.len() == 0
    }

    /// Drop every entry and reset the counters in both tiers.
    pub fn clear(&self) {
        self.sets.clear();
        self.pairs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;
    use std::collections::HashSet;

    fn df(cols: Vec<(&str, Vec<Value>)>) -> DataFrame {
        DataFrame::from_columns(cols).unwrap()
    }

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn key_tuple_set_matches_hashset_semantics() {
        // Null rows skipped, duplicates collapsed — same contract as
        // features::candidates::key_tuple_hashes.
        let t = df(vec![
            ("a", vec![Value::Int(1), Value::Null, Value::Int(1), Value::Int(2)]),
            ("b", vec![Value::Int(5), Value::Int(6), Value::Int(5), Value::Int(7)]),
        ]);
        let set = KeyTupleSet::compute(&t, &[0, 1]);
        assert_eq!(set.len(), 2); // (1,5) twice → once; null row skipped
        assert_eq!(set.width(), 2);
        assert!(set.hashes().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn intersection_matches_hashset_intersection() {
        let l = df(vec![("a", ints(&[1, 2, 3, 4, 5]))]);
        let r = df(vec![("a", ints(&[4, 5, 6, 7]))]);
        let ls = KeyTupleSet::compute(&l, &[0]);
        let rs = KeyTupleSet::compute(&r, &[0]);
        let lh: HashSet<u64> = ls.hashes().iter().copied().collect();
        let rh: HashSet<u64> = rs.hashes().iter().copied().collect();
        assert_eq!(ls.intersection_size(&rs), lh.intersection(&rh).count());
        assert_eq!(ls.intersection_size(&rs), 2);
        assert_eq!(rs.intersection_size(&ls), 2);
    }

    #[test]
    fn fingerprint_is_row_order_insensitive_and_alignment_sensitive() {
        // Whole-row permutation → same tuple multiset → same fingerprint.
        let t1 = df(vec![("a", ints(&[1, 2])), ("b", ints(&[10, 20]))]);
        let t2 = df(vec![("a", ints(&[2, 1])), ("b", ints(&[20, 10]))]);
        assert_eq!(
            KeyTupleSet::compute(&t1, &[0, 1]).fingerprint(),
            KeyTupleSet::compute(&t2, &[0, 1]).fingerprint()
        );
        // Re-pairing values across columns (same per-column multisets!)
        // changes the tuples and must change the fingerprint — the case a
        // per-column-fingerprint key would conflate.
        let misaligned = df(vec![("a", ints(&[1, 2])), ("b", ints(&[20, 10]))]);
        assert_ne!(
            KeyTupleSet::compute(&t1, &[0, 1]).fingerprint(),
            KeyTupleSet::compute(&misaligned, &[0, 1]).fingerprint()
        );
    }

    #[test]
    fn width_is_part_of_the_key() {
        // A single column's tuple stream for width 1 vs the same hashes in
        // a different role must not collide (tag mixes the width in).
        let t = df(vec![("a", ints(&[1, 2, 3]))]);
        let raw = KeyTupleSet::raw_tuple_hashes(&t, &[0]);
        assert_ne!(
            KeyTupleSet::fingerprint_hashes(&raw, 1),
            KeyTupleSet::fingerprint_hashes(&raw, 2)
        );
    }

    #[test]
    fn tuple_tier_interns_and_counts_deterministically() {
        let cache = PairCache::new(64, 64);
        let t = df(vec![("a", ints(&[1, 2, 3]))]);
        let s1 = cache.key_tuples(&t, &[0]);
        let s2 = cache.key_tuples(&t, &[0]);
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(cache.tuple_stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn pair_tier_is_symmetric_and_single_entry() {
        let cache = PairCache::new(64, 64);
        let l = df(vec![("a", ints(&[1, 2, 3]))]);
        let r = df(vec![("a", ints(&[2, 3, 4]))]);
        let ls = cache.key_tuples(&l, &[0]);
        let rs = cache.key_tuples(&r, &[0]);
        assert_eq!(cache.intersection(&ls, &rs), 2);
        assert_eq!(cache.intersection(&rs, &ls), 2);
        // Both directions share the normalised key: 1 miss + 1 hit.
        assert_eq!(cache.pair_stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
        assert_eq!(cache.len().1, 1);
    }

    #[test]
    fn disabled_cache_computes_without_counting() {
        let cache = PairCache::new(64, 64);
        cache.set_enabled(false);
        let t = df(vec![("a", ints(&[1, 2, 3]))]);
        let s1 = cache.key_tuples(&t, &[0]);
        let s2 = cache.key_tuples(&t, &[0]);
        assert!(!Arc::ptr_eq(&s1, &s2));
        assert_eq!(cache.intersection(&s1, &s2), 3);
        assert_eq!(cache.tuple_stats(), CacheStats::default());
        assert_eq!(cache.pair_stats(), CacheStats::default());
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_lookups_have_deterministic_counters() {
        let cache = Arc::new(PairCache::new(256, 256));
        let tables: Arc<Vec<DataFrame>> = Arc::new(
            (0..8).map(|i| df(vec![("a", ints(&[i, i + 1, i + 2]))])).collect(),
        );
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let tables = Arc::clone(&tables);
                std::thread::spawn(move || {
                    let sets: Vec<_> =
                        tables.iter().map(|t| cache.key_tuples(t, &[0])).collect();
                    for w in sets.windows(2) {
                        cache.intersection(&w[0], &w[1]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 4 threads × 8 tuple lookups: 8 distinct → 8 misses, 24 hits.
        assert_eq!(cache.tuple_stats(), CacheStats { hits: 24, misses: 8, evictions: 0 });
        // 4 threads × 7 pair lookups: 7 distinct → 7 misses, 21 hits.
        assert_eq!(cache.pair_stats(), CacheStats { hits: 21, misses: 7, evictions: 0 });
    }

    #[test]
    fn eviction_respects_capacity() {
        let cache = PairCache::new(16, 16); // one tuple entry per shard
        for i in 0..40i64 {
            let t = df(vec![("a", ints(&[i * 10, i * 10 + 1, i * 10 + 2]))]);
            cache.key_tuples(&t, &[0]);
        }
        let stats = cache.tuple_stats();
        assert_eq!(stats.misses, 40);
        assert!(cache.len().0 <= 16);
        assert_eq!(stats.evictions, 40 - cache.len().0 as u64);
    }

    #[test]
    fn clear_resets_both_tiers() {
        let cache = PairCache::new(64, 64);
        let t = df(vec![("a", ints(&[1, 2]))]);
        let s = cache.key_tuples(&t, &[0]);
        cache.intersection(&s, &s);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.tuple_stats(), CacheStats::default());
        assert_eq!(cache.pair_stats(), CacheStats::default());
    }

    #[test]
    fn obs_counters_mirror_lookups() {
        let ((), snap) = autosuggest_obs::with_local_registry(|| {
            let cache = PairCache::new(64, 64);
            let t = df(vec![("a", ints(&[1, 2, 3]))]);
            let s = cache.key_tuples(&t, &[0]);
            cache.key_tuples(&t, &[0]);
            cache.intersection(&s, &s);
        });
        let det = snap.deterministic_value().to_string();
        for name in
            [TUPLE_HITS_COUNTER, TUPLE_MISSES_COUNTER, PAIR_MISSES_COUNTER]
        {
            assert!(det.contains(name), "missing {name} in {det}");
        }
    }
}
