//! Content-addressed, deterministic column-artifact cache.
//!
//! The paper's interactive setting (§6.5: ~0.1 s suggestion latency)
//! assumes featurisation is cheap, but join-candidate enumeration and the
//! groupby/pivot featurisers re-derive MinHash sketches and column
//! statistics for the *same* columns dozens of times across enumeration,
//! training, and evaluation. This crate interns those statistics once per
//! distinct column content:
//!
//! * [`column_fingerprint`] — a 128-bit multiset digest of a column's cells
//!   (row-order insensitive, edit sensitive) used as the cache key, so
//!   invalidation is structural: changed content is a different key.
//! * [`ColumnArtifacts`] — the sketch + statistics bundle, computed by
//!   delegating to the same `Column` methods featurisers previously called,
//!   so a hit is bit-identical to recomputation.
//! * [`ColumnCache`] — a sharded LRU keyed by fingerprint, returning
//!   `Arc`-interned artifacts.
//!
//! # Determinism contract
//!
//! `cache.{hits,misses,evictions}` are mirrored into the `autosuggest-obs`
//! deterministic section, so they must be byte-identical at any
//! `AUTOSUGGEST_THREADS`. Two design choices guarantee this:
//!
//! * Artifacts are computed *inside* the owning shard's lock (single-flight
//!   per key): the first lookup of a fingerprint is a miss and every later
//!   lookup is a hit, no matter how threads interleave, so
//!   `misses = distinct fingerprints` and `hits = lookups − misses`.
//! * Sketches are cached at [`BASE_SKETCH_K`], an upper bound on every
//!   sketch size the pipeline requests, and smaller sizes are derived
//!   exactly by truncation — so no entry is ever re-built at a larger `k`
//!   (which would otherwise count an order-dependent extra miss).
//!
//! Eviction counts are deterministic whenever the key *set* per shard is
//! (victim choice may vary with arrival order, but the number of evictions
//! depends only on how many distinct keys pass through a shard). The
//! default capacity is sized so the repro workload never evicts.
//!
//! The cache is on by default; `AUTOSUGGEST_CACHE=0` (or `off`/`false`)
//! disables it process-wide, and [`ColumnCache::set_enabled`] toggles it at
//! runtime for A/B timing runs.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod artifacts;
mod disk;
mod fingerprint;
mod pair;
mod sketch;

pub use artifacts::{dtype_slot, ColumnArtifacts, BASE_SKETCH_K};
pub use disk::{
    decode_column, decode_tuples, encode_column, encode_tuples, DiskCache, DiskStats,
    DEFAULT_DISK_BUDGET, DISK_CORRUPT_COUNTER, DISK_EVICTIONS_COUNTER, DISK_HITS_COUNTER,
    DISK_MISSES_COUNTER, DISK_WRITES_COUNTER,
};
pub use fingerprint::{column_fingerprint, table_fingerprint, ColumnFingerprint};
pub use pair::{
    KeyTupleSet, PairCache, PairOverlap, DEFAULT_PAIR_CAPACITY, DEFAULT_TUPLE_CAPACITY,
    PAIR_EVICTIONS_COUNTER, PAIR_HITS_COUNTER, PAIR_MISSES_COUNTER, TUPLE_EVICTIONS_COUNTER,
    TUPLE_HITS_COUNTER, TUPLE_MISSES_COUNTER,
};
pub use sketch::MinHashSketch;

use autosuggest_dataframe::Column;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

const SHARDS: usize = 16;

/// Default total capacity (entries across all shards). Generous relative to
/// the repro corpus (a few thousand distinct columns) so the standard
/// pipeline never evicts and the eviction counter stays at zero
/// deterministically.
pub const DEFAULT_CAPACITY: usize = 32_768;

/// Names under which the cache mirrors its counters into `autosuggest-obs`
/// (deterministic section).
pub const HITS_COUNTER: &str = "cache.hits";
pub const MISSES_COUNTER: &str = "cache.misses";
pub const EVICTIONS_COUNTER: &str = "cache.evictions";

#[derive(Debug, Clone)]
struct Entry {
    artifacts: Arc<ColumnArtifacts>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<ColumnFingerprint, Entry>,
    tick: u64,
}

/// Cumulative cache counters (monotonic until [`ColumnCache::clear`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl CacheStats {
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits over lookups; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter-wise difference from an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// A sharded, content-addressed LRU of [`ColumnArtifacts`].
pub struct ColumnCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    enabled: AtomicBool,
    /// Optional persistent tier consulted on in-memory misses (see
    /// [`DiskCache`]); attached from `AUTOSUGGEST_CACHE_DIR` on the global
    /// instance, `None` on plain `new()` instances.
    disk: Mutex<Option<Arc<DiskCache>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Recover the guard from a poisoned mutex: shard state is a plain
/// map + tick that is valid after any interrupted mutation, so a panic in
/// another thread must not cascade (same policy as `autosuggest-parallel`).
fn lock_recover<'a>(m: &'a Mutex<Shard>) -> MutexGuard<'a, Shard> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

pub(crate) fn env_enabled() -> bool {
    match std::env::var("AUTOSUGGEST_CACHE") {
        Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "off" | "false"),
        Err(_) => true,
    }
}

/// The process-wide disk tier from `AUTOSUGGEST_CACHE_DIR`, opened once and
/// shared by the column and pair caches (a single size ledger and counter
/// set per directory). `None` when the env var is unset or unusable.
pub fn default_disk() -> Option<Arc<DiskCache>> {
    static GLOBAL: OnceLock<Option<Arc<DiskCache>>> = OnceLock::new();
    GLOBAL.get_or_init(DiskCache::from_env).clone()
}

/// Attach (or detach, with `None`) a disk tier on both global caches —
/// used by the repro harness's disk-warm sweep and by tests.
pub fn attach_disk(disk: Option<Arc<DiskCache>>) {
    ColumnCache::global().set_disk(disk.clone());
    PairCache::global().set_disk(disk);
}

/// Toggle every global cache tier at once (A/B timing runs).
pub fn set_all_enabled(on: bool) {
    ColumnCache::global().set_enabled(on);
    PairCache::global().set_enabled(on);
}

/// Drop every in-memory entry in the global tiers (disk shards are kept —
/// clearing memory is exactly what produces a "disk-warm" cold start).
pub fn clear_memory() {
    ColumnCache::global().clear();
    PairCache::global().clear();
}

/// Per-tier counter snapshot across the global caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierStats {
    pub column: CacheStats,
    pub tuple: CacheStats,
    pub pair: CacheStats,
    pub disk: DiskStats,
}

impl TierStats {
    /// Per-tier counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &TierStats) -> TierStats {
        TierStats {
            column: self.column.since(&earlier.column),
            tuple: self.tuple.since(&earlier.tuple),
            pair: self.pair.since(&earlier.pair),
            disk: self.disk.since(&earlier.disk),
        }
    }
}

/// Snapshot all four tiers of the global caches (disk counters are zero
/// when no disk tier is attached).
pub fn tier_stats() -> TierStats {
    let column_cache = ColumnCache::global();
    let pair_cache = PairCache::global();
    TierStats {
        column: column_cache.stats(),
        tuple: pair_cache.tuple_stats(),
        pair: pair_cache.pair_stats(),
        disk: column_cache.disk().map(|d| d.stats()).unwrap_or_default(),
    }
}

impl ColumnCache {
    /// A cache holding at most `capacity` entries in total (rounded up to at
    /// least one entry per shard).
    pub fn new(capacity: usize) -> Self {
        ColumnCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            enabled: AtomicBool::new(true),
            disk: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide cache used by the featurisers, initialised on first
    /// use with [`DEFAULT_CAPACITY`], the `AUTOSUGGEST_CACHE` env gate, and
    /// the `AUTOSUGGEST_CACHE_DIR` disk tier when configured.
    pub fn global() -> &'static ColumnCache {
        static GLOBAL: OnceLock<ColumnCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cache = ColumnCache::new(DEFAULT_CAPACITY);
            cache.enabled.store(env_enabled(), Ordering::Relaxed);
            cache.set_disk(default_disk());
            cache
        })
    }

    /// Attach (or detach) a persistent disk tier for column-artifact shards.
    pub fn set_disk(&self, disk: Option<Arc<DiskCache>>) {
        match self.disk.lock() {
            Ok(mut g) => *g = disk,
            Err(poisoned) => *poisoned.into_inner() = disk,
        }
    }

    /// The currently attached disk tier, if any.
    pub fn disk(&self) -> Option<Arc<DiskCache>> {
        match self.disk.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Whether lookups consult the cache (otherwise they recompute).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggle the cache at runtime (used by the repro harness for the
    /// cache-on/off timing comparison).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Fetch (or compute and intern) the artifacts for a column, with a
    /// sketch usable at size `sketch_k`.
    ///
    /// The artifact computation runs *inside* the owning shard's lock so
    /// that concurrent first lookups of one fingerprint cannot both count
    /// as misses — the hit/miss counters stay deterministic across thread
    /// counts (see the crate docs).
    pub fn get_or_compute(&self, col: &Column, sketch_k: usize) -> Arc<ColumnArtifacts> {
        if !self.enabled() {
            return Arc::new(ColumnArtifacts::compute(col, sketch_k));
        }
        let fp = column_fingerprint(col);
        let shard_idx = ((fp.0 >> 64) as u64 % SHARDS as u64) as usize;
        let mut evicted = 0u64;
        let (artifacts, hit) = {
            let mut guard = lock_recover(&self.shards[shard_idx]);
            let shard = &mut *guard;
            shard.tick += 1;
            let tick = shard.tick;
            // A cached entry only satisfies the request if its sketch is at
            // least as large as asked; entries are built at
            // max(sketch_k, BASE_SKETCH_K), so with pipeline-sized ks the
            // upgrade branch never runs.
            match shard.map.get_mut(&fp) {
                Some(entry) if entry.artifacts.sketch().k() >= sketch_k => {
                    entry.last_used = tick;
                    (entry.artifacts.clone(), true)
                }
                stale => {
                    let needs_insert = stale.is_none();
                    // In-memory miss: consult the persistent tier before
                    // recomputing. Still inside the shard lock, so the
                    // single-flight argument extends to disk — each
                    // distinct fingerprint is probed (and stored) at most
                    // once per process, keeping `cache.disk.*` counters
                    // thread-invariant.
                    let disk = self.disk();
                    let loaded = disk
                        .as_ref()
                        .and_then(|d| d.load_column(fp, sketch_k))
                        .map(Arc::new);
                    let artifacts = match loaded {
                        Some(a) => a,
                        None => {
                            let a = Arc::new(ColumnArtifacts::compute(col, sketch_k));
                            if let Some(d) = &disk {
                                // Overwrite is only reachable when an
                                // existing shard's sketch was too small
                                // for this request (the upgrade path).
                                d.store_column(fp, &a, true);
                            }
                            a
                        }
                    };
                    if needs_insert && shard.map.len() >= self.per_shard_capacity {
                        // Evict the least-recently-used entry; ties (possible
                        // only before any entry is re-touched) break on the
                        // smaller fingerprint for determinism.
                        let victim = shard
                            .map
                            .iter()
                            .min_by_key(|(k, e)| (e.last_used, **k))
                            .map(|(k, _)| *k);
                        if let Some(v) = victim {
                            shard.map.remove(&v);
                            evicted = 1;
                        }
                    }
                    shard.map.insert(fp, Entry { artifacts: Arc::clone(&artifacts), last_used: tick });
                    (artifacts, false)
                }
            }
        };
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            autosuggest_obs::counter_add(HITS_COUNTER, 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            autosuggest_obs::counter_add(MISSES_COUNTER, 1);
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            autosuggest_obs::counter_add(EVICTIONS_COUNTER, evicted);
        }
        artifacts
    }

    /// Fetch artifacts with the base sketch size — the entry point for
    /// featurisers that only need statistics, not a specific sketch `k`.
    pub fn artifacts(&self, col: &Column) -> Arc<ColumnArtifacts> {
        self.get_or_compute(col, BASE_SKETCH_K)
    }

    /// Snapshot the cumulative counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of interned entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry and reset the counters (used between deterministic
    /// trace runs so each run observes a cold cache).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut guard = lock_recover(s);
            guard.map.clear();
            guard.tick = 0;
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;

    fn int_col(name: &str, lo: i64, hi: i64) -> Column {
        Column::new(name, (lo..hi).map(Value::Int).collect::<Vec<_>>())
    }

    #[test]
    fn hit_miss_counting_and_interning() {
        let cache = ColumnCache::new(64);
        let a = int_col("a", 0, 100);
        let a_permuted = {
            let mut vals: Vec<Value> = a.values().to_vec();
            vals.reverse();
            Column::new("other_name", vals)
        };
        let first = cache.artifacts(&a);
        let second = cache.artifacts(&a);
        let third = cache.artifacts(&a_permuted);
        // Same content (up to row order and name) → one interned allocation.
        assert!(Arc::ptr_eq(&first, &second));
        assert!(Arc::ptr_eq(&first, &third));
        assert_eq!(cache.stats(), CacheStats { hits: 2, misses: 1, evictions: 0 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn hit_is_bit_identical_to_recompute() {
        let cache = ColumnCache::new(64);
        let col = Column::new(
            "c",
            vec![Value::Int(5), Value::Float(2.5), Value::Null, Value::Str("x".into())],
        );
        cache.artifacts(&col);
        let cached = cache.artifacts(&col);
        let direct = ColumnArtifacts::compute(&col, BASE_SKETCH_K);
        assert_eq!(cached.distinct_count(), direct.distinct_count());
        assert_eq!(cached.null_fraction(), direct.null_fraction());
        assert_eq!(cached.min_max(), direct.min_max());
        assert_eq!(cached.dtype(), direct.dtype());
        assert_eq!(cached.dtype_counts(), direct.dtype_counts());
        assert_eq!(cached.peak_frequency(), direct.peak_frequency());
        assert_eq!(cached.sketch().jaccard(direct.sketch()), 1.0);
    }

    #[test]
    fn disabled_cache_recomputes_and_counts_nothing() {
        let cache = ColumnCache::new(64);
        cache.set_enabled(false);
        let col = int_col("a", 0, 50);
        let x = cache.get_or_compute(&col, 32);
        let y = cache.get_or_compute(&col, 32);
        assert!(!Arc::ptr_eq(&x, &y));
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.len(), 0);
        cache.set_enabled(true);
        cache.get_or_compute(&col, 32);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn eviction_respects_capacity_and_counts() {
        // Capacity 16 → one entry per shard; the second distinct key landing
        // in any shard evicts the first.
        let cache = ColumnCache::new(16);
        let cols: Vec<Column> = (0..40).map(|i| int_col("c", i * 100, i * 100 + 50)).collect();
        for c in &cols {
            cache.artifacts(c);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 40);
        assert_eq!(stats.hits, 0);
        assert!(cache.len() <= 16);
        assert_eq!(stats.evictions, 40 - cache.len() as u64);
    }

    #[test]
    fn lru_prefers_to_evict_least_recently_used() {
        let cache = ColumnCache::new(16);
        // Find three distinct columns that map to the same shard.
        let mut same_shard: Vec<Column> = Vec::new();
        let mut want_shard = None;
        for i in 0..1000 {
            let c = int_col("c", i * 1000, i * 1000 + 10);
            let fp = column_fingerprint(&c);
            let shard = ((fp.0 >> 64) as u64 % SHARDS as u64) as usize;
            match want_shard {
                None => {
                    want_shard = Some(shard);
                    same_shard.push(c);
                }
                Some(w) if w == shard => same_shard.push(c),
                _ => {}
            }
            if same_shard.len() == 3 {
                break;
            }
        }
        let [a, b, c] = &same_shard[..] else {
            panic!("could not find three same-shard columns");
        };
        // Capacity per shard is ceil(16/16)=1... too tight to show recency.
        // Use a dedicated two-entry shard capacity instead.
        let cache2 = ColumnCache::new(2 * SHARDS);
        cache2.artifacts(a);
        cache2.artifacts(b);
        cache2.artifacts(a); // touch a → b is now LRU
        cache2.artifacts(c); // evicts b
        drop(cache);
        assert_eq!(cache2.stats().evictions, 1);
        let before = cache2.stats();
        cache2.artifacts(a);
        assert_eq!(cache2.stats().since(&before), CacheStats { hits: 1, misses: 0, evictions: 0 });
        let before = cache2.stats();
        cache2.artifacts(b); // was evicted → miss (and evicts again)
        assert_eq!(cache2.stats().since(&before).misses, 1);
    }

    #[test]
    fn concurrent_access_has_deterministic_counters() {
        // 4 threads × the same 8 columns: single-flight inside the shard
        // lock guarantees exactly 8 misses and 24 hits regardless of
        // interleaving.
        let cache = Arc::new(ColumnCache::new(256));
        let cols: Arc<Vec<Column>> =
            Arc::new((0..8).map(|i| int_col("c", i * 10, i * 10 + 5)).collect());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let cols = Arc::clone(&cols);
                std::thread::spawn(move || {
                    for c in cols.iter() {
                        cache.artifacts(c);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats(), CacheStats { hits: 24, misses: 8, evictions: 0 });
    }

    #[test]
    fn clear_resets_entries_and_counters() {
        let cache = ColumnCache::new(64);
        cache.artifacts(&int_col("a", 0, 10));
        cache.artifacts(&int_col("a", 0, 10));
        assert_ne!(cache.stats(), CacheStats::default());
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(cache.is_empty());
    }

    #[test]
    fn obs_counters_mirror_lookups() {
        let ((), snap) = autosuggest_obs::with_local_registry(|| {
            let cache = ColumnCache::new(64);
            let col = int_col("a", 0, 30);
            cache.artifacts(&col);
            cache.artifacts(&col);
        });
        let text = snap.deterministic_value().to_string();
        assert!(text.contains("cache.hits"), "missing cache.hits in {text}");
        assert!(text.contains("cache.misses"), "missing cache.misses in {text}");
    }

    #[test]
    fn oversized_sketch_request_still_exact() {
        let cache = ColumnCache::new(64);
        let col = int_col("a", 0, 2000);
        let art = cache.get_or_compute(&col, 64);
        assert_eq!(art.sketch().k(), BASE_SKETCH_K);
        // Asking for a sketch larger than the cached base re-computes and
        // re-interns at the bigger size (counts as a miss).
        let big = cache.get_or_compute(&col, 512);
        assert_eq!(big.sketch().k(), 512);
        assert_eq!(cache.stats().misses, 2);
        // And the upgraded entry now serves small requests as hits.
        let again = cache.get_or_compute(&col, 64);
        assert!(Arc::ptr_eq(&big, &again));
        assert_eq!(cache.stats().hits, 1);
    }
}
