//! Serialising a [`MetricsSnapshot`] to a JSON trace document.
//!
//! The document has three top-level keys, rendered in sorted order by
//! the `serde_json` shim's `BTreeMap` object representation:
//!
//! ```json
//! {"deterministic": {...}, "meta": {...}, "timing": {...}}
//! ```
//!
//! `deterministic` comes first lexicographically, which lets shell-level
//! consumers (CI) extract it with a plain
//! `sed 's/^{"deterministic"://; s/,"meta".*//'` and diff runs at
//! different thread counts byte-for-byte.

use crate::metrics::MetricsSnapshot;
use serde_json::{Map, Value};
use std::io;
use std::path::Path;

/// Writes trace documents. Stateless — the snapshot carries the data.
pub struct TraceSink;

impl TraceSink {
    /// Render the full trace document as compact JSON.
    pub fn render(snapshot: &MetricsSnapshot, meta: Value) -> String {
        let mut doc = Map::new();
        doc.insert("deterministic".to_string(), snapshot.deterministic_value());
        doc.insert("meta".to_string(), meta);
        doc.insert("timing".to_string(), snapshot.timing_value());
        Value::Object(doc).to_string()
    }

    /// Write the trace document to `path` (plus a trailing newline).
    pub fn write(path: &Path, snapshot: &MetricsSnapshot, meta: Value) -> io::Result<()> {
        let mut text = Self::render(snapshot, meta);
        text.push('\n');
        std::fs::write(path, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use serde_json::json;

    #[test]
    fn render_orders_deterministic_first() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", 1);
        reg.record_span("root", 5);
        let text = TraceSink::render(&reg.snapshot(), json!({"threads": 4}));
        assert!(text.starts_with("{\"deterministic\":"), "got: {text}");
        let doc = serde_json::from_str(&text).unwrap();
        assert_eq!(
            doc.get("meta").and_then(|m| m.get("threads")).and_then(Value::as_i64),
            Some(4)
        );
        assert!(doc.get("deterministic").is_some());
        assert!(doc.get("timing").is_some());
    }

    #[test]
    fn sed_style_extraction_matches_deterministic_value() {
        let reg = MetricsRegistry::new();
        reg.counter_add("x", 2);
        reg.observe("stage_seconds", 0.1);
        let snap = reg.snapshot();
        let text = TraceSink::render(&snap, json!({}));
        // Emulate the CI extraction: strip the wrapper prefix and the
        // ,"meta"... tail.
        let start = "{\"deterministic\":";
        let stripped = text.strip_prefix(start).unwrap_or("");
        let end = stripped.find(",\"meta\"").unwrap_or(stripped.len());
        assert_eq!(&stripped[..end], snap.deterministic_value().to_string());
    }
}
