//! Process-level resource probes.
//!
//! Machine-dependent by nature, so values from here must never land in the
//! deterministic metrics view — report them through `_live`-suffixed gauges
//! (classified as timing by [`crate::is_timing_name`]) or directly into
//! bench output, as `repro --corpus-scale` does.

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`). `None` where procfs is unavailable (non-Linux).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes().unwrap();
        // Any live process has touched at least a page.
        assert!(rss > 4096, "peak RSS {rss} implausibly small");
    }
}
