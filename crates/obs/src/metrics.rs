//! Typed metric storage: counters, gauges, histograms, and span
//! statistics, all keyed by name in sorted maps so every rendering is
//! deterministic.
//!
//! A [`MetricsRegistry`] is a single mutex around four `BTreeMap`s. All
//! mutating operations are commutative folds (`+=` on counters and span
//! calls, merge on histograms), so the final state is independent of the
//! order worker threads happen to record in — the registry inherits the
//! parallel runtime's determinism contract for everything except
//! wall-clock timing. Gauges are last-write-wins and therefore must only
//! be set from sequential code (the pipeline does; concurrently-evaluated
//! table code never touches them).

use serde_json::{Map, Value};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// Number of decade buckets in a [`Histogram`]: 1e-9 s up to 1e3 s.
pub const HISTOGRAM_BUCKETS: usize = 13;

/// Fixed-bucket log-scale histogram (decades from nanoseconds to
/// kiloseconds). Merging two histograms is commutative, which is what
/// lets workers record in any order.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

/// Bucket index for a value in seconds: decade of `v`, shifted so 1e-9
/// lands in bucket 0 and anything ≥ 1e3 saturates the last bucket.
pub(crate) fn bucket_index(v: f64) -> usize {
    // NaN is not finite, so non-positive, infinite, and NaN values all
    // land in bucket 0.
    if v <= 0.0 || !v.is_finite() {
        return 0;
    }
    let decade = v.log10().floor() as i64 + 9;
    decade.clamp(0, (HISTOGRAM_BUCKETS - 1) as i64) as usize
}

impl Histogram {
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.buckets[bucket_index(v)] += 1;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Aggregated statistics for one span path: how many times it was
/// entered and total wall-clock nanoseconds inside it. `calls` is
/// deterministic; `nanos` is not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    pub calls: u64,
    pub nanos: u128,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
}

/// Thread-safe metric store. Cheap to share (`Arc<MetricsRegistry>`);
/// one global instance backs the free functions in the crate root, and
/// tests install isolated instances via `with_local_registry`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

/// Recover from mutex poisoning: a panic in instrumented code (replay
/// cells panic by design under fault injection) must never cascade into
/// `PoisonError` panics in the metrics layer. The guarded maps are
/// always consistent because no user code runs while the lock is held.
fn lock_recover(m: &Mutex<RegistryInner>) -> MutexGuard<'_, RegistryInner> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = lock_recover(&self.inner);
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set a named gauge (last write wins — sequential callers only).
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = lock_recover(&self.inner);
        inner.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into a named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = lock_recover(&self.inner);
        inner.histograms.entry(name.to_string()).or_default().record(value);
    }

    /// Fold one span exit into the per-path statistics.
    pub fn record_span(&self, path: &str, nanos: u128) {
        let mut inner = lock_recover(&self.inner);
        let stat = inner.spans.entry(path.to_string()).or_default();
        stat.calls += 1;
        stat.nanos += nanos;
    }

    /// Copy the current state out. The snapshot is detached — later
    /// recording does not affect it.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = lock_recover(&self.inner);
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
            spans: inner.spans.clone(),
        }
    }

    /// Drop all recorded state (test isolation for the global registry).
    pub fn reset(&self) {
        let mut inner = lock_recover(&self.inner);
        *inner = RegistryInner::default();
    }
}

/// Names ending in `_seconds` / `_nanos` carry wall-clock measurements,
/// and names ending in `_live` carry scheduling-dependent observations
/// (queue depths, micro-batch sizes — values that legitimately vary with
/// thread count and arrival timing). Both are excluded from the
/// deterministic part of a snapshot and reported in the timing view
/// instead. Every such metric in the workspace follows this suffix
/// convention.
pub fn is_timing_name(name: &str) -> bool {
    name.ends_with("_seconds") || name.ends_with("_nanos") || name.ends_with("_live")
}

/// A detached copy of a registry's state, split into a deterministic
/// view (bit-identical across thread counts) and a timing view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
    pub spans: BTreeMap<String, SpanStat>,
}

#[derive(Default)]
struct SpanNode {
    calls: u64,
    children: BTreeMap<String, SpanNode>,
}

fn span_tree(spans: &BTreeMap<String, SpanStat>) -> SpanNode {
    let mut root = SpanNode::default();
    for (path, stat) in spans {
        let mut node = &mut root;
        for seg in path.split('/') {
            node = node.children.entry(seg.to_string()).or_default();
        }
        node.calls += stat.calls;
    }
    root
}

fn span_node_value(node: &SpanNode) -> Value {
    let mut map = Map::new();
    map.insert("calls".to_string(), Value::from(node.calls));
    if !node.children.is_empty() {
        let mut kids = Map::new();
        for (name, child) in &node.children {
            kids.insert(name.clone(), span_node_value(child));
        }
        map.insert("children".to_string(), Value::Object(kids));
    }
    Value::Object(map)
}

fn histogram_value(h: &Histogram) -> Value {
    let mut map = Map::new();
    map.insert("count".to_string(), Value::from(h.count));
    map.insert("sum".to_string(), Value::from(h.sum));
    map.insert("mean".to_string(), Value::from(h.mean()));
    map.insert(
        "min".to_string(),
        if h.count == 0 { Value::Null } else { Value::from(h.min) },
    );
    map.insert(
        "max".to_string(),
        if h.count == 0 { Value::Null } else { Value::from(h.max) },
    );
    map.insert(
        "buckets".to_string(),
        Value::Array(h.buckets.iter().map(|&b| Value::from(b)).collect()),
    );
    Value::Object(map)
}

impl MetricsSnapshot {
    /// Everything guaranteed bit-identical across `AUTOSUGGEST_THREADS`
    /// settings: counters, non-timing gauges, non-timing histograms, and
    /// the span tree with call counts only (no durations).
    pub fn deterministic_value(&self) -> Value {
        let mut doc = Map::new();
        let mut counters = Map::new();
        for (name, &v) in &self.counters {
            if !is_timing_name(name) {
                counters.insert(name.clone(), Value::from(v));
            }
        }
        doc.insert("counters".to_string(), Value::Object(counters));
        let mut gauges = Map::new();
        for (name, &v) in &self.gauges {
            if !is_timing_name(name) {
                gauges.insert(name.clone(), Value::from(v));
            }
        }
        doc.insert("gauges".to_string(), Value::Object(gauges));
        let mut hists = Map::new();
        for (name, h) in &self.histograms {
            if !is_timing_name(name) {
                hists.insert(name.clone(), histogram_value(h));
            }
        }
        doc.insert("histograms".to_string(), Value::Object(hists));
        doc.insert("spans".to_string(), span_node_value(&span_tree(&self.spans)));
        Value::Object(doc)
    }

    /// The wall-clock complement: timing histograms (full shape, bucket
    /// distribution included), timing/`_live` counters, and per-span-path
    /// total nanoseconds.
    pub fn timing_value(&self) -> Value {
        let mut doc = Map::new();
        let mut counters = Map::new();
        for (name, &v) in &self.counters {
            if is_timing_name(name) {
                counters.insert(name.clone(), Value::from(v));
            }
        }
        doc.insert("counters".to_string(), Value::Object(counters));
        let mut hists = Map::new();
        for (name, h) in &self.histograms {
            if is_timing_name(name) {
                hists.insert(name.clone(), histogram_value(h));
            }
        }
        doc.insert("histograms".to_string(), Value::Object(hists));
        let mut spans = Map::new();
        for (path, stat) in &self.spans {
            // u128 nanos can exceed u64 in theory; saturate for JSON.
            let nanos = u64::try_from(stat.nanos).unwrap_or(u64::MAX);
            spans.insert(path.clone(), Value::from(nanos));
        }
        doc.insert("span_nanos".to_string(), Value::Object(spans));
        Value::Object(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_decades() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(5e-10), 0); // below 1e-9 clamps down
        assert_eq!(bucket_index(1e-9), 0);
        assert_eq!(bucket_index(1e-6), 3);
        assert_eq!(bucket_index(0.5), 8);
        assert_eq!(bucket_index(1.0), 9);
        assert_eq!(bucket_index(999.0), 11);
        assert_eq!(bucket_index(1e3), 12);
        assert_eq!(bucket_index(1e9), 12); // saturates
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let values = [0.001, 2.5, 0.0003, 17.0, 0.9];
        let mut forward = Histogram::default();
        let mut backward = Histogram::default();
        for v in values {
            forward.record(v);
        }
        for v in values.iter().rev() {
            backward.record(*v);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.count, 5);
        assert!((forward.mean() - values.iter().sum::<f64>() / 5.0).abs() < 1e-12);
    }

    #[test]
    fn registry_folds_commutatively() {
        let reg = MetricsRegistry::new();
        reg.counter_add("a.total", 2);
        reg.counter_add("a.total", 3);
        reg.gauge_set("g", 1.5);
        reg.gauge_set("g", 2.5);
        reg.observe("h_seconds", 0.01);
        reg.record_span("root/child", 100);
        reg.record_span("root/child", 50);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("a.total"), Some(&5));
        assert_eq!(snap.gauges.get("g"), Some(&2.5));
        assert_eq!(snap.histograms.get("h_seconds").map(|h| h.count), Some(1));
        let stat = snap.spans.get("root/child").copied().unwrap_or_default();
        assert_eq!(stat.calls, 2);
        assert_eq!(stat.nanos, 150);
    }

    #[test]
    fn deterministic_value_excludes_timing_fields() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", 1);
        reg.gauge_set("importance.join.g1", 0.25);
        reg.gauge_set("elapsed_seconds", 9.0);
        reg.observe("stage_seconds", 0.5);
        reg.observe("sizes", 10.0);
        reg.record_span("a/b", 42);
        let snap = reg.snapshot();
        let det = snap.deterministic_value().to_string();
        assert!(det.contains("\"c\":1"));
        assert!(det.contains("importance.join.g1"));
        assert!(!det.contains("elapsed_seconds"));
        assert!(!det.contains("stage_seconds"));
        assert!(det.contains("\"sizes\""));
        assert!(!det.contains("42"), "deterministic view must not leak nanos: {det}");
        let timing = snap.timing_value().to_string();
        assert!(timing.contains("stage_seconds"));
        assert!(timing.contains("\"a/b\":42"));
    }

    #[test]
    fn live_suffix_is_excluded_from_deterministic_view() {
        // `_live` marks scheduling-dependent observations (queue depth,
        // micro-batch sizes): they must land in the timing view only, so
        // the deterministic section stays thread-invariant for a server
        // under concurrent load.
        let reg = MetricsRegistry::new();
        reg.counter_add("server.batches_live", 7);
        reg.counter_add("server.requests", 10);
        reg.gauge_set("server.queue_depth_live", 3.0);
        reg.observe("server.batch_size_live", 4.0);
        let snap = reg.snapshot();
        let det = snap.deterministic_value().to_string();
        assert!(det.contains("\"server.requests\":10"));
        assert!(!det.contains("batches_live"));
        assert!(!det.contains("queue_depth_live"));
        assert!(!det.contains("batch_size_live"));
        let timing = snap.timing_value().to_string();
        assert!(timing.contains("\"server.batches_live\":7"));
        assert!(timing.contains("batch_size_live"));
    }

    #[test]
    fn span_tree_nests_by_path() {
        let reg = MetricsRegistry::new();
        reg.record_span("repro", 1);
        reg.record_span("repro/train", 1);
        reg.record_span("repro/train/replay", 1);
        reg.record_span("repro/train/replay", 1);
        reg.record_span("repro/evaluate", 1);
        let det = reg.snapshot().deterministic_value();
        let spans = det.get("spans").cloned().unwrap_or(Value::Null);
        let repro = spans.get("children").and_then(|c| c.get("repro")).cloned();
        let repro = repro.unwrap_or(Value::Null);
        assert_eq!(repro.get("calls").and_then(Value::as_i64), Some(1));
        let train = repro.get("children").and_then(|c| c.get("train")).cloned();
        let train = train.unwrap_or(Value::Null);
        let replay = train.get("children").and_then(|c| c.get("replay")).cloned();
        let replay = replay.unwrap_or(Value::Null);
        assert_eq!(replay.get("calls").and_then(Value::as_i64), Some(2));
    }
}
