//! Hierarchical spans with thread-local context and explicit ambient
//! propagation across the parallel pool.
//!
//! Each thread carries a current span *path* (slash-joined names) and an
//! optional registry override. [`span`] pushes a segment and returns a
//! guard; dropping the guard records the elapsed wall-clock time under
//! the full path and restores the previous path. Pool workers call
//! [`ambient`] on the submitting thread and [`with_ambient`] inside the
//! worker, so spans opened inside parallel tasks nest under the caller's
//! span exactly as they would have sequentially — which is what makes
//! span *structure* identical at any thread count.

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();

/// The process-global registry backing the free functions when no local
/// registry is installed on the current thread.
pub fn global() -> Arc<MetricsRegistry> {
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new())).clone()
}

#[derive(Default)]
struct Context {
    registry: Option<Arc<MetricsRegistry>>,
    path: String,
}

thread_local! {
    static CTX: RefCell<Context> = RefCell::new(Context::default());
}

fn current_registry() -> Arc<MetricsRegistry> {
    CTX.with(|ctx| ctx.borrow().registry.clone()).unwrap_or_else(global)
}

/// Add `delta` to a named counter in the active registry.
pub fn counter_add(name: &str, delta: u64) {
    current_registry().counter_add(name, delta);
}

/// Set a named gauge in the active registry. Gauges are last-write-wins:
/// call only from sequential code, never from pool tasks.
pub fn gauge_set(name: &str, value: f64) {
    current_registry().gauge_set(name, value);
}

/// Record one observation into a named histogram in the active registry.
pub fn observe(name: &str, value: f64) {
    current_registry().observe(name, value);
}

/// Record the seconds elapsed since `start` into a named histogram.
/// Histogram names carrying durations must end in `_seconds` so snapshot
/// splitting can classify them as timing.
pub fn observe_since(name: &str, start: Instant) {
    observe(name, start.elapsed().as_secs_f64());
}

/// Snapshot the active registry (thread-local override or global).
pub fn snapshot() -> MetricsSnapshot {
    current_registry().snapshot()
}

/// RAII guard for one span. Records `calls += 1` and the elapsed
/// nanoseconds under its full path on drop, then restores the enclosing
/// path. `!Send`: a guard must be dropped on the thread that opened it.
pub struct SpanGuard {
    registry: Arc<MetricsRegistry>,
    path: String,
    prev_path: String,
    start: Instant,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Full slash-joined path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.registry.record_span(&self.path, self.start.elapsed().as_nanos());
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            // Restore only if nothing re-entered underneath us; spans are
            // strictly scoped in practice but a mismatch must not corrupt
            // an unrelated path.
            if ctx.path == self.path {
                ctx.path = std::mem::take(&mut self.prev_path);
            }
        });
    }
}

/// Open a span named `name`, nested under the current thread's span
/// path. The returned guard closes the span on drop.
pub fn span(name: &str) -> SpanGuard {
    let registry = current_registry();
    let (path, prev_path) = CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let prev = ctx.path.clone();
        let path = if prev.is_empty() { name.to_string() } else { format!("{prev}/{name}") };
        ctx.path = path.clone();
        (path, prev)
    });
    SpanGuard { registry, path, prev_path, start: Instant::now(), _not_send: PhantomData }
}

/// A capture of the calling thread's observability context: which
/// registry it records into and where in the span tree it currently is.
/// Cheap to clone; designed to be captured before spawning pool workers
/// and installed inside each worker via [`with_ambient`].
#[derive(Clone)]
pub struct Ambient {
    registry: Arc<MetricsRegistry>,
    path: String,
}

/// Capture the current thread's observability context.
pub fn ambient() -> Ambient {
    CTX.with(|ctx| {
        let ctx = ctx.borrow();
        Ambient {
            registry: ctx.registry.clone().unwrap_or_else(global),
            path: ctx.path.clone(),
        }
    })
}

/// Restores the saved context when the installed scope unwinds (pool
/// tasks run under `catch_unwind`, so the thread may survive a panic).
struct RestoreCtx {
    saved_registry: Option<Arc<MetricsRegistry>>,
    saved_path: String,
}

impl Drop for RestoreCtx {
    fn drop(&mut self) {
        CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            ctx.registry = self.saved_registry.take();
            ctx.path = std::mem::take(&mut self.saved_path);
        });
    }
}

/// Run `f` with the given ambient context installed on this thread.
/// Spans and metrics recorded inside land in the ambient registry,
/// nested under the ambient span path. The previous context is restored
/// afterwards, including across panics.
pub fn with_ambient<T>(amb: &Ambient, f: impl FnOnce() -> T) -> T {
    let _restore = CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        let restore = RestoreCtx {
            saved_registry: ctx.registry.take(),
            saved_path: std::mem::take(&mut ctx.path),
        };
        ctx.registry = Some(amb.registry.clone());
        ctx.path = amb.path.clone();
        restore
    });
    f()
}

/// Run `f` against a fresh, isolated registry and return its result with
/// the final snapshot. The registry is installed thread-locally, so
/// concurrent tests do not see each other's metrics; parallel sections
/// inside `f` still record into it because the pool propagates ambient
/// context to its workers.
pub fn with_local_registry<T>(f: impl FnOnce() -> T) -> (T, MetricsSnapshot) {
    let registry = Arc::new(MetricsRegistry::new());
    let amb = Ambient { registry: registry.clone(), path: String::new() };
    let result = with_ambient(&amb, f);
    let snap = registry.snapshot();
    (result, snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_record_calls() {
        let ((), snap) = with_local_registry(|| {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
            }
        });
        let outer = snap.spans.get("outer").copied().unwrap_or_default();
        let inner = snap.spans.get("outer/inner").copied().unwrap_or_default();
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 3);
        assert!(!snap.spans.contains_key("inner"), "inner must nest under outer");
    }

    #[test]
    fn guard_restores_path_after_drop() {
        let ((), snap) = with_local_registry(|| {
            {
                let g = span("a");
                assert_eq!(g.path(), "a");
            }
            let g = span("b");
            assert_eq!(g.path(), "b", "path from dropped span leaked");
        });
        assert_eq!(snap.spans.len(), 2);
    }

    #[test]
    fn ambient_carries_registry_and_path_to_other_threads() {
        let ((), snap) = with_local_registry(|| {
            let _outer = span("outer");
            let amb = ambient();
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let amb = amb.clone();
                    scope.spawn(move || {
                        with_ambient(&amb, || {
                            let _task = span("task");
                            counter_add("tasks", 1);
                        });
                    });
                }
            });
        });
        assert_eq!(snap.counters.get("tasks"), Some(&2));
        let task = snap.spans.get("outer/task").copied().unwrap_or_default();
        assert_eq!(task.calls, 2);
    }

    #[test]
    fn with_ambient_restores_on_panic() {
        let ((), snap) = with_local_registry(|| {
            let amb = ambient();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                with_ambient(&amb, || {
                    counter_add("before_panic", 1);
                    panic!("boom");
                })
            }));
            assert!(result.is_err());
            // Context must still be the local registry's, not corrupted.
            counter_add("after_panic", 1);
        });
        assert_eq!(snap.counters.get("before_panic"), Some(&1));
        assert_eq!(snap.counters.get("after_panic"), Some(&1));
    }

    #[test]
    fn local_registry_isolates_from_global() {
        let ((), snap) = with_local_registry(|| {
            counter_add("isolated", 7);
        });
        assert_eq!(snap.counters.get("isolated"), Some(&7));
        assert_eq!(global().snapshot().counters.get("isolated"), None);
    }
}
