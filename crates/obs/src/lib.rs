//! Deterministic observability for the Auto-Suggest pipeline:
//! hierarchical spans, typed metrics, and a JSON trace sink — std-only,
//! backed by the vendored `serde_json` shim.
//!
//! ## Determinism contract
//!
//! Everything except wall-clock durations is a pure function of the
//! workload, never of scheduling:
//!
//! - **Counters** and **span call counts** are commutative `+=` folds —
//!   worker recording order cannot change the totals.
//! - **Span structure** (the tree of slash-joined paths) is identical at
//!   any `AUTOSUGGEST_THREADS` setting because the parallel pool
//!   captures the submitting thread's [`Ambient`] context and installs
//!   it in every worker: a span opened inside a pool task nests under
//!   the caller's span exactly as it would sequentially.
//! - **Gauges** are last-write-wins and are therefore only set from
//!   sequential pipeline code (enforced by convention, exercised by the
//!   trace-determinism tests).
//! - **Timing** (span nanoseconds, `*_seconds` histograms) is wall-clock
//!   and explicitly excluded from
//!   [`MetricsSnapshot::deterministic_value`]; it lives in
//!   [`MetricsSnapshot::timing_value`] instead.
//!
//! ## Usage
//!
//! ```
//! use autosuggest_obs as obs;
//!
//! let ((), snap) = obs::with_local_registry(|| {
//!     let _root = obs::span("work");
//!     obs::counter_add("items", 3);
//!     obs::observe("batch_sizes", 3.0);
//! });
//! assert_eq!(snap.counters.get("items"), Some(&3));
//! assert_eq!(snap.spans.get("work").map(|s| s.calls), Some(1));
//! ```
//!
//! Production code records into the process-global registry implicitly;
//! tests wrap workloads in [`with_local_registry`] for isolation.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod metrics;
mod proc;
mod sink;
mod span;

pub use metrics::{
    is_timing_name, Histogram, MetricsRegistry, MetricsSnapshot, SpanStat, HISTOGRAM_BUCKETS,
};
pub use proc::peak_rss_bytes;
pub use sink::TraceSink;
pub use span::{
    ambient, counter_add, gauge_set, global, observe, observe_since, snapshot, span,
    with_ambient, with_local_registry, Ambient, SpanGuard,
};
