//! JSON wire format for interactive suggest requests and responses.
//!
//! [`SuggestRequest`] borrows its tables, which is right for the in-process
//! batch API but useless on a socket; this module defines the owned,
//! serializable counterpart ([`OwnedSuggestRequest`]) plus encode/decode
//! for both directions of the exchange, built on the vendored `serde_json`
//! shim. `autosuggestd` and its clients speak exactly this format.
//!
//! # Encoding
//!
//! Requests are tagged by `"op"`:
//!
//! ```json
//! {"op":"join","left":{"columns":[...]},"right":{"columns":[...]},"top_k":3}
//! {"op":"groupby","table":{"columns":[...]}}
//! {"op":"pivot","table":{"columns":[...]},"dims":[0,1]}
//! {"op":"unpivot","table":{"columns":[...]}}
//! ```
//!
//! Tables are columnar: `{"columns":[{"name":"a","values":[...]}]}`. Cells
//! map `Null`/`Bool`/`Str` to their JSON natives, `Int` to a JSON integer,
//! finite `Float` to a JSON float (the shim preserves the int/float
//! distinction and prints shortest-round-trip floats, so decoding is
//! bit-exact), and the two lossy cases get tagged objects: `Date(d)` is
//! `{"date":d}` and non-finite floats are `{"f":"nan"|"inf"|"-inf"}`.
//!
//! Responses are tagged by `"kind"` (`join`/`groupby`/`pivot`/`unpivot`),
//! plus `"unavailable"` with a `"model"` payload — the wire form of
//! [`SuggestResponse::Unavailable`], whose `&'static str` arm decodes by
//! mapping the model name back onto the static names the pipeline uses.
//!
//! Every variant round-trips bit-for-bit: `decode(encode(x)) == x`,
//! including float payloads (compared by IEEE bits), which is what lets
//! the daemon integration tests assert served responses are byte-identical
//! to direct library calls.

use crate::pipeline::{SuggestRequest, SuggestResponse};
use crate::{GroupBySuggestion, JoinSuggestion, PivotSuggestion, UnpivotSuggestion};
use autosuggest_dataframe::{Column, DataFrame, Value as Cell};
use serde_json::{json, Value};
use std::fmt;

/// A malformed wire document (unknown tag, missing field, type mismatch,
/// ragged table). The payload is a human-readable path + reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(String);

impl WireError {
    fn new(msg: impl Into<String>) -> WireError {
        WireError(msg.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// The owned counterpart of [`SuggestRequest`]: same four operators, tables
/// held by value so a decoded request can outlive its transport buffer.
#[derive(Debug, Clone)]
pub enum OwnedSuggestRequest {
    Join { left: DataFrame, right: DataFrame, top_k: usize },
    GroupBy { table: DataFrame },
    Pivot { table: DataFrame, dims: Vec<usize> },
    Unpivot { table: DataFrame },
}

impl OwnedSuggestRequest {
    /// Borrow as the library request type (what `AutoSuggest::suggest`
    /// consumes).
    pub fn as_request(&self) -> SuggestRequest<'_> {
        match self {
            OwnedSuggestRequest::Join { left, right, top_k } => {
                SuggestRequest::Join { left, right, top_k: *top_k }
            }
            OwnedSuggestRequest::GroupBy { table } => SuggestRequest::GroupBy { table },
            OwnedSuggestRequest::Pivot { table, dims } => {
                SuggestRequest::Pivot { table, dims }
            }
            OwnedSuggestRequest::Unpivot { table } => SuggestRequest::Unpivot { table },
        }
    }

    /// The wire tag of this request's operator.
    pub fn op(&self) -> &'static str {
        match self {
            OwnedSuggestRequest::Join { .. } => "join",
            OwnedSuggestRequest::GroupBy { .. } => "groupby",
            OwnedSuggestRequest::Pivot { .. } => "pivot",
            OwnedSuggestRequest::Unpivot { .. } => "unpivot",
        }
    }
}

// ---------------------------------------------------------------------------
// Cells and tables
// ---------------------------------------------------------------------------

fn encode_f64(v: f64) -> Value {
    if v.is_finite() {
        Value::from(v)
    } else if v.is_nan() {
        json!({"f": "nan"})
    } else if v > 0.0 {
        json!({"f": "inf"})
    } else {
        json!({"f": "-inf"})
    }
}

fn decode_f64(v: &Value, ctx: &str) -> Result<f64, WireError> {
    if let Some(f) = v.as_f64() {
        return Ok(f);
    }
    if let Some(tag) = v.get("f").and_then(Value::as_str) {
        return match tag {
            "nan" => Ok(f64::NAN),
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            other => Err(WireError::new(format!("{ctx}: unknown float tag {other:?}"))),
        };
    }
    Err(WireError::new(format!("{ctx}: expected a number")))
}

/// Encode one cell value.
pub fn encode_cell(cell: &Cell) -> Value {
    match cell {
        Cell::Null => Value::Null,
        Cell::Bool(b) => Value::Bool(*b),
        Cell::Int(i) => Value::from(*i),
        Cell::Float(f) => encode_f64(*f),
        Cell::Str(s) => Value::String(s.clone()),
        Cell::Date(d) => json!({"date": *d}),
    }
}

/// Decode one cell value.
pub fn decode_cell(v: &Value) -> Result<Cell, WireError> {
    match v {
        Value::Null => Ok(Cell::Null),
        Value::Bool(b) => Ok(Cell::Bool(*b)),
        Value::String(s) => Ok(Cell::Str(s.clone())),
        Value::Number(n) => match n.as_i64() {
            // The shim keeps ints and floats distinct, so `1` and `1.0`
            // decode back to the cell dtype they were encoded from.
            Some(i) => Ok(Cell::Int(i)),
            None => Ok(Cell::Float(
                n.as_f64().ok_or_else(|| WireError::new("cell: unrepresentable number"))?,
            )),
        },
        Value::Object(_) => {
            if let Some(d) = v.get("date") {
                return Ok(Cell::Date(
                    d.as_i64().ok_or_else(|| WireError::new("cell: date must be an integer"))?,
                ));
            }
            if v.get("f").is_some() {
                return Ok(Cell::Float(decode_f64(v, "cell")?));
            }
            Err(WireError::new("cell: unknown tagged object"))
        }
        Value::Array(_) => Err(WireError::new("cell: arrays are not cell values")),
    }
}

/// Encode a table in columnar form.
pub fn encode_table(df: &DataFrame) -> Value {
    let columns: Vec<Value> = df
        .columns()
        .iter()
        .map(|c| {
            let values: Vec<Value> = c.values().iter().map(encode_cell).collect();
            json!({"name": c.name(), "values": Value::Array(values)})
        })
        .collect();
    json!({"columns": Value::Array(columns)})
}

/// Decode a columnar table. Ragged columns (unequal lengths) are rejected
/// by the `DataFrame` constructor and surface as a [`WireError`].
pub fn decode_table(v: &Value) -> Result<DataFrame, WireError> {
    let cols = v
        .get("columns")
        .and_then(Value::as_array)
        .ok_or_else(|| WireError::new("table: missing \"columns\" array"))?;
    let mut columns = Vec::with_capacity(cols.len());
    for (i, col) in cols.iter().enumerate() {
        let name = col
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| WireError::new(format!("table: column {i} missing \"name\"")))?;
        let values = col
            .get("values")
            .and_then(Value::as_array)
            .ok_or_else(|| WireError::new(format!("table: column {i} missing \"values\"")))?;
        let cells = values.iter().map(decode_cell).collect::<Result<Vec<_>, _>>()?;
        columns.push(Column::new(name, cells));
    }
    DataFrame::new(columns).map_err(|e| WireError::new(format!("table: {e}")))
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Encode a (borrowed) request. The owned form encodes identically via
/// [`OwnedSuggestRequest::as_request`].
pub fn encode_request(req: &SuggestRequest<'_>) -> Value {
    match req {
        SuggestRequest::Join { left, right, top_k } => json!({
            "op": "join",
            "left": encode_table(left),
            "right": encode_table(right),
            "top_k": *top_k,
        }),
        SuggestRequest::GroupBy { table } => {
            json!({"op": "groupby", "table": encode_table(table)})
        }
        SuggestRequest::Pivot { table, dims } => {
            let dims: Vec<Value> = dims.iter().map(|&d| Value::from(d)).collect();
            json!({"op": "pivot", "table": encode_table(table), "dims": Value::Array(dims)})
        }
        SuggestRequest::Unpivot { table } => {
            json!({"op": "unpivot", "table": encode_table(table)})
        }
    }
}

fn field<'v>(v: &'v Value, key: &str, op: &str) -> Result<&'v Value, WireError> {
    v.get(key).ok_or_else(|| WireError::new(format!("{op}: missing \"{key}\"")))
}

/// Decode a request document into its owned form.
pub fn decode_request(v: &Value) -> Result<OwnedSuggestRequest, WireError> {
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::new("request: missing \"op\" tag"))?;
    match op {
        "join" => {
            let top_k = field(v, "top_k", op)?
                .as_i64()
                .and_then(|k| usize::try_from(k).ok())
                .ok_or_else(|| WireError::new("join: \"top_k\" must be a non-negative integer"))?;
            Ok(OwnedSuggestRequest::Join {
                left: decode_table(field(v, "left", op)?)?,
                right: decode_table(field(v, "right", op)?)?,
                top_k,
            })
        }
        "groupby" => Ok(OwnedSuggestRequest::GroupBy {
            table: decode_table(field(v, "table", op)?)?,
        }),
        "pivot" => {
            let dims = field(v, "dims", op)?
                .as_array()
                .ok_or_else(|| WireError::new("pivot: \"dims\" must be an array"))?
                .iter()
                .map(|d| {
                    d.as_i64()
                        .and_then(|d| usize::try_from(d).ok())
                        .ok_or_else(|| WireError::new("pivot: dims must be column indices"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(OwnedSuggestRequest::Pivot {
                table: decode_table(field(v, "table", op)?)?,
                dims,
            })
        }
        "unpivot" => Ok(OwnedSuggestRequest::Unpivot {
            table: decode_table(field(v, "table", op)?)?,
        }),
        other => Err(WireError::new(format!("request: unknown op {other:?}"))),
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

fn strings(items: &[String]) -> Value {
    Value::Array(items.iter().map(|s| Value::String(s.clone())).collect())
}

fn decode_strings(v: &Value, ctx: &str) -> Result<Vec<String>, WireError> {
    v.as_array()
        .ok_or_else(|| WireError::new(format!("{ctx}: expected a string array")))?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| WireError::new(format!("{ctx}: expected a string")))
        })
        .collect()
}

/// Encode a response. [`SuggestResponse::Unavailable`] gains the wire form
/// `{"kind":"unavailable","model":<name>}`.
pub fn encode_response(resp: &SuggestResponse) -> Value {
    match resp {
        SuggestResponse::Join(suggestions) => {
            let items: Vec<Value> = suggestions
                .iter()
                .map(|s| {
                    json!({
                        "left_cols": strings(&s.left_cols),
                        "right_cols": strings(&s.right_cols),
                        "score": encode_f64(s.score),
                    })
                })
                .collect();
            json!({"kind": "join", "suggestions": Value::Array(items)})
        }
        SuggestResponse::GroupBy(suggestions) => {
            let items: Vec<Value> = suggestions
                .iter()
                .map(|s| json!({"column": s.column.clone(), "score": encode_f64(s.score)}))
                .collect();
            json!({"kind": "groupby", "suggestions": Value::Array(items)})
        }
        SuggestResponse::Pivot(opt) => {
            let suggestion = match opt {
                None => Value::Null,
                Some(p) => json!({
                    "index": strings(&p.index),
                    "header": strings(&p.header),
                    "objective": encode_f64(p.objective),
                }),
            };
            json!({"kind": "pivot", "suggestion": suggestion})
        }
        SuggestResponse::Unpivot(opt) => {
            let suggestion = match opt {
                None => Value::Null,
                Some(u) => json!({
                    "collapse": strings(&u.collapse),
                    "objective": encode_f64(u.objective),
                }),
            };
            json!({"kind": "unpivot", "suggestion": suggestion})
        }
        SuggestResponse::Unavailable(model) => {
            json!({"kind": "unavailable", "model": *model})
        }
    }
}

/// The static model names [`SuggestResponse::Unavailable`] can carry. The
/// decoder maps wire strings back onto these so the round-tripped variant
/// compares equal to the library-produced one.
const UNAVAILABLE_MODELS: &[&str] = &["join", "groupby", "pivot", "unpivot"];

/// Decode a response document.
pub fn decode_response(v: &Value) -> Result<SuggestResponse, WireError> {
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::new("response: missing \"kind\" tag"))?;
    match kind {
        "join" => {
            let items = field(v, "suggestions", kind)?
                .as_array()
                .ok_or_else(|| WireError::new("join: \"suggestions\" must be an array"))?
                .iter()
                .map(|s| {
                    Ok(JoinSuggestion {
                        left_cols: decode_strings(field(s, "left_cols", kind)?, "left_cols")?,
                        right_cols: decode_strings(field(s, "right_cols", kind)?, "right_cols")?,
                        score: decode_f64(field(s, "score", kind)?, "score")?,
                    })
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(SuggestResponse::Join(items))
        }
        "groupby" => {
            let items = field(v, "suggestions", kind)?
                .as_array()
                .ok_or_else(|| WireError::new("groupby: \"suggestions\" must be an array"))?
                .iter()
                .map(|s| {
                    Ok(GroupBySuggestion {
                        column: field(s, "column", kind)?
                            .as_str()
                            .ok_or_else(|| WireError::new("groupby: \"column\" must be a string"))?
                            .to_string(),
                        score: decode_f64(field(s, "score", kind)?, "score")?,
                    })
                })
                .collect::<Result<Vec<_>, WireError>>()?;
            Ok(SuggestResponse::GroupBy(items))
        }
        "pivot" => {
            let s = field(v, "suggestion", kind)?;
            let suggestion = if s.is_null() {
                None
            } else {
                Some(PivotSuggestion {
                    index: decode_strings(field(s, "index", kind)?, "index")?,
                    header: decode_strings(field(s, "header", kind)?, "header")?,
                    objective: decode_f64(field(s, "objective", kind)?, "objective")?,
                })
            };
            Ok(SuggestResponse::Pivot(suggestion))
        }
        "unpivot" => {
            let s = field(v, "suggestion", kind)?;
            let suggestion = if s.is_null() {
                None
            } else {
                Some(UnpivotSuggestion {
                    collapse: decode_strings(field(s, "collapse", kind)?, "collapse")?,
                    objective: decode_f64(field(s, "objective", kind)?, "objective")?,
                })
            };
            Ok(SuggestResponse::Unpivot(suggestion))
        }
        "unavailable" => {
            let model = field(v, "model", kind)?
                .as_str()
                .ok_or_else(|| WireError::new("unavailable: \"model\" must be a string"))?;
            let model = UNAVAILABLE_MODELS
                .iter()
                .find(|&&m| m == model)
                .copied()
                .ok_or_else(|| {
                    WireError::new(format!("unavailable: unknown model name {model:?}"))
                })?;
            Ok(SuggestResponse::Unavailable(model))
        }
        other => Err(WireError::new(format!("response: unknown kind {other:?}"))),
    }
}

/// Compare two responses for *wire equality*: float payloads by IEEE bits
/// (so `NaN == NaN` and `-0.0 != 0.0`), everything else structurally. This
/// is the "bit-for-bit" relation the daemon tests use, strictly stronger
/// in float handling than the derived `PartialEq`.
pub fn responses_bitwise_equal(a: &SuggestResponse, b: &SuggestResponse) -> bool {
    // Encoding is injective up to float bits (shortest-round-trip floats,
    // tagged non-finites), so comparing rendered documents compares bits.
    encode_response(a).to_string() == encode_response(b).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> DataFrame {
        DataFrame::from_columns(vec![
            ("id", vec![Cell::Int(1), Cell::Int(2), Cell::Int(3)]),
            (
                "name",
                vec![Cell::Str("a".into()), Cell::Null, Cell::Str("c".into())],
            ),
            (
                "mixed",
                vec![Cell::Float(2.5), Cell::Bool(true), Cell::Date(18262)],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn cells_roundtrip_including_tagged_forms() {
        let cells = [
            Cell::Null,
            Cell::Bool(false),
            Cell::Int(-42),
            Cell::Int(i64::MAX),
            Cell::Float(1.0),
            Cell::Float(-0.0),
            Cell::Float(f64::NAN),
            Cell::Float(f64::INFINITY),
            Cell::Float(f64::NEG_INFINITY),
            Cell::Float(0.1 + 0.2),
            Cell::Str("héllo\n\"quoted\"".into()),
            Cell::Date(-719162),
        ];
        for cell in &cells {
            let rendered = encode_cell(cell).to_string();
            let parsed = serde_json::from_str(&rendered).unwrap();
            let back = decode_cell(&parsed).unwrap();
            assert_eq!(
                encode_cell(&back).to_string(),
                rendered,
                "cell {cell:?} did not round-trip"
            );
            // Bit-exactness for floats specifically.
            if let (Cell::Float(a), Cell::Float(b)) = (cell, &back) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn tables_roundtrip_through_text() {
        let df = table();
        let text = encode_table(&df).to_string();
        let back = decode_table(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back.num_rows(), df.num_rows());
        assert_eq!(back.column_names(), df.column_names());
        assert_eq!(encode_table(&back).to_string(), text);
    }

    #[test]
    fn requests_roundtrip() {
        let t = table();
        let reqs = [
            OwnedSuggestRequest::Join { left: t.clone(), right: t.clone(), top_k: 3 },
            OwnedSuggestRequest::GroupBy { table: t.clone() },
            OwnedSuggestRequest::Pivot { table: t.clone(), dims: vec![0, 2] },
            OwnedSuggestRequest::Unpivot { table: t.clone() },
        ];
        for req in &reqs {
            let text = encode_request(&req.as_request()).to_string();
            let back = decode_request(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(back.op(), req.op());
            assert_eq!(encode_request(&back.as_request()).to_string(), text);
        }
    }

    #[test]
    fn responses_roundtrip_every_variant() {
        let responses = [
            SuggestResponse::Join(vec![JoinSuggestion {
                left_cols: vec!["a".into()],
                right_cols: vec!["b".into(), "c".into()],
                score: 0.875,
            }]),
            SuggestResponse::Join(vec![]),
            SuggestResponse::GroupBy(vec![GroupBySuggestion {
                column: "x".into(),
                score: f64::NAN,
            }]),
            SuggestResponse::Pivot(Some(PivotSuggestion {
                index: vec!["i".into()],
                header: vec!["h".into()],
                objective: -1.25,
            })),
            SuggestResponse::Pivot(None),
            SuggestResponse::Unpivot(Some(UnpivotSuggestion {
                collapse: vec!["c1".into(), "c2".into()],
                objective: f64::INFINITY,
            })),
            SuggestResponse::Unpivot(None),
            SuggestResponse::Unavailable("join"),
            SuggestResponse::Unavailable("unpivot"),
        ];
        for resp in &responses {
            let text = encode_response(resp).to_string();
            let back = decode_response(&serde_json::from_str(&text).unwrap()).unwrap();
            assert!(
                responses_bitwise_equal(resp, &back),
                "response {resp:?} did not round-trip: {text}"
            );
        }
    }

    #[test]
    fn malformed_documents_are_rejected_not_panicked() {
        let bad = [
            r#"{}"#,
            r#"{"op":"fly"}"#,
            r#"{"op":"join","left":{"columns":[]},"right":{"columns":[]}}"#,
            r#"{"op":"join","left":{"columns":[]},"right":{"columns":[]},"top_k":-1}"#,
            r#"{"op":"groupby","table":{"columns":[{"name":"a"}]}}"#,
            r#"{"op":"groupby","table":{"columns":[{"name":"a","values":[[1]]}]}}"#,
            r#"{"op":"pivot","table":{"columns":[]},"dims":["x"]}"#,
            // Ragged table: columns of different lengths.
            r#"{"op":"groupby","table":{"columns":[
                {"name":"a","values":[1,2]},{"name":"b","values":[1]}]}}"#,
        ];
        for text in bad {
            let v = serde_json::from_str(text).unwrap();
            assert!(decode_request(&v).is_err(), "accepted {text}");
        }
        assert!(decode_response(&serde_json::from_str(r#"{"kind":"?"}"#).unwrap()).is_err());
        assert!(decode_response(
            &serde_json::from_str(r#"{"kind":"unavailable","model":"nope"}"#).unwrap()
        )
        .is_err());
    }
}
