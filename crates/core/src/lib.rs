//! The Auto-Suggest predictors — the paper's primary contribution.
//!
//! Two recommendation tasks (§1):
//!
//! 1. **Single-operator prediction**: given input tables and a target
//!    operator, recommend its parameterisation —
//!    [`join::JoinColumnPredictor`] and [`join_type::JoinTypePredictor`]
//!    (§4.1), [`groupby::GroupByAggPredictor`] (§4.2),
//!    [`pivot::PivotPredictor`] via the AMPT formulation (§4.3), and
//!    [`unpivot::UnpivotPredictor`] via CMUT (§4.4).
//! 2. **Next-operator prediction** (§5): [`nextop::NextOpPredictor`]
//!    combines an RNN over the operator sequence with the raw scores of
//!    every single-operator model on the current table (Fig. 13).
//!
//! [`pipeline::AutoSuggest`] wires the whole system together: generate or
//! load a corpus, replay it, train every predictor on the resulting logs,
//! and serve ranked recommendations.

// Library code must degrade gracefully at crawl scale — panicking escape
// hatches are confined to tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod groupby;
pub mod join;
pub mod join_type;
pub mod model_slot;
pub mod nextop;
pub mod pipeline;
pub mod pivot;
pub mod retrain;
pub mod unpivot;
pub mod wire;

pub use groupby::{GroupByAggPredictor, GroupBySuggestion};
pub use join::{JoinColumnPredictor, JoinSuggestion};
pub use join_type::JoinTypePredictor;
pub use nextop::{NextOpPredictor, NextOpConfig};
pub use pipeline::{
    AutoSuggest, AutoSuggestConfig, SuggestRequest, SuggestResponse, TrainedModels,
};
pub use model_slot::{ModelSlot, VersionedModel};
pub use pivot::{PivotPredictor, PivotSuggestion};
pub use retrain::{RetrainDelta, RetrainPlanner, RetrainReport, RetrainStrategy};
pub use unpivot::{UnpivotPredictor, UnpivotSuggestion};
pub use wire::{OwnedSuggestRequest, WireError};
