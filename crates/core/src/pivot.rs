//! Pivot index/header prediction (§4.3, Table 8): a learned column-pair
//! affinity model + the AMPT optimization.

use autosuggest_corpus::replay::{OpInvocation, OpParams};
use autosuggest_dataframe::DataFrame;
use autosuggest_features::{affinity_features, AFFINITY_FEATURE_NAMES};
use autosuggest_gbdt::{Dataset, Gbdt, GbdtParams};
use autosuggest_graph::{ampt_exact, ampt_min_cut, AffinityGraph, AmptSolution};
use serde::{Deserialize, Serialize};

/// The learned pairwise affinity/compatibility regressor shared by Pivot
/// and Unpivot (§4.4 reuses "the same regression model and features").
///
/// Trained on pairs of columns from real pivot/melt invocations: same-side
/// pairs are positive examples (+1), cross-side pairs negative (−1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompatibilityModel {
    model: Gbdt,
}

/// Ground truth of a pivot invocation: (index column ids, header column
/// ids) resolved against the input frame.
pub fn pivot_ground_truth(inv: &OpInvocation) -> Option<(Vec<usize>, Vec<usize>)> {
    let OpParams::Pivot { index, header, .. } = &inv.params else { return None };
    let df = inv.inputs.first()?;
    let idx: Option<Vec<usize>> = index.iter().map(|n| df.column_index(n).ok()).collect();
    let hdr: Option<Vec<usize>> = header.iter().map(|n| df.column_index(n).ok()).collect();
    Some((idx?, hdr?))
}

/// Ground truth of a melt invocation: (id column ids, collapsed column ids).
pub fn melt_ground_truth(inv: &OpInvocation) -> Option<(Vec<usize>, Vec<usize>)> {
    let OpParams::Melt { id_vars, value_vars, .. } = &inv.params else { return None };
    let df = inv.inputs.first()?;
    let ids: Option<Vec<usize>> = id_vars.iter().map(|n| df.column_index(n).ok()).collect();
    let vals: Option<Vec<usize>> =
        value_vars.iter().map(|n| df.column_index(n).ok()).collect();
    Some((ids?, vals?))
}

/// Cap on pairs contributed per invocation, so a single 25-column melt does
/// not dominate the training set.
const MAX_PAIRS_PER_SIDE: usize = 40;

impl CompatibilityModel {
    /// Train from pivot and melt invocations.
    pub fn train(
        pivot_invs: &[&OpInvocation],
        melt_invs: &[&OpInvocation],
        gbdt: &GbdtParams,
    ) -> Option<Self> {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut labels: Vec<f64> = Vec::new();

        let add_pair = |df: &DataFrame, a: usize, b: usize, label: f64,
                            rows: &mut Vec<Vec<f64>>, labels: &mut Vec<f64>| {
            rows.push(affinity_features(df, a, b).values);
            labels.push(label);
        };

        for inv in pivot_invs {
            let Some((index, header)) = pivot_ground_truth(inv) else { continue };
            let df = &inv.inputs[0];
            let mut n = 0;
            for (i, &a) in index.iter().enumerate() {
                for &b in &index[i + 1..] {
                    if n < MAX_PAIRS_PER_SIDE {
                        add_pair(df, a, b, 1.0, &mut rows, &mut labels);
                        n += 1;
                    }
                }
            }
            for (i, &a) in header.iter().enumerate() {
                for &b in &header[i + 1..] {
                    if n < 2 * MAX_PAIRS_PER_SIDE {
                        add_pair(df, a, b, 1.0, &mut rows, &mut labels);
                        n += 1;
                    }
                }
            }
            let mut m = 0;
            for &a in &index {
                for &b in &header {
                    if m < MAX_PAIRS_PER_SIDE {
                        add_pair(df, a, b, -1.0, &mut rows, &mut labels);
                        m += 1;
                    }
                }
            }
        }
        for inv in melt_invs {
            let Some((ids, vals)) = melt_ground_truth(inv) else { continue };
            let df = &inv.inputs[0];
            // Collapsed columns are mutually compatible; (collapsed, id)
            // pairs are not; and id pairs are *also* negative for the
            // compatibility notion — id columns were available to collapse
            // and the author chose not to stack them. Without these
            // negatives, CMUT ties FD-linked id clusters against the true
            // value block (both are internally "affine").
            let mut n = 0;
            for (i, &a) in vals.iter().enumerate() {
                for &b in &vals[i + 1..] {
                    if n < MAX_PAIRS_PER_SIDE {
                        add_pair(df, a, b, 1.0, &mut rows, &mut labels);
                        n += 1;
                    }
                }
            }
            let mut m = 0;
            for &a in &vals {
                for &b in &ids {
                    if m < MAX_PAIRS_PER_SIDE {
                        add_pair(df, a, b, -1.0, &mut rows, &mut labels);
                        m += 1;
                    }
                }
            }
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    add_pair(df, a, b, -1.0, &mut rows, &mut labels);
                }
            }
        }
        if rows.is_empty() {
            return None;
        }
        let names = AFFINITY_FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
        let data = Dataset::new(names, rows, labels).ok()?;
        Some(CompatibilityModel { model: Gbdt::fit(&data, gbdt) })
    }

    /// Affinity score for a column pair, clamped to the training label
    /// range `[-1, 1]`.
    pub fn score(&self, df: &DataFrame, a: usize, b: usize) -> f64 {
        self.model
            .predict(&affinity_features(df, a, b).values)
            .clamp(-1.0, 1.0)
    }

    /// Build the affinity graph over an arbitrary set of columns of `df`
    /// (vertices are positions within `cols`).
    pub fn graph(&self, df: &DataFrame, cols: &[usize]) -> AffinityGraph {
        let mut g = AffinityGraph::new(cols.len());
        for i in 0..cols.len() {
            for j in (i + 1)..cols.len() {
                g.set(i, j, self.score(df, cols[i], cols[j]));
            }
        }
        g
    }
}

/// A predicted pivot configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PivotSuggestion {
    pub index: Vec<String>,
    pub header: Vec<String>,
    pub objective: f64,
}

/// The AMPT-based index/header splitter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PivotPredictor {
    compat: CompatibilityModel,
}

impl PivotPredictor {
    pub fn new(compat: CompatibilityModel) -> Self {
        PivotPredictor { compat }
    }

    pub fn compatibility(&self) -> &CompatibilityModel {
        &self.compat
    }

    /// Split the user-selected dimension columns into index vs. header
    /// (Lemma 1: exact for the handful of dimensions pivots have; the
    /// min-cut path covers pathological widths).
    pub fn split(&self, df: &DataFrame, dims: &[usize]) -> Option<AmptSolution> {
        if dims.len() < 2 {
            return None;
        }
        let g = self.compat.graph(df, dims);
        let sol = if dims.len() <= 16 { ampt_exact(&g) } else { ampt_min_cut(&g) }?;
        // Orient: the larger side is the index (pivot tables are wider than
        // tall only when the header is the small categorical set).
        let (index, header) = if sol.index.len() >= sol.header.len() {
            (sol.index, sol.header)
        } else {
            (sol.header, sol.index)
        };
        Some(AmptSolution { index, header, objective: sol.objective })
    }

    /// Named suggestion for the end-user API.
    pub fn suggest(&self, df: &DataFrame, dims: &[usize]) -> Option<PivotSuggestion> {
        let sol = self.split(df, dims)?;
        Some(PivotSuggestion {
            index: sol
                .index
                .iter()
                .map(|&i| df.column_at(dims[i]).name().to_string())
                .collect(),
            header: sol
                .header
                .iter()
                .map(|&i| df.column_at(dims[i]).name().to_string())
                .collect(),
            objective: sol.objective,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_corpus::{CorpusConfig, CorpusGenerator, OpKind, ReplayEngine};

    fn train_small() -> (PivotPredictor, Vec<OpInvocation>) {
        let mut cfg = CorpusConfig::small(41);
        cfg.plant_failures = false;
        cfg.join_notebooks = 0;
        cfg.groupby_notebooks = 0;
        cfg.json_notebooks = 0;
        cfg.flow_notebooks = 0;
        cfg.pivot_notebooks = 25;
        cfg.unpivot_notebooks = 10;
        let corpus = CorpusGenerator::new(cfg).generate();
        let engine = ReplayEngine::new(corpus.repository.clone());
        let mut pivots = Vec::new();
        let mut melts = Vec::new();
        for nb in &corpus.notebooks {
            for inv in engine.replay(nb).invocations {
                match inv.op {
                    OpKind::Pivot => pivots.push(inv),
                    OpKind::Melt => melts.push(inv),
                    _ => {}
                }
            }
        }
        let (pivots, _) = autosuggest_corpus::filter_invocations(pivots, 5);
        let (melts, _) = autosuggest_corpus::filter_invocations(melts, 5);
        let prefs: Vec<&OpInvocation> = pivots.iter().collect();
        let mrefs: Vec<&OpInvocation> = melts.iter().collect();
        let gbdt = GbdtParams { n_trees: 40, ..Default::default() };
        let compat = CompatibilityModel::train(&prefs, &mrefs, &gbdt).unwrap();
        (PivotPredictor::new(compat), pivots)
    }

    #[test]
    fn recovers_planted_splits_on_training_cases() {
        let (model, pivots) = train_small();
        let mut correct = 0;
        let mut total = 0;
        for inv in pivots.iter().take(20) {
            let (index, header) = pivot_ground_truth(inv).unwrap();
            let mut dims: Vec<usize> = index.iter().chain(&header).copied().collect();
            dims.sort_unstable();
            let Some(sol) = model.split(&inv.inputs[0], &dims) else { continue };
            let pred_index: Vec<usize> = sol.index.iter().map(|&i| dims[i]).collect();
            let pred_header: Vec<usize> = sol.header.iter().map(|&i| dims[i]).collect();
            let mut truth_index = index.clone();
            truth_index.sort_unstable();
            let mut truth_header = header.clone();
            truth_header.sort_unstable();
            total += 1;
            let exact = (pred_index == truth_index && pred_header == truth_header)
                || (pred_index == truth_header && pred_header == truth_index);
            if exact {
                correct += 1;
            }
        }
        assert!(total >= 10);
        assert!(
            correct as f64 / total as f64 > 0.6,
            "split accuracy {correct}/{total}"
        );
    }

    #[test]
    fn compatibility_scores_are_clamped() {
        let (model, pivots) = train_small();
        let df = &pivots[0].inputs[0];
        for a in 0..df.num_columns() {
            for b in (a + 1)..df.num_columns() {
                let s = model.compatibility().score(df, a, b);
                assert!((-1.0..=1.0).contains(&s));
            }
        }
    }

    #[test]
    fn single_dimension_has_no_split() {
        let (model, pivots) = train_small();
        assert!(model.split(&pivots[0].inputs[0], &[0]).is_none());
    }

    #[test]
    fn suggest_names_the_columns() {
        let (model, pivots) = train_small();
        let inv = &pivots[0];
        let (index, header) = pivot_ground_truth(inv).unwrap();
        let dims: Vec<usize> = index.iter().chain(&header).copied().collect();
        let s = model.suggest(&inv.inputs[0], &dims).unwrap();
        assert!(!s.index.is_empty() && !s.header.is_empty());
    }
}
