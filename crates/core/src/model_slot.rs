//! Versioned, hot-swappable handle to a trained [`AutoSuggest`] system.
//!
//! The daemon serves from a [`ModelSlot`]: readers grab an
//! `Arc<VersionedModel>` under a briefly-held lock and then answer any
//! number of requests against that snapshot with no further
//! synchronisation. A reload trains a replacement off to the side and
//! installs it with [`ModelSlot::swap`] — a single `Arc` store, so
//! in-flight batches finish on the model they started with and new
//! batches pick up the new version. Nothing ever serves a half-trained
//! model and no request observes two versions.

use crate::pipeline::AutoSuggest;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A trained system plus the monotonically increasing version it was
/// installed as. Versions start at 1 for the model the slot was created
/// with and bump by one per [`ModelSlot::swap`].
pub struct VersionedModel {
    pub version: u64,
    pub system: AutoSuggest,
}

/// A shared, swappable slot holding the current [`VersionedModel`].
///
/// `load()` is cheap (one `RwLock` read + `Arc` clone) and never blocks
/// behind training: `swap()` takes the write lock only for the pointer
/// store, after the replacement is fully built.
pub struct ModelSlot {
    current: RwLock<Arc<VersionedModel>>,
}

fn read_recover(lock: &RwLock<Arc<VersionedModel>>) -> RwLockReadGuard<'_, Arc<VersionedModel>> {
    match lock.read() {
        Ok(g) => g,
        // A panic while holding the lock can only have happened during the
        // pointer store, which is atomic w.r.t. the Arc — the value is intact.
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn write_recover(lock: &RwLock<Arc<VersionedModel>>) -> RwLockWriteGuard<'_, Arc<VersionedModel>> {
    match lock.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ModelSlot {
    /// Wrap an initial trained system as version 1.
    pub fn new(system: AutoSuggest) -> ModelSlot {
        ModelSlot {
            current: RwLock::new(Arc::new(VersionedModel { version: 1, system })),
        }
    }

    /// Snapshot the current model. The returned `Arc` stays valid across
    /// any concurrent [`swap`](ModelSlot::swap).
    pub fn load(&self) -> Arc<VersionedModel> {
        Arc::clone(&read_recover(&self.current))
    }

    /// Install a replacement system, returning the version it was
    /// assigned. Callers train the replacement *before* calling this;
    /// the critical section is just the pointer store.
    pub fn swap(&self, system: AutoSuggest) -> u64 {
        let mut guard = write_recover(&self.current);
        let version = guard.version + 1;
        *guard = Arc::new(VersionedModel { version, system });
        version
    }

    /// The currently installed version.
    pub fn version(&self) -> u64 {
        read_recover(&self.current).version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::AutoSuggestConfig;

    #[test]
    fn swap_bumps_version_and_old_snapshots_survive() {
        let cfg = AutoSuggestConfig::fast(11);
        let slot = ModelSlot::new(AutoSuggest::train(cfg.clone()));
        assert_eq!(slot.version(), 1);

        let before = slot.load();
        assert_eq!(before.version, 1);

        let v2 = slot.swap(AutoSuggest::train(cfg.clone()));
        assert_eq!(v2, 2);
        assert_eq!(slot.version(), 2);

        // The pre-swap snapshot is still the old version and still usable.
        assert_eq!(before.version, 1);
        assert_eq!(slot.load().version, 2);
    }

    #[test]
    fn concurrent_loads_during_swap_see_exactly_one_version() {
        let cfg = AutoSuggestConfig::fast(7);
        let slot = std::sync::Arc::new(ModelSlot::new(AutoSuggest::train(cfg.clone())));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let m = slot.load();
                        assert!(m.version >= last, "versions must be monotone per reader");
                        last = m.version;
                    }
                    last
                })
            })
            .collect();

        let replacement = AutoSuggest::train(cfg.clone());
        let v = slot.swap(replacement);
        assert_eq!(v, 2);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            let last = r.join().expect("reader thread panicked");
            assert!(last <= 2);
        }
    }
}
