//! Unpivot column selection (§4.4, Table 9): the CMUT optimization over
//! the learned compatibility graph.

use crate::pivot::CompatibilityModel;
use autosuggest_dataframe::DataFrame;
use autosuggest_graph::{cmut_greedy, CmutSolution};
use serde::{Deserialize, Serialize};

/// A predicted Unpivot: the columns to collapse.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnpivotSuggestion {
    pub collapse: Vec<String>,
    pub objective: f64,
}

/// CMUT-based Unpivot predictor, reusing the Pivot compatibility model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnpivotPredictor {
    compat: CompatibilityModel,
}

impl UnpivotPredictor {
    pub fn new(compat: CompatibilityModel) -> Self {
        UnpivotPredictor { compat }
    }

    /// Select the column indices to collapse (the paper's greedy, §4.4).
    /// `None` when the table has fewer than 3 columns (no strict subset of
    /// size ≥ 2 exists).
    pub fn select(&self, df: &DataFrame) -> Option<CmutSolution> {
        let cols: Vec<usize> = (0..df.num_columns()).collect();
        if cols.len() < 3 {
            return None;
        }
        let g = self.compat.graph(df, &cols);
        cmut_greedy(&g)
    }

    /// Named suggestion for the end-user API.
    pub fn suggest(&self, df: &DataFrame) -> Option<UnpivotSuggestion> {
        let sol = self.select(df)?;
        Some(UnpivotSuggestion {
            collapse: sol
                .selected
                .iter()
                .map(|&i| df.column_at(i).name().to_string())
                .collect(),
            objective: sol.objective,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pivot::{melt_ground_truth, CompatibilityModel};
    use autosuggest_corpus::replay::OpInvocation;
    use autosuggest_corpus::{CorpusConfig, CorpusGenerator, OpKind, ReplayEngine};
    use autosuggest_gbdt::GbdtParams;
    use autosuggest_ranking::set_prf;

    fn train_small() -> (UnpivotPredictor, Vec<OpInvocation>) {
        let mut cfg = CorpusConfig::small(51);
        cfg.plant_failures = false;
        cfg.join_notebooks = 0;
        cfg.groupby_notebooks = 0;
        cfg.json_notebooks = 0;
        cfg.flow_notebooks = 0;
        cfg.pivot_notebooks = 10;
        cfg.unpivot_notebooks = 25;
        let corpus = CorpusGenerator::new(cfg).generate();
        let engine = ReplayEngine::new(corpus.repository.clone());
        let mut pivots = Vec::new();
        let mut melts = Vec::new();
        for nb in &corpus.notebooks {
            for inv in engine.replay(nb).invocations {
                match inv.op {
                    OpKind::Pivot => pivots.push(inv),
                    OpKind::Melt => melts.push(inv),
                    _ => {}
                }
            }
        }
        let (melts, _) = autosuggest_corpus::filter_invocations(melts, 5);
        let prefs: Vec<&OpInvocation> = pivots.iter().collect();
        let mrefs: Vec<&OpInvocation> = melts.iter().collect();
        let gbdt = GbdtParams { n_trees: 40, ..Default::default() };
        let compat = CompatibilityModel::train(&prefs, &mrefs, &gbdt).unwrap();
        (UnpivotPredictor::new(compat), melts)
    }

    #[test]
    fn selects_collapse_blocks_with_high_f1() {
        let (model, melts) = train_small();
        let mut f1s = Vec::new();
        for inv in melts.iter().take(15) {
            let (_, truth) = melt_ground_truth(inv).unwrap();
            let Some(sol) = model.select(&inv.inputs[0]) else { continue };
            f1s.push(set_prf(&sol.selected, &truth).f1);
        }
        assert!(f1s.len() >= 8);
        let mean: f64 = f1s.iter().sum::<f64>() / f1s.len() as f64;
        assert!(mean > 0.75, "mean column F1 {mean} over {} cases", f1s.len());
    }

    #[test]
    fn tiny_tables_have_no_selection() {
        let (model, _) = train_small();
        let df = autosuggest_dataframe::DataFrame::from_columns(vec![
            ("a", vec![autosuggest_dataframe::Value::Int(1)]),
            ("b", vec![autosuggest_dataframe::Value::Int(2)]),
        ])
        .unwrap();
        assert!(model.select(&df).is_none());
    }

    #[test]
    fn suggestion_names_match_selection() {
        let (model, melts) = train_small();
        let df = &melts[0].inputs[0];
        let sol = model.select(df).unwrap();
        let sug = model.suggest(df).unwrap();
        assert_eq!(sol.selected.len(), sug.collapse.len());
        for (&i, name) in sol.selected.iter().zip(&sug.collapse) {
            assert_eq!(df.column_at(i).name(), name);
        }
    }
}
