//! Next-operator prediction (§5, Table 11): RNN over the operator history,
//! concatenated with single-operator model scores on the current table
//! (Fig. 13).

use crate::groupby::GroupByAggPredictor;
use crate::pivot::CompatibilityModel;
use autosuggest_corpus::OpKind;
use autosuggest_dataframe::{DataFrame, DType};
use autosuggest_graph::cmut_greedy;
use autosuggest_nn::rnn::SequenceExample;
use autosuggest_nn::{RnnClassifier, RnnConfig};
use serde::{Deserialize, Serialize};

/// Number of operators in the prediction vocabulary
/// ([`OpKind::SEQUENCE_OPS`]).
pub const NUM_OPS: usize = 7;

/// One next-operator example: the operator prefix, the single-operator
/// scores of the table available at this step, and the operator that
/// actually came next.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NextOpExample {
    pub prefix: Vec<usize>,
    pub table_scores: Vec<f64>,
    pub label: usize,
}

/// Single-operator prediction scores for a table, ordered like
/// [`OpKind::SEQUENCE_OPS`] = `[concat, dropna, fillna, groupby, melt,
/// merge, pivot]`.
///
/// These are the "raw scores of each operator" Fig. 13 concatenates with
/// the RNN state: the GroupBy model scores dimension-ness, the CMUT
/// objective signals pivot-shaped tables ("we obtain a large
/// objective-function value in CMUT when T_i is appropriate for Unpivot"),
/// and null statistics drive the cleaning operators.
pub fn single_op_scores(
    df: &DataFrame,
    groupby: &GroupByAggPredictor,
    compat: &CompatibilityModel,
) -> Vec<f64> {
    let n = df.num_columns();
    if n == 0 {
        return vec![0.0; NUM_OPS];
    }
    // An untrained GroupBy model (e.g. a corpus with zero groupby
    // sequences) may produce no scores at all; table signals degrade to
    // zero rather than panicking.
    let gb_scores = groupby.scores(df);
    let mut sorted_gb = gb_scores.clone();
    sorted_gb.sort_by(f64::total_cmp);
    let top_gb = sorted_gb.last().copied().unwrap_or(0.0);
    let second_gb = if sorted_gb.len() >= 2 {
        sorted_gb[sorted_gb.len() - 2]
    } else {
        0.0
    };
    let min_gb = sorted_gb.first().copied().unwrap_or(0.0);
    let measure_presence = (1.0 - min_gb).clamp(0.0, 1.0);

    let emptiness: Vec<f64> = df.columns().iter().map(|c| c.emptiness()).collect();
    let max_empty = emptiness.iter().copied().fold(0.0, f64::max);
    let mean_empty = emptiness.iter().sum::<f64>() / n as f64;

    // CMUT objective over the full column set (capped width for cost).
    let melt_score = if n >= 3 {
        let cols: Vec<usize> = (0..n.min(30)).collect();
        let g = compat.graph(df, &cols);
        cmut_greedy(&g)
            .map(|s| (s.objective / 2.0).clamp(0.0, 1.0))
            .unwrap_or(0.0)
    } else {
        0.0
    };

    // Merge wants a key: a near-unique string column.
    let merge_score = df
        .columns()
        .iter()
        .filter(|c| c.dtype() == DType::Str)
        .map(|c| c.distinct_ratio())
        .fold(0.0, f64::max);

    let groupby_score = (top_gb * measure_presence).clamp(0.0, 1.0);
    let pivot_score = (second_gb * measure_presence).clamp(0.0, 1.0) * (1.0 - melt_score);

    vec![
        0.2,                                  // concat: weak prior, no table signal
        max_empty.clamp(0.0, 1.0),            // dropna
        (2.0 * mean_empty).clamp(0.0, 1.0),   // fillna
        groupby_score,                        // groupby
        melt_score,                           // melt / unpivot
        merge_score.clamp(0.0, 1.0),          // merge
        pivot_score,                          // pivot
    ]
}

/// Model variants of Table 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NextOpMode {
    /// Fig. 13: RNN + single-operator scores (Auto-Suggest).
    Full,
    /// Sequence-only RNN baseline.
    RnnOnly,
    /// Table-only baseline: rank by the single-operator scores directly.
    SingleOperators,
}

/// Configuration for the next-operator model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NextOpConfig {
    pub mode: NextOpMode,
    pub embed_dim: usize,
    pub hidden_dim: usize,
    pub mlp_hidden: usize,
    pub epochs: usize,
    pub lr: f64,
    /// Examples per Adam step (see [`RnnConfig::batch_size`]); 1 keeps the
    /// historical per-example schedule bit-for-bit.
    pub batch_size: usize,
    pub seed: u64,
}

impl Default for NextOpConfig {
    fn default() -> Self {
        NextOpConfig {
            mode: NextOpMode::Full,
            embed_dim: 12,
            hidden_dim: 24,
            mlp_hidden: 24,
            epochs: 40,
            lr: 5e-3,
            batch_size: 1,
            seed: 7,
        }
    }
}

/// The next-operator predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NextOpPredictor {
    cfg: NextOpConfig,
    rnn: Option<RnnClassifier>,
}

impl NextOpPredictor {
    /// Train on examples. `SingleOperators` mode needs no training.
    pub fn train(cfg: NextOpConfig, examples: &[NextOpExample]) -> Self {
        let rnn = match cfg.mode {
            NextOpMode::SingleOperators => None,
            mode => {
                let extra_dim = if mode == NextOpMode::Full { NUM_OPS } else { 0 };
                let rnn_cfg = RnnConfig {
                    vocab: NUM_OPS,
                    embed_dim: cfg.embed_dim,
                    hidden_dim: cfg.hidden_dim,
                    extra_dim,
                    mlp_hidden: cfg.mlp_hidden,
                    classes: NUM_OPS,
                    lr: cfg.lr,
                    epochs: cfg.epochs,
                    batch_size: cfg.batch_size,
                    seed: cfg.seed,
                };
                let seq_examples: Vec<SequenceExample> = examples
                    .iter()
                    .map(|e| SequenceExample {
                        prefix: e.prefix.clone(),
                        extra: if extra_dim > 0 { e.table_scores.clone() } else { vec![] },
                        label: e.label,
                    })
                    .collect();
                let mut model = RnnClassifier::new(rnn_cfg);
                if !seq_examples.is_empty() {
                    let started = std::time::Instant::now();
                    model.train(&seq_examples);
                    autosuggest_obs::observe_since("nextop.rnn_train_seconds", started);
                }
                Some(model)
            }
        };
        NextOpPredictor { cfg, rnn }
    }

    /// Warm-start fine-tuning: clone `prev` and continue training its RNN
    /// over `examples` for another `cfg.epochs` epochs (fresh optimiser
    /// moments, resumed weights). This is the *approximate* incremental
    /// path — the result is deterministic (same prev + same examples ⇒
    /// same bits) but is **not** claimed equal to retraining from scratch
    /// on any union; callers opt in via the planner's warm strategy and
    /// give up the exactness guarantee in exchange for touching only the
    /// (reservoir-bounded) example buffer. `SingleOperators` predictors
    /// have nothing to tune and come back as plain clones.
    pub fn train_continue_from(prev: &NextOpPredictor, examples: &[NextOpExample]) -> Self {
        let mut next = prev.clone();
        if let Some(rnn) = &mut next.rnn {
            let extra_dim = if next.cfg.mode == NextOpMode::Full { NUM_OPS } else { 0 };
            let seq_examples: Vec<SequenceExample> = examples
                .iter()
                .map(|e| SequenceExample {
                    prefix: e.prefix.clone(),
                    extra: if extra_dim > 0 { e.table_scores.clone() } else { vec![] },
                    label: e.label,
                })
                .collect();
            let started = std::time::Instant::now();
            let mut state = rnn.train_state();
            rnn.train_continue(&seq_examples, &mut state);
            autosuggest_obs::observe_since("nextop.rnn_train_seconds", started);
        }
        next
    }

    /// Operator ids ranked by likelihood of coming next.
    pub fn predict_ranked(&self, prefix: &[usize], table_scores: &[f64]) -> Vec<usize> {
        match (&self.rnn, self.cfg.mode) {
            (None, _) => {
                let mut order: Vec<usize> = (0..NUM_OPS).collect();
                order.sort_by(|&a, &b| {
                    table_scores[b].total_cmp(&table_scores[a]).then(a.cmp(&b))
                });
                order
            }
            (Some(rnn), NextOpMode::Full) => rnn.predict_ranked(prefix, table_scores),
            (Some(rnn), _) => rnn.predict_ranked(prefix, &[]),
        }
    }

    /// [`Self::predict_ranked`] over a batch of queries: RNN modes bucket
    /// the prefixes by length and score them on shared scratch buffers
    /// (one allocation pass for the whole batch); each output row is
    /// bit-identical to the per-query call.
    pub fn predict_ranked_batch(&self, queries: &[(&[usize], &[f64])]) -> Vec<Vec<usize>> {
        match (&self.rnn, self.cfg.mode) {
            (None, _) => queries
                .iter()
                .map(|(p, ts)| self.predict_ranked(p, ts))
                .collect(),
            (Some(rnn), NextOpMode::Full) => rnn.predict_ranked_batch(queries),
            (Some(rnn), _) => {
                let stripped: Vec<(&[usize], &[f64])> =
                    queries.iter().map(|&(p, _)| (p, &[] as &[f64])).collect();
                rnn.predict_ranked_batch(&stripped)
            }
        }
    }

    /// The operator most likely to come next, as an [`OpKind`].
    pub fn predict(&self, prefix: &[usize], table_scores: &[f64]) -> OpKind {
        OpKind::SEQUENCE_OPS[self.predict_ranked(prefix, table_scores)[0]]
    }

    pub fn mode(&self) -> NextOpMode {
        self.cfg.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_examples() -> Vec<NextOpExample> {
        // Deterministic rule: after merge (5) comes groupby (3); after
        // groupby comes pivot (6); otherwise dropna (1).
        let mut out = Vec::new();
        for _ in 0..12 {
            out.push(NextOpExample {
                prefix: vec![5],
                table_scores: vec![0.0; NUM_OPS],
                label: 3,
            });
            out.push(NextOpExample {
                prefix: vec![5, 3],
                table_scores: vec![0.0; NUM_OPS],
                label: 6,
            });
            out.push(NextOpExample {
                prefix: vec![0],
                table_scores: vec![0.0; NUM_OPS],
                label: 1,
            });
        }
        out
    }

    #[test]
    fn rnn_only_learns_sequence_rules() {
        let cfg = NextOpConfig { mode: NextOpMode::RnnOnly, epochs: 80, ..Default::default() };
        let model = NextOpPredictor::train(cfg, &fake_examples());
        assert_eq!(model.predict(&[5], &[0.0; NUM_OPS]), OpKind::GroupBy);
        assert_eq!(model.predict(&[5, 3], &[0.0; NUM_OPS]), OpKind::Pivot);
    }

    #[test]
    fn single_operators_mode_ranks_by_scores_without_training() {
        let cfg = NextOpConfig { mode: NextOpMode::SingleOperators, ..Default::default() };
        let model = NextOpPredictor::train(cfg, &[]);
        let mut scores = vec![0.0; NUM_OPS];
        scores[4] = 0.9; // melt
        assert_eq!(model.predict(&[], &scores), OpKind::Melt);
    }

    #[test]
    fn full_mode_uses_table_scores_to_break_sequence_ties() {
        // The sequence alone is ambiguous (same prefix, two labels); the
        // table score disambiguates.
        let mut examples = Vec::new();
        for i in 0..30 {
            let melt_like = i % 2 == 0;
            let mut ts = vec![0.0; NUM_OPS];
            ts[4] = if melt_like { 0.9 } else { 0.05 };
            ts[3] = if melt_like { 0.05 } else { 0.9 };
            examples.push(NextOpExample {
                prefix: vec![1],
                table_scores: ts,
                label: if melt_like { 4 } else { 3 },
            });
        }
        let cfg = NextOpConfig { mode: NextOpMode::Full, epochs: 80, ..Default::default() };
        let model = NextOpPredictor::train(cfg, &examples);
        let mut melt_table = vec![0.0; NUM_OPS];
        melt_table[4] = 0.9;
        melt_table[3] = 0.05;
        assert_eq!(model.predict(&[1], &melt_table), OpKind::Melt);
        let mut gb_table = vec![0.0; NUM_OPS];
        gb_table[3] = 0.9;
        gb_table[4] = 0.05;
        assert_eq!(model.predict(&[1], &gb_table), OpKind::GroupBy);
    }

    #[test]
    fn batch_ranking_matches_per_query_ranking() {
        for mode in [NextOpMode::Full, NextOpMode::RnnOnly, NextOpMode::SingleOperators] {
            let cfg = NextOpConfig { mode, epochs: 20, ..Default::default() };
            let model = NextOpPredictor::train(cfg, &fake_examples());
            let queries: Vec<(Vec<usize>, Vec<f64>)> = vec![
                (vec![5], vec![0.1; NUM_OPS]),
                (vec![], vec![0.5; NUM_OPS]),
                (vec![5, 3], vec![0.0; NUM_OPS]),
                (vec![0], vec![0.9; NUM_OPS]),
            ];
            let refs: Vec<(&[usize], &[f64])> =
                queries.iter().map(|(p, t)| (p.as_slice(), t.as_slice())).collect();
            let batched = model.predict_ranked_batch(&refs);
            for (i, (p, t)) in refs.iter().enumerate() {
                assert_eq!(batched[i], model.predict_ranked(p, t), "mode {mode:?} query {i}");
            }
        }
    }

    #[test]
    fn ranked_output_is_permutation_of_ops() {
        let cfg = NextOpConfig { mode: NextOpMode::SingleOperators, ..Default::default() };
        let model = NextOpPredictor::train(cfg, &[]);
        let mut r = model.predict_ranked(&[], &[0.3; NUM_OPS]);
        r.sort_unstable();
        assert_eq!(r, (0..NUM_OPS).collect::<Vec<_>>());
    }
}
