//! Join type prediction (§4.1, Table 5): inner vs. left vs. right vs.
//! full-outer, from the relative "shapes" of the two input tables.

use crate::join::ground_truth_candidate;
use autosuggest_corpus::replay::{OpInvocation, OpParams};
use autosuggest_dataframe::ops::JoinType;
use autosuggest_dataframe::DataFrame;
use autosuggest_features::{join_features, JoinCandidate};
use autosuggest_gbdt::{Dataset, Gbdt, GbdtParams};
use serde::{Deserialize, Serialize};

/// Feature names for the join-type model.
const TYPE_FEATURE_NAMES: [&str; 9] = [
    "row_ratio_log",
    "left_rows_log",
    "right_rows_log",
    "left_cols",
    "right_cols",
    "right_is_narrow",
    "right_cols_subsumed",
    "containment_left_in_right",
    "containment_right_in_left",
];

/// Shape features for (left, right, join columns): the signals §4.1 calls
/// out — a much larger "central" table suggests enrichment (outer/left),
/// a narrow right table whose columns the left already has suggests a
/// filtering inner join.
pub fn join_type_features(
    left: &DataFrame,
    right: &DataFrame,
    cand: &JoinCandidate,
) -> Vec<f64> {
    let jf = join_features(left, right, cand);
    let lrows = left.num_rows().max(1) as f64;
    let rrows = right.num_rows().max(1) as f64;
    let right_names: Vec<String> = right
        .column_names()
        .iter()
        .map(|s| s.to_lowercase())
        .collect();
    let left_names: std::collections::HashSet<String> = left
        .column_names()
        .iter()
        .map(|s| s.to_lowercase())
        .collect();
    let subsumed = right_names
        .iter()
        .filter(|n| left_names.contains(*n))
        .count() as f64
        / right_names.len().max(1) as f64;
    vec![
        (lrows / rrows).ln(),
        lrows.ln(),
        rrows.ln(),
        left.num_columns() as f64,
        right.num_columns() as f64,
        if right.num_columns() <= 2 { 1.0 } else { 0.0 },
        subsumed,
        jf.get("containment_left_in_right"),
        jf.get("containment_right_in_left"),
    ]
}

/// One-vs-rest GBDTs over the four join types.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinTypePredictor {
    models: Vec<Gbdt>,
}

impl JoinTypePredictor {
    /// Train from merge invocations (the logged `how` is the label).
    pub fn train(invocations: &[&OpInvocation], gbdt: &GbdtParams) -> Option<Self> {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut hows: Vec<JoinType> = Vec::new();
        for inv in invocations {
            let OpParams::Merge { how, .. } = &inv.params else { continue };
            let Some(truth) = ground_truth_candidate(inv) else { continue };
            rows.push(join_type_features(&inv.inputs[0], &inv.inputs[1], &truth));
            hows.push(*how);
        }
        if rows.is_empty() {
            return None;
        }
        let names: Vec<String> = TYPE_FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
        // The four one-vs-rest fits are independent, so they train on the
        // pool; `par_map` returns them in `JoinType::ALL` order and each
        // fit's arithmetic is untouched, so the models are bit-identical
        // to the sequential loop at any thread count.
        let fitted: Vec<Option<Gbdt>> = autosuggest_parallel::par_map(&JoinType::ALL, |&jt| {
            let labels: Vec<f64> = hows
                .iter()
                .map(|&h| if h == jt { 1.0 } else { 0.0 })
                .collect();
            let data = Dataset::new(names.clone(), rows.clone(), labels).ok()?;
            Some(Gbdt::fit(&data, gbdt))
        });
        let models: Option<Vec<Gbdt>> = fitted.into_iter().collect();
        Some(JoinTypePredictor { models: models? })
    }

    /// Scores per join type, ordered as [`JoinType::ALL`].
    pub fn scores(&self, left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> Vec<f64> {
        let f = join_type_features(left, right, cand);
        self.models.iter().map(|m| m.predict(&f)).collect()
    }

    /// The most likely join type.
    pub fn predict(&self, left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> JoinType {
        let scores = self.scores(left, right, cand);
        let best = (0..scores.len())
            .max_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .unwrap_or(0);
        JoinType::ALL[best]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;

    fn table(rows: usize, cols: usize, tag: &str) -> DataFrame {
        let columns = (0..cols)
            .map(|c| {
                (
                    format!("{tag}{c}"),
                    (0..rows).map(|r| Value::Int((r % 23) as i64)).collect::<Vec<_>>(),
                )
            })
            .collect::<Vec<_>>();
        DataFrame::new(
            columns
                .into_iter()
                .map(|(n, v)| autosuggest_dataframe::Column::new(n, v))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn shape_features_capture_the_section_4_1_signals() {
        let big = table(200, 8, "l");
        let small = table(10, 2, "r");
        let cand = JoinCandidate { left_cols: vec![0], right_cols: vec![0] };
        let f = join_type_features(&big, &small, &cand);
        assert!(f[0] > 2.0, "row ratio log should be large: {}", f[0]);
        assert_eq!(f[5], 1.0, "right is narrow");
        let f_rev = join_type_features(&small, &big, &cand);
        assert!(f_rev[0] < -2.0);
    }

    #[test]
    fn subsumption_feature() {
        let l = DataFrame::from_columns(vec![
            ("k", vec![Value::Int(1)]),
            ("v", vec![Value::Int(2)]),
        ])
        .unwrap();
        let r = DataFrame::from_columns(vec![
            ("k", vec![Value::Int(1)]),
            ("other", vec![Value::Int(3)]),
        ])
        .unwrap();
        let cand = JoinCandidate { left_cols: vec![0], right_cols: vec![0] };
        let f = join_type_features(&l, &r, &cand);
        assert!((f[6] - 0.5).abs() < 1e-12); // "k" subsumed, "other" not
    }

    #[test]
    fn learns_shape_to_type_rule() {
        // Synthetic rule: big-left/small-right → Left join; else Inner.
        use autosuggest_corpus::flowgraph::OpKind;
        use autosuggest_corpus::replay::OpParams as P;
        let mut invs = Vec::new();
        for i in 0..40 {
            let enrich = i % 2 == 0;
            let (lr, rr) = if enrich { (150 + i, 8) } else { (20, 18 + i % 5) };
            let left = table(lr, 5, "l");
            let right = table(rr, 4, "r");
            invs.push(OpInvocation {
                notebook_id: format!("n{i}"),
                dataset_group: format!("g{i}"),
                cell_index: 0,
                op: OpKind::Merge,
                input_hashes: vec![left.content_hash(), right.content_hash()],
                inputs: vec![left, right],
                params: P::Merge {
                    left_on: vec!["l0".into()],
                    right_on: vec!["r0".into()],
                    how: if enrich { JoinType::Left } else { JoinType::Inner },
                    suffixes: ("_x".into(), "_y".into()),
                    sort: false,
                    indicator: false,
                },
                output_hash: i as u64,
                output_rows: 1,
                output_cols: 1,
            });
        }
        let refs: Vec<&OpInvocation> = invs.iter().collect();
        let gbdt = GbdtParams { n_trees: 30, ..Default::default() };
        let model = JoinTypePredictor::train(&refs, &gbdt).unwrap();
        let cand = JoinCandidate { left_cols: vec![0], right_cols: vec![0] };
        assert_eq!(
            model.predict(&table(200, 5, "l"), &table(9, 4, "r"), &cand),
            JoinType::Left
        );
        assert_eq!(
            model.predict(&table(20, 5, "l"), &table(20, 4, "r"), &cand),
            JoinType::Inner
        );
    }

    #[test]
    fn empty_training_returns_none() {
        assert!(JoinTypePredictor::train(&[], &GbdtParams::default()).is_none());
    }
}
