//! GroupBy vs. Aggregation column prediction (§4.2, Tables 6–7).

use autosuggest_corpus::replay::{OpInvocation, OpParams};
use autosuggest_dataframe::DataFrame;
use autosuggest_features::groupby::GROUPBY_FEATURE_GROUPS;
use autosuggest_features::{groupby_features, ColumnNamePrior, GROUPBY_FEATURE_NAMES};
use autosuggest_gbdt::{aggregate_importance, Dataset, Gbdt, GbdtParams};
use serde::{Deserialize, Serialize};

/// A ranked GroupBy column suggestion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupBySuggestion {
    pub column: String,
    /// Higher = more dimension-like (GroupBy); lower = measure-like.
    pub score: f64,
}

/// The learned per-column GroupBy/Aggregation classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupByAggPredictor {
    model: Gbdt,
    prior: ColumnNamePrior,
}

/// Labelled columns of one groupby invocation: (column index, is_groupby).
pub fn labelled_columns(inv: &OpInvocation) -> Vec<(usize, bool)> {
    let OpParams::GroupBy { keys, aggs, .. } = &inv.params else {
        return vec![];
    };
    let Some(df) = inv.inputs.first() else { return vec![] };
    let mut out = Vec::new();
    for k in keys {
        if let Ok(i) = df.column_index(k) {
            out.push((i, true));
        }
    }
    for (a, _) in aggs {
        if let Ok(i) = df.column_index(a) {
            out.push((i, false));
        }
    }
    out
}

impl GroupByAggPredictor {
    /// Train from groupby invocations. The column-name prior is fit on the
    /// same training invocations, so a test column's own usage never leaks
    /// into its feature (§4.2's "without this C").
    pub fn train(invocations: &[&OpInvocation], gbdt: &GbdtParams) -> Option<Self> {
        let mut prior = ColumnNamePrior::default();
        for inv in invocations {
            if let Some(df) = inv.inputs.first() {
                for (ci, is_gb) in labelled_columns(inv) {
                    prior.observe(df.column_at(ci).name(), is_gb);
                }
            }
        }
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for inv in invocations {
            let Some(df) = inv.inputs.first() else { continue };
            for (ci, is_gb) in labelled_columns(inv) {
                rows.push(
                    groupby_features(df.column_at(ci), ci, df.num_columns(), &prior).values,
                );
                labels.push(if is_gb { 1.0 } else { 0.0 });
            }
        }
        if rows.is_empty() {
            return None;
        }
        let names = GROUPBY_FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
        let data = Dataset::new(names, rows, labels).ok()?;
        Some(GroupByAggPredictor { model: Gbdt::fit(&data, gbdt), prior })
    }

    /// GroupBy-ness score for every column of `df` (higher = dimension).
    pub fn scores(&self, df: &DataFrame) -> Vec<f64> {
        df.columns()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.model
                    .predict(&groupby_features(c, i, df.num_columns(), &self.prior).values)
            })
            .collect()
    }

    /// Ranked GroupBy suggestions (most dimension-like first) — the ranked
    /// list a UI wizard would show.
    pub fn suggest(&self, df: &DataFrame) -> Vec<GroupBySuggestion> {
        let scores = self.scores(df);
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        order
            .into_iter()
            .map(|i| GroupBySuggestion {
                column: df.column_at(i).name().to_string(),
                score: scores[i],
            })
            .collect()
    }

    /// Feature-group importances (Table 7).
    pub fn importance_by_group(&self) -> Vec<(String, f64)> {
        aggregate_importance(&self.model.feature_importance(), &GROUPBY_FEATURE_GROUPS)
    }

    pub fn prior(&self) -> &ColumnNamePrior {
        &self.prior
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_corpus::{CorpusConfig, CorpusGenerator, OpKind, ReplayEngine};

    fn train_small() -> (GroupByAggPredictor, Vec<OpInvocation>) {
        let mut cfg = CorpusConfig::small(31);
        cfg.plant_failures = false;
        cfg.join_notebooks = 0;
        cfg.pivot_notebooks = 0;
        cfg.unpivot_notebooks = 0;
        cfg.json_notebooks = 0;
        cfg.flow_notebooks = 0;
        cfg.groupby_notebooks = 30;
        let corpus = CorpusGenerator::new(cfg).generate();
        let engine = ReplayEngine::new(corpus.repository.clone());
        let mut invs = Vec::new();
        for nb in &corpus.notebooks {
            invs.extend(
                engine
                    .replay(nb)
                    .invocations
                    .into_iter()
                    .filter(|i| i.op == OpKind::GroupBy),
            );
        }
        let (filtered, _) = autosuggest_corpus::filter_invocations(invs, 5);
        let refs: Vec<&OpInvocation> = filtered.iter().collect();
        let gbdt = GbdtParams { n_trees: 40, ..Default::default() };
        (GroupByAggPredictor::train(&refs, &gbdt).unwrap(), filtered)
    }

    #[test]
    fn ranks_dimensions_above_measures_in_sample() {
        let (model, invs) = train_small();
        let mut correct = 0;
        let mut total = 0;
        for inv in invs.iter().take(20) {
            let df = &inv.inputs[0];
            let scores = model.scores(df);
            for (ci, is_gb) in labelled_columns(inv) {
                for (cj, is_gb2) in labelled_columns(inv) {
                    if is_gb && !is_gb2 {
                        total += 1;
                        if scores[ci] > scores[cj] {
                            correct += 1;
                        }
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            correct as f64 / total as f64 > 0.85,
            "pairwise accuracy {correct}/{total}"
        );
    }

    #[test]
    fn suggest_is_sorted_and_complete() {
        let (model, invs) = train_small();
        let df = &invs[0].inputs[0];
        let s = model.suggest(df);
        assert_eq!(s.len(), df.num_columns());
        for w in s.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn prior_knows_common_dimension_names() {
        let (model, _) = train_small();
        // "year" appears as a GroupBy key throughout the corpus.
        assert!(model.prior().log_odds("year") > 0.0);
    }

    #[test]
    fn importance_sums_to_one() {
        let (model, _) = train_small();
        let total: f64 = model.importance_by_group().iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_training_returns_none() {
        assert!(GroupByAggPredictor::train(&[], &GbdtParams::default()).is_none());
    }
}
