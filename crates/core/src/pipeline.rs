//! The end-to-end Auto-Suggest pipeline: corpus → replay → logs → models.

use crate::groupby::{GroupByAggPredictor, GroupBySuggestion};
use crate::join::{JoinColumnPredictor, JoinSuggestion};
use crate::join_type::JoinTypePredictor;
use crate::nextop::{single_op_scores, NextOpConfig, NextOpExample, NextOpMode, NextOpPredictor};
use crate::pivot::{CompatibilityModel, PivotPredictor, PivotSuggestion};
use crate::unpivot::{UnpivotPredictor, UnpivotSuggestion};
use autosuggest_cache::{table_fingerprint, ColumnCache};
use autosuggest_dataframe::DataFrame;
use autosuggest_corpus::replay::OpInvocation;
use autosuggest_corpus::{
    filter_invocations, grouped_split, CorpusConfig, CorpusGenerator, FaultSpec, FilterStats,
    OpKind, ReplayEngine, ReplayReport, RobustnessStats, StreamConfig, StreamSummary,
};
use autosuggest_features::CandidateParams;
use autosuggest_gbdt::GbdtParams;
use autosuggest_obs as obs;
use autosuggest_nn::NgramModel;

/// End-to-end training configuration.
#[derive(Debug, Clone)]
pub struct AutoSuggestConfig {
    pub corpus: CorpusConfig,
    pub gbdt: GbdtParams,
    pub candidates: CandidateParams,
    pub nextop: NextOpConfig,
    /// Test fraction of the grouped 80/20 split (§6.1).
    pub test_fraction: f64,
    /// Seed for the grouped split.
    pub split_seed: u64,
    /// Deterministic fault injection into replay. `None` (the default)
    /// falls back to the `AUTOSUGGEST_FAULTS` environment variable.
    pub faults: Option<FaultSpec>,
}

impl Default for AutoSuggestConfig {
    fn default() -> Self {
        AutoSuggestConfig {
            corpus: CorpusConfig::default(),
            gbdt: GbdtParams::default(),
            candidates: CandidateParams::default(),
            nextop: NextOpConfig::default(),
            test_fraction: 0.2,
            split_seed: 17,
            faults: None,
        }
    }
}

impl AutoSuggestConfig {
    /// A configuration sized for tests: small corpus, light models.
    pub fn fast(seed: u64) -> Self {
        AutoSuggestConfig {
            corpus: CorpusConfig::small(seed),
            gbdt: GbdtParams { n_trees: 40, ..Default::default() },
            nextop: NextOpConfig { epochs: 25, ..Default::default() },
            ..Default::default()
        }
    }
}

/// All trained predictors.
pub struct TrainedModels {
    pub join: Option<JoinColumnPredictor>,
    pub join_type: Option<JoinTypePredictor>,
    pub groupby: Option<GroupByAggPredictor>,
    pub pivot: Option<PivotPredictor>,
    pub unpivot: Option<UnpivotPredictor>,
    pub nextop_full: NextOpPredictor,
    pub nextop_rnn_only: NextOpPredictor,
    pub nextop_single_ops: NextOpPredictor,
    pub ngram: NgramModel,
}

/// Held-out test data for the evaluation harness.
pub struct TestData {
    pub join: Vec<OpInvocation>,
    pub groupby: Vec<OpInvocation>,
    pub pivot: Vec<OpInvocation>,
    pub melt: Vec<OpInvocation>,
    pub nextop: Vec<NextOpExample>,
}

/// Training-side data kept for baselines that need "history"
/// (SQL-history, vendors' priors) and for diagnostics.
pub struct TrainData {
    pub join: Vec<OpInvocation>,
    pub groupby: Vec<OpInvocation>,
    pub pivot: Vec<OpInvocation>,
    pub melt: Vec<OpInvocation>,
    pub nextop: Vec<NextOpExample>,
    pub sequences: Vec<Vec<usize>>,
}

/// The trained Auto-Suggest system plus everything the evaluation needs.
pub struct AutoSuggest {
    pub models: TrainedModels,
    pub train: TrainData,
    pub test: TestData,
    /// All replay reports (corpus statistics, Tables 2 and 10).
    pub reports: Vec<ReplayReport>,
    pub filter_stats: FilterStats,
    /// Failure/retry/quarantine accounting from corpus replay.
    pub robustness: RobustnessStats,
    pub config: AutoSuggestConfig,
}

/// Wall-clock time of one pipeline stage, reported by
/// [`AutoSuggest::train_timed`].
#[derive(Debug, Clone)]
pub struct StageTiming {
    pub stage: &'static str,
    pub seconds: f64,
}

/// Record one pipeline stage's wall clock and restart the stopwatch.
pub(crate) fn lap(timings: &mut Vec<StageTiming>, stage: &'static str, start: &mut std::time::Instant) {
    let seconds = start.elapsed().as_secs_f64();
    obs::observe(&format!("pipeline.{stage}_seconds"), seconds);
    timings.push(StageTiming { stage, seconds });
    *start = std::time::Instant::now();
}

/// Positional identity comparison of two invocation lists. Within the
/// incremental-retrain reuse path the reports backing `a` are literal
/// clones of the reports backing `b` wherever notebook ids coincide (and
/// new notebooks get ids no previous corpus used), so identical
/// `(notebook_id, cell_index, op)` sequences imply identical invocation
/// *content* — which is what makes carrying a model trained on `b` sound.
fn same_invocations(a: &[OpInvocation], b: &[OpInvocation]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.notebook_id == y.notebook_id && x.cell_index == y.cell_index && x.op == y.op
        })
}

/// Bitwise equality of next-op example lists (prefixes, labels, and the
/// exact f64 bits of the single-operator score vectors).
fn same_examples(a: &[NextOpExample], b: &[NextOpExample]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.prefix == y.prefix
                && x.label == y.label
                && x.table_scores.len() == y.table_scores.len()
                && x.table_scores
                    .iter()
                    .zip(&y.table_scores)
                    .all(|(s, t)| s.to_bits() == t.to_bits())
        })
}

/// Which model families [`build_from_reports`] carried over from the
/// previous system unchanged vs. retrained from the (new) logs.
#[derive(Debug, Clone, Default)]
pub struct ModelBuildOutcome {
    pub carried: Vec<&'static str>,
    pub rebuilt: Vec<&'static str>,
}

/// Flattened per-report example ranges of the previous system's next-op
/// sets, keyed by notebook id — lets the rebuild lift a prev report's
/// already-scored examples instead of re-running single-operator scoring.
struct NextOpReuse {
    /// notebook id → (is_test, start, len) into the matching flattened set.
    ranges: std::collections::HashMap<String, (bool, usize, usize)>,
}

impl NextOpReuse {
    /// Rebuild the per-report boundaries of `prev`'s flattened
    /// `train.nextop` / `test.nextop` vectors by walking its reports with
    /// the same stream/split rules the builder uses.
    fn index(prev: &AutoSuggest) -> NextOpReuse {
        let mut ranges = std::collections::HashMap::new();
        let (mut train_cursor, mut test_cursor) = (0usize, 0usize);
        for report in &prev.reports {
            let len = report
                .invocations
                .iter()
                .filter(|i| i.op.sequence_id().is_some())
                .count();
            if len < 2 {
                continue;
            }
            let is_test = split_is_test(
                prev.config.split_seed,
                prev.config.test_fraction,
                &report.dataset_group,
            );
            let cursor = if is_test { &mut test_cursor } else { &mut train_cursor };
            ranges.insert(report.notebook_id.clone(), (is_test, *cursor, len));
            *cursor += len;
        }
        debug_assert_eq!(train_cursor, prev.train.nextop.len());
        debug_assert_eq!(test_cursor, prev.test.nextop.len());
        NextOpReuse { ranges }
    }
}

/// Same membership rule as `grouped_split`: hash of (seed, group) against
/// the test fraction.
fn split_is_test(split_seed: u64, test_fraction: f64, dataset_group: &str) -> bool {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    split_seed.hash(&mut h);
    dataset_group.hash(&mut h);
    h.finish() < (test_fraction * u64::MAX as f64) as u64
}

impl AutoSuggest {
    /// Run the whole offline pipeline of Fig. 3: generate (stand-in for
    /// crawl), replay + instrument, filter, split without leakage, train
    /// every predictor.
    pub fn train(config: AutoSuggestConfig) -> AutoSuggest {
        Self::train_timed(config).0
    }

    /// [`AutoSuggest::train`], also returning per-stage wall-clock timings
    /// (consumed by `repro --timing`).
    pub fn train_timed(config: AutoSuggestConfig) -> (AutoSuggest, Vec<StageTiming>) {
        let _train_span = obs::span("train");
        let mut timings: Vec<StageTiming> = Vec::new();
        let mut stage_start = std::time::Instant::now();

        let corpus = {
            let _s = obs::span("generate_corpus");
            CorpusGenerator::new(config.corpus.clone()).generate()
        };
        lap(&mut timings, "generate_corpus", &mut stage_start);

        // Replay fan-out: notebooks are independent, and the pool returns
        // reports in notebook order, so the log stream is bit-identical to
        // the sequential one at any thread count. Panics are isolated per
        // notebook and retryable failures quarantined with bounded retry.
        let (reports, robustness) = {
            let _s = obs::span("replay");
            let faults = config.faults.clone().or_else(FaultSpec::from_env);
            let engine = ReplayEngine::new(corpus.repository.clone()).with_faults(faults);
            engine.replay_corpus(&corpus.notebooks)
        };
        lap(&mut timings, "replay", &mut stage_start);

        let (system, _outcome) =
            Self::build_from_reports(config, reports, robustness, None, &mut timings);
        (system, timings)
    }

    /// [`AutoSuggest::train`] through the disk-backed streamed replay path:
    /// generate + replay shard by shard into a `SampleStore` under
    /// `store_root` (resuming any compatible manifest found there), then
    /// read the reports back through the store's streaming iterator and run
    /// the shared model-building back half. Produces a system bit-identical
    /// to [`AutoSuggest::train_timed`] — same reports in the same order,
    /// same merged robustness stats — which is pinned by
    /// `tests/streamed_replay_equivalence.rs`.
    pub fn train_streamed_timed(
        config: AutoSuggestConfig,
        store_root: impl Into<std::path::PathBuf>,
        shard_size: usize,
    ) -> std::io::Result<(AutoSuggest, Vec<StageTiming>, StreamSummary)> {
        let _train_span = obs::span("train");
        let mut timings: Vec<StageTiming> = Vec::new();
        let mut stage_start = std::time::Instant::now();

        let faults = config.faults.clone().or_else(FaultSpec::from_env);
        let stream_cfg = StreamConfig { shard_size, ..StreamConfig::default() };
        let (store, summary) = {
            let _s = obs::span("replay_streamed");
            autosuggest_corpus::replay_corpus_streamed(
                &config.corpus,
                faults,
                store_root,
                &stream_cfg,
            )?
        };
        lap(&mut timings, "replay_streamed", &mut stage_start);

        // Model building still needs the invocation set in memory; the
        // bounded-memory win of this path is that generation + replay (the
        // raw-table-heavy stages) never hold more than one shard. Training
        // on a sampled subset at 100k+ scale is the next roadmap step.
        let reports = store.reports().collect::<std::io::Result<Vec<_>>>()?;
        lap(&mut timings, "store_read", &mut stage_start);

        let (system, _outcome) = Self::build_from_reports(
            config,
            reports,
            summary.stats.clone(),
            None,
            &mut timings,
        );
        Ok((system, timings, summary))
    }

    /// Untimed convenience wrapper over [`AutoSuggest::train_streamed_timed`].
    pub fn train_streamed(
        config: AutoSuggestConfig,
        store_root: impl Into<std::path::PathBuf>,
        shard_size: usize,
    ) -> std::io::Result<AutoSuggest> {
        Self::train_streamed_timed(config, store_root, shard_size).map(|(s, _, _)| s)
    }

    /// The model-building back half of the pipeline: filter + grouped
    /// split, train (or carry) every predictor, assemble the system.
    ///
    /// With `prev = None` this **is** [`AutoSuggest::train_timed`] minus
    /// corpus generation and replay — both callers share this body, which
    /// is what makes the incremental path's "bit-identical to a full
    /// retrain" guarantee structural rather than aspirational. With
    /// `prev = Some(..)`, each model family whose training inputs (by
    /// invocation identity — see [`same_invocations`]) and hyper-parameters
    /// are unchanged is carried over by clone instead of retrained; only
    /// families whose inputs actually shifted pay for training. The caller
    /// (the retrain planner) is responsible for only passing `prev` when
    /// `reports` reuses the previous system's replay logs verbatim for
    /// overlapping notebook ids.
    pub(crate) fn build_from_reports(
        config: AutoSuggestConfig,
        reports: Vec<ReplayReport>,
        robustness: RobustnessStats,
        prev: Option<&AutoSuggest>,
        timings: &mut Vec<StageTiming>,
    ) -> (AutoSuggest, ModelBuildOutcome) {
        let mut stage_start = std::time::Instant::now();
        let mut outcome = ModelBuildOutcome::default();
        let split_span = obs::span("filter_and_split");
        let all_invocations: Vec<OpInvocation> = reports
            .iter()
            .flat_map(|r| r.invocations.iter().cloned())
            .collect();
        let (filtered, filter_stats) = filter_invocations(all_invocations, 5);

        // Grouped 80/20 split (§6.1): group key = dataset_group.
        let split = grouped_split(
            &filtered,
            |inv| inv.dataset_group.as_str(),
            config.test_fraction,
            config.split_seed,
        );
        let mut train_invs: Vec<OpInvocation> = Vec::new();
        let mut test_invs: Vec<OpInvocation> = Vec::new();
        for (i, inv) in filtered.into_iter().enumerate() {
            if split.test.contains(&i) {
                test_invs.push(inv);
            } else {
                train_invs.push(inv);
            }
        }

        let of_kind = |invs: &[OpInvocation], k: OpKind| -> Vec<OpInvocation> {
            invs.iter().filter(|i| i.op == k).cloned().collect()
        };
        let train_join = of_kind(&train_invs, OpKind::Merge);
        let train_groupby = of_kind(&train_invs, OpKind::GroupBy);
        let train_pivot = of_kind(&train_invs, OpKind::Pivot);
        let train_melt = of_kind(&train_invs, OpKind::Melt);
        drop(split_span);
        lap(timings, "filter_and_split", &mut stage_start);

        let predictors_span = obs::span("train_predictors");
        fn refs(v: &[OpInvocation]) -> Vec<&OpInvocation> {
            v.iter().collect()
        }
        // Carry analysis: a family may be cloned from `prev` only when its
        // exact training inputs (positional invocation identity) and every
        // hyper-parameter feeding it are unchanged. Training is
        // deterministic, so same inputs ⇒ same model bits ⇒ carrying the
        // clone is indistinguishable from retraining — just free.
        let gbdt_carry = prev.filter(|p| format!("{:?}", p.config.gbdt) == format!("{:?}", config.gbdt));
        let join = match gbdt_carry.filter(|p| {
            same_invocations(&train_join, &p.train.join)
                && format!("{:?}", p.config.candidates) == format!("{:?}", config.candidates)
        }) {
            Some(p) => {
                outcome.carried.push("join");
                p.models.join.clone()
            }
            None => {
                outcome.rebuilt.push("join");
                JoinColumnPredictor::train(&refs(&train_join), &config.gbdt, config.candidates.clone())
            }
        };
        let join_type = match gbdt_carry.filter(|p| same_invocations(&train_join, &p.train.join)) {
            Some(p) => {
                outcome.carried.push("join_type");
                p.models.join_type.clone()
            }
            None => {
                outcome.rebuilt.push("join_type");
                JoinTypePredictor::train(&refs(&train_join), &config.gbdt)
            }
        };
        let groupby = match gbdt_carry.filter(|p| same_invocations(&train_groupby, &p.train.groupby)) {
            Some(p) => {
                outcome.carried.push("groupby");
                p.models.groupby.clone()
            }
            None => {
                outcome.rebuilt.push("groupby");
                GroupByAggPredictor::train(&refs(&train_groupby), &config.gbdt)
            }
        };
        let (pivot, unpivot) = match gbdt_carry.filter(|p| {
            same_invocations(&train_pivot, &p.train.pivot) && same_invocations(&train_melt, &p.train.melt)
        }) {
            Some(p) => {
                outcome.carried.push("pivot");
                (p.models.pivot.clone(), p.models.unpivot.clone())
            }
            None => {
                outcome.rebuilt.push("pivot");
                let compat =
                    CompatibilityModel::train(&refs(&train_pivot), &refs(&train_melt), &config.gbdt);
                (compat.clone().map(PivotPredictor::new), compat.map(UnpivotPredictor::new))
            }
        };
        // Gauges are last-write-wins, so they are only ever set here, on
        // the sequential training path — never from pool tasks.
        if let Some(j) = &join {
            for (group, v) in j.importance_by_group() {
                obs::gauge_set(&format!("importance.join.{group}"), v);
            }
        }
        if let Some(g) = &groupby {
            for (group, v) in g.importance_by_group() {
                obs::gauge_set(&format!("importance.groupby.{group}"), v);
            }
        }
        drop(predictors_span);
        lap(timings, "train_predictors", &mut stage_start);
        let nextop_span = obs::span("train_nextop");

        // Next-operator examples from per-notebook invocation streams,
        // split on the same dataset groups. Scoring each step's input table
        // with the single-operator models dominates this stage, and reports
        // are independent — fan out per report, fold in report order.
        //
        // Incremental reuse: when the scoring models (groupby, pivot) were
        // carried and the split rule is unchanged, a report whose notebook
        // id appears in `prev` would produce bit-identical examples — its
        // report *is* a clone of the prev report and the scorers are the
        // same models — so its already-scored examples are lifted from the
        // prev flattened sets instead of re-running single-operator scoring
        // (the dominant cost of this stage). Only genuinely new notebooks
        // pay for scoring.
        let nextop_reuse = prev
            .filter(|p| {
                outcome.carried.contains(&"groupby")
                    && outcome.carried.contains(&"pivot")
                    && p.config.split_seed == config.split_seed
                    && p.config.test_fraction.to_bits() == config.test_fraction.to_bits()
            })
            .map(|p| (NextOpReuse::index(p), p));
        let mut train_examples: Vec<NextOpExample> = Vec::new();
        let mut test_examples: Vec<NextOpExample> = Vec::new();
        let mut train_sequences: Vec<Vec<usize>> = Vec::new();
        if let (Some(gb), Some(pv)) = (&groupby, &pivot) {
            let per_report = autosuggest_parallel::par_map(&reports, |report| {
                let stream: Vec<&OpInvocation> = report
                    .invocations
                    .iter()
                    .filter(|i| i.op.sequence_id().is_some())
                    .collect();
                if stream.len() < 2 {
                    return None;
                }
                let is_test =
                    split_is_test(config.split_seed, config.test_fraction, &report.dataset_group);
                if let Some((reuse, p)) = &nextop_reuse {
                    if let Some(&(was_test, start, len)) = reuse.ranges.get(&report.notebook_id) {
                        debug_assert_eq!(was_test, is_test);
                        debug_assert_eq!(len, stream.len());
                        let source = if was_test { &p.test.nextop } else { &p.train.nextop };
                        let examples = source[start..start + len].to_vec();
                        let prefix = examples.iter().map(|e| e.label).collect();
                        return Some((is_test, examples, prefix));
                    }
                }
                let mut prefix: Vec<usize> = Vec::new();
                let mut examples = Vec::new();
                for inv in &stream {
                    let Some(label) = inv.op.sequence_id() else { continue };
                    let scores = single_op_scores(&inv.inputs[0], gb, pv.compatibility());
                    examples.push(NextOpExample {
                        prefix: prefix.clone(),
                        table_scores: scores,
                        label,
                    });
                    prefix.push(label);
                }
                Some((is_test, examples, prefix))
            });
            for (is_test, examples, prefix) in per_report.into_iter().flatten() {
                if is_test {
                    test_examples.extend(examples);
                } else {
                    train_sequences.push(prefix);
                    train_examples.extend(examples);
                }
            }
        }

        // The next-op networks themselves carry only on bitwise-identical
        // training sets (cheap to check, and the set is exactly what the
        // deterministic trainer consumes).
        let nextop_carry = prev.filter(|p| {
            format!("{:?}", p.config.nextop) == format!("{:?}", config.nextop)
                && same_examples(&train_examples, &p.train.nextop)
        });
        let (nextop_full, nextop_rnn_only) = match nextop_carry {
            Some(p) => {
                outcome.carried.push("nextop");
                (p.models.nextop_full.clone(), p.models.nextop_rnn_only.clone())
            }
            None => {
                outcome.rebuilt.push("nextop");
                let full = NextOpPredictor::train(
                    NextOpConfig { mode: NextOpMode::Full, ..config.nextop.clone() },
                    &train_examples,
                );
                let rnn_only = NextOpPredictor::train(
                    NextOpConfig { mode: NextOpMode::RnnOnly, ..config.nextop.clone() },
                    &train_examples,
                );
                (full, rnn_only)
            }
        };
        // Always rebuilt: both are cheap deterministic functions of their
        // inputs (no example scoring involved), so rebuilding is bitwise
        // identical to carrying and needs no gate.
        let nextop_single_ops = NextOpPredictor::train(
            NextOpConfig { mode: NextOpMode::SingleOperators, ..config.nextop.clone() },
            &[],
        );
        let mut ngram = NgramModel::new(3, crate::nextop::NUM_OPS);
        ngram.train(&train_sequences);
        drop(nextop_span);
        lap(timings, "train_nextop", &mut stage_start);

        let system = AutoSuggest {
            models: TrainedModels {
                join,
                join_type,
                groupby,
                pivot,
                unpivot,
                nextop_full,
                nextop_rnn_only,
                nextop_single_ops,
                ngram,
            },
            train: TrainData {
                join: train_join,
                groupby: train_groupby,
                pivot: train_pivot,
                melt: train_melt,
                nextop: train_examples,
                sequences: train_sequences,
            },
            test: TestData {
                join: of_kind(&test_invs, OpKind::Merge),
                groupby: of_kind(&test_invs, OpKind::GroupBy),
                pivot: of_kind(&test_invs, OpKind::Pivot),
                melt: of_kind(&test_invs, OpKind::Melt),
                nextop: test_examples,
            },
            reports,
            filter_stats,
            robustness,
            config,
        };
        (system, outcome)
    }
}

/// One interactive suggestion request against a trained system. Tables are
/// borrowed so a batch over many requests can reference shared frames
/// without cloning.
#[derive(Debug, Clone, Copy)]
pub enum SuggestRequest<'a> {
    /// Rank join column candidates between two tables (§4.1).
    Join {
        left: &'a DataFrame,
        right: &'a DataFrame,
        top_k: usize,
    },
    /// Rank every column as GroupBy dimension vs. Aggregation measure
    /// (§4.2).
    GroupBy { table: &'a DataFrame },
    /// Predict index/header among the given dimension columns (§4.3).
    Pivot { table: &'a DataFrame, dims: &'a [usize] },
    /// Predict the column set to collapse (§4.4).
    Unpivot { table: &'a DataFrame },
}

impl SuggestRequest<'_> {
    /// The tables this request featurises (one for single-table operators,
    /// two for Join).
    fn tables(&self) -> Vec<&DataFrame> {
        match self {
            SuggestRequest::Join { left, right, .. } => vec![left, right],
            SuggestRequest::GroupBy { table }
            | SuggestRequest::Pivot { table, .. }
            | SuggestRequest::Unpivot { table } => vec![table],
        }
    }
}

/// The answer to one [`SuggestRequest`], mirroring the per-operator
/// `suggest` return types.
#[derive(Debug, Clone, PartialEq)]
pub enum SuggestResponse {
    Join(Vec<JoinSuggestion>),
    GroupBy(Vec<GroupBySuggestion>),
    Pivot(Option<PivotSuggestion>),
    Unpivot(Option<UnpivotSuggestion>),
    /// The model for the requested operator was not trained on this corpus
    /// (the payload names the missing model).
    Unavailable(&'static str),
}

/// Obs counter names for the interactive suggest path (deterministic
/// section; see the warm-phase gating note on [`AutoSuggest::warm_tables`]).
pub const WARM_COLUMNS_COUNTER: &str = "suggest.warm_columns";

impl AutoSuggest {
    /// Answer one interactive request with the trained models.
    pub fn suggest(&self, req: &SuggestRequest<'_>) -> SuggestResponse {
        match req {
            SuggestRequest::Join { left, right, top_k } => match &self.models.join {
                Some(j) => SuggestResponse::Join(j.suggest(left, right, *top_k)),
                None => SuggestResponse::Unavailable("join"),
            },
            SuggestRequest::GroupBy { table } => match &self.models.groupby {
                Some(g) => SuggestResponse::GroupBy(g.suggest(table)),
                None => SuggestResponse::Unavailable("groupby"),
            },
            SuggestRequest::Pivot { table, dims } => match &self.models.pivot {
                Some(p) => SuggestResponse::Pivot(p.suggest(table, dims)),
                None => SuggestResponse::Unavailable("pivot"),
            },
            SuggestRequest::Unpivot { table } => match &self.models.unpivot {
                Some(u) => SuggestResponse::Unpivot(u.suggest(table)),
                None => SuggestResponse::Unavailable("unpivot"),
            },
        }
    }

    /// Answer a batch of requests, deduplicating tables across requests
    /// before featurising.
    ///
    /// Interactive sessions ask several questions about the same frames
    /// (e.g. join + groupby on one table, or one table joined against many
    /// partners). Distinct tables — identified by content fingerprint, so
    /// clones of one frame collapse — have their column artifacts warmed
    /// exactly once across the pool; the per-request featurisers then hit
    /// the cache instead of re-sketching shared columns per request.
    /// Responses come back in request order and are identical to calling
    /// [`AutoSuggest::suggest`] sequentially.
    pub fn suggest_batch(&self, reqs: &[SuggestRequest<'_>]) -> Vec<SuggestResponse> {
        let _span = obs::span("suggest_batch");
        obs::counter_add("suggest.batch_requests", reqs.len() as u64);
        self.warm_tables(reqs);
        autosuggest_parallel::par_map(reqs, |req| self.suggest(req))
    }

    /// Pre-warm the column cache for every distinct table across `reqs`,
    /// so the per-request featurisers hit the cache instead of re-sketching
    /// shared columns per request. Returns the number of columns warmed.
    ///
    /// The warm phase only runs when the global column cache is enabled:
    /// with `AUTOSUGGEST_CACHE=0` the warmed artifacts would be computed,
    /// discarded, and recomputed per request — pure wasted work. The
    /// `suggest.warm_columns` counter counts every column pushed through
    /// the warm phase, so a disabled cache must leave it untouched.
    pub fn warm_tables(&self, reqs: &[SuggestRequest<'_>]) -> usize {
        // Deduplicate tables by content fingerprint, keeping first-seen
        // order so the warm-up workload is deterministic.
        let mut seen = std::collections::HashSet::new();
        let mut distinct: Vec<&DataFrame> = Vec::new();
        for req in reqs {
            for table in req.tables() {
                if seen.insert(table_fingerprint(table)) {
                    distinct.push(table);
                }
            }
        }
        obs::counter_add("suggest.batch_distinct_tables", distinct.len() as u64);

        let cache = ColumnCache::global();
        if !cache.enabled() {
            return 0;
        }
        // Warm every distinct column once (columns of deduplicated tables
        // are themselves deduplicated by the cache's content addressing).
        let cols: Vec<&autosuggest_dataframe::Column> =
            distinct.iter().flat_map(|t| t.columns()).collect();
        obs::counter_add(WARM_COLUMNS_COUNTER, cols.len() as u64);
        let sketch_k = self.config.candidates.sketch_k;
        autosuggest_parallel::par_map(&cols, |c| {
            cache.get_or_compute(c, sketch_k);
        });
        cols.len()
    }

    /// [`AutoSuggest::suggest`] with panic isolation: a panic anywhere in
    /// this request's featurisation or model scoring is caught and returned
    /// as `Err` with the panic message, leaving the process (and any other
    /// request sharing a batch with this one) untouched. The serving layer
    /// builds its micro-batch executor on this so one poisoned request can
    /// never take down the daemon.
    pub fn suggest_guarded(&self, req: &SuggestRequest<'_>) -> Result<SuggestResponse, String> {
        let ambient = obs::ambient();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            obs::with_ambient(&ambient, || self.suggest(req))
        }))
        .map_err(|payload| autosuggest_parallel::panic_message(payload.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_training_produces_all_models_and_disjoint_splits() {
        let system = AutoSuggest::train(AutoSuggestConfig::fast(3));
        assert!(system.models.join.is_some());
        assert!(system.models.join_type.is_some());
        assert!(system.models.groupby.is_some());
        assert!(system.models.pivot.is_some());
        assert!(system.models.unpivot.is_some());
        assert!(!system.train.join.is_empty());
        // Test sets are non-empty and leak-free at the group level.
        let train_groups: std::collections::HashSet<&str> = system
            .train
            .join
            .iter()
            .map(|i| i.dataset_group.as_str())
            .collect();
        for t in &system.test.join {
            assert!(
                !train_groups.contains(t.dataset_group.as_str()),
                "group {} leaked into both sides",
                t.dataset_group
            );
        }
        assert!(!system.test.nextop.is_empty() || !system.train.nextop.is_empty());
        assert!(system.filter_stats.kept > 0);
        assert_eq!(system.robustness.total_injected(), 0);
    }

    #[test]
    fn zero_groupby_sequence_corpus_trains_without_panicking() {
        // Regression: a replay log with no groupby (and no sequence)
        // notebooks used to panic in single-operator scoring; now the
        // next-op stage degrades to empty example sets.
        let mut config = AutoSuggestConfig::fast(5);
        config.corpus.join_notebooks = 0;
        config.corpus.groupby_notebooks = 0;
        config.corpus.pivot_notebooks = 0;
        config.corpus.unpivot_notebooks = 0;
        config.corpus.flow_notebooks = 0;
        let system = AutoSuggest::train(config);
        assert!(system.models.groupby.is_none());
        assert!(system.models.pivot.is_none());
        assert!(system.train.nextop.is_empty());
        assert!(system.test.nextop.is_empty());
    }

    #[test]
    fn zero_column_table_scores_are_all_zero() {
        let system = AutoSuggest::train(AutoSuggestConfig::fast(3));
        let (Some(gb), Some(pv)) = (&system.models.groupby, &system.models.pivot) else {
            panic!("fast config trains groupby and pivot models");
        };
        let scores = crate::nextop::single_op_scores(
            &autosuggest_dataframe::DataFrame::empty(),
            gb,
            pv.compatibility(),
        );
        assert_eq!(scores, vec![0.0; crate::nextop::NUM_OPS]);
    }
}
