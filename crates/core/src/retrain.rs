//! Incremental retraining: fold a grown corpus into an already-trained
//! system without paying for a stop-the-world full retrain.
//!
//! ## How the delta path stays *exact*
//!
//! The planner never tries to "patch" models. It reconstructs the same
//! inputs a full [`AutoSuggest::train`] on the new config would see, but
//! skips the work whose outputs it can prove are already in hand:
//!
//! 1. **Corpus generation is content-addressed.** Notebook ids, RNG
//!    streams, and table contents are pure functions of
//!    `(corpus seed, archetype, per-archetype ordinal)`, so growing an
//!    archetype's notebook count leaves every existing notebook
//!    bit-identical. The planner verifies the previous corpus is a prefix
//!    of the new one (same seed/table config/failure planting, previous
//!    notebook ids ⊆ new ids) before reusing anything.
//! 2. **Replay reports are reused by notebook id.** Replay (and fault
//!    injection, which keys on `(spec seed, notebook id, cell index)`) is
//!    per-notebook deterministic, so only genuinely new notebooks are
//!    replayed; the merged report stream — previous reports cloned,
//!    new reports spliced in canonical corpus order — is bit-identical to
//!    replaying the whole union. Robustness accounting merges additively.
//! 3. **Models are carried by input identity.** The shared
//!    model-building back half ([`AutoSuggest::build_from_reports`], the
//!    same code the full pipeline runs) re-derives each family's training
//!    set from the merged logs and clones the previous model whenever the
//!    set and hyper-parameters are unchanged — sound because training is
//!    deterministic, so retraining would reproduce the same bits anyway.
//!
//! Any gate failure (different corpus seed, changed fault spec, shrunk
//! corpus, …) falls back to the full path — correctness never depends on
//! the gates firing, they only decide how much work is skipped.
//!
//! ## The approximate alternative
//!
//! [`RetrainStrategy::WarmNextOp`] additionally fine-tunes the previous
//! next-op networks over a seeded reservoir ([`ExampleBuffer`]) of the
//! union's examples instead of retraining them from scratch when their
//! training set grew. That path is deterministic but *not* equal to full
//! retraining — it trades the exactness guarantee for a bounded training
//! set. The default strategy is [`RetrainStrategy::Exact`].

use crate::pipeline::{AutoSuggest, AutoSuggestConfig, StageTiming};
use autosuggest_corpus::replay::ReplayReport;
use autosuggest_corpus::{
    CorpusGenerator, FaultSpec, Notebook, OpKind, ReplayEngine, RobustnessStats,
};
use autosuggest_nn::ExampleBuffer;
use autosuggest_obs as obs;
use std::collections::HashMap;

/// How the planner handles model families whose training inputs changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainStrategy {
    /// Retrain changed families from scratch on the merged logs. The
    /// resulting system is bit-for-bit identical to `AutoSuggest::train`
    /// on the same config (pinned by `tests/retrain_equivalence.rs`).
    Exact,
    /// Like `Exact`, except a rebuilt next-op network is replaced by
    /// fine-tuning the previous one over a seeded reservoir of at most
    /// `reservoir_capacity` union examples. Deterministic, bounded-cost,
    /// and explicitly approximate.
    WarmNextOp { reservoir_capacity: usize },
}

/// What changed between the previous snapshot and the new corpus.
#[derive(Debug, Clone, Default)]
pub struct RetrainDelta {
    /// Notebooks in the previous system's corpus.
    pub prev_notebooks: usize,
    /// Notebooks in the new (union) corpus.
    pub union_notebooks: usize,
    /// Notebooks that had to be replayed (new ids).
    pub replayed_notebooks: usize,
    /// Replay reports lifted from the previous system unchanged.
    pub reused_reports: usize,
    /// Invocation counts per operator across the newly replayed
    /// notebooks, sorted by operator name.
    pub new_invocations_per_op: Vec<(String, usize)>,
}

/// Outcome summary of one planner run.
#[derive(Debug, Clone)]
pub struct RetrainReport {
    pub delta: RetrainDelta,
    /// Model families cloned from the previous system.
    pub carried: Vec<&'static str>,
    /// Model families retrained on the merged logs.
    pub rebuilt: Vec<&'static str>,
    /// True when a reuse gate failed and the planner replayed everything
    /// (the result is still correct — just not cheaper).
    pub full_replay_fallback: bool,
    /// True when the warm strategy actually fine-tuned the next-op models
    /// (requires `WarmNextOp` *and* a rebuilt next-op family).
    pub warm_applied: bool,
    /// Per-stage wall clock, same stage names as `train_timed`.
    pub timings: Vec<StageTiming>,
    /// Total planner wall clock.
    pub seconds: f64,
}

/// Drives incremental retraining of a trained [`AutoSuggest`] system
/// against a (typically grown) configuration.
#[derive(Debug, Clone)]
pub struct RetrainPlanner {
    strategy: RetrainStrategy,
    /// When set, full-replay fallbacks stream through a disk-backed
    /// [`autosuggest_corpus::SampleStore`] at `(root, shard_size)` instead
    /// of replaying in memory: bounded RSS, and a fallback interrupted
    /// mid-way resumes from its shard manifest on the next run.
    store: Option<(std::path::PathBuf, usize)>,
}

impl Default for RetrainPlanner {
    fn default() -> Self {
        Self::new()
    }
}

/// Additive merge of replay robustness accounting: `prev` and `new` cover
/// disjoint notebook sets, and every field is a per-notebook (or
/// per-event) count. The fault spec must already have been checked equal,
/// and the planner keeps the previous one verbatim.
fn merge_robustness(prev: &RobustnessStats, new: &RobustnessStats) -> RobustnessStats {
    let mut merged = prev.clone();
    merged.merge_from(new);
    merged.fault_spec = prev.fault_spec.clone();
    merged
}

impl RetrainPlanner {
    /// A planner with the default [`RetrainStrategy::Exact`].
    pub fn new() -> Self {
        RetrainPlanner { strategy: RetrainStrategy::Exact, store: None }
    }

    /// Override the strategy.
    pub fn with_strategy(strategy: RetrainStrategy) -> Self {
        RetrainPlanner { strategy, store: None }
    }

    /// Route full-replay fallbacks through a disk-backed sample store at
    /// `root`, sharded by `shard_size` notebooks (see the field docs).
    pub fn with_store(mut self, root: impl Into<std::path::PathBuf>, shard_size: usize) -> Self {
        self.store = Some((root.into(), shard_size));
        self
    }

    /// Retrain `prev` against `config`, reusing every replay report and
    /// model the gates can prove unchanged. See the module docs for the
    /// exactness argument.
    pub fn retrain(
        &self,
        prev: &AutoSuggest,
        config: AutoSuggestConfig,
    ) -> (AutoSuggest, RetrainReport) {
        let _span = obs::span("retrain");
        let started = std::time::Instant::now();
        obs::counter_add("retrain.runs", 1);
        let mut timings: Vec<StageTiming> = Vec::new();
        let mut stage_start = std::time::Instant::now();

        let corpus = {
            let _s = obs::span("retrain.generate");
            CorpusGenerator::new(config.corpus.clone()).generate()
        };
        crate::pipeline::lap(&mut timings, "generate_corpus", &mut stage_start);

        // Reuse gates. Every check guards a specific assumption the merge
        // relies on; see the module docs.
        let prev_reports: HashMap<&str, &ReplayReport> =
            prev.reports.iter().map(|r| (r.notebook_id.as_str(), r)).collect();
        let union_ids: std::collections::HashSet<&str> =
            corpus.notebooks.iter().map(|nb| nb.id.as_str()).collect();
        let faults = config.faults.clone().or_else(FaultSpec::from_env);
        let corpus_compatible = {
            let (a, b) = (&prev.config.corpus, &config.corpus);
            a.seed == b.seed
                && a.plant_failures == b.plant_failures
                && format!("{:?}", a.tables) == format!("{:?}", b.tables)
        };
        // The previous *corpus* membership, not the previous report set:
        // notebooks whose replay failed outright left no report but were
        // still seen (and accounted for in `prev.robustness`) — replaying
        // them again would deterministically fail again while
        // double-counting their failures. Corpus generation is a pure
        // function of its config, so the id set regenerates exactly; when
        // the configs are identical the union ids are already that set.
        let prev_ids: std::collections::HashSet<String> = if corpus_compatible {
            if format!("{:?}", prev.config.corpus) == format!("{:?}", config.corpus) {
                union_ids.iter().map(|s| s.to_string()).collect()
            } else {
                let _s = obs::span("retrain.generate");
                CorpusGenerator::new(prev.config.corpus.clone())
                    .generate()
                    .notebooks
                    .iter()
                    .map(|nb| nb.id.clone())
                    .collect()
            }
        } else {
            Default::default()
        };
        let reuse_ok = corpus_compatible
            && faults.as_ref().map(FaultSpec::render) == prev.robustness.fault_spec
            && prev_ids.iter().all(|id| union_ids.contains(id.as_str()));

        let mut delta = RetrainDelta {
            prev_notebooks: if reuse_ok { prev_ids.len() } else { prev.reports.len() },
            union_notebooks: corpus.notebooks.len(),
            ..Default::default()
        };
        let engine = ReplayEngine::new(corpus.repository.clone()).with_faults(faults);
        let (reports, robustness) = if reuse_ok {
            let _s = obs::span("retrain.replay_delta");
            let new_notebooks: Vec<Notebook> = corpus
                .notebooks
                .iter()
                .filter(|nb| !prev_ids.contains(nb.id.as_str()))
                .cloned()
                .collect();
            delta.replayed_notebooks = new_notebooks.len();
            delta.reused_reports = prev.reports.len();
            let (new_reports, new_stats) = engine.replay_corpus(&new_notebooks);
            let mut per_op: HashMap<OpKind, usize> = HashMap::new();
            for report in &new_reports {
                for inv in &report.invocations {
                    *per_op.entry(inv.op).or_insert(0) += 1;
                }
            }
            delta.new_invocations_per_op =
                per_op.into_iter().map(|(k, n)| (format!("{k:?}"), n)).collect();
            delta.new_invocations_per_op.sort();
            // Splice: previous reports (cloned) and fresh reports, in
            // canonical corpus order — bit-identical to a full replay.
            let mut fresh: HashMap<String, ReplayReport> =
                new_reports.into_iter().map(|r| (r.notebook_id.clone(), r)).collect();
            let merged: Vec<ReplayReport> = corpus
                .notebooks
                .iter()
                .filter_map(|nb| match prev_reports.get(nb.id.as_str()) {
                    Some(r) => Some((*r).clone()),
                    None => fresh.remove(nb.id.as_str()),
                })
                .collect();
            (merged, merge_robustness(&prev.robustness, &new_stats))
        } else {
            obs::counter_add("retrain.full_replay_fallbacks", 1);
            delta.replayed_notebooks = corpus.notebooks.len();
            let streamed = self.store.as_ref().and_then(|(root, shard_size)| {
                let faults = config.faults.clone().or_else(FaultSpec::from_env);
                let opts = autosuggest_corpus::StreamConfig {
                    shard_size: *shard_size,
                    ..Default::default()
                };
                let (store, summary) = autosuggest_corpus::replay_corpus_streamed(
                    &config.corpus,
                    faults,
                    root,
                    &opts,
                )
                .ok()?;
                let reports = store.reports().collect::<std::io::Result<Vec<_>>>().ok()?;
                obs::counter_add("retrain.streamed_fallbacks", 1);
                Some((reports, summary.stats))
            });
            // A store failure degrades to the in-memory path — the result
            // is identical either way (pinned by the equivalence suite).
            match streamed {
                Some(result) => result,
                None => engine.replay_corpus(&corpus.notebooks),
            }
        };
        crate::pipeline::lap(&mut timings, "replay", &mut stage_start);
        obs::counter_add("retrain.notebooks_replayed", delta.replayed_notebooks as u64);
        obs::counter_add("retrain.reports_reused", delta.reused_reports as u64);

        let (mut system, outcome) = AutoSuggest::build_from_reports(
            config,
            reports,
            robustness,
            reuse_ok.then_some(prev),
            &mut timings,
        );

        let mut warm_applied = false;
        if let RetrainStrategy::WarmNextOp { reservoir_capacity } = self.strategy {
            if outcome.rebuilt.contains(&"nextop") {
                let mut buffer = ExampleBuffer::new(
                    reservoir_capacity,
                    system.config.corpus.seed ^ 0x7e7a11,
                );
                buffer.extend(system.train.nextop.iter().cloned());
                system.models.nextop_full = crate::nextop::NextOpPredictor::train_continue_from(
                    &prev.models.nextop_full,
                    buffer.items(),
                );
                system.models.nextop_rnn_only =
                    crate::nextop::NextOpPredictor::train_continue_from(
                        &prev.models.nextop_rnn_only,
                        buffer.items(),
                    );
                warm_applied = true;
                obs::counter_add("retrain.warm_nextop", 1);
            }
        }

        obs::counter_add("retrain.models_carried", outcome.carried.len() as u64);
        obs::counter_add("retrain.models_rebuilt", outcome.rebuilt.len() as u64);
        let seconds = started.elapsed().as_secs_f64();
        obs::observe("retrain.seconds", seconds);
        let report = RetrainReport {
            delta,
            carried: outcome.carried,
            rebuilt: outcome.rebuilt,
            full_replay_fallback: !reuse_ok,
            warm_applied,
            timings,
            seconds,
        };
        (system, report)
    }
}
