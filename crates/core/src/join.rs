//! Join column prediction (§4.1): point-wise ranking of join candidates
//! with gradient boosted trees.

use autosuggest_corpus::replay::{OpInvocation, OpParams};
use autosuggest_features::{
    enumerate_join_candidates, join_features, join_features_batch, CandidateParams, JoinCandidate,
    JOIN_FEATURE_GROUPS, JOIN_FEATURE_NAMES,
};
use autosuggest_dataframe::DataFrame;
use autosuggest_gbdt::{aggregate_importance, Dataset, Gbdt, GbdtParams};
use serde::{Deserialize, Serialize};

/// One ranked join suggestion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinSuggestion {
    pub left_cols: Vec<String>,
    pub right_cols: Vec<String>,
    pub score: f64,
}

/// Resolve the ground-truth candidate of a merge invocation (column names
/// from the logged parameters → column indices in the logged inputs).
/// Returns `None` when the logged columns are missing from the inputs
/// (cannot happen for invocations replay produced, but guards stale logs).
pub fn ground_truth_candidate(inv: &OpInvocation) -> Option<JoinCandidate> {
    let OpParams::Merge { left_on, right_on, .. } = &inv.params else {
        return None;
    };
    let left = inv.inputs.first()?;
    let right = inv.inputs.get(1)?;
    let left_cols: Option<Vec<usize>> =
        left_on.iter().map(|n| left.column_index(n).ok()).collect();
    let right_cols: Option<Vec<usize>> =
        right_on.iter().map(|n| right.column_index(n).ok()).collect();
    Some(JoinCandidate { left_cols: left_cols?, right_cols: right_cols? })
}

/// Enumerate candidates for evaluation/training, guaranteeing the ground
/// truth is present (pruning must never silently delete the right answer —
/// every compared method ranks the same candidate set, as in §6.5.1).
pub fn candidates_with_truth(
    left: &DataFrame,
    right: &DataFrame,
    truth: &JoinCandidate,
    params: &CandidateParams,
) -> Vec<JoinCandidate> {
    let mut cands = enumerate_join_candidates(left, right, params);
    if !cands.contains(truth) {
        cands.push(truth.clone());
    }
    cands
}

/// The learned join-column ranker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JoinColumnPredictor {
    model: Gbdt,
    cand_params: CandidateParams,
}

impl JoinColumnPredictor {
    /// Train from merge invocations. Negative candidates are capped per
    /// case to keep the label distribution workable (point-wise ranking
    /// with 0/1 labels, §4.1).
    pub fn train(
        invocations: &[&OpInvocation],
        gbdt: &GbdtParams,
        cand_params: CandidateParams,
    ) -> Option<Self> {
        const MAX_NEGATIVES: usize = 40;
        // Candidate enumeration + feature extraction per invocation is the
        // expensive part of training; invocations are independent, so fan
        // them out and concatenate the per-invocation rows in input order.
        let per_invocation = autosuggest_parallel::par_map(invocations, |inv| {
            let mut rows: Vec<Vec<f64>> = Vec::new();
            let mut labels: Vec<f64> = Vec::new();
            let Some(truth) = ground_truth_candidate(inv) else {
                return (rows, labels);
            };
            let left = &inv.inputs[0];
            let right = &inv.inputs[1];
            let cands = candidates_with_truth(left, right, &truth, &cand_params);
            // Select kept candidates first (truth + capped negatives), then
            // featurise the kept set in one batch so each distinct key-column
            // tuple is hashed once per table rather than once per candidate.
            let mut kept: Vec<&JoinCandidate> = Vec::with_capacity(cands.len());
            let mut negatives = 0usize;
            for cand in &cands {
                let is_truth = *cand == truth;
                if !is_truth {
                    negatives += 1;
                    if negatives > MAX_NEGATIVES {
                        continue;
                    }
                }
                kept.push(cand);
                labels.push(if is_truth { 1.0 } else { 0.0 });
            }
            let kept_owned: Vec<JoinCandidate> = kept.into_iter().cloned().collect();
            rows.extend(
                join_features_batch(left, right, &kept_owned)
                    .into_iter()
                    .map(|f| f.values),
            );
            (rows, labels)
        });
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut labels: Vec<f64> = Vec::new();
        for (r, l) in per_invocation {
            rows.extend(r);
            labels.extend(l);
        }
        if rows.is_empty() {
            return None;
        }
        let names = JOIN_FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
        let data = Dataset::new(names, rows, labels).ok()?;
        Some(JoinColumnPredictor { model: Gbdt::fit(&data, gbdt), cand_params })
    }

    /// Score one candidate.
    pub fn score(&self, left: &DataFrame, right: &DataFrame, cand: &JoinCandidate) -> f64 {
        self.model.predict(&join_features(left, right, cand).values)
    }

    /// Rank an explicit candidate list (descending), returning indices.
    pub fn rank_candidates(
        &self,
        left: &DataFrame,
        right: &DataFrame,
        cands: &[JoinCandidate],
    ) -> Vec<usize> {
        // Wide tables can enumerate thousands of candidates; featurise the
        // whole pool in one batch (each distinct key-column tuple hashed
        // once per table) and score the rows (input order preserved,
        // tie-break unchanged).
        let feats = join_features_batch(left, right, cands);
        let scores: Vec<f64> = autosuggest_parallel::Pool::global()
            .with_min_items(64)
            .par_map(&feats, |f| self.model.predict(&f.values));
        let mut order: Vec<usize> = (0..cands.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        order
    }

    /// Produce ranked join suggestions for two tables (the Fig. 1 API).
    pub fn suggest(&self, left: &DataFrame, right: &DataFrame, top_k: usize) -> Vec<JoinSuggestion> {
        let cands = enumerate_join_candidates(left, right, &self.cand_params);
        let order = self.rank_candidates(left, right, &cands);
        order
            .into_iter()
            .take(top_k)
            .map(|i| {
                let c = &cands[i];
                JoinSuggestion {
                    left_cols: c
                        .left_cols
                        .iter()
                        .map(|&ci| left.column_at(ci).name().to_string())
                        .collect(),
                    right_cols: c
                        .right_cols
                        .iter()
                        .map(|&ci| right.column_at(ci).name().to_string())
                        .collect(),
                    score: self.score(left, right, c),
                }
            })
            .collect()
    }

    /// Feature-group importances (Table 4).
    pub fn importance_by_group(&self) -> Vec<(String, f64)> {
        aggregate_importance(&self.model.feature_importance(), &JOIN_FEATURE_GROUPS)
    }

    pub fn candidate_params(&self) -> &CandidateParams {
        &self.cand_params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_corpus::{CorpusConfig, CorpusGenerator, OpKind, ReplayEngine};

    fn train_small() -> (JoinColumnPredictor, Vec<OpInvocation>) {
        let mut cfg = CorpusConfig::small(21);
        cfg.plant_failures = false;
        cfg.groupby_notebooks = 0;
        cfg.pivot_notebooks = 0;
        cfg.unpivot_notebooks = 0;
        cfg.json_notebooks = 0;
        cfg.flow_notebooks = 0;
        cfg.join_notebooks = 25;
        let corpus = CorpusGenerator::new(cfg).generate();
        let engine = ReplayEngine::new(corpus.repository.clone());
        let mut invs: Vec<OpInvocation> = Vec::new();
        for nb in &corpus.notebooks {
            invs.extend(
                engine
                    .replay(nb)
                    .invocations
                    .into_iter()
                    .filter(|i| i.op == OpKind::Merge),
            );
        }
        let (filtered, _) = autosuggest_corpus::filter_invocations(invs, 5);
        let refs: Vec<&OpInvocation> = filtered.iter().collect();
        let gbdt = GbdtParams { n_trees: 40, ..Default::default() };
        let model =
            JoinColumnPredictor::train(&refs, &gbdt, CandidateParams::default()).unwrap();
        (model, filtered)
    }

    #[test]
    fn learns_to_rank_planted_joins_first() {
        let (model, invs) = train_small();
        // Evaluate on the training cases themselves (fit sanity, not
        // generalisation — the integration tests do the held-out split).
        let mut hits = 0;
        let mut total = 0;
        for inv in &invs {
            let truth = ground_truth_candidate(inv).unwrap();
            let cands = candidates_with_truth(
                &inv.inputs[0],
                &inv.inputs[1],
                &truth,
                model.candidate_params(),
            );
            let best = model.rank_candidates(&inv.inputs[0], &inv.inputs[1], &cands)[0];
            total += 1;
            if cands[best] == truth {
                hits += 1;
            }
        }
        assert!(total >= 10, "need enough cases, got {total}");
        assert!(
            hits as f64 / total as f64 > 0.8,
            "training-set precision {hits}/{total}"
        );
    }

    #[test]
    fn suggest_returns_named_columns() {
        let (model, invs) = train_small();
        let inv = &invs[0];
        let suggestions = model.suggest(&inv.inputs[0], &inv.inputs[1], 3);
        assert!(!suggestions.is_empty());
        assert!(suggestions[0].score >= suggestions.last().unwrap().score);
        assert!(!suggestions[0].left_cols.is_empty());
    }

    #[test]
    fn importance_groups_cover_the_table4_vocabulary() {
        let (model, _) = train_small();
        let imp = model.importance_by_group();
        let total: f64 = imp.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-6, "importances sum to {total}");
        let names: Vec<&str> = imp.iter().map(|(n, _)| n.as_str()).collect();
        for expected in [
            "left-ness",
            "val-overlap",
            "val-range-overlap",
            "distinct-val-ratio",
        ] {
            assert!(names.contains(&expected), "missing group {expected}");
        }
    }

    #[test]
    fn train_returns_none_without_data() {
        let gbdt = GbdtParams::default();
        assert!(JoinColumnPredictor::train(&[], &gbdt, CandidateParams::default()).is_none());
    }
}
