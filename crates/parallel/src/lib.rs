//! Deterministic scoped work-stealing parallelism for the Auto-Suggest
//! pipeline.
//!
//! The offline pipeline is embarrassingly parallel at three grains —
//! notebooks (replay), features (GBDT split search), and candidates
//! (join enumeration / scoring). This crate provides the one substrate all
//! of them share, built on `std::thread::scope` with **no external
//! dependencies** and one hard guarantee:
//!
//! > **Determinism contract.** Every combinator returns results in input
//! > order and bit-identical to the sequential execution, regardless of
//! > thread count, scheduling, or steal order. Parallelism never changes
//! > *what* is computed, only *when*.
//!
//! The contract holds because work items only write to their own output
//! slot (keyed by input index) and reductions always fold in input order
//! after the parallel map completes. Anything order-sensitive (floating
//! point accumulation, tie-breaking) therefore behaves exactly as in the
//! sequential loop.
//!
//! ## Scheduling
//!
//! Each call carves the input into contiguous chunks (a few per worker)
//! and deals them round-robin onto per-worker deques. Workers drain their
//! own deque LIFO-from-front and, when empty, steal from the back of
//! sibling deques — classic work-stealing at chunk granularity, which
//! keeps the common case contention-free while still balancing skewed
//! workloads (one huge notebook no longer serialises the tail).
//!
//! Workers are spawned per call via `std::thread::scope`, so closures may
//! borrow freely from the caller. Spawn cost (~tens of µs) is amortised by
//! the [`SEQ_CUTOFF`] guard: small inputs run inline on the caller thread.
//!
//! ## Thread-count knobs
//!
//! Priority order: [`set_thread_override`] (tests/benches) >
//! `AUTOSUGGEST_THREADS` (read once per process) >
//! `std::thread::available_parallelism()`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Inputs smaller than this run inline: thread spawn overhead would exceed
/// the win. Callers with very cheap per-item work should pass higher
/// `min_items` to [`Pool::with_min_items`] instead of tuning this.
const SEQ_CUTOFF: usize = 2;

/// Chunks dealt per worker; >1 so stealing has something to grab.
const CHUNKS_PER_WORKER: usize = 4;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

/// Force the global thread count (0 / `None` clears the override).
/// Intended for tests and benches that sweep thread counts in-process;
/// production code should use the `AUTOSUGGEST_THREADS` environment
/// variable instead.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

fn env_threads() -> Option<usize> {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("AUTOSUGGEST_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The effective worker count for new pool invocations.
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A (stateless) handle bundling scheduling parameters. Cheap to construct;
/// the worker threads themselves are scoped to each call.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
    min_items: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::global()
    }
}

impl Pool {
    /// Pool honouring the global knobs (override > env > hardware).
    pub fn global() -> Pool {
        Pool { threads: current_threads(), min_items: SEQ_CUTOFF }
    }

    /// Pool with an explicit worker count (still ≥1).
    pub fn with_threads(threads: usize) -> Pool {
        Pool { threads: threads.max(1), min_items: SEQ_CUTOFF }
    }

    /// Raise the sequential cutoff for cheap per-item work.
    pub fn with_min_items(mut self, min_items: usize) -> Pool {
        self.min_items = min_items.max(SEQ_CUTOFF);
        self
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `f` over `items`, returning results in input order.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map_indexed(items.len(), |i| f(&items[i]))
    }

    /// Map `f` over `0..n`, returning results in index order. The most
    /// general entry point — everything else lowers to it.
    pub fn par_map_indexed<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let workers = self.threads.min(n);
        if workers <= 1 || n < self.min_items {
            return (0..n).map(f).collect();
        }

        // Deal contiguous chunks round-robin onto per-worker deques.
        let chunk_size = n.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
        let chunks: Vec<(usize, usize)> = (0..n)
            .step_by(chunk_size)
            .map(|start| (start, (start + chunk_size).min(n)))
            .collect();
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (ci, _) in chunks.iter().enumerate() {
            queues[ci % workers].lock().expect("queue poisoned").push_back(ci);
        }

        let results: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::with_capacity(chunks.len()));
        let f = &f;
        let chunks = &chunks;
        let queues = &queues;
        let results_ref = &results;

        std::thread::scope(|scope| {
            for w in 0..workers {
                scope.spawn(move || {
                    let mut local: Vec<(usize, Vec<U>)> = Vec::new();
                    loop {
                        // Own queue first (front), then steal (back) from
                        // siblings in ring order.
                        let mut claimed: Option<usize> = None;
                        for probe in 0..workers {
                            let qi = (w + probe) % workers;
                            let mut q = queues[qi].lock().expect("queue poisoned");
                            claimed = if probe == 0 { q.pop_front() } else { q.pop_back() };
                            if claimed.is_some() {
                                break;
                            }
                        }
                        let Some(ci) = claimed else { break };
                        let (start, end) = chunks[ci];
                        local.push((start, (start..end).map(f).collect()));
                    }
                    if !local.is_empty() {
                        results_ref.lock().expect("results poisoned").extend(local);
                    }
                });
            }
        });

        let mut parts = results.into_inner().expect("results poisoned");
        parts.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(n);
        for (_, part) in parts {
            out.extend(part);
        }
        debug_assert_eq!(out.len(), n);
        out
    }

    /// Map over contiguous chunks of ~`chunk_size` items, in chunk order.
    pub fn par_chunks<T, U, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&[T]) -> U + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let bounds: Vec<(usize, usize)> = (0..items.len())
            .step_by(chunk_size)
            .map(|s| (s, (s + chunk_size).min(items.len())))
            .collect();
        self.par_map_indexed(bounds.len(), |ci| {
            let (s, e) = bounds[ci];
            f(&items[s..e])
        })
    }

    /// Order-preserving deterministic reduce: map in parallel, then fold
    /// the mapped values **sequentially in input order**. `fold` therefore
    /// sees exactly the same sequence as the equivalent sequential loop —
    /// floating-point sums, argmax tie-breaks, and first-wins dedup all
    /// stay bit-identical at any thread count.
    pub fn par_reduce<T, U, A, M, R>(&self, items: &[T], map: M, init: A, mut fold: R) -> A
    where
        T: Sync,
        U: Send,
        M: Fn(&T) -> U + Sync,
        R: FnMut(A, U) -> A,
    {
        let mapped = self.par_map(items, map);
        let mut acc = init;
        for v in mapped {
            acc = fold(acc, v);
        }
        acc
    }
}

/// [`Pool::par_map`] on the global pool.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    Pool::global().par_map(items, f)
}

/// [`Pool::par_map_indexed`] on the global pool.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    Pool::global().par_map_indexed(n, f)
}

/// [`Pool::par_chunks`] on the global pool.
pub fn par_chunks<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    Pool::global().par_chunks(items, chunk_size, f)
}

/// [`Pool::par_reduce`] on the global pool.
pub fn par_reduce<T, U, A, M, R>(items: &[T], map: M, init: A, fold: R) -> A
where
    T: Sync,
    U: Send,
    M: Fn(&T) -> U + Sync,
    R: FnMut(A, U) -> A,
{
    Pool::global().par_reduce(items, map, init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order_at_every_thread_count() {
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = Pool::with_threads(threads).par_map(&items, |&x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_indexed_handles_edge_sizes() {
        for n in [0usize, 1, 2, 3, 7] {
            let got = Pool::with_threads(4).par_map_indexed(n, |i| i * 2);
            assert_eq!(got, (0..n).map(|i| i * 2).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn par_chunks_covers_all_items_in_order() {
        let items: Vec<usize> = (0..103).collect();
        let sums = Pool::with_threads(4).par_chunks(&items, 10, |c| c.iter().sum::<usize>());
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
        // First chunk is exactly items 0..10.
        assert_eq!(sums[0], (0..10).sum::<usize>());
    }

    #[test]
    fn par_reduce_folds_in_input_order() {
        // String concatenation is order-sensitive: any reordering would
        // change the result.
        let items: Vec<usize> = (0..200).collect();
        for threads in [1, 3, 8] {
            let s = Pool::with_threads(threads).par_reduce(
                &items,
                |&i| format!("{i},"),
                String::new(),
                |mut acc, part| {
                    acc.push_str(&part);
                    acc
                },
            );
            let expect: String = items.iter().map(|i| format!("{i},")).collect();
            assert_eq!(s, expect, "threads={threads}");
        }
    }

    #[test]
    fn skewed_workloads_are_stolen() {
        // One item is 1000x heavier; with stealing, the other workers must
        // still process the remaining items (this is a liveness/correctness
        // smoke test — timing is not asserted).
        let items: Vec<u64> = (0..64).collect();
        let counter = AtomicU64::new(0);
        let got = Pool::with_threads(4).par_map(&items, |&x| {
            let spins = if x == 0 { 200_000 } else { 200 };
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(std::hint::black_box(i ^ x));
            }
            counter.fetch_add(1, Ordering::Relaxed);
            (x, acc & 1)
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(got.len(), 64);
        for (i, (x, _)) in got.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn override_beats_env() {
        set_thread_override(Some(3));
        assert_eq!(current_threads(), 3);
        assert_eq!(Pool::global().threads(), 3);
        set_thread_override(None);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn panics_propagate_not_deadlock() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            Pool::with_threads(4).par_map(&items, |&i| {
                if i == 33 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
