//! Deterministic scoped work-stealing parallelism for the Auto-Suggest
//! pipeline.
//!
//! The offline pipeline is embarrassingly parallel at three grains —
//! notebooks (replay), features (GBDT split search), and candidates
//! (join enumeration / scoring). This crate provides the one substrate all
//! of them share, built on `std::thread::scope` with **no external
//! dependencies** and one hard guarantee:
//!
//! > **Determinism contract.** Every combinator returns results in input
//! > order and bit-identical to the sequential execution, regardless of
//! > thread count, scheduling, or steal order. Parallelism never changes
//! > *what* is computed, only *when*.
//!
//! The contract holds because work items only write to their own output
//! slot (keyed by input index) and reductions always fold in input order
//! after the parallel map completes. Anything order-sensitive (floating
//! point accumulation, tie-breaking) therefore behaves exactly as in the
//! sequential loop.
//!
//! ## Scheduling
//!
//! Each call carves the input into contiguous chunks (a few per worker)
//! and deals them round-robin onto per-worker deques. Workers drain their
//! own deque LIFO-from-front and, when empty, steal from the back of
//! sibling deques — classic work-stealing at chunk granularity, which
//! keeps the common case contention-free while still balancing skewed
//! workloads (one huge notebook no longer serialises the tail).
//!
//! Workers are spawned per call via `std::thread::scope`, so closures may
//! borrow freely from the caller. Spawn cost (~tens of µs) is amortised by
//! the [`SEQ_CUTOFF`] guard: small inputs run inline on the caller thread.
//!
//! ## Thread-count knobs
//!
//! Priority order: [`set_thread_override`] (tests/benches) >
//! `AUTOSUGGEST_THREADS` (read once per process) >
//! `std::thread::available_parallelism()`.
//!
//! ## Fault isolation
//!
//! Every task body runs under `catch_unwind`, so one panicking item can
//! never poison the work queues or abort sibling items: all remaining
//! chunks are still executed. [`Pool::par_map`] re-raises the first panic
//! (in input order) once the whole input has been processed — a panic is a
//! programming error and should surface — while [`Pool::par_try_map`]
//! converts panics into per-item `Err` values via [`TaskPanic`], which is
//! what batch pipelines (notebook replay) use to degrade gracefully.
//! Mutex poisoning is recovered rather than propagated, so a panic on one
//! worker can never cascade into `PoisonError` panics on its siblings.

use autosuggest_obs as obs;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Inputs smaller than this run inline: thread spawn overhead would exceed
/// the win. Callers with very cheap per-item work should pass higher
/// `min_items` to [`Pool::with_min_items`] instead of tuning this.
const SEQ_CUTOFF: usize = 2;

/// Chunks dealt per worker; >1 so stealing has something to grab.
const CHUNKS_PER_WORKER: usize = 4;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

/// A panic captured from a pool task, demoted to a value so sibling tasks
/// keep running. `index` is the input position of the panicking item;
/// `message` is the stringified panic payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    pub index: usize,
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Best-effort extraction of the human-readable message from a panic
/// payload (`&str` and `String` payloads cover `panic!` in practice).
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Lock a mutex, recovering from poisoning: a panic elsewhere must not
/// cascade into `PoisonError` panics on healthy workers. The guarded data
/// (queue indices / result slots) is always in a consistent state because
/// no task code runs while a lock is held.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Force the global thread count (0 / `None` clears the override).
/// Intended for tests and benches that sweep thread counts in-process;
/// production code should use the `AUTOSUGGEST_THREADS` environment
/// variable instead.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

fn env_threads() -> Option<usize> {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("AUTOSUGGEST_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The effective worker count for new pool invocations.
pub fn current_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A (stateless) handle bundling scheduling parameters. Cheap to construct;
/// the worker threads themselves are scoped to each call.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
    min_items: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::global()
    }
}

impl Pool {
    /// Pool honouring the global knobs (override > env > hardware).
    pub fn global() -> Pool {
        Pool { threads: current_threads(), min_items: SEQ_CUTOFF }
    }

    /// Pool with an explicit worker count (still ≥1).
    pub fn with_threads(threads: usize) -> Pool {
        Pool { threads: threads.max(1), min_items: SEQ_CUTOFF }
    }

    /// Raise the sequential cutoff for cheap per-item work.
    pub fn with_min_items(mut self, min_items: usize) -> Pool {
        self.min_items = min_items.max(SEQ_CUTOFF);
        self
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `f` over `items`, returning results in input order.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map_indexed(items.len(), |i| f(&items[i]))
    }

    /// Map `f` over `0..n`, returning results in index order. The most
    /// general entry point — everything else lowers to it.
    ///
    /// If an item panics, the remaining items still run to completion and
    /// the first panic **in input order** is re-raised afterwards, so the
    /// caller observes the same panic the sequential loop would (modulo
    /// trailing items), and sibling work is never lost to queue poisoning.
    pub fn par_map_indexed<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let caught = self.run_indexed_catch(n, &f);
        let mut out = Vec::with_capacity(n);
        for item in caught {
            match item {
                Ok(v) => out.push(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        debug_assert_eq!(out.len(), n);
        out
    }

    /// Fallible map preserving deterministic ordering of successes *and*
    /// failures: `out[i]` is exactly `f(&items[i])`, with a panic in item
    /// `i` demoted to `Err(E::from(TaskPanic))`. One broken item never
    /// aborts or reorders its siblings, at any thread count.
    pub fn par_try_map<T, U, E, F>(&self, items: &[T], f: F) -> Vec<Result<U, E>>
    where
        T: Sync,
        U: Send,
        E: Send + From<TaskPanic>,
        F: Fn(&T) -> Result<U, E> + Sync,
    {
        let caught = self.run_indexed_catch(items.len(), &|i| f(&items[i]));
        caught
            .into_iter()
            .enumerate()
            .map(|(index, r)| match r {
                Ok(inner) => inner,
                Err(payload) => Err(E::from(TaskPanic {
                    index,
                    message: panic_message(payload.as_ref()),
                })),
            })
            .collect()
    }

    /// The scheduling core: map `f` over `0..n` with every call guarded by
    /// `catch_unwind`, returning per-item results in index order. Runs
    /// inline below the parallel cutoff (identical catch semantics, so
    /// behaviour never depends on thread count).
    fn run_indexed_catch<U, F>(&self, n: usize, f: &F) -> Vec<Result<U, Box<dyn Any + Send>>>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let guarded = |i: usize| catch_unwind(AssertUnwindSafe(|| f(i)));
        let workers = self.threads.min(n);
        if workers <= 1 || n < self.min_items {
            return (0..n).map(guarded).collect();
        }

        // Workers inherit the submitting thread's observability context,
        // so spans opened inside tasks nest under the caller's span and
        // metrics land in the caller's registry — span structure stays
        // identical to the inline path above at any thread count.
        let ambient = obs::ambient();

        // Deal contiguous chunks round-robin onto per-worker deques.
        let chunk_size = n.div_ceil(workers * CHUNKS_PER_WORKER).max(1);
        let chunks: Vec<(usize, usize)> = (0..n)
            .step_by(chunk_size)
            .map(|start| (start, (start + chunk_size).min(n)))
            .collect();
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (ci, _) in chunks.iter().enumerate() {
            lock_recover(&queues[ci % workers]).push_back(ci);
        }

        type Caught<U> = Result<U, Box<dyn Any + Send>>;
        let results: Mutex<Vec<(usize, Vec<Caught<U>>)>> =
            Mutex::new(Vec::with_capacity(chunks.len()));
        let guarded = &guarded;
        let chunks = &chunks;
        let queues = &queues;
        let results_ref = &results;

        std::thread::scope(|scope| {
            for w in 0..workers {
                let ambient = ambient.clone();
                scope.spawn(move || {
                    obs::with_ambient(&ambient, || {
                        let mut local: Vec<(usize, Vec<Caught<U>>)> = Vec::new();
                        loop {
                            // Own queue first (front), then steal (back)
                            // from siblings in ring order.
                            let mut claimed: Option<usize> = None;
                            for probe in 0..workers {
                                let qi = (w + probe) % workers;
                                let mut q = lock_recover(&queues[qi]);
                                claimed =
                                    if probe == 0 { q.pop_front() } else { q.pop_back() };
                                if claimed.is_some() {
                                    break;
                                }
                            }
                            let Some(ci) = claimed else { break };
                            let (start, end) = chunks[ci];
                            local.push((start, (start..end).map(guarded).collect()));
                        }
                        if !local.is_empty() {
                            lock_recover(results_ref).extend(local);
                        }
                    });
                });
            }
        });

        let mut parts = results.into_inner().unwrap_or_else(|p| p.into_inner());
        parts.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(n);
        for (_, part) in parts {
            out.extend(part);
        }
        debug_assert_eq!(out.len(), n);
        out
    }

    /// Map over contiguous chunks of ~`chunk_size` items, in chunk order.
    pub fn par_chunks<T, U, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&[T]) -> U + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let bounds: Vec<(usize, usize)> = (0..items.len())
            .step_by(chunk_size)
            .map(|s| (s, (s + chunk_size).min(items.len())))
            .collect();
        self.par_map_indexed(bounds.len(), |ci| {
            let (s, e) = bounds[ci];
            f(&items[s..e])
        })
    }

    /// Order-preserving deterministic reduce: map in parallel, then fold
    /// the mapped values **sequentially in input order**. `fold` therefore
    /// sees exactly the same sequence as the equivalent sequential loop —
    /// floating-point sums, argmax tie-breaks, and first-wins dedup all
    /// stay bit-identical at any thread count.
    pub fn par_reduce<T, U, A, M, R>(&self, items: &[T], map: M, init: A, mut fold: R) -> A
    where
        T: Sync,
        U: Send,
        M: Fn(&T) -> U + Sync,
        R: FnMut(A, U) -> A,
    {
        let mapped = self.par_map(items, map);
        let mut acc = init;
        for v in mapped {
            acc = fold(acc, v);
        }
        acc
    }
}

/// [`Pool::par_map`] on the global pool.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    Pool::global().par_map(items, f)
}

/// [`Pool::par_map_indexed`] on the global pool.
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    Pool::global().par_map_indexed(n, f)
}

/// [`Pool::par_chunks`] on the global pool.
pub fn par_chunks<T, U, F>(items: &[T], chunk_size: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&[T]) -> U + Sync,
{
    Pool::global().par_chunks(items, chunk_size, f)
}

/// [`Pool::par_try_map`] on the global pool.
pub fn par_try_map<T, U, E, F>(items: &[T], f: F) -> Vec<Result<U, E>>
where
    T: Sync,
    U: Send,
    E: Send + From<TaskPanic>,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    Pool::global().par_try_map(items, f)
}

/// [`Pool::par_reduce`] on the global pool.
pub fn par_reduce<T, U, A, M, R>(items: &[T], map: M, init: A, fold: R) -> A
where
    T: Sync,
    U: Send,
    M: Fn(&T) -> U + Sync,
    R: FnMut(A, U) -> A,
{
    Pool::global().par_reduce(items, map, init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_order_at_every_thread_count() {
        let items: Vec<u64> = (0..997).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = Pool::with_threads(threads).par_map(&items, |&x| x * x + 1);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn par_map_propagates_ambient_spans_to_workers() {
        let items: Vec<u64> = (0..64).collect();
        let (sum, snap) = obs::with_local_registry(|| {
            let _outer = obs::span("outer");
            let mapped = Pool::with_threads(4).par_map(&items, |&x| {
                let _task = obs::span("task");
                obs::counter_add("tasks", 1);
                x
            });
            mapped.iter().sum::<u64>()
        });
        assert_eq!(sum, items.iter().sum::<u64>());
        assert_eq!(snap.counters.get("tasks"), Some(&(items.len() as u64)));
        let task = snap.spans.get("outer/task").copied().unwrap_or_default();
        assert_eq!(
            task.calls,
            items.len() as u64,
            "worker spans must nest under the submitting span: {:?}",
            snap.spans.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn par_map_indexed_handles_edge_sizes() {
        for n in [0usize, 1, 2, 3, 7] {
            let got = Pool::with_threads(4).par_map_indexed(n, |i| i * 2);
            assert_eq!(got, (0..n).map(|i| i * 2).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn par_chunks_covers_all_items_in_order() {
        let items: Vec<usize> = (0..103).collect();
        let sums = Pool::with_threads(4).par_chunks(&items, 10, |c| c.iter().sum::<usize>());
        assert_eq!(sums.len(), 11);
        assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
        // First chunk is exactly items 0..10.
        assert_eq!(sums[0], (0..10).sum::<usize>());
    }

    #[test]
    fn par_reduce_folds_in_input_order() {
        // String concatenation is order-sensitive: any reordering would
        // change the result.
        let items: Vec<usize> = (0..200).collect();
        for threads in [1, 3, 8] {
            let s = Pool::with_threads(threads).par_reduce(
                &items,
                |&i| format!("{i},"),
                String::new(),
                |mut acc, part| {
                    acc.push_str(&part);
                    acc
                },
            );
            let expect: String = items.iter().map(|i| format!("{i},")).collect();
            assert_eq!(s, expect, "threads={threads}");
        }
    }

    #[test]
    fn skewed_workloads_are_stolen() {
        // One item is 1000x heavier; with stealing, the other workers must
        // still process the remaining items (this is a liveness/correctness
        // smoke test — timing is not asserted).
        let items: Vec<u64> = (0..64).collect();
        let counter = AtomicU64::new(0);
        let got = Pool::with_threads(4).par_map(&items, |&x| {
            let spins = if x == 0 { 200_000 } else { 200 };
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(std::hint::black_box(i ^ x));
            }
            counter.fetch_add(1, Ordering::Relaxed);
            (x, acc & 1)
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(got.len(), 64);
        for (i, (x, _)) in got.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn override_beats_env() {
        set_thread_override(Some(3));
        assert_eq!(current_threads(), 3);
        assert_eq!(Pool::global().threads(), 3);
        set_thread_override(None);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn panics_propagate_not_deadlock() {
        // One item panics; the panic must reach the caller, but every
        // sibling item must still have run (no aborted chunks, no poisoned
        // queues) and the pool must stay fully usable afterwards.
        let items: Vec<usize> = (0..64).collect();
        let completed = AtomicU64::new(0);
        let result = std::panic::catch_unwind(|| {
            Pool::with_threads(4).par_map(&items, |&i| {
                if i == 33 {
                    panic!("boom");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        });
        assert!(result.is_err());
        let payload = result.unwrap_err();
        assert_eq!(panic_message(payload.as_ref()), "boom");
        assert_eq!(
            completed.load(Ordering::Relaxed),
            63,
            "sibling tasks must complete despite the panic"
        );
        // The pool is stateless per call, but this also proves no global
        // state (env cache, override) was corrupted by the unwind.
        let again = Pool::with_threads(4).par_map(&items, |&i| i + 1);
        assert_eq!(again, (1..=64).collect::<Vec<_>>());
    }

    #[test]
    fn first_panic_in_input_order_wins() {
        // Items 7 and 50 both panic; regardless of which worker hits which
        // first, the re-raised payload must be item 7's (input order).
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 2, 4, 8] {
            let result = std::panic::catch_unwind(|| {
                Pool::with_threads(threads).par_map(&items, |&i| {
                    if i == 7 || i == 50 {
                        panic!("boom-{i}");
                    }
                    i
                })
            });
            let payload = result.unwrap_err();
            assert_eq!(panic_message(payload.as_ref()), "boom-7", "threads={threads}");
        }
    }

    #[test]
    fn par_try_map_isolates_panics_and_errors_deterministically() {
        #[derive(Debug, PartialEq)]
        enum E {
            Odd(usize),
            Panic(String),
        }
        impl From<TaskPanic> for E {
            fn from(p: TaskPanic) -> E {
                E::Panic(format!("{}@{}", p.message, p.index))
            }
        }
        let items: Vec<usize> = (0..97).collect();
        let run = |threads: usize| {
            Pool::with_threads(threads).par_try_map(&items, |&i| {
                if i % 10 == 3 {
                    panic!("injected {i}");
                }
                if i % 2 == 1 {
                    return Err(E::Odd(i));
                }
                Ok(i * 2)
            })
        };
        let one = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), one, "threads={threads}");
        }
        assert_eq!(one[0], Ok(0));
        assert_eq!(one[1], Err(E::Odd(1)));
        assert_eq!(one[3], Err(E::Panic("injected 3@3".into())));
        assert_eq!(one.len(), 97);
        // Every slot is filled: successes and failures interleave in input
        // order with nothing dropped.
        let panics = one.iter().filter(|r| matches!(r, Err(E::Panic(_)))).count();
        assert_eq!(panics, 10);
    }

    #[test]
    fn panic_message_extracts_common_payloads() {
        let p1 = std::panic::catch_unwind(|| panic!("plain str")).unwrap_err();
        assert_eq!(panic_message(p1.as_ref()), "plain str");
        let p2 = std::panic::catch_unwind(|| panic!("formatted {}", 42)).unwrap_err();
        assert_eq!(panic_message(p2.as_ref()), "formatted 42");
        let p3 = std::panic::catch_unwind(|| std::panic::panic_any(17u32)).unwrap_err();
        assert_eq!(panic_message(p3.as_ref()), "non-string panic payload");
    }
}
