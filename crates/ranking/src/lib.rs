//! Evaluation metrics for ranked suggestions (§6.4 of the paper).
//!
//! Auto-Suggest presents predictions as ranked lists, so quality is scored
//! with IR metrics: precision@k and NDCG@k (with the paper's convention
//! that once every relevant item has been retrieved, lower-ranked positions
//! are not penalised), recall@k for next-operator prediction, table-level
//! *full-accuracy*, and set precision/recall/F1 for Unpivot column
//! selection (Table 9).

pub mod metrics;

pub use metrics::{
    full_accuracy, mean, ndcg_at_k, precision_at_k, recall_at_k, set_prf, Prf,
};
