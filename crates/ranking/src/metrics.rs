//! Ranking and set metrics (§6.4, Tables 3–9, 11).

/// Precision@k with the paper's convention: once every relevant item in the
/// ground truth has been retrieved, additional lower-ranked predictions are
/// not penalised.
///
/// `ranked` holds relevance labels (true = relevant) in predicted order;
/// `num_relevant` is the total number of relevant items in the ground truth.
pub fn precision_at_k(ranked: &[bool], num_relevant: usize, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    if num_relevant == 0 {
        // Nothing to find: any ranking is vacuously perfect.
        return 1.0;
    }
    let cutoff = k.min(ranked.len());
    let hits = ranked[..cutoff].iter().filter(|&&r| r).count();
    // If every relevant item already appears in the top-k, the denominator
    // shrinks to the number of relevant items (no penalty for the tail).
    let denom = if hits >= num_relevant { num_relevant.min(k) } else { k };
    hits.min(denom) as f64 / denom as f64
}

/// NDCG@k with binary relevance labels.
///
/// `DCG_k = Σ rel_i / log2(i+1)` over the top-k predictions; `IDCG_k` is the
/// DCG of the ideal ordering given `num_relevant` relevant items.
pub fn ndcg_at_k(ranked: &[bool], num_relevant: usize, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    if num_relevant == 0 {
        return 1.0;
    }
    let cutoff = k.min(ranked.len());
    let dcg: f64 = ranked[..cutoff]
        .iter()
        .enumerate()
        .filter(|(_, &rel)| rel)
        .map(|(i, _)| 1.0 / ((i + 2) as f64).log2())
        .sum();
    let ideal_hits = num_relevant.min(k);
    let idcg: f64 = (0..ideal_hits)
        .map(|i| 1.0 / ((i + 2) as f64).log2())
        .sum();
    (dcg / idcg).min(1.0)
}

/// Recall@k: fraction of relevant items retrieved in the top-k.
pub fn recall_at_k(ranked: &[bool], num_relevant: usize, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    if num_relevant == 0 {
        return 1.0;
    }
    let cutoff = k.min(ranked.len());
    let hits = ranked[..cutoff].iter().filter(|&&r| r).count();
    hits as f64 / num_relevant as f64
}

/// Table-level full accuracy: the fraction of cases where the prediction is
/// completely correct (`cases` holds one bool per test case).
pub fn full_accuracy(cases: &[bool]) -> f64 {
    if cases.is_empty() {
        return 0.0;
    }
    cases.iter().filter(|&&c| c).count() as f64 / cases.len() as f64
}

/// Precision / recall / F1 over predicted vs. ground-truth sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prf {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// Set precision/recall/F1 between a predicted item set and the ground
/// truth (Table 9 scores Unpivot column selections this way).
///
/// True positives are counted by greedy one-to-one matching: each ground
/// truth item can satisfy at most one prediction, so a duplicated
/// prediction is a precision error rather than an extra hit, and recall can
/// never exceed 1. (Symmetrically, duplicates in `truth` need distinct
/// matching predictions.)
pub fn set_prf<T: PartialEq>(predicted: &[T], truth: &[T]) -> Prf {
    if predicted.is_empty() && truth.is_empty() {
        // Nothing to find and nothing predicted: a perfect match, matching
        // the vacuous-success convention of `precision_at_k` / `ndcg_at_k` /
        // `recall_at_k` for `num_relevant == 0`.
        return Prf { precision: 1.0, recall: 1.0, f1: 1.0 };
    }
    let mut matched = vec![false; truth.len()];
    let mut tp = 0.0f64;
    for p in predicted {
        if let Some(i) = truth
            .iter()
            .enumerate()
            .position(|(i, t)| !matched[i] && t == p)
        {
            matched[i] = true;
            tp += 1.0;
        }
    }
    let precision = if predicted.is_empty() { 0.0 } else { tp / predicted.len() as f64 };
    let recall = if truth.is_empty() { 0.0 } else { tp / truth.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Prf { precision, recall, f1 }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_basic() {
        // One relevant item, ranked first.
        assert_eq!(precision_at_k(&[true, false], 1, 1), 1.0);
        // One relevant item, ranked second: prec@1 = 0, prec@2 = 1 (the
        // relevant item is fully retrieved, tail not penalised... but it was
        // retrieved at position 2 of 2, hits=1 = num_relevant → denom 1).
        assert_eq!(precision_at_k(&[false, true], 1, 1), 0.0);
        assert_eq!(precision_at_k(&[false, true], 1, 2), 1.0);
    }

    #[test]
    fn precision_no_tail_penalty() {
        // 2 relevant items both in top-2; prec@3 should not decay.
        assert_eq!(precision_at_k(&[true, true, false], 2, 3), 1.0);
        // But with only 1 of 2 found in top-2, normal division applies.
        assert_eq!(precision_at_k(&[true, false], 2, 2), 0.5);
    }

    #[test]
    fn precision_vacuous_when_nothing_relevant() {
        assert_eq!(precision_at_k(&[false, false], 0, 1), 1.0);
    }

    #[test]
    fn ndcg_perfect_ranking_is_one() {
        assert_eq!(ndcg_at_k(&[true, true, false], 2, 2), 1.0);
        assert_eq!(ndcg_at_k(&[true], 1, 1), 1.0);
    }

    #[test]
    fn ndcg_discounts_late_hits() {
        // Relevant item at rank 2 instead of rank 1.
        let got = ndcg_at_k(&[false, true], 1, 2);
        let want = (1.0 / 3f64.log2()) / 1.0;
        assert!((got - want).abs() < 1e-12);
        assert!(got < 1.0);
    }

    #[test]
    fn ndcg_at_one_equals_precision_at_one_for_binary() {
        for ranked in [[true, false], [false, true]] {
            assert_eq!(
                ndcg_at_k(&ranked, 1, 1),
                precision_at_k(&ranked, 1, 1)
            );
        }
    }

    #[test]
    fn recall_counts_found_fraction() {
        assert_eq!(recall_at_k(&[true, false, true], 2, 1), 0.5);
        assert_eq!(recall_at_k(&[true, false, true], 2, 3), 1.0);
        assert_eq!(recall_at_k(&[false], 0, 1), 1.0);
    }

    #[test]
    fn full_accuracy_fraction() {
        assert_eq!(full_accuracy(&[true, true, false, false]), 0.5);
        assert_eq!(full_accuracy(&[]), 0.0);
    }

    #[test]
    fn set_prf_partial_overlap() {
        let prf = set_prf(&["a", "b", "c"], &["b", "c", "d", "e"]);
        assert!((prf.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((prf.recall - 0.5).abs() < 1e-12);
        let expect_f1 = 2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
        assert!((prf.f1 - expect_f1).abs() < 1e-12);
    }

    #[test]
    fn set_prf_edge_cases() {
        let empty: [&str; 0] = [];
        let prf = set_prf(&empty, &["a"]);
        assert_eq!(prf.precision, 0.0);
        assert_eq!(prf.f1, 0.0);
        let prf = set_prf(&["a"], &["a"]);
        assert_eq!(prf.f1, 1.0);
    }

    #[test]
    fn set_prf_duplicate_predictions_do_not_inflate_tp() {
        // Regression: each ground-truth item may satisfy only one
        // prediction. The old membership count scored ["a","a","a"] vs
        // ["a"] as tp=3 → precision 1.0 and recall 3.0.
        let prf = set_prf(&["a", "a", "a"], &["a"]);
        assert!((prf.precision - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(prf.recall, 1.0);
        assert!(prf.recall <= 1.0);
        let expect_f1 = 2.0 * (1.0 / 3.0) * 1.0 / (1.0 / 3.0 + 1.0);
        assert!((prf.f1 - expect_f1).abs() < 1e-12);
    }

    #[test]
    fn set_prf_mixed_duplicates_and_misses() {
        // ["a","a","b","x"] vs ["a","b","c"]: matches are one "a", one "b" →
        // tp=2 (the duplicate "a" and the stray "x" are precision errors).
        let prf = set_prf(&["a", "a", "b", "x"], &["a", "b", "c"]);
        assert!((prf.precision - 0.5).abs() < 1e-12);
        assert!((prf.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn set_prf_duplicate_truth_needs_duplicate_predictions() {
        // Multiset semantics in the other direction: truth ["a","a"] is only
        // fully recalled by predicting "a" twice.
        let prf = set_prf(&["a"], &["a", "a"]);
        assert_eq!(prf.precision, 1.0);
        assert!((prf.recall - 0.5).abs() < 1e-12);
        let prf = set_prf(&["a", "a"], &["a", "a"]);
        assert_eq!(prf.f1, 1.0);
    }

    #[test]
    fn set_prf_distinct_sets_unchanged_by_matching_rule() {
        // With no duplicates anywhere, greedy one-to-one matching counts
        // exactly the intersection — identical to the old behaviour.
        let prf = set_prf(&["a", "b", "c"], &["b", "c", "d", "e"]);
        assert!((prf.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((prf.recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_prf_empty_vs_empty_is_vacuously_perfect() {
        // Same convention as precision_at_k/ndcg_at_k/recall_at_k with
        // num_relevant == 0: predicting nothing when nothing is relevant is
        // a perfect answer, not a total miss.
        let prf = set_prf::<&str>(&[], &[]);
        assert_eq!(prf, Prf { precision: 1.0, recall: 1.0, f1: 1.0 });
        // One-sided emptiness is still a failure on the populated side.
        let prf = set_prf(&["a"], &[]);
        assert_eq!(prf.precision, 0.0);
        assert_eq!(prf.f1, 0.0);
        let prf = set_prf::<&str>(&[], &["a"]);
        assert_eq!(prf.recall, 0.0);
        assert_eq!(prf.f1, 0.0);
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        precision_at_k(&[true], 1, 0);
    }

    #[test]
    fn empty_ranking_finds_nothing() {
        // An empty prediction list with relevant items outstanding scores 0
        // under every metric (and does not panic on the empty slice).
        let empty: [bool; 0] = [];
        assert_eq!(precision_at_k(&empty, 2, 1), 0.0);
        assert_eq!(recall_at_k(&empty, 2, 1), 0.0);
        assert_eq!(ndcg_at_k(&empty, 2, 3), 0.0);
        // With nothing relevant either, the vacuous-success convention wins.
        assert_eq!(precision_at_k(&empty, 0, 1), 1.0);
        assert_eq!(recall_at_k(&empty, 0, 1), 1.0);
        assert_eq!(ndcg_at_k(&empty, 0, 1), 1.0);
    }

    #[test]
    fn k_beyond_ranking_length_clamps_to_available_items() {
        // k=10 over 3 predictions inspects all 3 and no phantom slots.
        let ranked = [false, true, false];
        assert_eq!(recall_at_k(&ranked, 1, 10), 1.0);
        assert_eq!(precision_at_k(&ranked, 1, 10), 1.0); // fully retrieved → no tail penalty
        assert_eq!(ndcg_at_k(&ranked, 1, 10), 1.0 / 3f64.log2());
        // With more ground truth than predictions, recall caps at the
        // retrievable fraction and precision divides by k, not the length.
        assert_eq!(recall_at_k(&ranked, 4, 10), 0.25);
        assert_eq!(precision_at_k(&ranked, 4, 10), 0.1);
    }

    #[test]
    fn all_irrelevant_with_outstanding_truth_scores_zero() {
        let ranked = [false, false, false, false];
        for k in 1..=6 {
            assert_eq!(precision_at_k(&ranked, 3, k), 0.0);
            assert_eq!(recall_at_k(&ranked, 3, k), 0.0);
            assert_eq!(ndcg_at_k(&ranked, 3, k), 0.0);
        }
    }

    #[test]
    fn ndcg_improves_monotonically_as_a_hit_moves_up() {
        // One relevant item sliding from the last slot to the first: every
        // single-position promotion must strictly increase NDCG@len.
        let len = 6;
        let ndcg_with_hit_at = |pos: usize| {
            let ranked: Vec<bool> = (0..len).map(|i| i == pos).collect();
            ndcg_at_k(&ranked, 1, len)
        };
        for pos in (1..len).rev() {
            assert!(
                ndcg_with_hit_at(pos - 1) > ndcg_with_hit_at(pos),
                "promoting the hit from rank {} to {} did not raise ndcg",
                pos + 1,
                pos
            );
        }
        // Swapping a relevant item above an irrelevant one never hurts,
        // including with multiple relevant items in the list.
        let worse = [false, true, true, false];
        let better = [true, false, true, false];
        assert!(ndcg_at_k(&better, 2, 4) > ndcg_at_k(&worse, 2, 4));
    }
}
