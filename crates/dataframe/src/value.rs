//! Scalar cell values and data types.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The logical type of a column, inferred from its values.
///
/// Mirrors the coarse dtypes the paper's features distinguish
/// (string vs. int vs. float vs. bool vs. date), which drive e.g. the
/// *col-value-types* join feature and the *column-data-type* GroupBy feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// All values null; type unknown.
    Null,
    Bool,
    Int,
    Float,
    Str,
    /// Days since the Unix epoch. A dedicated type so date-typed columns can
    /// be recognised as dimensions even though they are stored numerically.
    Date,
}

impl DType {
    /// Whether values of this type are numeric (ordered on a number line).
    pub fn is_numeric(self) -> bool {
        matches!(self, DType::Int | DType::Float | DType::Date)
    }

    /// The join "compatibility class": values can only ever match equal if
    /// their types unify to the same class.
    pub fn unify(self, other: DType) -> Option<DType> {
        use DType::*;
        match (self, other) {
            (a, b) if a == b => Some(a),
            (Null, b) => Some(b),
            (a, Null) => Some(a),
            (Int, Float) | (Float, Int) => Some(Float),
            _ => None,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::Null => "null",
            DType::Bool => "bool",
            DType::Int => "int",
            DType::Float => "float",
            DType::Str => "str",
            DType::Date => "date",
        };
        f.write_str(s)
    }
}

/// A single cell value.
///
/// `Value` provides a *total* order (`Null` sorts first, floats via IEEE
/// `total_cmp`) and a hash consistent with equality, so values can serve as
/// group-by keys, join keys, and members of distinct-value sets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// Days since the Unix epoch.
    Date(i64),
}

impl Value {
    /// The dtype of this single value.
    pub fn dtype(&self) -> DType {
        match self {
            Value::Null => DType::Null,
            Value::Bool(_) => DType::Bool,
            Value::Int(_) => DType::Int,
            Value::Float(_) => DType::Float,
            Value::Str(_) => DType::Str,
            Value::Date(_) => DType::Date,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one. Dates map to their day
    /// number; booleans to 0/1 (Pandas coerces the same way under
    /// aggregation).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(*d as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// String view without allocating for `Str`; other types render via
    /// `Display`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render the value the way a CSV cell would show it.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            other => other.to_string(),
        }
    }

    /// Parse a raw text cell into the most specific `Value`, the same
    /// inference a CSV reader performs. Empty strings become `Null`.
    pub fn infer_from_str(raw: &str) -> Value {
        let t = raw.trim();
        if t.is_empty() {
            return Value::Null;
        }
        match t {
            "true" | "True" | "TRUE" => return Value::Bool(true),
            "false" | "False" | "FALSE" => return Value::Bool(false),
            _ => {}
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            if f.is_finite() {
                return Value::Float(f);
            }
        }
        if let Some(days) = parse_date_days(t) {
            return Value::Date(days);
        }
        Value::Str(t.to_string())
    }

    /// A canonical 64-bit fingerprint of the value, used for cheap
    /// content-addressed hashing of whole frames (the replay data-flow graph
    /// identifies frames by hash id, §3.3 of the paper).
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

/// Parse `YYYY-MM-DD` into days since the Unix epoch.
fn parse_date_days(s: &str) -> Option<i64> {
    let bytes = s.as_bytes();
    if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let year: i64 = s[0..4].parse().ok()?;
    let month: u32 = s[5..7].parse().ok()?;
    let day: u32 = s[8..10].parse().ok()?;
    if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    Some(days_from_civil(year, month, day))
}

/// Howard Hinnant's `days_from_civil`: civil date to days since 1970-01-01.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => f.write_str(s),
            Value::Date(d) => {
                let (y, m, day) = civil_from_days(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: Null < Bool < numeric (Int/Float unified on the number
    /// line) < Str < Date-vs-numeric is numeric. Within numerics, `5` and
    /// `5.0` compare equal so joins match across int/float columns, as
    /// Pandas does after type coercion.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
            // Remaining: Int / Float / Date — compare on the number line.
            // Zeros are canonicalised so that -0.0 == 0.0, consistent with
            // the Hash impl.
            (a, b) => {
                let canon = |f: f64| if f == 0.0 { 0.0 } else { f };
                let x = canon(a.as_f64().expect("numeric"));
                let y = canon(b.as_f64().expect("numeric"));
                x.total_cmp(&y)
            }
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Int/Float/Date hash through their f64 view so that values that
            // compare equal hash equal (Int(5) == Float(5.0) == Date(5)).
            Value::Int(_) | Value::Float(_) | Value::Date(_) => {
                state.write_u8(2);
                let f = self.as_f64().expect("numeric");
                // Canonicalise -0.0 to 0.0 and NaN payloads to one NaN.
                let f = if f == 0.0 {
                    0.0
                } else if f.is_nan() {
                    f64::NAN
                } else {
                    f
                };
                state.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn dtype_unification() {
        assert_eq!(DType::Int.unify(DType::Float), Some(DType::Float));
        assert_eq!(DType::Null.unify(DType::Str), Some(DType::Str));
        assert_eq!(DType::Str.unify(DType::Int), None);
        assert_eq!(DType::Date.unify(DType::Date), Some(DType::Date));
    }

    #[test]
    fn int_float_cross_type_equality() {
        assert_eq!(Value::Int(5), Value::Float(5.0));
        assert_ne!(Value::Int(5), Value::Float(5.5));
        let mut set = HashSet::new();
        set.insert(Value::Int(5));
        assert!(set.contains(&Value::Float(5.0)));
    }

    #[test]
    fn total_order_null_first() {
        let mut vals = [Value::Str("a".into()),
            Value::Int(3),
            Value::Null,
            Value::Float(-1.5),
            Value::Bool(true)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(-1.5));
        assert_eq!(vals[3], Value::Int(3));
        assert_eq!(vals[4], Value::Str("a".into()));
    }

    #[test]
    fn infer_from_str_types() {
        assert_eq!(Value::infer_from_str("42"), Value::Int(42));
        assert_eq!(Value::infer_from_str("4.5"), Value::Float(4.5));
        assert_eq!(Value::infer_from_str("true"), Value::Bool(true));
        assert_eq!(Value::infer_from_str(""), Value::Null);
        assert_eq!(Value::infer_from_str("  "), Value::Null);
        assert_eq!(
            Value::infer_from_str("hello world"),
            Value::Str("hello world".into())
        );
        assert_eq!(
            Value::infer_from_str("2006-01-02"),
            Value::Date(days_from_civil(2006, 1, 2))
        );
    }

    #[test]
    fn date_roundtrip_civil() {
        for &(y, m, d) in &[(1970, 1, 1), (2000, 2, 29), (2019, 12, 31), (1969, 7, 20)] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d));
        }
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
    }

    #[test]
    fn date_display() {
        let v = Value::Date(days_from_civil(2006, 3, 15));
        assert_eq!(v.to_string(), "2006-03-15");
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        let mut set = HashSet::new();
        set.insert(Value::Float(-0.0));
        assert!(set.contains(&Value::Float(0.0)));
        assert!(set.contains(&Value::Int(0)));
    }

    #[test]
    fn render_null_is_empty() {
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Int(7).render(), "7");
    }
}
