//! Error type shared by all DataFrame operations.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DataFrameError>;

/// Errors produced by DataFrame construction, operators, and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataFrameError {
    /// A referenced column does not exist in the frame.
    ColumnNotFound { name: String },
    /// Two columns in one frame share a name where uniqueness is required.
    DuplicateColumn { name: String },
    /// Columns passed to a constructor have differing lengths.
    LengthMismatch { expected: usize, got: usize, column: String },
    /// An operator was invoked with inconsistent parameters
    /// (e.g. `left_on`/`right_on` of different arity).
    InvalidArgument(String),
    /// Malformed input encountered while parsing CSV or JSON.
    Parse { line: usize, message: String },
    /// The requested aggregation cannot be applied to the column's dtype.
    TypeError(String),
}

impl fmt::Display for DataFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataFrameError::ColumnNotFound { name } => {
                write!(f, "column not found: {name:?}")
            }
            DataFrameError::DuplicateColumn { name } => {
                write!(f, "duplicate column name: {name:?}")
            }
            DataFrameError::LengthMismatch { expected, got, column } => write!(
                f,
                "column {column:?} has {got} rows, expected {expected}"
            ),
            DataFrameError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            DataFrameError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            DataFrameError::TypeError(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl std::error::Error for DataFrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DataFrameError::ColumnNotFound { name: "x".into() };
        assert!(e.to_string().contains("column not found"));
        let e = DataFrameError::LengthMismatch { expected: 3, got: 2, column: "c".into() };
        assert!(e.to_string().contains("expected 3"));
    }
}
