//! Schema description: named, typed fields.

use crate::value::DType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named, typed column descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    pub name: String,
    pub dtype: DType,
}

impl Field {
    pub fn new(name: impl Into<String>, dtype: DType) -> Self {
        Field { name: name.into(), dtype }
    }
}

/// The ordered list of fields of a [`crate::DataFrame`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    pub fn len(&self) -> usize {
        self.fields.len()
    }

    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of the field with the given name, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Names of all fields in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for field in &self.fields {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", field.name, field.dtype)?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_lookup() {
        let s = Schema::new(vec![
            Field::new("a", DType::Int),
            Field::new("b", DType::Str),
        ]);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.names(), vec!["a", "b"]);
    }

    #[test]
    fn display_format() {
        let s = Schema::new(vec![
            Field::new("x", DType::Float),
            Field::new("y", DType::Date),
        ]);
        assert_eq!(s.to_string(), "x: float, y: date");
    }
}
