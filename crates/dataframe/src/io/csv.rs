//! A small RFC-4180-ish CSV reader/writer with type inference.
//!
//! Notebook replay resolves data files (§3.2 of the paper) and loads them
//! through this reader, inferring int/float/bool/date/str per column the
//! way `pd.read_csv` does.

use crate::column::Column;
use crate::error::{DataFrameError, Result};
use crate::frame::DataFrame;
use crate::value::{DType, Value};

/// Parse CSV text (first row = header) into a [`DataFrame`].
///
/// Supports quoted fields with embedded commas, quotes (doubled), and
/// newlines. Each column's dtype is inferred from its cells; a column with
/// mixed incompatible types falls back to strings for *all* its cells so the
/// column is homogeneous.
pub fn read_csv_str(text: &str) -> Result<DataFrame> {
    let rows = parse_rows(text)?;
    let mut iter = rows.into_iter();
    let header = match iter.next() {
        Some(h) => h,
        None => return Ok(DataFrame::empty()),
    };
    let ncols = header.len();
    let mut raw_cols: Vec<Vec<String>> = vec![Vec::new(); ncols];
    for (line, row) in iter.enumerate() {
        if row.len() != ncols {
            return Err(DataFrameError::Parse {
                line: line + 2,
                message: format!("expected {ncols} fields, found {}", row.len()),
            });
        }
        for (c, cell) in row.into_iter().enumerate() {
            raw_cols[c].push(cell);
        }
    }

    let mut columns = Vec::with_capacity(ncols);
    for (name, raw) in header.into_iter().zip(raw_cols) {
        let inferred: Vec<Value> = raw.iter().map(|s| Value::infer_from_str(s)).collect();
        // Homogenise: if inference produced an incompatible mix, keep strings.
        let mut dtype = DType::Null;
        let mut mixed = false;
        for v in &inferred {
            if v.is_null() {
                continue;
            }
            dtype = match dtype.unify(v.dtype()) {
                Some(u) => u,
                None => {
                    mixed = true;
                    break;
                }
            };
        }
        let values = if mixed {
            raw.iter()
                .map(|s| {
                    let t = s.trim();
                    if t.is_empty() {
                        Value::Null
                    } else {
                        Value::Str(t.to_string())
                    }
                })
                .collect()
        } else {
            inferred
        };
        columns.push(Column::new(name, values));
    }
    DataFrame::new(columns)
}

/// Serialise a frame to CSV text (header + rows), quoting where needed.
pub fn write_csv_string(df: &DataFrame) -> String {
    let mut out = String::new();
    let names: Vec<String> = df
        .column_names()
        .iter()
        .map(|n| quote_if_needed(n))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for i in 0..df.num_rows() {
        let cells: Vec<String> = df
            .columns()
            .iter()
            .map(|c| quote_if_needed(&c.get(i).render()))
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn quote_if_needed(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Split CSV text into rows of unescaped fields.
fn parse_rows(text: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut line = 1usize;
    let mut any = false;

    while let Some(ch) = chars.next() {
        any = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                c => field.push(c),
            }
        } else {
            match ch {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(DataFrameError::Parse {
                            line,
                            message: "unexpected quote inside unquoted field".into(),
                        });
                    }
                }
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    line += 1;
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                c => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(DataFrameError::Parse {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_roundtrip() {
        let csv = "id,name,score\n1,ada,9.5\n2,bob,8.0\n";
        let df = read_csv_str(csv).unwrap();
        assert_eq!(df.num_rows(), 2);
        assert_eq!(df.schema().field(0).dtype, DType::Int);
        assert_eq!(df.schema().field(2).dtype, DType::Float);
        let back = write_csv_string(&df);
        let df2 = read_csv_str(&back).unwrap();
        assert_eq!(df.content_hash(), df2.content_hash());
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "title,author\n\"Dune, Part 1\",\"Frank \"\"F\"\" Herbert\"\n";
        let df = read_csv_str(csv).unwrap();
        assert_eq!(
            df.column("title").unwrap().get(0),
            &Value::Str("Dune, Part 1".into())
        );
        assert_eq!(
            df.column("author").unwrap().get(0),
            &Value::Str("Frank \"F\" Herbert".into())
        );
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let csv = "note\n\"line1\nline2\"\n";
        let df = read_csv_str(csv).unwrap();
        assert_eq!(df.num_rows(), 1);
        assert_eq!(
            df.column("note").unwrap().get(0),
            &Value::Str("line1\nline2".into())
        );
    }

    #[test]
    fn empty_cells_become_null() {
        let csv = "a,b\n1,\n,2\n";
        let df = read_csv_str(csv).unwrap();
        assert_eq!(df.column("a").unwrap().null_count(), 1);
        assert_eq!(df.column("b").unwrap().null_count(), 1);
    }

    #[test]
    fn mixed_type_column_degrades_to_all_strings() {
        let csv = "v\n1\nabc\n2\n";
        let df = read_csv_str(csv).unwrap();
        assert_eq!(df.schema().field(0).dtype, DType::Str);
        // Even the numeric-looking cells stay strings for homogeneity.
        assert_eq!(df.column("v").unwrap().get(0), &Value::Str("1".into()));
    }

    #[test]
    fn ragged_row_is_a_parse_error() {
        let err = read_csv_str("a,b\n1\n").unwrap_err();
        assert!(matches!(err, DataFrameError::Parse { line: 2, .. }));
    }

    #[test]
    fn date_inference() {
        let df = read_csv_str("d\n2020-05-01\n2020-05-02\n").unwrap();
        assert_eq!(df.schema().field(0).dtype, DType::Date);
    }

    #[test]
    fn crlf_line_endings() {
        let df = read_csv_str("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(df.num_rows(), 1);
        assert_eq!(df.column("b").unwrap().get(0), &Value::Int(2));
    }

    #[test]
    fn missing_trailing_newline() {
        let df = read_csv_str("a\n1").unwrap();
        assert_eq!(df.num_rows(), 1);
    }

    #[test]
    fn empty_input_is_empty_frame() {
        let df = read_csv_str("").unwrap();
        assert_eq!(df.num_columns(), 0);
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(read_csv_str("a\n\"oops\n").is_err());
    }
}
