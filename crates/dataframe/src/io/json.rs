//! JSON record reader (thin wrapper over `json_normalize`).

use crate::error::{DataFrameError, Result};
use crate::frame::DataFrame;
use crate::ops::json_normalize;

/// Parse a JSON document (array of objects, or single object) into a flat
/// [`DataFrame`], flattening nested objects with dotted paths.
pub fn read_json_records_str(text: &str) -> Result<DataFrame> {
    let doc: serde_json::Value = serde_json::from_str(text).map_err(|e| {
        DataFrameError::Parse { line: e.line(), message: e.to_string() }
    })?;
    json_normalize(&doc, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn reads_record_array() {
        let df = read_json_records_str(r#"[{"a": 1}, {"a": 2}]"#).unwrap();
        assert_eq!(df.num_rows(), 2);
        assert_eq!(df.column("a").unwrap().get(1), &Value::Int(2));
    }

    #[test]
    fn malformed_json_is_parse_error() {
        let err = read_json_records_str("{not json").unwrap_err();
        assert!(matches!(err, DataFrameError::Parse { .. }));
    }
}
