//! CSV and JSON readers/writers used by the replay environment.

mod csv;
mod json;

pub use csv::{read_csv_str, write_csv_string};
pub use json::read_json_records_str;
