//! `pivot_table`: reshape a flat table into a two-dimensional cross-tab.

use crate::column::Column;
use crate::error::{DataFrameError, Result};
use crate::frame::DataFrame;
use crate::ops::groupby::Agg;
use crate::value::Value;
use std::collections::HashMap;

/// Create a pivot table, following `pd.pivot_table` semantics.
///
/// * `index`: columns placed on the left of the result (row labels);
/// * `header`: columns whose value combinations become output columns
///   (`columns=` in Pandas);
/// * `values`: the aggregation column (`values=`);
/// * `agg`: the aggregation function (`aggfunc=`).
///
/// Output rows are distinct `index` tuples in first-seen order; output
/// columns are the `index` columns followed by one column per distinct
/// `header` tuple (sorted, multi-column tuples joined with `|`). Cells with
/// no contributing input rows are NULL — the emptiness that the paper's AMPT
/// objective (§4.3) minimises.
pub fn pivot_table(
    df: &DataFrame,
    index: &[&str],
    header: &[&str],
    values: &str,
    agg: Agg,
) -> Result<DataFrame> {
    if index.is_empty() || header.is_empty() {
        return Err(DataFrameError::InvalidArgument(
            "pivot_table requires non-empty index and header column sets".into(),
        ));
    }
    for h in header {
        if index.contains(h) {
            return Err(DataFrameError::InvalidArgument(format!(
                "column {h:?} cannot be both index and header"
            )));
        }
    }
    if index.contains(&values) || header.contains(&values) {
        return Err(DataFrameError::InvalidArgument(format!(
            "values column {values:?} overlaps index/header"
        )));
    }
    let index_idx: Vec<usize> = index
        .iter()
        .map(|n| df.column_index(n))
        .collect::<Result<_>>()?;
    let header_idx: Vec<usize> = header
        .iter()
        .map(|n| df.column_index(n))
        .collect::<Result<_>>()?;
    let values_idx = df.column_index(values)?;

    // Collect cells: (index tuple, header tuple) -> contributing values.
    let mut row_order: Vec<Vec<Value>> = Vec::new();
    let mut row_slot: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut header_tuples: Vec<Vec<Value>> = Vec::new();
    let mut header_slot: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut cells: HashMap<(usize, usize), Vec<usize>> = HashMap::new();

    for i in 0..df.num_rows() {
        let ikey: Vec<Value> = index_idx
            .iter()
            .map(|&k| df.column_at(k).get(i).clone())
            .collect();
        let hkey: Vec<Value> = header_idx
            .iter()
            .map(|&k| df.column_at(k).get(i).clone())
            .collect();
        if ikey.iter().any(Value::is_null) || hkey.iter().any(Value::is_null) {
            continue; // Pandas drops null group labels.
        }
        let r = *row_slot.entry(ikey.clone()).or_insert_with(|| {
            row_order.push(ikey);
            row_order.len() - 1
        });
        let c = *header_slot.entry(hkey.clone()).or_insert_with(|| {
            header_tuples.push(hkey);
            header_tuples.len() - 1
        });
        cells.entry((r, c)).or_default().push(i);
    }

    // Sort header tuples for deterministic, Pandas-like column order.
    let mut header_perm: Vec<usize> = (0..header_tuples.len()).collect();
    header_perm.sort_by(|&a, &b| header_tuples[a].cmp(&header_tuples[b]));

    let mut out_cols: Vec<Column> = Vec::new();
    for (pos, &name) in index.iter().enumerate() {
        out_cols.push(Column::new(
            name,
            row_order.iter().map(|k| k[pos].clone()).collect(),
        ));
    }
    let src = df.column_at(values_idx);
    for &h in &header_perm {
        let label = header_tuples[h]
            .iter()
            .map(|v| v.render())
            .collect::<Vec<_>>()
            .join("|");
        let mut vals = Vec::with_capacity(row_order.len());
        for r in 0..row_order.len() {
            match cells.get(&(r, h)) {
                Some(rows) => {
                    let group: Vec<&Value> = rows.iter().map(|&i| src.get(i)).collect();
                    vals.push(agg.apply(&group));
                }
                None => vals.push(Value::Null),
            }
        }
        out_cols.push(Column::new(label, vals));
    }
    DataFrame::new(out_cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example (Fig. 7): SEC filings pivoted by year.
    fn filings() -> DataFrame {
        let rows = vec![
            ("Aerospace", "AJRD", 2006, 472.07),
            ("Aerospace", "AJRD", 2006, 489.22),
            ("Aerospace", "AJRD", 2007, 500.00),
            ("Aerospace", "BA", 2006, 210.66),
            ("Utilities", "YORW", 2007, 271.73),
        ];
        DataFrame::from_rows(
            &["sector", "ticker", "year", "revenue"],
            rows.into_iter()
                .map(|(s, t, y, r)| {
                    vec![
                        Value::Str(s.into()),
                        Value::Str(t.into()),
                        Value::Int(y),
                        Value::Float(r),
                    ]
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn pivot_by_year_sums_quarters() {
        let out = pivot_table(
            &filings(),
            &["sector", "ticker"],
            &["year"],
            "revenue",
            Agg::Sum,
        )
        .unwrap();
        assert_eq!(out.column_names(), vec!["sector", "ticker", "2006", "2007"]);
        assert_eq!(out.num_rows(), 3);
        // AJRD 2006 = 472.07 + 489.22
        assert_eq!(
            out.column("2006").unwrap().get(0),
            &Value::Float(472.07 + 489.22)
        );
        // BA has no 2007 entry -> NULL
        let ba = (0..3)
            .find(|&i| out.column("ticker").unwrap().get(i) == &Value::Str("BA".into()))
            .unwrap();
        assert_eq!(out.column("2007").unwrap().get(ba), &Value::Null);
    }

    #[test]
    fn bad_split_creates_emptiness() {
        // Fig. 8 of the paper: header = sector while index = ticker creates
        // NULLs because sector is functionally determined by ticker.
        let out = pivot_table(&filings(), &["ticker", "year"], &["sector"], "revenue", Agg::Sum)
            .unwrap();
        let nulls: usize = out
            .columns()
            .iter()
            .skip(2)
            .map(|c| c.null_count())
            .sum();
        assert!(nulls > 0, "FD-violating split must produce empty cells");
    }

    #[test]
    fn multi_header_labels_join_with_pipe() {
        let out = pivot_table(
            &filings(),
            &["sector"],
            &["ticker", "year"],
            "revenue",
            Agg::Sum,
        )
        .unwrap();
        assert!(out.column_names().iter().any(|n| n.contains('|')));
    }

    #[test]
    fn header_overlapping_index_rejected() {
        assert!(pivot_table(&filings(), &["sector"], &["sector"], "revenue", Agg::Sum).is_err());
        assert!(
            pivot_table(&filings(), &["sector"], &["year"], "sector", Agg::Sum).is_err()
        );
    }

    #[test]
    fn mean_aggregation() {
        let out = pivot_table(&filings(), &["ticker"], &["year"], "revenue", Agg::Mean).unwrap();
        let ajrd = (0..out.num_rows())
            .find(|&i| out.column("ticker").unwrap().get(i) == &Value::Str("AJRD".into()))
            .unwrap();
        assert_eq!(
            out.column("2006").unwrap().get(ajrd),
            &Value::Float((472.07 + 489.22) / 2.0)
        );
    }

    #[test]
    fn count_fills_with_counts_not_nulls_only() {
        let out = pivot_table(&filings(), &["sector"], &["year"], "revenue", Agg::Count).unwrap();
        let aero = (0..out.num_rows())
            .find(|&i| out.column("sector").unwrap().get(i) == &Value::Str("Aerospace".into()))
            .unwrap();
        assert_eq!(out.column("2006").unwrap().get(aero), &Value::Int(3));
    }
}
