//! `dropna` / `fillna`: missing-data handling.

use crate::column::Column;
use crate::error::Result;
use crate::frame::DataFrame;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Row-dropping policy for [`dropna`], mirroring Pandas' `how=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropHow {
    /// Drop a row if *any* considered cell is null.
    Any,
    /// Drop a row only if *all* considered cells are null.
    All,
}

/// Drop rows containing nulls. `subset` restricts which columns are
/// inspected (`None` inspects all), exactly like `pd.dropna`.
pub fn dropna(df: &DataFrame, how: DropHow, subset: Option<&[&str]>) -> Result<DataFrame> {
    let cols: Vec<usize> = match subset {
        Some(names) => names
            .iter()
            .map(|n| df.column_index(n))
            .collect::<Result<_>>()?,
        None => (0..df.num_columns()).collect(),
    };
    if cols.is_empty() {
        return Ok(df.clone());
    }
    let keep: Vec<usize> = (0..df.num_rows())
        .filter(|&i| {
            let nulls = cols
                .iter()
                .filter(|&&c| df.column_at(c).get(i).is_null())
                .count();
            match how {
                DropHow::Any => nulls == 0,
                DropHow::All => nulls < cols.len(),
            }
        })
        .collect();
    Ok(df.take(&keep))
}

/// Replace nulls in the named columns with `value` (`pd.fillna` with a
/// scalar on selected columns).
pub fn fillna(df: &DataFrame, columns: &[&str], value: &Value) -> Result<DataFrame> {
    let target: Vec<usize> = columns
        .iter()
        .map(|n| df.column_index(n))
        .collect::<Result<_>>()?;
    let out = df
        .columns()
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            if target.contains(&ci) {
                Column::new(
                    c.name(),
                    c.values()
                        .iter()
                        .map(|v| if v.is_null() { value.clone() } else { v.clone() })
                        .collect(),
                )
            } else {
                c.clone()
            }
        })
        .collect();
    DataFrame::new(out)
}

/// Replace nulls in *all* columns with `value`.
pub fn fillna_all(df: &DataFrame, value: &Value) -> Result<DataFrame> {
    let names: Vec<&str> = df.column_names();
    fillna(df, &names, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn holey() -> DataFrame {
        DataFrame::from_columns(vec![
            ("a", vec![Value::Int(1), Value::Null, Value::Null]),
            ("b", vec![Value::Str("x".into()), Value::Str("y".into()), Value::Null]),
        ])
        .unwrap()
    }

    #[test]
    fn dropna_any_removes_rows_with_any_null() {
        let out = dropna(&holey(), DropHow::Any, None).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column("a").unwrap().get(0), &Value::Int(1));
    }

    #[test]
    fn dropna_all_keeps_partial_rows() {
        let out = dropna(&holey(), DropHow::All, None).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn dropna_subset_only_inspects_named_columns() {
        let out = dropna(&holey(), DropHow::Any, Some(&["b"])).unwrap();
        assert_eq!(out.num_rows(), 2); // row 1 kept: b non-null though a is
    }

    #[test]
    fn dropna_unknown_subset_errors() {
        assert!(dropna(&holey(), DropHow::Any, Some(&["zzz"])).is_err());
    }

    #[test]
    fn fillna_replaces_only_targeted_columns() {
        let out = fillna(&holey(), &["a"], &Value::Int(0)).unwrap();
        assert_eq!(out.column("a").unwrap().null_count(), 0);
        assert_eq!(out.column("b").unwrap().null_count(), 1);
    }

    #[test]
    fn fillna_all_clears_every_null() {
        let out = fillna_all(&holey(), &Value::Str("?".into())).unwrap();
        for c in out.columns() {
            assert_eq!(c.null_count(), 0);
        }
    }

    #[test]
    fn fillna_preserves_non_null_cells() {
        let out = fillna_all(&holey(), &Value::Int(0)).unwrap();
        assert_eq!(out.column("b").unwrap().get(0), &Value::Str("x".into()));
    }
}
