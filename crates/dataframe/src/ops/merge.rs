//! `merge`: relational join with Pandas semantics.

use crate::column::Column;
use crate::error::{DataFrameError, Result};
use crate::frame::DataFrame;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The join type (`how=` in Pandas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinType {
    Inner,
    Left,
    Right,
    Outer,
}

impl JoinType {
    pub const ALL: [JoinType; 4] = [
        JoinType::Inner,
        JoinType::Left,
        JoinType::Right,
        JoinType::Outer,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            JoinType::Inner => "inner",
            JoinType::Left => "left",
            JoinType::Right => "right",
            JoinType::Outer => "outer",
        }
    }

    pub fn parse(s: &str) -> Option<JoinType> {
        match s {
            "inner" => Some(JoinType::Inner),
            "left" => Some(JoinType::Left),
            "right" => Some(JoinType::Right),
            "outer" | "full" => Some(JoinType::Outer),
            _ => None,
        }
    }
}

impl fmt::Display for JoinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Join `left` and `right` on equality of `left_on` / `right_on` columns.
///
/// Pandas semantics reproduced here:
/// * multi-column keys match positionally;
/// * rows whose key contains a NULL never match (SQL/Pandas null semantics);
/// * non-key columns appearing in both inputs get `_x` / `_y` suffixes;
/// * `Left`/`Right`/`Outer` emit non-matching rows padded with NULLs;
/// * output row order is left-table order, then (for Right/Outer) unmatched
///   right rows in right-table order — matching `pd.merge`'s observable order
///   for sorted inputs.
pub fn merge(
    left: &DataFrame,
    right: &DataFrame,
    left_on: &[&str],
    right_on: &[&str],
    how: JoinType,
) -> Result<DataFrame> {
    if left_on.is_empty() || left_on.len() != right_on.len() {
        return Err(DataFrameError::InvalidArgument(format!(
            "left_on has {} columns, right_on has {}; need equal non-zero arity",
            left_on.len(),
            right_on.len()
        )));
    }
    let lkey_idx: Vec<usize> = left_on
        .iter()
        .map(|n| left.column_index(n))
        .collect::<Result<_>>()?;
    let rkey_idx: Vec<usize> = right_on
        .iter()
        .map(|n| right.column_index(n))
        .collect::<Result<_>>()?;

    // Hash the right side: key tuple -> row indices.
    let mut table: HashMap<Vec<&Value>, Vec<usize>> = HashMap::new();
    'rrow: for i in 0..right.num_rows() {
        let mut key = Vec::with_capacity(rkey_idx.len());
        for &k in &rkey_idx {
            let v = right.column_at(k).get(i);
            if v.is_null() {
                continue 'rrow;
            }
            key.push(v);
        }
        table.entry(key).or_default().push(i);
    }

    // Probe with the left side.
    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<Option<usize>> = Vec::new();
    let mut right_matched = vec![false; right.num_rows()];
    for i in 0..left.num_rows() {
        let mut key = Vec::with_capacity(lkey_idx.len());
        let mut has_null = false;
        for &k in &lkey_idx {
            let v = left.column_at(k).get(i);
            if v.is_null() {
                has_null = true;
                break;
            }
            key.push(v);
        }
        let matches = if has_null { None } else { table.get(&key) };
        match matches {
            Some(rows) => {
                for &r in rows {
                    left_rows.push(i);
                    right_rows.push(Some(r));
                    right_matched[r] = true;
                }
            }
            None => {
                if matches!(how, JoinType::Left | JoinType::Outer) {
                    left_rows.push(i);
                    right_rows.push(None);
                }
            }
        }
    }
    // Unmatched right rows for Right/Outer joins.
    let mut extra_right: Vec<usize> = Vec::new();
    if matches!(how, JoinType::Right | JoinType::Outer) {
        extra_right.extend((0..right.num_rows()).filter(|&r| !right_matched[r]));
    }
    // An inner-like Right join keeps only matching left rows, which the probe
    // already produced; for Right we must also drop left-only rows, which the
    // probe never emitted (they required Left/Outer). So no further work.

    // Column naming: key columns merge when names coincide; duplicated
    // non-key names get suffixes.
    let key_pairs: Vec<(usize, usize)> = lkey_idx
        .iter()
        .copied()
        .zip(rkey_idx.iter().copied())
        .collect();
    let mut out_cols: Vec<Column> = Vec::new();

    let right_name_set: std::collections::HashSet<&str> =
        right.column_names().into_iter().collect();
    let left_name_set: std::collections::HashSet<&str> =
        left.column_names().into_iter().collect();

    let suffix_name = |name: &str, other_side: &std::collections::HashSet<&str>, suf: &str| {
        if other_side.contains(name) {
            format!("{name}{suf}")
        } else {
            name.to_string()
        }
    };

    // Emit all left columns.
    for (ci, col) in left.columns().iter().enumerate() {
        let is_shared_key = key_pairs
            .iter()
            .any(|&(l, r)| l == ci && left.column_at(l).name() == right.column_at(r).name());
        let name = if is_shared_key {
            col.name().to_string()
        } else {
            suffix_name(col.name(), &right_name_set, "_x")
        };
        let mut values: Vec<Value> = Vec::with_capacity(left_rows.len() + extra_right.len());
        for &li in &left_rows {
            values.push(col.get(li).clone());
        }
        // For unmatched right rows: shared key columns take the right key
        // value (coalesce, as Pandas does); others are NULL.
        if is_shared_key {
            let r_idx = key_pairs
                .iter()
                .find(|&&(l, _)| l == ci)
                .map(|&(_, r)| r)
                .expect("shared key");
            for &ri in &extra_right {
                values.push(right.column_at(r_idx).get(ri).clone());
            }
        } else {
            values.extend(std::iter::repeat_n(Value::Null, extra_right.len()));
        }
        out_cols.push(Column::new(name, values));
    }

    // Emit right columns, skipping key columns that merged into left ones.
    for (ci, col) in right.columns().iter().enumerate() {
        let merged_into_left = key_pairs
            .iter()
            .any(|&(l, r)| r == ci && left.column_at(l).name() == right.column_at(r).name());
        if merged_into_left {
            continue;
        }
        let name = suffix_name(col.name(), &left_name_set, "_y");
        let mut values: Vec<Value> = Vec::with_capacity(left_rows.len() + extra_right.len());
        for ri in &right_rows {
            values.push(match ri {
                Some(r) => col.get(*r).clone(),
                None => Value::Null,
            });
        }
        for &ri in &extra_right {
            values.push(col.get(ri).clone());
        }
        out_cols.push(Column::new(name, values));
    }

    DataFrame::new(out_cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn left() -> DataFrame {
        DataFrame::from_columns(vec![
            ("k", vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
            (
                "lv",
                vec![
                    Value::Str("a".into()),
                    Value::Str("b".into()),
                    Value::Str("c".into()),
                ],
            ),
        ])
        .unwrap()
    }

    fn right() -> DataFrame {
        DataFrame::from_columns(vec![
            ("k", vec![Value::Int(2), Value::Int(3), Value::Int(4)]),
            (
                "rv",
                vec![
                    Value::Str("x".into()),
                    Value::Str("y".into()),
                    Value::Str("z".into()),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn inner_join_matches_intersection() {
        let out = merge(&left(), &right(), &["k"], &["k"], JoinType::Inner).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column_names(), vec!["k", "lv", "rv"]);
        assert_eq!(
            out.column("k").unwrap().values(),
            &[Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn left_join_pads_nulls() {
        let out = merge(&left(), &right(), &["k"], &["k"], JoinType::Left).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.column("rv").unwrap().get(0), &Value::Null);
        assert_eq!(out.column("rv").unwrap().get(1), &Value::Str("x".into()));
    }

    #[test]
    fn right_join_keeps_all_right_rows() {
        let out = merge(&left(), &right(), &["k"], &["k"], JoinType::Right).unwrap();
        assert_eq!(out.num_rows(), 3);
        // k=4 row present with NULL lv, and its key coalesced.
        let krow = (0..3)
            .find(|&i| out.column("k").unwrap().get(i) == &Value::Int(4))
            .unwrap();
        assert_eq!(out.column("lv").unwrap().get(krow), &Value::Null);
    }

    #[test]
    fn outer_join_is_union() {
        let out = merge(&left(), &right(), &["k"], &["k"], JoinType::Outer).unwrap();
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn duplicate_keys_produce_cross_product() {
        let l = DataFrame::from_columns(vec![(
            "k",
            vec![Value::Int(1), Value::Int(1)],
        )])
        .unwrap();
        let r = DataFrame::from_columns(vec![
            ("k", vec![Value::Int(1), Value::Int(1), Value::Int(1)]),
            ("v", vec![Value::Int(7), Value::Int(8), Value::Int(9)]),
        ])
        .unwrap();
        let out = merge(&l, &r, &["k"], &["k"], JoinType::Inner).unwrap();
        assert_eq!(out.num_rows(), 6);
    }

    #[test]
    fn null_keys_never_match() {
        let l = DataFrame::from_columns(vec![("k", vec![Value::Null, Value::Int(1)])]).unwrap();
        let r = DataFrame::from_columns(vec![("k", vec![Value::Null, Value::Int(1)])]).unwrap();
        let inner = merge(&l, &r, &["k"], &["k"], JoinType::Inner).unwrap();
        assert_eq!(inner.num_rows(), 1);
        let outer = merge(&l, &r, &["k"], &["k"], JoinType::Outer).unwrap();
        assert_eq!(outer.num_rows(), 3); // matched pair + two null singletons
    }

    #[test]
    fn different_key_names_keep_both_columns() {
        let l = DataFrame::from_columns(vec![
            ("title", vec![Value::Str("dune".into())]),
            ("rank", vec![Value::Int(1)]),
        ])
        .unwrap();
        let r = DataFrame::from_columns(vec![
            ("title_on_list", vec![Value::Str("dune".into())]),
            ("weeks", vec![Value::Int(12)]),
        ])
        .unwrap();
        let out = merge(&l, &r, &["title"], &["title_on_list"], JoinType::Inner).unwrap();
        assert_eq!(
            out.column_names(),
            vec!["title", "rank", "title_on_list", "weeks"]
        );
    }

    #[test]
    fn overlapping_non_key_columns_are_suffixed() {
        let l = DataFrame::from_columns(vec![
            ("k", vec![Value::Int(1)]),
            ("v", vec![Value::Int(10)]),
        ])
        .unwrap();
        let r = DataFrame::from_columns(vec![
            ("k", vec![Value::Int(1)]),
            ("v", vec![Value::Int(20)]),
        ])
        .unwrap();
        let out = merge(&l, &r, &["k"], &["k"], JoinType::Inner).unwrap();
        assert_eq!(out.column_names(), vec!["k", "v_x", "v_y"]);
        assert_eq!(out.column("v_x").unwrap().get(0), &Value::Int(10));
        assert_eq!(out.column("v_y").unwrap().get(0), &Value::Int(20));
    }

    #[test]
    fn multi_column_join() {
        let l = DataFrame::from_columns(vec![
            ("a", vec![Value::Int(1), Value::Int(1)]),
            ("b", vec![Value::Int(1), Value::Int(2)]),
            ("lv", vec![Value::Int(100), Value::Int(200)]),
        ])
        .unwrap();
        let r = DataFrame::from_columns(vec![
            ("a", vec![Value::Int(1)]),
            ("b", vec![Value::Int(2)]),
            ("rv", vec![Value::Int(7)]),
        ])
        .unwrap();
        let out = merge(&l, &r, &["a", "b"], &["a", "b"], JoinType::Inner).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column("lv").unwrap().get(0), &Value::Int(200));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let err = merge(&left(), &right(), &["k"], &[], JoinType::Inner).unwrap_err();
        assert!(matches!(err, DataFrameError::InvalidArgument(_)));
    }

    #[test]
    fn join_type_parse_roundtrip() {
        for jt in JoinType::ALL {
            assert_eq!(JoinType::parse(jt.as_str()), Some(jt));
        }
        assert_eq!(JoinType::parse("full"), Some(JoinType::Outer));
        assert_eq!(JoinType::parse("cross"), None);
    }
}
