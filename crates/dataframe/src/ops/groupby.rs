//! `groupby` + aggregation.

use crate::column::Column;
use crate::error::{DataFrameError, Result};
use crate::frame::DataFrame;
use crate::value::{DType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Aggregation functions supported by [`groupby`] and
/// [`crate::ops::pivot_table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Agg {
    Sum,
    Mean,
    Count,
    Min,
    Max,
    /// First non-null value in the group (Pandas `first`).
    First,
}

impl Agg {
    pub const ALL: [Agg; 6] = [Agg::Sum, Agg::Mean, Agg::Count, Agg::Min, Agg::Max, Agg::First];

    pub fn as_str(self) -> &'static str {
        match self {
            Agg::Sum => "sum",
            Agg::Mean => "mean",
            Agg::Count => "count",
            Agg::Min => "min",
            Agg::Max => "max",
            Agg::First => "first",
        }
    }

    pub fn parse(s: &str) -> Option<Agg> {
        match s {
            "sum" => Some(Agg::Sum),
            "mean" | "avg" => Some(Agg::Mean),
            "count" => Some(Agg::Count),
            "min" => Some(Agg::Min),
            "max" => Some(Agg::Max),
            "first" => Some(Agg::First),
            _ => None,
        }
    }

    /// Apply the aggregation to a set of values. Nulls are skipped, as in
    /// Pandas. Returns `Null` for an empty (or all-null) group, except
    /// `Count` which returns 0.
    pub fn apply(self, values: &[&Value]) -> Value {
        let non_null: Vec<&&Value> = values.iter().filter(|v| !v.is_null()).collect();
        match self {
            Agg::Count => Value::Int(non_null.len() as i64),
            Agg::First => non_null.first().map(|v| (**v).clone()).unwrap_or(Value::Null),
            Agg::Min => non_null.iter().min().map(|v| (**v).clone()).unwrap_or(Value::Null),
            Agg::Max => non_null.iter().max().map(|v| (**v).clone()).unwrap_or(Value::Null),
            Agg::Sum | Agg::Mean => {
                let nums: Vec<f64> = non_null.iter().filter_map(|v| v.as_f64()).collect();
                if nums.is_empty() {
                    return Value::Null;
                }
                let sum: f64 = nums.iter().sum();
                let out = if self == Agg::Sum { sum } else { sum / nums.len() as f64 };
                // Preserve integer-ness of pure-int sums, as Pandas does.
                let all_int = non_null.iter().all(|v| matches!(***v, Value::Int(_)));
                if self == Agg::Sum && all_int {
                    Value::Int(out as i64)
                } else {
                    Value::Float(out)
                }
            }
        }
    }
}

impl fmt::Display for Agg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Group `df` by the `keys` columns and aggregate each `(column, agg)` pair.
///
/// The output has one row per distinct key tuple, key columns first, then one
/// column per aggregation named `<col>_<agg>` when a column is aggregated
/// more than once, or just `<col>` otherwise (matching the common Pandas
/// `df.groupby(k)[c].sum()` shape). Groups appear in order of first
/// occurrence, like `groupby(sort=False)`.
pub fn groupby(df: &DataFrame, keys: &[&str], aggs: &[(&str, Agg)]) -> Result<DataFrame> {
    if keys.is_empty() {
        return Err(DataFrameError::InvalidArgument(
            "groupby requires at least one key column".into(),
        ));
    }
    let key_idx: Vec<usize> = keys
        .iter()
        .map(|n| df.column_index(n))
        .collect::<Result<_>>()?;
    for (name, agg) in aggs {
        let col = df.column(name)?;
        if matches!(agg, Agg::Sum | Agg::Mean)
            && !col.dtype().is_numeric()
            && col.dtype() != DType::Null
            && col.dtype() != DType::Bool
        {
            return Err(DataFrameError::TypeError(format!(
                "cannot {agg} non-numeric column {name:?}"
            )));
        }
    }

    // Bucket row indices per key tuple, preserving first-seen order.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut buckets: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..df.num_rows() {
        let key: Vec<Value> = key_idx
            .iter()
            .map(|&k| df.column_at(k).get(i).clone())
            .collect();
        // Pandas drops rows whose group key is null.
        if key.iter().any(Value::is_null) {
            continue;
        }
        let slot = *buckets.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[slot].push(i);
    }

    let mut out_cols: Vec<Column> = Vec::new();
    for (pos, &name) in keys.iter().enumerate() {
        out_cols.push(Column::new(
            name,
            order.iter().map(|k| k[pos].clone()).collect(),
        ));
    }

    // Determine output names, disambiguating repeated source columns.
    let mut per_col_count: HashMap<&str, usize> = HashMap::new();
    for (name, _) in aggs {
        *per_col_count.entry(*name).or_insert(0) += 1;
    }
    for (name, agg) in aggs {
        let src = df.column(name)?;
        let out_name = if per_col_count[name] > 1 {
            format!("{name}_{agg}")
        } else {
            (*name).to_string()
        };
        let mut vals = Vec::with_capacity(groups.len());
        for rows in &groups {
            let group_vals: Vec<&Value> = rows.iter().map(|&r| src.get(r)).collect();
            vals.push(agg.apply(&group_vals));
        }
        out_cols.push(Column::new(out_name, vals));
    }
    DataFrame::new(out_cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn revenue_table() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "company",
                vec![
                    Value::Str("AERO".into()),
                    Value::Str("AERO".into()),
                    Value::Str("YORK".into()),
                    Value::Str("YORK".into()),
                ],
            ),
            (
                "year",
                vec![Value::Int(2006), Value::Int(2006), Value::Int(2006), Value::Int(2007)],
            ),
            (
                "revenue",
                vec![
                    Value::Float(472.07),
                    Value::Float(489.22),
                    Value::Float(271.73),
                    Value::Float(300.0),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn sum_by_two_keys() {
        let out = groupby(
            &revenue_table(),
            &["company", "year"],
            &[("revenue", Agg::Sum)],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(
            out.column("revenue").unwrap().get(0),
            &Value::Float(472.07 + 489.22)
        );
    }

    #[test]
    fn mean_count_min_max() {
        let out = groupby(
            &revenue_table(),
            &["company"],
            &[
                ("revenue", Agg::Mean),
                ("revenue", Agg::Count),
                ("revenue", Agg::Min),
                ("revenue", Agg::Max),
            ],
        )
        .unwrap();
        assert_eq!(
            out.column_names(),
            vec![
                "company",
                "revenue_mean",
                "revenue_count",
                "revenue_min",
                "revenue_max"
            ]
        );
        assert_eq!(out.column("revenue_count").unwrap().get(0), &Value::Int(2));
        assert_eq!(
            out.column("revenue_max").unwrap().get(0),
            &Value::Float(489.22)
        );
    }

    #[test]
    fn integer_sum_stays_integer() {
        let df = DataFrame::from_columns(vec![
            ("g", vec![Value::Str("a".into()), Value::Str("a".into())]),
            ("v", vec![Value::Int(2), Value::Int(3)]),
        ])
        .unwrap();
        let out = groupby(&df, &["g"], &[("v", Agg::Sum)]).unwrap();
        assert_eq!(out.column("v").unwrap().get(0), &Value::Int(5));
    }

    #[test]
    fn null_group_keys_are_dropped() {
        let df = DataFrame::from_columns(vec![
            ("g", vec![Value::Null, Value::Str("a".into())]),
            ("v", vec![Value::Int(1), Value::Int(2)]),
        ])
        .unwrap();
        let out = groupby(&df, &["g"], &[("v", Agg::Sum)]).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn null_values_skipped_in_aggregation() {
        let df = DataFrame::from_columns(vec![
            ("g", vec![Value::Str("a".into()), Value::Str("a".into())]),
            ("v", vec![Value::Null, Value::Int(2)]),
        ])
        .unwrap();
        let out = groupby(
            &df,
            &["g"],
            &[("v", Agg::Mean), ("v", Agg::Count)],
        )
        .unwrap();
        assert_eq!(out.column("v_mean").unwrap().get(0), &Value::Float(2.0));
        assert_eq!(out.column("v_count").unwrap().get(0), &Value::Int(1));
    }

    #[test]
    fn sum_of_string_column_is_type_error() {
        let df = DataFrame::from_columns(vec![
            ("g", vec![Value::Str("a".into())]),
            ("s", vec![Value::Str("text".into())]),
        ])
        .unwrap();
        assert!(matches!(
            groupby(&df, &["g"], &[("s", Agg::Sum)]),
            Err(DataFrameError::TypeError(_))
        ));
        // But count and first are fine.
        assert!(groupby(&df, &["g"], &[("s", Agg::Count)]).is_ok());
        assert!(groupby(&df, &["g"], &[("s", Agg::First)]).is_ok());
    }

    #[test]
    fn groups_preserve_first_seen_order() {
        let df = DataFrame::from_columns(vec![
            (
                "g",
                vec![
                    Value::Str("z".into()),
                    Value::Str("a".into()),
                    Value::Str("z".into()),
                ],
            ),
            ("v", vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
        ])
        .unwrap();
        let out = groupby(&df, &["g"], &[("v", Agg::Sum)]).unwrap();
        assert_eq!(out.column("g").unwrap().get(0), &Value::Str("z".into()));
        assert_eq!(out.column("v").unwrap().get(0), &Value::Int(4));
    }

    #[test]
    fn empty_keys_rejected() {
        assert!(groupby(&revenue_table(), &[], &[("revenue", Agg::Sum)]).is_err());
    }

    #[test]
    fn agg_parse_roundtrip() {
        for a in Agg::ALL {
            assert_eq!(Agg::parse(a.as_str()), Some(a));
        }
        assert_eq!(Agg::parse("avg"), Some(Agg::Mean));
        assert_eq!(Agg::parse("median"), None);
    }
}
