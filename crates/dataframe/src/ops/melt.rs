//! `melt`: Unpivot — collapse a set of columns into key/value pairs.

use crate::column::Column;
use crate::error::{DataFrameError, Result};
use crate::frame::DataFrame;
use crate::value::Value;

/// Unpivot `value_vars` columns into two new columns, following `pd.melt`.
///
/// For every input row and every column `c` in `value_vars`, the output gets
/// one row carrying the `id_vars` values, plus `var_name` = the *name* of
/// `c` and `value_name` = the cell value. This is the inverse of
/// [`crate::ops::pivot_table`] (Fig. 11 in the paper unpivots Fig. 7's
/// pivot).
///
/// `id_vars` and `value_vars` must be disjoint; columns in neither set are
/// dropped (as in Pandas when `value_vars` is explicit).
pub fn melt(
    df: &DataFrame,
    id_vars: &[&str],
    value_vars: &[&str],
    var_name: &str,
    value_name: &str,
) -> Result<DataFrame> {
    if value_vars.is_empty() {
        return Err(DataFrameError::InvalidArgument(
            "melt requires at least one value_var".into(),
        ));
    }
    for v in value_vars {
        if id_vars.contains(v) {
            return Err(DataFrameError::InvalidArgument(format!(
                "column {v:?} is both id_var and value_var"
            )));
        }
    }
    let id_idx: Vec<usize> = id_vars
        .iter()
        .map(|n| df.column_index(n))
        .collect::<Result<_>>()?;
    let val_idx: Vec<usize> = value_vars
        .iter()
        .map(|n| df.column_index(n))
        .collect::<Result<_>>()?;

    let n_out = df.num_rows() * value_vars.len();
    let mut out_cols: Vec<Column> = id_vars
        .iter()
        .map(|n| Column::new(*n, Vec::with_capacity(n_out)))
        .collect();
    let mut var_col = Column::new(var_name, Vec::with_capacity(n_out));
    let mut value_col = Column::new(value_name, Vec::with_capacity(n_out));

    // Pandas iterates value_vars in the outer loop (column-major output).
    for (&vi, &vname) in val_idx.iter().zip(value_vars) {
        for row in 0..df.num_rows() {
            for (out, &ii) in out_cols.iter_mut().zip(&id_idx) {
                out.push(df.column_at(ii).get(row).clone());
            }
            var_col.push(Value::infer_from_str(vname));
            value_col.push(df.column_at(vi).get(row).clone());
        }
    }
    out_cols.push(var_col);
    out_cols.push(value_col);
    DataFrame::new(out_cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 11 input: a pivot-shaped table with year columns.
    fn wide() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "company",
                vec![Value::Str("AJRD".into()), Value::Str("YORW".into())],
            ),
            ("2006", vec![Value::Float(6218.09), Value::Float(1902.37)]),
            ("2007", vec![Value::Float(6342.45), Value::Float(1940.42)]),
            ("2008", vec![Value::Float(7088.62), Value::Float(2168.70)]),
        ])
        .unwrap()
    }

    #[test]
    fn melt_collapses_year_columns() {
        let out = melt(
            &wide(),
            &["company"],
            &["2006", "2007", "2008"],
            "year",
            "revenue",
        )
        .unwrap();
        assert_eq!(out.num_rows(), 6);
        assert_eq!(out.column_names(), vec!["company", "year", "revenue"]);
        // Column names parse as integers in the key column.
        assert_eq!(out.column("year").unwrap().get(0), &Value::Int(2006));
        assert_eq!(out.column("revenue").unwrap().get(0), &Value::Float(6218.09));
    }

    #[test]
    fn column_major_order_matches_pandas() {
        let out = melt(&wide(), &["company"], &["2006", "2007"], "y", "v").unwrap();
        // First all 2006 rows, then all 2007 rows.
        assert_eq!(out.column("y").unwrap().get(0), &Value::Int(2006));
        assert_eq!(out.column("y").unwrap().get(1), &Value::Int(2006));
        assert_eq!(out.column("y").unwrap().get(2), &Value::Int(2007));
    }

    #[test]
    fn overlap_between_id_and_value_vars_rejected() {
        assert!(melt(&wide(), &["company"], &["company"], "k", "v").is_err());
        assert!(melt(&wide(), &["company"], &[], "k", "v").is_err());
    }

    #[test]
    fn missing_column_errors() {
        assert!(melt(&wide(), &["company"], &["1999"], "k", "v").is_err());
    }

    #[test]
    fn string_var_names_stay_strings() {
        let df = DataFrame::from_columns(vec![
            ("id", vec![Value::Int(1)]),
            ("alpha", vec![Value::Int(10)]),
            ("beta", vec![Value::Int(20)]),
        ])
        .unwrap();
        let out = melt(&df, &["id"], &["alpha", "beta"], "k", "v").unwrap();
        assert_eq!(out.column("k").unwrap().get(0), &Value::Str("alpha".into()));
    }

    #[test]
    fn null_cells_survive_melt() {
        let df = DataFrame::from_columns(vec![
            ("id", vec![Value::Int(1)]),
            ("a", vec![Value::Null]),
        ])
        .unwrap();
        let out = melt(&df, &["id"], &["a"], "k", "v").unwrap();
        assert_eq!(out.column("v").unwrap().get(0), &Value::Null);
    }
}
