//! `concat`: stack frames vertically (rows) or horizontally (columns).

use crate::column::Column;
use crate::error::{DataFrameError, Result};
use crate::frame::DataFrame;
use crate::value::Value;

/// Vertically concatenate frames (`pd.concat(axis=0)`).
///
/// The output schema is the union of input schemas in first-appearance
/// order; frames lacking a column contribute NULLs (Pandas' outer-join
/// column alignment).
pub fn concat(frames: &[&DataFrame]) -> Result<DataFrame> {
    if frames.is_empty() {
        return Err(DataFrameError::InvalidArgument(
            "concat requires at least one frame".into(),
        ));
    }
    let mut names: Vec<String> = Vec::new();
    for f in frames {
        for c in f.columns() {
            if !names.iter().any(|n| n == c.name()) {
                names.push(c.name().to_string());
            }
        }
    }
    let total_rows: usize = frames.iter().map(|f| f.num_rows()).sum();
    let mut out_cols: Vec<Column> = names
        .iter()
        .map(|n| Column::new(n.clone(), Vec::with_capacity(total_rows)))
        .collect();
    for f in frames {
        for (out, name) in out_cols.iter_mut().zip(&names) {
            match f.column(name) {
                Ok(src) => out.values_mut().extend(src.values().iter().cloned()),
                Err(_) => out
                    .values_mut()
                    .extend(std::iter::repeat_n(Value::Null, f.num_rows())),
            }
        }
    }
    DataFrame::new(out_cols)
}

/// Horizontally concatenate frames (`pd.concat(axis=1)`).
///
/// All frames must have the same row count; duplicate column names are
/// disambiguated with a positional suffix, as replay needs every output
/// column addressable.
pub fn concat_columns(frames: &[&DataFrame]) -> Result<DataFrame> {
    if frames.is_empty() {
        return Err(DataFrameError::InvalidArgument(
            "concat_columns requires at least one frame".into(),
        ));
    }
    let rows = frames[0].num_rows();
    for f in frames {
        if f.num_rows() != rows {
            return Err(DataFrameError::LengthMismatch {
                expected: rows,
                got: f.num_rows(),
                column: "<frame>".into(),
            });
        }
    }
    let mut out_cols: Vec<Column> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (fi, f) in frames.iter().enumerate() {
        for c in f.columns() {
            let mut name = c.name().to_string();
            if !seen.insert(name.clone()) {
                name = format!("{name}_{fi}");
                seen.insert(name.clone());
            }
            let mut col = c.clone();
            col.rename(name);
            out_cols.push(col);
        }
    }
    DataFrame::new(out_cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f1() -> DataFrame {
        DataFrame::from_columns(vec![
            ("a", vec![Value::Int(1), Value::Int(2)]),
            ("b", vec![Value::Str("x".into()), Value::Str("y".into())]),
        ])
        .unwrap()
    }

    fn f2() -> DataFrame {
        DataFrame::from_columns(vec![
            ("a", vec![Value::Int(3)]),
            ("c", vec![Value::Float(1.5)]),
        ])
        .unwrap()
    }

    #[test]
    fn vertical_concat_unions_schemas() {
        let out = concat(&[&f1(), &f2()]).unwrap();
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.column_names(), vec!["a", "b", "c"]);
        assert_eq!(out.column("b").unwrap().get(2), &Value::Null);
        assert_eq!(out.column("c").unwrap().get(0), &Value::Null);
        assert_eq!(out.column("c").unwrap().get(2), &Value::Float(1.5));
    }

    #[test]
    fn vertical_concat_same_schema_is_simple_stack() {
        let out = concat(&[&f1(), &f1()]).unwrap();
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.num_columns(), 2);
        assert_eq!(out.column("a").unwrap().get(2), &Value::Int(1));
    }

    #[test]
    fn horizontal_concat_requires_equal_rows() {
        assert!(concat_columns(&[&f1(), &f2()]).is_err());
    }

    #[test]
    fn horizontal_concat_disambiguates_names() {
        let out = concat_columns(&[&f1(), &f1()]).unwrap();
        assert_eq!(out.num_columns(), 4);
        assert_eq!(out.column_names(), vec!["a", "b", "a_1", "b_1"]);
    }

    #[test]
    fn empty_input_rejected() {
        assert!(concat(&[]).is_err());
        assert!(concat_columns(&[]).is_err());
    }
}
