//! The table-manipulation operators Auto-Suggest instruments.
//!
//! These are the eight Pandas API calls the paper's replay system records
//! (§3.3): `merge`, `groupby`, `pivot` (we implement the more general
//! `pivot_table`), `melt`, `concat`, `dropna`, `fillna`, plus
//! `json_normalize` from §1. Each operator takes and returns plain
//! [`crate::DataFrame`]s so the replay interpreter can log full input/output
//! tables around every call.

mod concat;
mod groupby;
mod json_normalize;
mod melt;
mod merge;
mod missing;
mod pivot;

pub use concat::{concat, concat_columns};
pub use groupby::{groupby, Agg};
pub use json_normalize::json_normalize;
pub use melt::melt;
pub use merge::{merge, JoinType};
pub use missing::{dropna, fillna, fillna_all, DropHow};
pub use pivot::pivot_table;
