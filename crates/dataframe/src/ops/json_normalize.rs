//! `json_normalize`: flatten nested JSON records into a flat table.

use crate::column::Column;
use crate::error::{DataFrameError, Result};
use crate::frame::DataFrame;
use crate::value::Value;
use serde_json::Value as Json;
use std::collections::BTreeMap;

/// Flatten an array of JSON objects into a [`DataFrame`], following
/// `pd.json_normalize`.
///
/// Nested objects are flattened with dotted paths (`user.address.city`);
/// scalar arrays and nested object arrays are left as their JSON string
/// rendering (Pandas keeps them as Python objects — a string is the closest
/// tabular analogue). A `record_path` descends into a nested array before
/// normalising, like the Pandas parameter of the same name.
pub fn json_normalize(doc: &Json, record_path: Option<&[&str]>) -> Result<DataFrame> {
    let mut records: Vec<&Json> = Vec::new();
    match record_path {
        None => collect_records(doc, &mut records)?,
        Some(path) => {
            let mut node = doc;
            for key in path {
                node = node.get(key).ok_or_else(|| DataFrameError::InvalidArgument(
                    format!("record_path component {key:?} not found"),
                ))?;
            }
            collect_records(node, &mut records)?;
        }
    }

    // Flatten each record, accumulating the union of dotted paths in
    // first-appearance order.
    let mut col_order: Vec<String> = Vec::new();
    let mut flat_rows: Vec<BTreeMap<String, Value>> = Vec::with_capacity(records.len());
    for rec in &records {
        let mut flat = BTreeMap::new();
        flatten_into("", rec, &mut flat);
        for key in flat.keys() {
            if !col_order.iter().any(|c| c == key) {
                col_order.push(key.clone());
            }
        }
        flat_rows.push(flat);
    }

    let mut cols: Vec<Column> = col_order
        .iter()
        .map(|n| Column::new(n.clone(), Vec::with_capacity(flat_rows.len())))
        .collect();
    for row in &mut flat_rows {
        for (col, name) in cols.iter_mut().zip(&col_order) {
            col.push(row.remove(name).unwrap_or(Value::Null));
        }
    }
    DataFrame::new(cols)
}

fn collect_records<'a>(node: &'a Json, out: &mut Vec<&'a Json>) -> Result<()> {
    match node {
        Json::Array(items) => {
            for item in items {
                if !item.is_object() {
                    return Err(DataFrameError::InvalidArgument(
                        "json_normalize expects an array of objects".into(),
                    ));
                }
                out.push(item);
            }
            Ok(())
        }
        Json::Object(_) => {
            out.push(node);
            Ok(())
        }
        _ => Err(DataFrameError::InvalidArgument(
            "json_normalize expects an object or array of objects".into(),
        )),
    }
}

fn flatten_into(prefix: &str, node: &Json, out: &mut BTreeMap<String, Value>) {
    match node {
        Json::Object(map) => {
            for (k, v) in map {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(&path, v, out);
            }
        }
        other => {
            out.insert(prefix.to_string(), json_scalar(other));
        }
    }
}

fn json_scalar(v: &Json) -> Value {
    match v {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Number(n) => {
            if let Some(i) = n.as_i64() {
                Value::Int(i)
            } else {
                Value::Float(n.as_f64().unwrap_or(f64::NAN))
            }
        }
        Json::String(s) => Value::Str(s.clone()),
        // Arrays (scalar or object) render as their JSON text.
        Json::Array(_) | Json::Object(_) => Value::Str(v.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn flat_records() {
        let doc = json!([
            {"id": 1, "name": "ada"},
            {"id": 2, "name": "bob"}
        ]);
        let df = json_normalize(&doc, None).unwrap();
        assert_eq!(df.num_rows(), 2);
        assert_eq!(df.column("name").unwrap().get(1), &Value::Str("bob".into()));
    }

    #[test]
    fn nested_objects_get_dotted_paths() {
        let doc = json!([
            {"id": 1, "user": {"name": "ada", "address": {"city": "nyc"}}}
        ]);
        let df = json_normalize(&doc, None).unwrap();
        assert!(df.column("user.address.city").is_ok());
        assert_eq!(
            df.column("user.address.city").unwrap().get(0),
            &Value::Str("nyc".into())
        );
    }

    #[test]
    fn ragged_records_null_fill() {
        let doc = json!([
            {"id": 1, "extra": true},
            {"id": 2}
        ]);
        let df = json_normalize(&doc, None).unwrap();
        assert_eq!(df.column("extra").unwrap().get(1), &Value::Null);
    }

    #[test]
    fn record_path_descends() {
        let doc = json!({
            "meta": {"source": "kaggle"},
            "results": [{"score": 0.5}, {"score": 0.9}]
        });
        let df = json_normalize(&doc, Some(&["results"])).unwrap();
        assert_eq!(df.num_rows(), 2);
        assert_eq!(df.column("score").unwrap().get(1), &Value::Float(0.9));
    }

    #[test]
    fn arrays_render_as_json_text() {
        let doc = json!([{"tags": ["a", "b"]}]);
        let df = json_normalize(&doc, None).unwrap();
        assert_eq!(
            df.column("tags").unwrap().get(0),
            &Value::Str("[\"a\",\"b\"]".into())
        );
    }

    #[test]
    fn scalar_root_rejected() {
        assert!(json_normalize(&json!(42), None).is_err());
        assert!(json_normalize(&json!([1, 2]), None).is_err());
    }

    #[test]
    fn single_object_root_is_one_row() {
        let df = json_normalize(&json!({"a": 1}), None).unwrap();
        assert_eq!(df.num_rows(), 1);
    }

    #[test]
    fn missing_record_path_errors() {
        assert!(json_normalize(&json!({"a": 1}), Some(&["nope"])).is_err());
    }
}
