//! The [`DataFrame`]: an ordered collection of equal-length named columns.

use crate::column::Column;
use crate::error::{DataFrameError, Result};
use crate::schema::{Field, Schema};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A two-dimensional, column-oriented table.
///
/// Invariants: all columns have the same length and unique names. Both are
/// enforced at construction and by every mutating method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataFrame {
    columns: Vec<Column>,
}

impl DataFrame {
    /// A frame with no columns and no rows.
    pub fn empty() -> Self {
        DataFrame { columns: Vec::new() }
    }

    /// Build from `(name, values)` pairs, validating the invariants.
    pub fn from_columns(cols: Vec<(&str, Vec<Value>)>) -> Result<Self> {
        DataFrame::new(
            cols.into_iter()
                .map(|(name, values)| Column::new(name, values))
                .collect(),
        )
    }

    /// Build from pre-constructed columns, validating the invariants.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        if let Some(first) = columns.first() {
            let expected = first.len();
            for c in &columns {
                if c.len() != expected {
                    return Err(DataFrameError::LengthMismatch {
                        expected,
                        got: c.len(),
                        column: c.name().to_string(),
                    });
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name()) {
                return Err(DataFrameError::DuplicateColumn { name: c.name().to_string() });
            }
        }
        Ok(DataFrame { columns })
    }

    /// Build from row-major data given column names. All rows must have
    /// exactly one value per column.
    pub fn from_rows(names: &[&str], rows: Vec<Vec<Value>>) -> Result<Self> {
        for (i, r) in rows.iter().enumerate() {
            if r.len() != names.len() {
                return Err(DataFrameError::InvalidArgument(format!(
                    "row {i} has {} values, expected {}",
                    r.len(),
                    names.len()
                )));
            }
        }
        let mut columns: Vec<Column> = names
            .iter()
            .map(|n| Column::new(*n, Vec::with_capacity(rows.len())))
            .collect();
        for row in rows {
            for (c, v) in columns.iter_mut().zip(row) {
                c.push(v);
            }
        }
        DataFrame::new(columns)
    }

    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The schema (names + inferred dtypes) of the frame.
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Field::new(c.name(), c.dtype()))
                .collect(),
        )
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(Column::name).collect()
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| DataFrameError::ColumnNotFound { name: name.to_string() })
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name() == name)
            .ok_or_else(|| DataFrameError::ColumnNotFound { name: name.to_string() })
    }

    pub fn column_at(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Mutable access to a column by position. The caller must preserve the
    /// frame invariants (length; renames must keep names unique).
    pub fn column_at_mut(&mut self, idx: usize) -> &mut Column {
        &mut self.columns[idx]
    }

    /// Append a column; must match the row count and have a fresh name.
    pub fn add_column(&mut self, column: Column) -> Result<()> {
        if !self.columns.is_empty() && column.len() != self.num_rows() {
            return Err(DataFrameError::LengthMismatch {
                expected: self.num_rows(),
                got: column.len(),
                column: column.name().to_string(),
            });
        }
        if self.columns.iter().any(|c| c.name() == column.name()) {
            return Err(DataFrameError::DuplicateColumn { name: column.name().to_string() });
        }
        self.columns.push(column);
        Ok(())
    }

    /// A new frame containing only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut cols = Vec::with_capacity(names.len());
        for n in names {
            cols.push(self.column(n)?.clone());
        }
        DataFrame::new(cols)
    }

    /// A new frame containing the rows at `indices` (duplicates allowed).
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        let columns = self
            .columns
            .iter()
            .map(|c| {
                Column::new(
                    c.name(),
                    indices.iter().map(|&i| c.get(i).clone()).collect(),
                )
            })
            .collect();
        DataFrame { columns }
    }

    /// The first `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        let n = n.min(self.num_rows());
        let idx: Vec<usize> = (0..n).collect();
        self.take(&idx)
    }

    /// One row as a vector of owned values.
    pub fn row(&self, idx: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(idx).clone()).collect()
    }

    /// Iterate rows as owned value vectors (allocates per row; fine for the
    /// moderate table sizes replay produces).
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.num_rows()).map(move |i| self.row(i))
    }

    /// A stable content hash of schema + data. The replay data-flow graph
    /// (§3.3) identifies each (versioned) frame by this id.
    pub fn content_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for c in &self.columns {
            c.name().hash(&mut h);
            for v in c.values() {
                v.hash(&mut h);
            }
            0xfeed_u16.hash(&mut h);
        }
        h.finish()
    }

    /// Rows where `predicate` returns true.
    pub fn filter<F: Fn(usize) -> bool>(&self, predicate: F) -> DataFrame {
        let idx: Vec<usize> = (0..self.num_rows()).filter(|&i| predicate(i)).collect();
        self.take(&idx)
    }

    /// Sort rows ascending by the named columns (stable).
    pub fn sort_by(&self, names: &[&str]) -> Result<DataFrame> {
        let key_idx: Vec<usize> = names
            .iter()
            .map(|n| self.column_index(n))
            .collect::<Result<_>>()?;
        let mut order: Vec<usize> = (0..self.num_rows()).collect();
        order.sort_by(|&a, &b| {
            for &k in &key_idx {
                let c = &self.columns[k];
                let ord = c.get(a).cmp(c.get(b));
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(self.take(&order))
    }
}

impl fmt::Display for DataFrame {
    /// Render up to 10 rows as an aligned text table, the way replay logs
    /// show frames.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = self.num_rows().min(10);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.name().len()).collect();
        let rendered: Vec<Vec<String>> = (0..show)
            .map(|i| {
                self.columns
                    .iter()
                    .enumerate()
                    .map(|(j, c)| {
                        let s = c.get(i).render();
                        widths[j] = widths[j].max(s.len());
                        s
                    })
                    .collect()
            })
            .collect();
        for (j, c) in self.columns.iter().enumerate() {
            if j > 0 {
                f.write_str("  ")?;
            }
            write!(f, "{:<w$}", c.name(), w = widths[j])?;
        }
        writeln!(f)?;
        for row in rendered {
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    f.write_str("  ")?;
                }
                write!(f, "{:<w$}", cell, w = widths[j])?;
            }
            writeln!(f)?;
        }
        if self.num_rows() > show {
            writeln!(f, "... {} more rows", self.num_rows() - show)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DType;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            ("id", vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
            (
                "name",
                vec![
                    Value::Str("a".into()),
                    Value::Str("b".into()),
                    Value::Str("c".into()),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let err = DataFrame::from_columns(vec![
            ("a", vec![Value::Int(1)]),
            ("b", vec![Value::Int(1), Value::Int(2)]),
        ])
        .unwrap_err();
        assert!(matches!(err, DataFrameError::LengthMismatch { .. }));
    }

    #[test]
    fn construction_validates_unique_names() {
        let err = DataFrame::from_columns(vec![
            ("a", vec![Value::Int(1)]),
            ("a", vec![Value::Int(2)]),
        ])
        .unwrap_err();
        assert!(matches!(err, DataFrameError::DuplicateColumn { .. }));
    }

    #[test]
    fn from_rows_roundtrip() {
        let df = DataFrame::from_rows(
            &["x", "y"],
            vec![
                vec![Value::Int(1), Value::Str("p".into())],
                vec![Value::Int(2), Value::Str("q".into())],
            ],
        )
        .unwrap();
        assert_eq!(df.num_rows(), 2);
        assert_eq!(df.row(1), vec![Value::Int(2), Value::Str("q".into())]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = DataFrame::from_rows(&["x", "y"], vec![vec![Value::Int(1)]]).unwrap_err();
        assert!(matches!(err, DataFrameError::InvalidArgument(_)));
    }

    #[test]
    fn select_and_take() {
        let df = sample();
        let sel = df.select(&["name"]).unwrap();
        assert_eq!(sel.num_columns(), 1);
        let taken = df.take(&[2, 0, 0]);
        assert_eq!(taken.num_rows(), 3);
        assert_eq!(taken.column("id").unwrap().get(0), &Value::Int(3));
        assert_eq!(taken.column("id").unwrap().get(1), &Value::Int(1));
    }

    #[test]
    fn schema_reports_inferred_types() {
        let df = sample();
        let schema = df.schema();
        assert_eq!(schema.field(0).dtype, DType::Int);
        assert_eq!(schema.field(1).dtype, DType::Str);
    }

    #[test]
    fn content_hash_is_sensitive_to_data_and_names() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.content_hash(), b.content_hash());
        b.columns[0].values_mut()[0] = Value::Int(99);
        assert_ne!(a.content_hash(), b.content_hash());
        let renamed = DataFrame::from_columns(vec![
            ("idx", vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
            (
                "name",
                vec![
                    Value::Str("a".into()),
                    Value::Str("b".into()),
                    Value::Str("c".into()),
                ],
            ),
        ])
        .unwrap();
        assert_ne!(a.content_hash(), renamed.content_hash());
    }

    #[test]
    fn sort_by_multiple_keys() {
        let df = DataFrame::from_columns(vec![
            ("g", vec![Value::Int(2), Value::Int(1), Value::Int(2)]),
            ("v", vec![Value::Int(9), Value::Int(5), Value::Int(1)]),
        ])
        .unwrap();
        let sorted = df.sort_by(&["g", "v"]).unwrap();
        assert_eq!(
            sorted.column("v").unwrap().values(),
            &[Value::Int(5), Value::Int(1), Value::Int(9)]
        );
    }

    #[test]
    fn filter_by_row_predicate() {
        let df = sample();
        let ids = df.column_index("id").unwrap();
        let f = df.filter(|i| df.column_at(ids).get(i) > &Value::Int(1));
        assert_eq!(f.num_rows(), 2);
    }

    #[test]
    fn add_column_checks_invariants() {
        let mut df = sample();
        assert!(df
            .add_column(Column::new("id", vec![Value::Int(0); 3]))
            .is_err());
        assert!(df
            .add_column(Column::new("z", vec![Value::Int(0); 2]))
            .is_err());
        assert!(df
            .add_column(Column::new("z", vec![Value::Int(0); 3]))
            .is_ok());
        assert_eq!(df.num_columns(), 3);
    }

    #[test]
    fn display_renders_header() {
        let s = sample().to_string();
        assert!(s.starts_with("id"));
        assert!(s.contains("name"));
    }

    #[test]
    fn empty_frame_behaviour() {
        let df = DataFrame::empty();
        assert_eq!(df.num_rows(), 0);
        assert_eq!(df.num_columns(), 0);
        assert_eq!(df.head(5).num_rows(), 0);
    }
}
