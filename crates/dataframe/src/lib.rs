//! An in-memory columnar DataFrame engine.
//!
//! This crate is the table-manipulation substrate of the Auto-Suggest
//! reproduction. The original system (Yan & He, SIGMOD 2020) replays Jupyter
//! notebooks and instruments eight Pandas operators that consume or produce
//! DataFrames: `merge`, `groupby`, `pivot_table`, `melt`, `concat`, `dropna`,
//! `fillna`, and `json_normalize`. The replay pipeline in
//! `autosuggest-corpus` executes notebook cells against this engine, so the
//! operators here follow Pandas semantics for the behaviours the predictors
//! observe: join types and key matching, group-key hashing, pivot aggregation
//! and NULL fill, melt's key/value collapse, and null propagation.
//!
//! # Quick tour
//!
//! ```
//! use autosuggest_dataframe::{DataFrame, Value, ops};
//!
//! let orders = DataFrame::from_columns(vec![
//!     ("order_id", vec![1, 2, 3].into_iter().map(Value::Int).collect()),
//!     ("customer", vec!["ada", "bob", "ada"].into_iter().map(Value::from).collect()),
//!     ("amount", vec![10.0, 20.0, 5.0].into_iter().map(Value::Float).collect()),
//! ]).unwrap();
//!
//! let by_customer = ops::groupby(
//!     &orders,
//!     &["customer"],
//!     &[("amount", ops::Agg::Sum)],
//! ).unwrap();
//! assert_eq!(by_customer.num_rows(), 2);
//! ```

pub mod column;
pub mod error;
pub mod frame;
pub mod io;
pub mod ops;
pub mod schema;
pub mod value;

pub use column::Column;
pub use error::{DataFrameError, Result};
pub use frame::DataFrame;
pub use schema::{Field, Schema};
pub use value::{DType, Value};
