//! A named column of values, with the statistics the feature extractors need.

use crate::value::{DType, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A named column of [`Value`]s.
///
/// Columns expose the cheap statistics (distinct counts, emptiness, ranges,
/// sortedness, peak frequency) that the paper's feature extractors consume;
/// computing them here keeps `autosuggest-features` free of storage details.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    name: String,
    values: Vec<Value>,
}

impl Column {
    pub fn new(name: impl Into<String>, values: Vec<Value>) -> Self {
        Column { name: name.into(), values }
    }

    /// An empty column with a name, useful as a builder target.
    pub fn empty(name: impl Into<String>) -> Self {
        Column { name: name.into(), values: Vec::new() }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn rename(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn values_mut(&mut self) -> &mut Vec<Value> {
        &mut self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Infer the column dtype by unifying the dtypes of all non-null values.
    /// Mixed incompatible types degrade to `Str` (Pandas' `object` dtype).
    pub fn dtype(&self) -> DType {
        let mut acc = DType::Null;
        for v in &self.values {
            let d = v.dtype();
            if d == DType::Null {
                continue;
            }
            acc = match acc.unify(d) {
                Some(u) => u,
                None => return DType::Str,
            };
        }
        acc
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_null()).count()
    }

    /// Fraction of cells that are null; 0 for an empty column.
    pub fn emptiness(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.null_count() as f64 / self.values.len() as f64
        }
    }

    /// Number of distinct non-null values.
    pub fn distinct_count(&self) -> usize {
        let mut seen = std::collections::HashSet::with_capacity(self.values.len());
        for v in &self.values {
            if !v.is_null() {
                seen.insert(v);
            }
        }
        seen.len()
    }

    /// Distinct non-null values divided by row count (the paper's
    /// *distinct-value-ratio*); 0 for an empty column.
    pub fn distinct_ratio(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.distinct_count() as f64 / self.values.len() as f64
        }
    }

    /// Min and max over the numeric views of non-null values, if the column
    /// has any numeric content.
    pub fn numeric_range(&self) -> Option<(f64, f64)> {
        let mut range: Option<(f64, f64)> = None;
        for v in &self.values {
            if let Some(x) = v.as_f64() {
                range = Some(match range {
                    None => (x, x),
                    Some((lo, hi)) => (lo.min(x), hi.max(x)),
                });
            }
        }
        range
    }

    /// Whether the non-null values appear in non-decreasing or non-increasing
    /// order (the paper's *sorted-ness* join feature).
    pub fn is_sorted(&self) -> bool {
        let non_null: Vec<&Value> = self.values.iter().filter(|v| !v.is_null()).collect();
        if non_null.len() < 2 {
            return true;
        }
        non_null.windows(2).all(|w| w[0] <= w[1])
            || non_null.windows(2).all(|w| w[0] >= w[1])
    }

    /// Count of the most frequent non-null value (the paper's
    /// *peak-frequency* GroupBy feature). Zero for an all-null column.
    pub fn peak_frequency(&self) -> usize {
        let mut counts: HashMap<&Value, usize> = HashMap::new();
        for v in &self.values {
            if !v.is_null() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        counts.values().copied().max().unwrap_or(0)
    }

    /// Iterate over non-null values.
    pub fn non_null(&self) -> impl Iterator<Item = &Value> {
        self.values.iter().filter(|v| !v.is_null())
    }

    /// Build the distinct set of non-null values (used for overlap features
    /// and containment checks).
    pub fn distinct_set(&self) -> std::collections::HashSet<&Value> {
        self.non_null().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(vals: Vec<Value>) -> Column {
        Column::new("c", vals)
    }

    #[test]
    fn dtype_inference_mixed_numeric() {
        let c = col(vec![Value::Int(1), Value::Float(2.5), Value::Null]);
        assert_eq!(c.dtype(), DType::Float);
    }

    #[test]
    fn dtype_inference_incompatible_degrades_to_str() {
        let c = col(vec![Value::Int(1), Value::Str("a".into())]);
        assert_eq!(c.dtype(), DType::Str);
    }

    #[test]
    fn dtype_all_null() {
        let c = col(vec![Value::Null, Value::Null]);
        assert_eq!(c.dtype(), DType::Null);
    }

    #[test]
    fn distinct_and_emptiness() {
        let c = col(vec![
            Value::Int(1),
            Value::Int(1),
            Value::Int(2),
            Value::Null,
        ]);
        assert_eq!(c.distinct_count(), 2);
        assert_eq!(c.null_count(), 1);
        assert!((c.emptiness() - 0.25).abs() < 1e-12);
        assert!((c.distinct_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sortedness_detects_both_directions() {
        assert!(col(vec![Value::Int(1), Value::Int(2), Value::Int(2)]).is_sorted());
        assert!(col(vec![Value::Int(3), Value::Int(2), Value::Int(1)]).is_sorted());
        assert!(!col(vec![Value::Int(1), Value::Int(3), Value::Int(2)]).is_sorted());
        // Nulls are skipped.
        assert!(col(vec![Value::Null, Value::Int(1), Value::Int(5)]).is_sorted());
    }

    #[test]
    fn numeric_range_ignores_strings() {
        let c = col(vec![Value::Int(3), Value::Int(-1), Value::Str("x".into())]);
        assert_eq!(c.numeric_range(), Some((-1.0, 3.0)));
        let s = col(vec![Value::Str("x".into())]);
        assert_eq!(s.numeric_range(), None);
    }

    #[test]
    fn peak_frequency_counts_mode() {
        let c = col(vec![
            Value::Str("a".into()),
            Value::Str("a".into()),
            Value::Str("b".into()),
            Value::Null,
        ]);
        assert_eq!(c.peak_frequency(), 2);
        assert_eq!(col(vec![Value::Null]).peak_frequency(), 0);
    }

    #[test]
    fn empty_column_statistics_are_safe() {
        let c = Column::empty("e");
        assert_eq!(c.distinct_count(), 0);
        assert_eq!(c.emptiness(), 0.0);
        assert!(c.is_sorted());
        assert_eq!(c.numeric_range(), None);
    }
}
