//! Column-pair affinity/compatibility features (§4.3–4.4).
//!
//! The paper's §4.3 names two features — emptiness-reduction-ratio and
//! column-position-difference — and defers the full feature list to the
//! extended version. Those two alone cannot distinguish a cluster of
//! FD-linked id columns (Company/Ticker/Sector) from a collapsible value
//! block (2006/2007/2008): both are internally "affine". The additional
//! *stackability* signals below capture what Unpivot compatibility really
//! means — the columns' cells could live in one column: shared dtype
//! (relative to the rest of the table), overlapping numeric ranges, and
//! similar cardinalities.

use autosuggest_dataframe::DataFrame;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Names of the affinity feature vector entries.
pub const AFFINITY_FEATURE_NAMES: [&str; 11] = [
    "emptiness_reduction_log",
    "position_diff_abs",
    "position_diff_rel",
    "dtype_match",
    "both_numeric",
    "range_overlap",
    "value_jaccard",
    "distinct_ratio_similarity",
    "same_dtype_fraction",
    "pair_min_distinct_log",
    "pair_max_distinct_log",
];

/// Extracted affinity features for one ordered pair of columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AffinityFeatures {
    pub values: Vec<f64>,
}

impl AffinityFeatures {
    pub fn get(&self, name: &str) -> f64 {
        let idx = AFFINITY_FEATURE_NAMES
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("unknown affinity feature {name:?}"));
        self.values[idx]
    }
}

/// Emptiness-reduction-ratio of §4.3:
/// `|distinct(Ci)| · |distinct(Cj)| / |distinct(Ci, Cj)|`.
///
/// A high ratio means the joint domain is far smaller than the cross
/// product — arranging the two columns on *different* pivot sides would
/// materialise that cross product as mostly-NULL cells (Fig. 8), so they
/// belong together.
pub fn emptiness_reduction_ratio(df: &DataFrame, ci: usize, cj: usize) -> f64 {
    let a = df.column_at(ci);
    let b = df.column_at(cj);
    let da = a.distinct_count().max(1) as f64;
    let db = b.distinct_count().max(1) as f64;
    let mut joint: HashSet<(u64, u64)> = HashSet::new();
    for i in 0..df.num_rows() {
        let (va, vb) = (a.get(i), b.get(i));
        if va.is_null() || vb.is_null() {
            continue;
        }
        joint.insert((va.fingerprint(), vb.fingerprint()));
    }
    da * db / joint.len().max(1) as f64
}

/// Extract affinity features for columns at positions `ci`, `cj` of `df`.
pub fn affinity_features(df: &DataFrame, ci: usize, cj: usize) -> AffinityFeatures {
    assert_ne!(ci, cj, "affinity is defined between distinct columns");
    let a = df.column_at(ci);
    let b = df.column_at(cj);
    let err = emptiness_reduction_ratio(df, ci, cj);
    let pos_diff = ci.abs_diff(cj) as f64;
    let ncols = df.num_columns().max(2) as f64;
    let (da, db) = (a.dtype(), b.dtype());
    let dtype_match = if da == db { 1.0 } else { 0.0 };
    let both_numeric = if da.is_numeric() && db.is_numeric() { 1.0 } else { 0.0 };

    let range_overlap = match (a.numeric_range(), b.numeric_range()) {
        (Some((alo, ahi)), Some((blo, bhi))) => {
            let inter = (ahi.min(bhi) - alo.max(blo)).max(0.0);
            let uni = (ahi.max(bhi) - alo.min(blo)).max(f64::EPSILON);
            if uni <= f64::EPSILON { 1.0 } else { inter / uni }
        }
        _ => 0.0,
    };

    let sa = a.distinct_set();
    let sb = b.distinct_set();
    let inter = sa.intersection(&sb).count() as f64;
    let union = (sa.len() + sb.len()) as f64 - inter;
    let value_jaccard = if union > 0.0 { inter / union } else { 0.0 };

    let (ra, rb) = (a.distinct_ratio(), b.distinct_ratio());
    let distinct_sim = if ra.max(rb) > 0.0 { ra.min(rb) / ra.max(rb) } else { 1.0 };

    // How much of the table shares this pair's dtype: a matching pair from
    // the dominant column type (a wide value block) scores high; a matching
    // pair of minority-type id columns scores low.
    let same_dtype_fraction = if dtype_match > 0.0 {
        df.columns().iter().filter(|c| c.dtype() == da).count() as f64 / ncols
    } else {
        0.0
    };

    AffinityFeatures {
        values: vec![
            err.ln(),
            pos_diff,
            pos_diff / (ncols - 1.0),
            dtype_match,
            both_numeric,
            range_overlap,
            value_jaccard,
            distinct_sim,
            same_dtype_fraction,
            (1.0 + a.distinct_count().min(b.distinct_count()) as f64).ln(),
            (1.0 + a.distinct_count().max(b.distinct_count()) as f64).ln(),
        ],
    }
}

/// Convenience for heuristic baselines: raw ERR without the log transform.
pub fn raw_err(df: &DataFrame, ci: usize, cj: usize) -> f64 {
    emptiness_reduction_ratio(df, ci, cj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;

    /// 20 sectors × 5 companies each (company determines sector), 3 years.
    fn filings() -> DataFrame {
        let mut sector = Vec::new();
        let mut company = Vec::new();
        let mut year = Vec::new();
        for s in 0..20 {
            for c in 0..5 {
                for y in 0..3 {
                    sector.push(Value::Str(format!("sector{s}")));
                    company.push(Value::Str(format!("co{s}_{c}")));
                    year.push(Value::Int(2006 + y));
                }
            }
        }
        DataFrame::from_columns(vec![
            ("sector", sector),
            ("company", company),
            ("year", year),
        ])
        .unwrap()
    }

    /// Wide pivot-shaped table: 2 string ids + 4 float year columns.
    fn wide() -> DataFrame {
        let n = 10;
        DataFrame::from_columns(vec![
            ("name", (0..n).map(|i| Value::Str(format!("co{i}"))).collect()),
            (
                "sector",
                (0..n).map(|i| Value::Str(format!("s{}", i % 3))).collect(),
            ),
            ("2006", (0..n).map(|i| Value::Float(100.0 + i as f64)).collect()),
            ("2007", (0..n).map(|i| Value::Float(102.0 + i as f64)).collect()),
            ("2008", (0..n).map(|i| Value::Float(104.0 + i as f64)).collect()),
            ("2009", (0..n).map(|i| Value::Float(106.0 + i as f64)).collect()),
        ])
        .unwrap()
    }

    #[test]
    fn fd_pair_has_high_reduction_ratio() {
        let df = filings();
        let err = emptiness_reduction_ratio(&df, 0, 1);
        assert!((err - 20.0).abs() < 1e-9, "err = {err}");
    }

    #[test]
    fn independent_pair_has_ratio_one() {
        let df = filings();
        let err = emptiness_reduction_ratio(&df, 0, 2);
        assert!((err - 1.0).abs() < 1e-9, "err = {err}");
    }

    #[test]
    fn position_difference_features() {
        let df = filings();
        let f = affinity_features(&df, 0, 2);
        assert_eq!(f.get("position_diff_abs"), 2.0);
        assert_eq!(f.get("position_diff_rel"), 1.0);
    }

    #[test]
    fn log_err_feature_ordering() {
        let df = filings();
        let fd = affinity_features(&df, 0, 1);
        let indep = affinity_features(&df, 0, 2);
        assert!(fd.get("emptiness_reduction_log") > indep.get("emptiness_reduction_log"));
    }

    #[test]
    fn stackability_separates_value_block_from_id_pair() {
        let df = wide();
        let value_pair = affinity_features(&df, 2, 3);
        let id_pair = affinity_features(&df, 0, 1);
        assert_eq!(value_pair.get("both_numeric"), 1.0);
        assert_eq!(id_pair.get("both_numeric"), 0.0);
        assert!(value_pair.get("range_overlap") > 0.5);
        assert!(
            value_pair.get("same_dtype_fraction") > id_pair.get("same_dtype_fraction"),
            "value block is the dominant type"
        );
        assert!(value_pair.get("distinct_ratio_similarity") > 0.9);
    }

    #[test]
    fn value_jaccard_detects_shared_domains() {
        let df = DataFrame::from_columns(vec![
            ("a", (0..10).map(Value::Int).collect()),
            ("b", (0..10).map(Value::Int).collect()),
            ("c", (100..110).map(Value::Int).collect()),
        ])
        .unwrap();
        assert_eq!(affinity_features(&df, 0, 1).get("value_jaccard"), 1.0);
        assert_eq!(affinity_features(&df, 0, 2).get("value_jaccard"), 0.0);
    }

    #[test]
    fn nulls_are_ignored_in_joint_domain() {
        let df = DataFrame::from_columns(vec![
            ("a", vec![Value::Str("x".into()), Value::Null, Value::Str("x".into())]),
            ("b", vec![Value::Int(1), Value::Int(2), Value::Int(1)]),
        ])
        .unwrap();
        assert!((emptiness_reduction_ratio(&df, 0, 1) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn feature_vector_aligned_with_names() {
        let df = filings();
        let f = affinity_features(&df, 0, 1);
        assert_eq!(f.values.len(), AFFINITY_FEATURE_NAMES.len());
    }

    #[test]
    #[should_panic(expected = "distinct columns")]
    fn same_column_panics() {
        affinity_features(&filings(), 1, 1);
    }
}
