//! Join-candidate features (§4.1) — the eight groups of Table 4.

use crate::candidates::JoinCandidate;
use autosuggest_cache::{ColumnArtifacts, ColumnCache, KeyTupleSet, PairCache};
use autosuggest_dataframe::{DataFrame, DType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Names of the join feature vector entries, in extraction order.
pub const JOIN_FEATURE_NAMES: [&str; 18] = [
    "distinct_ratio_left",
    "distinct_ratio_right",
    "distinct_ratio_max",
    "jaccard_similarity",
    "containment_left_in_right",
    "containment_right_in_left",
    "containment_max",
    "range_overlap",
    "key_is_string",
    "key_is_int",
    "key_is_float",
    "leftness_abs_left",
    "leftness_rel_left",
    "leftness_abs_right",
    "leftness_rel_right",
    "sortedness",
    "single_column",
    "table_stats_row_ratio",
];

/// Feature-index → feature-group mapping used to aggregate GBDT importances
/// into the eight groups of Table 4.
pub const JOIN_FEATURE_GROUPS: [(usize, &str); 18] = [
    (0, "distinct-val-ratio"),
    (1, "distinct-val-ratio"),
    (2, "distinct-val-ratio"),
    (3, "val-overlap"),
    (4, "val-overlap"),
    (5, "val-overlap"),
    (6, "val-overlap"),
    (7, "val-range-overlap"),
    (8, "col-val-types"),
    (9, "col-val-types"),
    (10, "col-val-types"),
    (11, "left-ness"),
    (12, "left-ness"),
    (13, "left-ness"),
    (14, "left-ness"),
    (15, "sorted-ness"),
    (16, "single-col-candidate"),
    (17, "table-stats"),
];

/// The extracted feature vector for one join candidate, with named access
/// for tests and explanations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinFeatures {
    pub values: Vec<f64>,
}

impl JoinFeatures {
    pub fn get(&self, name: &str) -> f64 {
        let idx = JOIN_FEATURE_NAMES
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("unknown join feature {name:?}"));
        self.values[idx]
    }
}

/// Extract the §4.1 feature vector for candidate `(S, S')`.
///
/// Key-tuple sets and the pair-level intersection come from the pair-aware
/// cache tier (`autosuggest_cache::PairCache`): each distinct
/// `(content, key tuple)` builds its set once and each distinct content
/// *pair* intersects once, process-wide. Callers featurising many
/// candidates for one table pair should prefer [`join_features_batch`],
/// which additionally hoists the per-tuple hashing pass out of the
/// per-candidate path.
pub fn join_features(
    left: &DataFrame,
    right: &DataFrame,
    cand: &JoinCandidate,
) -> JoinFeatures {
    let pairs = PairCache::global();
    let lkeys = pairs.key_tuples(left, &cand.left_cols);
    let rkeys = pairs.key_tuples(right, &cand.right_cols);
    join_features_with_sets(left, right, cand, &lkeys, &rkeys)
}

/// Extract feature vectors for every candidate of one table pair, sharing
/// key-tuple sets across candidates.
///
/// This is the hot batched path: each distinct `(side, column tuple)` of
/// the request is hashed and fetched exactly once (candidates repeat
/// tuples heavily — every two-column candidate reuses two single-column
/// sets' columns, and `rank_candidates`/training touch the same tuples for
/// hundreds of candidates), then candidates are featurised across the pool
/// with the memoized sets. Output order matches `cands`; every vector is
/// bit-identical to calling [`join_features`] per candidate.
pub fn join_features_batch(
    left: &DataFrame,
    right: &DataFrame,
    cands: &[JoinCandidate],
) -> Vec<JoinFeatures> {
    let pairs = PairCache::global();
    // Distinct column tuples per side, in first-appearance order so cache
    // counters stay independent of the candidate mix.
    let mut ltuples: Vec<Vec<usize>> = Vec::new();
    let mut rtuples: Vec<Vec<usize>> = Vec::new();
    for cand in cands {
        if !ltuples.contains(&cand.left_cols) {
            ltuples.push(cand.left_cols.clone());
        }
        if !rtuples.contains(&cand.right_cols) {
            rtuples.push(cand.right_cols.clone());
        }
    }
    // One fetch per distinct tuple — the expensive pass — fanned out over
    // the pool (single-flight keeps the counters thread-invariant).
    let pool = autosuggest_parallel::Pool::global().with_min_items(8);
    let lsets: Vec<Arc<KeyTupleSet>> =
        pool.par_map(&ltuples, |cols| pairs.key_tuples(left, cols));
    let rsets: Vec<Arc<KeyTupleSet>> =
        pool.par_map(&rtuples, |cols| pairs.key_tuples(right, cols));
    let lmap: HashMap<&[usize], &Arc<KeyTupleSet>> =
        ltuples.iter().map(|t| t.as_slice()).zip(&lsets).collect();
    let rmap: HashMap<&[usize], &Arc<KeyTupleSet>> =
        rtuples.iter().map(|t| t.as_slice()).zip(&rsets).collect();
    pool.with_min_items(16).par_map(cands, |cand| {
        let lkeys = lmap[cand.left_cols.as_slice()];
        let rkeys = rmap[cand.right_cols.as_slice()];
        join_features_with_sets(left, right, cand, lkeys, rkeys)
    })
}

/// The feature computation proper, over precomputed key-tuple sets.
fn join_features_with_sets(
    left: &DataFrame,
    right: &DataFrame,
    cand: &JoinCandidate,
    lkeys: &KeyTupleSet,
    rkeys: &KeyTupleSet,
) -> JoinFeatures {
    assert_eq!(cand.left_cols.len(), cand.right_cols.len());
    assert!(!cand.left_cols.is_empty());

    let lrows = left.num_rows().max(1);
    let rrows = right.num_rows().max(1);

    // Distinct-value-ratio over key tuples.
    let distinct_l = lkeys.len() as f64 / lrows as f64;
    let distinct_r = rkeys.len() as f64 / rrows as f64;

    // Exact value overlap on tuple hashes (tables at replay scale are small
    // enough to afford exact sets; sketches are only for pruning). The
    // intersection size is memoized per distinct content pair.
    let inter = PairCache::global().intersection(lkeys, rkeys) as f64;
    let union = (lkeys.len() + rkeys.len()) as f64 - inter;
    let jaccard = if union > 0.0 { inter / union } else { 0.0 };
    let cont_l = if !lkeys.is_empty() { inter / lkeys.len() as f64 } else { 0.0 };
    let cont_r = if !rkeys.is_empty() { inter / rkeys.len() as f64 } else { 0.0 };

    // Per-key-column dtypes and numeric ranges come from the
    // content-addressed cache: key columns recur across the many candidates
    // of one table pair, so these statistics are fetched once per distinct
    // column content (artifact values delegate to the same `Column` methods
    // previously called inline). Sorted-ness stays a direct column call —
    // it is row-order-sensitive and deliberately not cached.
    let cache = ColumnCache::global();
    let larts: Vec<Arc<ColumnArtifacts>> =
        cand.left_cols.iter().map(|&c| cache.artifacts(left.column_at(c))).collect();
    let rarts: Vec<Arc<ColumnArtifacts>> =
        cand.right_cols.iter().map(|&c| cache.artifacts(right.column_at(c))).collect();

    // Value-range-overlap: only defined for single-column numeric pairs;
    // multi-column candidates average their per-position overlaps.
    let mut range_overlaps = Vec::with_capacity(cand.left_cols.len());
    for (lcol, rcol) in larts.iter().zip(&rarts) {
        if lcol.dtype().is_numeric() && rcol.dtype().is_numeric() {
            if let (Some((llo, lhi)), Some((rlo, rhi))) =
                (lcol.min_max(), rcol.min_max())
            {
                let inter = (lhi.min(rhi) - llo.max(rlo)).max(0.0);
                let uni = (lhi.max(rhi) - llo.min(rlo)).max(f64::EPSILON);
                // Point ranges (single distinct value) count as full overlap
                // when they coincide.
                let ov = if uni <= f64::EPSILON { 1.0 } else { inter / uni };
                range_overlaps.push(ov);
            } else {
                range_overlaps.push(0.0);
            }
        } else if lcol.dtype() == DType::Str && rcol.dtype() == DType::Str {
            // For strings, range overlap is undefined; use the value overlap
            // itself as the stand-in (string overlap is trustworthy, §4.1).
            range_overlaps.push(jaccard);
        } else {
            range_overlaps.push(0.0);
        }
    }
    let range_overlap =
        range_overlaps.iter().sum::<f64>() / range_overlaps.len() as f64;

    // Key dtype indicators (unified across positions: "string key" only when
    // every key column is a string, etc.).
    let all_dtype = |want: fn(DType) -> bool| -> f64 {
        let ok = larts
            .iter()
            .zip(&rarts)
            .all(|(l, r)| want(l.dtype()) && want(r.dtype()));
        if ok {
            1.0
        } else {
            0.0
        }
    };
    let key_is_string = all_dtype(|d| d == DType::Str);
    let key_is_int = all_dtype(|d| d == DType::Int);
    let key_is_float = all_dtype(|d| matches!(d, DType::Float | DType::Int));

    // Left-ness: average column positions, absolute and relative.
    let avg = |cols: &[usize]| cols.iter().sum::<usize>() as f64 / cols.len() as f64;
    let labs = avg(&cand.left_cols);
    let rabs = avg(&cand.right_cols);
    let lrel = labs / left.num_columns().max(1) as f64;
    let rrel = rabs / right.num_columns().max(1) as f64;

    // Sorted-ness: fraction of key columns that are sorted, both sides.
    let sorted_frac = {
        let mut sorted = 0usize;
        let mut total = 0usize;
        for &c in &cand.left_cols {
            total += 1;
            if left.column_at(c).is_sorted() {
                sorted += 1;
            }
        }
        for &c in &cand.right_cols {
            total += 1;
            if right.column_at(c).is_sorted() {
                sorted += 1;
            }
        }
        sorted as f64 / total as f64
    };

    let single = if cand.left_cols.len() == 1 { 1.0 } else { 0.0 };
    let row_ratio = lrows as f64 / rrows as f64;

    JoinFeatures {
        values: vec![
            distinct_l,
            distinct_r,
            distinct_l.max(distinct_r),
            jaccard,
            cont_l,
            cont_r,
            cont_l.max(cont_r),
            range_overlap,
            key_is_string,
            key_is_int,
            key_is_float,
            labs,
            lrel,
            rabs,
            rrel,
            sorted_frac,
            single,
            row_ratio.min(100.0),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autosuggest_dataframe::Value;

    fn books() -> (DataFrame, DataFrame) {
        // Fig. 5 of the paper: the title columns are the true join despite
        // imperfect containment; rank/weeks have accidental full containment.
        let left = DataFrame::from_columns(vec![
            (
                "title",
                ["dune", "it", "emma", "holes"]
                    .iter()
                    .map(|s| Value::Str((*s).into()))
                    .collect(),
            ),
            ("rank_on_list", (1..=4).map(Value::Int).collect()),
        ])
        .unwrap();
        let right = DataFrame::from_columns(vec![
            (
                "title_on_list",
                ["dune", "emma", "gatsby"]
                    .iter()
                    .map(|s| Value::Str((*s).into()))
                    .collect(),
            ),
            ("weeks_on_list", vec![Value::Int(2), Value::Int(3), Value::Int(1)]),
        ])
        .unwrap();
        (left, right)
    }

    #[test]
    fn feature_vector_matches_name_table() {
        let (l, r) = books();
        let f = join_features(&l, &r, &JoinCandidate { left_cols: vec![0], right_cols: vec![0] });
        assert_eq!(f.values.len(), JOIN_FEATURE_NAMES.len());
        assert_eq!(f.values.len(), JOIN_FEATURE_GROUPS.len());
    }

    #[test]
    fn title_pair_has_partial_overlap_and_string_type() {
        let (l, r) = books();
        let f = join_features(&l, &r, &JoinCandidate { left_cols: vec![0], right_cols: vec![0] });
        // 2 shared titles of 5 distinct → jaccard 0.4.
        assert!((f.get("jaccard_similarity") - 2.0 / 5.0).abs() < 1e-9);
        assert_eq!(f.get("key_is_string"), 1.0);
        assert_eq!(f.get("leftness_abs_left"), 0.0);
        assert_eq!(f.get("single_column"), 1.0);
    }

    #[test]
    fn accidental_integer_containment_scores_high_overlap_low_range_signal() {
        // rank 1..=4 fully contains weeks {1,2,3}: high containment, but the
        // int-type indicator (not string) lets the model discount it.
        let (l, r) = books();
        let f = join_features(&l, &r, &JoinCandidate { left_cols: vec![1], right_cols: vec![1] });
        assert_eq!(f.get("containment_right_in_left"), 1.0);
        assert_eq!(f.get("key_is_string"), 0.0);
        assert_eq!(f.get("key_is_int"), 1.0);
    }

    #[test]
    fn distinct_ratio_detects_keys() {
        let (l, r) = books();
        let f = join_features(&l, &r, &JoinCandidate { left_cols: vec![0], right_cols: vec![0] });
        assert_eq!(f.get("distinct_ratio_left"), 1.0);
        assert_eq!(f.get("distinct_ratio_right"), 1.0);
    }

    #[test]
    fn range_overlap_for_disjoint_int_ranges_is_zero() {
        let l = DataFrame::from_columns(vec![("a", (0..10).map(Value::Int).collect())]).unwrap();
        let r = DataFrame::from_columns(vec![(
            "b",
            (100..110).map(Value::Int).collect(),
        )])
        .unwrap();
        let f = join_features(&l, &r, &JoinCandidate { left_cols: vec![0], right_cols: vec![0] });
        assert_eq!(f.get("range_overlap"), 0.0);
    }

    #[test]
    fn multi_column_candidate_features() {
        let l = DataFrame::from_columns(vec![
            ("a", (0..6).map(Value::Int).collect()),
            ("b", (0..6).map(|i| Value::Int(i % 2)).collect()),
        ])
        .unwrap();
        let f = join_features(
            &l,
            &l.clone(),
            &JoinCandidate { left_cols: vec![0, 1], right_cols: vec![0, 1] },
        );
        assert_eq!(f.get("single_column"), 0.0);
        assert_eq!(f.get("jaccard_similarity"), 1.0);
        assert_eq!(f.get("leftness_abs_left"), 0.5);
    }

    #[test]
    fn row_ratio_is_capped() {
        let l = DataFrame::from_columns(vec![(
            "a",
            (0..5000).map(|i| Value::Int(i % 50)).collect(),
        )])
        .unwrap();
        let r = DataFrame::from_columns(vec![("a", (0..50).map(Value::Int).collect())]).unwrap();
        let f = join_features(&l, &r, &JoinCandidate { left_cols: vec![0], right_cols: vec![0] });
        assert_eq!(f.get("table_stats_row_ratio"), 100.0);
    }

    #[test]
    #[should_panic(expected = "unknown join feature")]
    fn unknown_feature_name_panics() {
        let (l, r) = books();
        join_features(&l, &r, &JoinCandidate { left_cols: vec![0], right_cols: vec![0] })
            .get("bogus");
    }
}
